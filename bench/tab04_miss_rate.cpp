// Table 4: pre-planned scheduling miss rate — how often the configurations
// fixed up-front by Orion (best-first search) and Aquatope (BO) fail to
// apply because the planned batch exceeds the jobs actually queued.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Table 4: pre-planned configuration miss rate",
      "Orion: 9.6% (strict-light) rising to 27-52% under change; "
      "Aquatope/BO: 59-86%");

  std::vector<exp::Scenario> grid;
  for (const auto& combo : exp::paper_combos()) {
    grid.push_back(bench::make_scenario(exp::SchedulerKind::kOrion, combo));
    grid.push_back(bench::make_scenario(exp::SchedulerKind::kAquatope, combo));
  }
  const auto results = bench::run_grid(grid);

  AsciiTable table({"system setting", "best-first search (Orion)",
                    "BO (Aquatope)"});
  for (std::size_t c = 0; c < exp::paper_combos().size(); ++c) {
    table.add_row({exp::combo_name(exp::paper_combos()[c]),
                   AsciiTable::pct(results[2 * c].aggregate.config_miss_rate),
                   AsciiTable::pct(results[2 * c + 1].aggregate.config_miss_rate)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
