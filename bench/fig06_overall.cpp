// Figure 6: average SLO hit rate and total cost (normalised to ESG) for the
// five schedulers under strict-light, moderate-normal and relaxed-heavy.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 6: overall SLO hit rate and normalised cost",
      "ESG has the highest hit rate everywhere (up to +61% vs "
      "INFless/FaST-GShare, +80% vs Orion/BO in strict-light) at the lowest "
      "or near-lowest cost; INFless costs the most");

  for (const auto& combo : exp::paper_combos()) {
    std::vector<exp::Scenario> grid;
    for (const auto kind : exp::all_schedulers()) {
      grid.push_back(bench::make_scenario(kind, combo));
    }
    const auto results = bench::run_grid(grid);

    const double esg_cost = results.front().aggregate.total_cost;
    AsciiTable table({"scheduler", "SLO hit rate", "cost (ESG=1)", "requests"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& agg = results[i].aggregate;
      table.add_row({std::string(exp::to_string(grid[i].scheduler)),
                     AsciiTable::pct(agg.slo_hit_rate),
                     AsciiTable::num(esg_cost > 0 ? agg.total_cost / esg_cost : 0, 2),
                     std::to_string(agg.requests)});
    }
    std::printf("--- %s ---\n%s\n", exp::combo_name(combo).c_str(),
                table.render().c_str());
  }
  return 0;
}
