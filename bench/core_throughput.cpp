// Core-throughput baseline: every scheduler (the paper's five plus
// MQFQ-Sticky) replaying the same Azure-shaped trace at rate-scale 1, 10 and
// 100, measured in simulator events/sec and invocations/sec of wall time.
// This is the self-profiling PR's anchor artefact (DESIGN.md §13): the
// checked-in BENCH_core.json gives esg_perfdiff a baseline so later PRs can
// see when they slow the hot path down.
//
// Built on google-benchmark with a custom main so the binary can also write
// the machine-readable baseline (argv[1] after benchmark flags, default
// BENCH_core.json).
//
// Environment knobs:
//   ESG_BENCH_CORE_HORIZON_MS — arrival-window length per run (default
//   2000; deliberately shorter than ESG_BENCH_HORIZON_MS because the
//   rate-scale-100 rows replay ~100x the paper's arrival rate — over a
//   hundred thousand invocations even at this horizon).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "trace/azure_shape.hpp"
#include "workload/applications.hpp"

namespace {

using namespace esg;

constexpr double kRateScales[] = {1.0, 10.0, 100.0};
constexpr std::uint64_t kSeed = 42;

double core_horizon_ms() {
  if (const char* env = std::getenv("ESG_BENCH_CORE_HORIZON_MS")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 2'000.0;
}

/// All six scheduler kinds: the paper's five-way comparison plus the
/// multi-tenant MQFQ-Sticky strategy (not in all_schedulers() by design).
std::vector<exp::SchedulerKind> six_schedulers() {
  std::vector<exp::SchedulerKind> kinds(exp::all_schedulers().begin(),
                                        exp::all_schedulers().end());
  kinds.push_back(exp::SchedulerKind::kMqfqSticky);
  return kinds;
}

/// Totals for one (scheduler, rate-scale) cell, accumulated across however
/// many iterations google-benchmark decides to run.
struct CellTotals {
  std::uint64_t events = 0;
  std::uint64_t invocations = 0;
  double wall_seconds = 0.0;
  perf::Counters counters;
};

/// Keyed by (scheduler index, rate-scale index) so the JSON rows come out in
/// registration order regardless of benchmark filters.
std::map<std::pair<std::size_t, std::size_t>, CellTotals> g_cells;

void BM_CoreThroughput(benchmark::State& state, exp::SchedulerKind kind,
                       std::size_t kind_index, std::size_t scale_index,
                       std::shared_ptr<const trace::WorkloadTrace> trace) {
  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal
  exp::Scenario s;
  s.scheduler = kind;
  s.slo = combo.slo;
  s.load = combo.load;
  s.horizon_ms = core_horizon_ms();
  s.warmup_ms = 0.0;  // throughput counts every event, not steady state
  s.seed = kSeed;
  s.arrivals.mode = exp::ArrivalMode::kTrace;
  s.arrivals.trace = std::move(trace);
  s.arrivals.replay.rate_scale = kRateScales[scale_index];

  CellTotals& cell = g_cells[{kind_index, scale_index}];
  for (auto _ : state) {
    const exp::RunOutput out = exp::run_scenario(s);
    cell.events += out.counters.events_fired;
    cell.invocations += out.metrics.requests();
    cell.wall_seconds += out.wall_seconds;
    cell.counters.merge(out.counters);
    benchmark::DoNotOptimize(cell.events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(cell.events), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(cell.invocations));  // items/s = invocations/s
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::string out_path = "BENCH_core.json";
  if (argc > 1 && argv[1][0] != '-') {
    out_path = argv[1];
    --argc;
    for (int i = 1; i < argc; ++i) argv[i] = argv[i + 1];
  }
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const auto kinds = six_schedulers();

  // One diurnal cycle + bursts across the horizon; mean rate matches the
  // paper's "normal" setting (one arrival per ~26.8 ms at rate-scale 1).
  trace::AzureShapeOptions shape;
  shape.apps = workload::kBuiltinAppCount;
  shape.bin_ms = 500.0;
  // Round up so a sub-bin ESG_BENCH_CORE_HORIZON_MS still yields a trace.
  shape.bins = static_cast<std::size_t>(
      (core_horizon_ms() + shape.bin_ms - 1.0) / shape.bin_ms);
  shape.mean_rate_per_bin = shape.bin_ms / 26.8;
  const auto workload_trace = std::make_shared<const trace::WorkloadTrace>(
      trace::generate_azure_shaped(shape, RngFactory(7).stream("azure-shape")));

  std::printf("=== Core throughput: events/sec per scheduler x rate-scale ===\n");
  std::printf("trace: %zu bins x %.0f ms, %.0f invocations at rate-scale 1; "
              "horizon %.0f ms, seed %llu\n\n",
              workload_trace->bin_count(), workload_trace->bin_ms,
              workload_trace->total_count(), core_horizon_ms(),
              static_cast<unsigned long long>(kSeed));

  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    for (std::size_t ri = 0; ri < std::size(kRateScales); ++ri) {
      const std::string name =
          "core/" + std::string(exp::to_string(kinds[ki])) + "/x" +
          std::to_string(static_cast<int>(kRateScales[ri]));
      benchmark::RegisterBenchmark(name.c_str(), BM_CoreThroughput, kinds[ki],
                                   ki, ri, workload_trace)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (g_cells.empty()) {
    std::fprintf(stderr, "no benchmarks ran (filtered out?); not writing %s\n",
                 out_path.c_str());
    return 0;
  }

  AsciiTable table({"scheduler", "rate-scale", "invocations", "events",
                    "wall (s)", "events/s", "inv/s"});
  for (const auto& [key, cell] : g_cells) {
    const double wall = cell.wall_seconds > 0.0 ? cell.wall_seconds : 1e-9;
    table.add_row({std::string(exp::to_string(kinds[key.first])),
                   AsciiTable::num(kRateScales[key.second], 0),
                   std::to_string(cell.invocations),
                   std::to_string(cell.events),
                   AsciiTable::num(cell.wall_seconds, 3),
                   AsciiTable::num(static_cast<double>(cell.events) / wall, 0),
                   AsciiTable::num(
                       static_cast<double>(cell.invocations) / wall, 0)});
  }
  std::printf("\n%s\n", table.render().c_str());

  // Machine-readable baseline: esg_perfdiff matches rows by scheduler +
  // rate_scale + seed and gates on the *_per_sec fields.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_meta_json(out);
  std::fprintf(out,
               "  \"bench\": \"core_throughput\",\n"
               "  \"horizon_ms\": %.0f,\n  \"seed\": %llu,\n  \"rows\": [\n",
               core_horizon_ms(), static_cast<unsigned long long>(kSeed));
  std::size_t emitted = 0;
  for (const auto& [key, cell] : g_cells) {
    const double wall = cell.wall_seconds > 0.0 ? cell.wall_seconds : 1e-9;
    std::fprintf(
        out,
        "    {\"scheduler\": \"%s\", \"rate_scale\": %g, \"seed\": %llu, "
        "\"invocations\": %llu, \"events\": %llu, \"wall_seconds\": %.4f, "
        "\"events_per_sec\": %.1f, \"invocations_per_sec\": %.1f}%s\n",
        std::string(exp::to_string(kinds[key.first])).c_str(),
        kRateScales[key.second], static_cast<unsigned long long>(kSeed),
        static_cast<unsigned long long>(cell.invocations),
        static_cast<unsigned long long>(cell.events), cell.wall_seconds,
        static_cast<double>(cell.events) / wall,
        static_cast<double>(cell.invocations) / wall,
        ++emitted < g_cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), g_cells.size());
  return 0;
}
