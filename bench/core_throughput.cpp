// Core-throughput baseline: every scheduler (the paper's five plus
// MQFQ-Sticky) replaying the same Azure-shaped trace at rate-scale 1, 10 and
// 100, measured in simulator events/sec and invocations/sec of wall time.
// This is the self-profiling PR's anchor artefact (DESIGN.md §13): the
// checked-in BENCH_core.json gives esg_perfdiff a baseline so later PRs can
// see when they slow the hot path down (CI gates on events_per_sec).
//
// The cells run as sweep tasks on the work-stealing pool (DESIGN.md §15) —
// the same runner behind `esg_sim --sweep` — so the bench exercises the
// production replica path instead of a bespoke loop. argv[1] (when not a
// flag) overrides the output path, default BENCH_core.json.
//
// Environment knobs:
//   ESG_BENCH_CORE_HORIZON_MS — arrival-window length per run (default
//     2000; deliberately shorter than ESG_BENCH_HORIZON_MS because the
//     rate-scale-100 rows replay ~100x the paper's arrival rate — over a
//     hundred thousand invocations even at this horizon).
//   ESG_BENCH_CORE_BUDGET_MS — wall-clock budget per row (default 0 =
//     unlimited). A row that exhausts it stops mid-run and is marked
//     "truncated": its throughput covers only the fired prefix, and
//     esg_perfdiff comparisons against an untruncated baseline are
//     meaningless. CI sets a generous budget purely as a hang backstop.
//   ESG_BENCH_CORE_JOBS — pool worker threads (default 1: concurrent rows
//     steal each other's wall clock, so parallelism is for smoke runs, not
//     for numbers worth checking in).
//   ESG_BENCH_CORE_ENGINE — heap|calendar event-queue engine (default
//     calendar). Recorded in every row; informational for esg_perfdiff.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sweep/sweep.hpp"
#include "trace/azure_shape.hpp"
#include "workload/applications.hpp"

namespace {

using namespace esg;

constexpr double kRateScales[] = {1.0, 10.0, 100.0};
constexpr std::uint64_t kSeed = 42;

double core_horizon_ms() {
  if (const char* env = std::getenv("ESG_BENCH_CORE_HORIZON_MS")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 2'000.0;
}

double core_budget_ms() {
  if (const char* env = std::getenv("ESG_BENCH_CORE_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.0;
}

unsigned core_jobs() {
  if (const char* env = std::getenv("ESG_BENCH_CORE_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

sim::EngineKind core_engine() {
  if (const char* env = std::getenv("ESG_BENCH_CORE_ENGINE")) {
    if (const auto engine = sim::parse_engine(env)) return *engine;
    std::fprintf(stderr, "unknown ESG_BENCH_CORE_ENGINE '%s' (heap|calendar)\n",
                 env);
    std::exit(2);
  }
  return sim::EngineKind::kCalendar;
}

/// All six scheduler kinds: the paper's five-way comparison plus the
/// multi-tenant MQFQ-Sticky strategy (not in all_schedulers() by design).
std::vector<exp::SchedulerKind> six_schedulers() {
  std::vector<exp::SchedulerKind> kinds(exp::all_schedulers().begin(),
                                        exp::all_schedulers().end());
  kinds.push_back(exp::SchedulerKind::kMqfqSticky);
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  if (argc > 1 && argv[1][0] != '-') out_path = argv[1];

  const auto kinds = six_schedulers();
  const double horizon_ms = core_horizon_ms();
  const double budget_ms = core_budget_ms();
  const sim::EngineKind engine = core_engine();

  // One diurnal cycle + bursts across the horizon; mean rate matches the
  // paper's "normal" setting (one arrival per ~26.8 ms at rate-scale 1).
  trace::AzureShapeOptions shape;
  shape.apps = workload::kBuiltinAppCount;
  shape.bin_ms = 500.0;
  // Round up so a sub-bin ESG_BENCH_CORE_HORIZON_MS still yields a trace.
  shape.bins = static_cast<std::size_t>(
      (horizon_ms + shape.bin_ms - 1.0) / shape.bin_ms);
  shape.mean_rate_per_bin = shape.bin_ms / 26.8;
  const auto workload_trace = std::make_shared<const trace::WorkloadTrace>(
      trace::generate_azure_shaped(shape, RngFactory(7).stream("azure-shape")));

  std::printf("=== Core throughput: events/sec per scheduler x rate-scale ===\n");
  std::printf("trace: %zu bins x %.0f ms, %.0f invocations at rate-scale 1; "
              "horizon %.0f ms, seed %llu, engine %s\n",
              workload_trace->bin_count(), workload_trace->bin_ms,
              workload_trace->total_count(), horizon_ms,
              static_cast<unsigned long long>(kSeed),
              sim::engine_name(engine));
  if (budget_ms > 0.0) {
    std::printf("budget: %.0f ms wall per row (rows that hit it are marked "
                "truncated)\n", budget_ms);
  }
  std::printf("\n");

  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal
  std::vector<sweep::SweepTask> tasks;
  for (const exp::SchedulerKind kind : kinds) {
    for (const double scale : kRateScales) {
      sweep::SweepTask task;
      exp::Scenario& s = task.scenario;
      s.scheduler = kind;
      s.slo = combo.slo;
      s.load = combo.load;
      s.horizon_ms = horizon_ms;
      s.warmup_ms = 0.0;  // throughput counts every event, not steady state
      s.seed = kSeed;
      s.engine = engine;
      s.wall_budget_ms = budget_ms;
      s.arrivals.mode = exp::ArrivalMode::kTrace;
      s.arrivals.trace = workload_trace;
      s.arrivals.replay.rate_scale = scale;
      task.label = "core/" + std::string(exp::to_string(kind)) + "/x" +
                   std::to_string(static_cast<int>(scale));
      tasks.push_back(std::move(task));
    }
  }

  sweep::SweepOptions sweep_opts;
  sweep_opts.jobs = core_jobs();
  const auto results = sweep::run_sweep(std::move(tasks), sweep_opts);
  for (const auto& cell : results) {
    if (cell.failed) {
      std::fprintf(stderr, "cell %s failed: %s\n", cell.label.c_str(),
                   cell.error.c_str());
      return 1;
    }
  }

  AsciiTable table({"scheduler", "rate-scale", "invocations", "events",
                    "wall (s)", "events/s", "inv/s"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunOutput& out = results[i].output;
    const double wall = out.wall_seconds > 0.0 ? out.wall_seconds : 1e-9;
    const double events = static_cast<double>(out.counters.events_fired);
    std::string scale = AsciiTable::num(kRateScales[i % 3], 0);
    if (out.truncated) scale += "*";
    table.add_row({std::string(exp::to_string(kinds[i / 3])), scale,
                   std::to_string(out.metrics.requests()),
                   std::to_string(out.counters.events_fired),
                   AsciiTable::num(out.wall_seconds, 3),
                   AsciiTable::num(events / wall, 0),
                   AsciiTable::num(
                       static_cast<double>(out.metrics.requests()) / wall, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  if (budget_ms > 0.0) std::printf("* = truncated by the wall budget\n");

  // Machine-readable baseline: esg_perfdiff matches rows by scheduler +
  // rate_scale + seed ("engine" is deliberately NOT part of the identity)
  // and gates on the *_per_sec fields.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_meta_json(out);
  std::fprintf(out,
               "  \"bench\": \"core_throughput\",\n"
               "  \"horizon_ms\": %.0f,\n  \"seed\": %llu,\n  \"rows\": [\n",
               horizon_ms, static_cast<unsigned long long>(kSeed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunOutput& row = results[i].output;
    const double wall = row.wall_seconds > 0.0 ? row.wall_seconds : 1e-9;
    std::fprintf(
        out,
        "    {\"scheduler\": \"%s\", \"rate_scale\": %g, \"seed\": %llu, "
        "\"engine\": \"%s\", \"truncated\": %s, "
        "\"invocations\": %zu, \"events\": %llu, \"wall_seconds\": %.4f, "
        "\"events_per_sec\": %.1f, \"invocations_per_sec\": %.1f}%s\n",
        std::string(exp::to_string(kinds[i / 3])).c_str(),
        kRateScales[i % 3], static_cast<unsigned long long>(kSeed),
        sim::engine_name(engine),
        row.truncated ? "true" : "false", row.metrics.requests(),
        static_cast<unsigned long long>(row.counters.events_fired),
        row.wall_seconds,
        static_cast<double>(row.counters.events_fired) / wall,
        static_cast<double>(row.metrics.requests()) / wall,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), results.size());
  return 0;
}
