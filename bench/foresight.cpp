// Foresight sweep: every scheduler driven by the same bursty Azure-shaped
// trace (two repeated diurnal days, fresh burst draws each day), reactive
// vs each --forecast predictor (DESIGN.md §14). The forecaster feeds three
// consumers — proactive prewarm targets, the ESG planner's batching defer
// look-ahead, and (not exercised here) the elastic forecast policy — so the
// sweep quantifies the value-of-information ladder the paper's pipeline
// argument implies: reactive < ewma < seasonal < oracle. The trace is
// regenerated in-process (deterministic seed), so the bench needs no input
// file.
//
// Besides the table, the binary writes a machine-readable JSON baseline
// (argv[1], default BENCH_foresight.json) with attainment, cold-start rate
// and cost per (scheduler, predictor) cell; diff it with
//   esg_perfdiff --gate-suffix attainment --gate-suffix -cold_start_rate
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "forecast/forecast_spec.hpp"
#include "trace/azure_shape.hpp"
#include "workload/applications.hpp"

namespace {

using namespace esg;

struct Predictor {
  const char* name;
  std::string spec;  // parse_forecast_spec grammar; empty = reactive
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Foresight: reactive vs forecast-fed proactive scheduling",
      "acting lead-ms ahead of predicted ramps (prewarm targets + defer "
      "look-ahead) converts cold starts into warm hits; the oracle bounds "
      "the value of a perfect predictor");

  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal

  // Two repeated diurnal days across the bench horizon so the seasonal
  // predictor sees day one and forecasts day two; strong bursts make the
  // cold-start penalty of chasing demand visible.
  trace::AzureShapeOptions shape;
  shape.apps = workload::kBuiltinAppCount;
  shape.bin_ms = 500.0;
  shape.days = 2;
  shape.bins = static_cast<std::size_t>(bench::horizon_ms() /
                                        (shape.bin_ms * 2.0));
  // Calm base load (half the paper's "normal" rate) with strong bursts: the
  // fleet keeps up between episodes, so the cells differ mainly in how each
  // predictor handles the ramps — the effect the bench isolates.
  shape.mean_rate_per_bin = shape.bin_ms / 53.6;
  shape.burst_factor = 8.0;
  shape.burst_count = 2;
  const TimeMs day_ms = static_cast<double>(shape.bins) * shape.bin_ms;
  const auto workload_trace = std::make_shared<const trace::WorkloadTrace>(
      trace::generate_azure_shaped(shape,
                                   RngFactory(11).stream("azure-shape")));
  std::printf("trace: %zu days x %zu bins x %.0f ms, %.0f invocations, "
              "setting %s\n\n",
              shape.days, shape.bins, workload_trace->bin_ms,
              workload_trace->total_count(), exp::combo_name(combo).c_str());

  char seasonal[96];
  std::snprintf(seasonal, sizeof(seasonal),
                "seasonal:period-ms=%.0f,bins=%zu;lead-ms=3000,bin-ms=500",
                day_ms, shape.bins);
  const Predictor predictors[] = {
      {"reactive", ""},
      {"ewma", "ewma:alpha=0.5;lead-ms=3000,bin-ms=500"},
      {"seasonal", seasonal},
      {"oracle", "oracle;lead-ms=3000,bin-ms=500"},
  };

  std::vector<exp::Scenario> grid;
  for (const auto kind : exp::all_schedulers()) {
    for (const Predictor& p : predictors) {
      exp::Scenario s = bench::make_scenario(kind, combo);
      s.arrivals.mode = exp::ArrivalMode::kTrace;
      s.arrivals.trace = workload_trace;
      s.forecast = forecast::parse_forecast_spec(p.spec);
      grid.push_back(s);
    }
  }
  const auto results = bench::run_grid(grid);

  constexpr std::size_t kPredictors = std::size(predictors);
  AsciiTable table({"scheduler", "predictor", "hit rate", "cold starts",
                    "cost ($)", "mean wait (ms)", "sMAPE"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::size_t cold = 0, scored = 0;
    double smape = 0.0;
    for (const auto& run : results[i].replicas) {
      cold += run.metrics.cold_starts;
      for (const auto& acc : run.forecast_accuracy) {
        if (acc.bins == 0) continue;
        smape += acc.smape;
        ++scored;
      }
    }
    const auto& agg = results[i].aggregate;
    table.add_row(
        {std::string(exp::to_string(grid[i].scheduler)),
         predictors[i % kPredictors].name, AsciiTable::pct(agg.slo_hit_rate),
         std::to_string(cold), AsciiTable::num(agg.total_cost, 4),
         AsciiTable::num(agg.mean_job_wait_ms, 1),
         scored > 0 ? AsciiTable::num(smape / static_cast<double>(scored), 3)
                    : "-"});
  }
  std::printf("%s\n", table.render().c_str());

  // Machine-readable baseline for trend tracking across PRs.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_foresight.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_meta_json(out);
  std::fprintf(out,
               "  \"bench\": \"foresight\",\n"
               "  \"setting\": \"%s\",\n"
               "  \"horizon_ms\": %.0f,\n  \"seeds\": %zu,\n  \"rows\": [\n",
               exp::combo_name(combo).c_str(), bench::horizon_ms(),
               bench::seeds().size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::size_t cold = 0;
    for (const auto& run : results[i].replicas) {
      cold += run.metrics.cold_starts;
    }
    const auto& agg = results[i].aggregate;
    // aggregate() sums requests across replicas, like `cold` above.
    const double cold_rate =
        agg.requests > 0
            ? static_cast<double>(cold) / static_cast<double>(agg.requests)
            : 0.0;
    std::fprintf(
        out,
        "    {\"scheduler\": \"%s\", \"predictor\": \"%s\", "
        "\"attainment\": %.6f, \"cold_start_rate\": %.6f, "
        "\"total_cost\": %.6f, \"requests\": %zu, \"cold_starts\": %zu, "
        "\"mean_wait_ms\": %.3f}%s\n",
        std::string(exp::to_string(grid[i].scheduler)).c_str(),
        predictors[i % kPredictors].name, agg.slo_hit_rate, cold_rate,
        agg.total_cost, agg.requests, cold, agg.mean_job_wait_ms,
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path, grid.size());
  return 0;
}
