// Figure 10: distribution of ESG's scheduling overhead in the three
// settings (function group size 3). The paper reports box plots with all
// averages below 10 ms, growing as the SLO relaxes (less pruning).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 10: ESG scheduling-overhead distribution (group size 3)",
      "overhead < 10 ms on average; grows with more relaxed SLO settings");

  std::vector<exp::Scenario> grid;
  for (const auto& combo : exp::paper_combos()) {
    grid.push_back(bench::make_scenario(exp::SchedulerKind::kEsg, combo));
  }
  const auto results = bench::run_grid(grid);

  AsciiTable table({"setting", "min", "p25", "median", "p75", "p95", "max",
                    "mean", "wall-clock mean"});
  for (std::size_t c = 0; c < grid.size(); ++c) {
    std::vector<double> charged;
    RunningStats wall;
    for (const auto& run : results[c].replicas) {
      charged.insert(charged.end(), run.metrics.plan_overhead_ms.begin(),
                     run.metrics.plan_overhead_ms.end());
      for (double w : run.metrics.plan_wall_clock_ms) wall.add(w);
    }
    const Summary s = summarize(charged);
    table.add_row({exp::combo_name(exp::paper_combos()[c]),
                   AsciiTable::num(s.min, 2), AsciiTable::num(s.p25, 2),
                   AsciiTable::num(s.median, 2), AsciiTable::num(s.p75, 2),
                   AsciiTable::num(s.p95, 2), AsciiTable::num(s.max, 2),
                   AsciiTable::num(s.mean, 2), AsciiTable::num(wall.mean(), 3)});
  }
  std::printf("(charged overhead in ms, from the deterministic node-cost "
              "model; wall-clock measured)\n%s\n",
              table.render().c_str());
  return 0;
}
