// Elasticity frontier: cost vs SLO attainment under spot churn, per
// scheduler x churn intensity x fleet policy (DESIGN.md §11). The static
// fleet anchors the frontier; "fixed" replaces reclaimed nodes but never
// grows or shrinks; "elastic" rides the queue-depth policy; "elastic+shed"
// adds admission control so unattainable requests are refused up front
// instead of missing late. Spot reclamations require an elastic fleet, so
// the static policy only exists at zero churn.
//
// Besides the table, the binary writes a machine-readable JSON baseline
// (argv[1], default BENCH_elasticity.json) so later changes have a
// robustness trajectory to compare against.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "elastic/elastic_spec.hpp"
#include "fault/fault_spec.hpp"

namespace {

using namespace esg;

struct Churn {
  const char* name;
  std::string spec;  // parse_fault_spec grammar (spot: clauses only)
};

struct Policy {
  const char* name;
  std::string spec;  // parse_elastic_spec grammar; empty = static fleet
};

std::string fmt_spec(const char* pattern, double horizon_ms) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), pattern, horizon_ms);
  return buf;
}

struct Cell {
  std::size_t scheduler;
  std::size_t churn;
  std::size_t policy;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Elasticity: cost vs attainment under spot churn",
      "graceful degradation (drain + replacement + shedding) holds more of "
      "the SLO frontier than a static fleet once the cloud reclaims nodes");

  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal
  const TimeMs horizon = bench::horizon_ms();
  std::printf("setting: %s\n\n", exp::combo_name(combo).c_str());

  // Reclamations land mid-run (fractions of the horizon) so the drain and
  // the re-acquisition both fall inside the measured window.
  const Churn churns[] = {
      {"none", ""},
      {"burst", fmt_spec("spot:at=%.0f,nodes=4,warn=500", 0.4 * horizon)},
      {"repeat", fmt_spec("spot:at=%.0f,nodes=4,warn=250", 0.3 * horizon) +
                     ";" +
                     fmt_spec("spot:at=%.0f,nodes=4,warn=250", 0.6 * horizon)},
  };
  const Policy policies[] = {
      {"static", ""},
      {"fixed", "queue:min=16,max=16,idle-ms=0,out=2,provision-ms=1000"},
      {"elastic", "queue:min=4,max=16,out=2,idle-ms=5000,provision-ms=1000"},
      {"elastic+shed",
       "queue:min=4,max=16,out=2,idle-ms=5000,provision-ms=1000,shed=on"},
  };

  // Build the valid grid: spot churn needs an elastic fleet, so the static
  // policy is the zero-churn anchor only.
  std::vector<exp::Scenario> grid;
  std::vector<Cell> cells;
  const auto schedulers = exp::all_schedulers();
  for (std::size_t si = 0; si < schedulers.size(); ++si) {
    for (std::size_t ci = 0; ci < std::size(churns); ++ci) {
      for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
        if (pi == 0 && ci != 0) continue;
        exp::Scenario s = bench::make_scenario(schedulers[si], combo);
        s.elastic = elastic::parse_elastic_spec(policies[pi].spec);
        s.fault = fault::parse_fault_spec(churns[ci].spec);
        grid.push_back(s);
        cells.push_back({si, ci, pi});
      }
    }
  }
  const auto results = bench::run_grid(grid);

  AsciiTable table({"scheduler", "churn", "policy", "hit rate", "cost ($)",
                    "shed", "reclaims", "out/in", "mean wait (ms)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::size_t shed = 0, reclaims = 0, outs = 0, ins = 0;
    for (const auto& run : results[i].replicas) {
      shed += run.metrics.shed_requests;
      reclaims += run.metrics.spot_reclaims;
      outs += run.metrics.scale_outs;
      ins += run.metrics.scale_ins;
    }
    const auto& agg = results[i].aggregate;
    table.add_row({std::string(exp::to_string(grid[i].scheduler)),
                   churns[cells[i].churn].name, policies[cells[i].policy].name,
                   AsciiTable::pct(agg.slo_hit_rate),
                   AsciiTable::num(agg.total_cost, 4), std::to_string(shed),
                   std::to_string(reclaims),
                   std::to_string(outs) + "/" + std::to_string(ins),
                   AsciiTable::num(agg.mean_job_wait_ms, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Machine-readable baseline for trend tracking across PRs.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_elasticity.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_meta_json(out);
  std::fprintf(out,
               "  \"bench\": \"elasticity\",\n"
               "  \"setting\": \"%s\",\n"
               "  \"horizon_ms\": %.0f,\n  \"seeds\": %zu,\n  \"rows\": [\n",
               exp::combo_name(combo).c_str(), horizon,
               bench::seeds().size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::size_t shed = 0, reclaims = 0, outs = 0, ins = 0, retries = 0;
    for (const auto& run : results[i].replicas) {
      shed += run.metrics.shed_requests;
      reclaims += run.metrics.spot_reclaims;
      outs += run.metrics.scale_outs;
      ins += run.metrics.scale_ins;
      retries += run.metrics.retries;
    }
    const auto& agg = results[i].aggregate;
    std::fprintf(
        out,
        "    {\"scheduler\": \"%s\", \"churn\": \"%s\", \"policy\": \"%s\", "
        "\"hit_rate\": %.6f, \"total_cost\": %.6f, \"requests\": %zu, "
        "\"mean_wait_ms\": %.3f, \"shed\": %zu, \"spot_reclaims\": %zu, "
        "\"scale_outs\": %zu, \"scale_ins\": %zu, \"retries\": %zu}%s\n",
        std::string(exp::to_string(grid[i].scheduler)).c_str(),
        churns[cells[i].churn].name, policies[cells[i].policy].name,
        agg.slo_hit_rate, agg.total_cost, agg.requests, agg.mean_job_wait_ms,
        shed, reclaims, outs, ins, retries,
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path, grid.size());
  return 0;
}
