// Figure 11: sensitivity to K, the number of solutions kept in the
// configuration priority queue (strict-light; cost normalised to K=5).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/esg_1q.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 11: sensitivity to K (strict-light, cost normalised to K=5)",
      "K 1->80 raises mean search overhead ~3->8 ms; latency stays similar; "
      "cost decreases slightly");

  const exp::SettingCombo combo = exp::paper_combos()[0];
  const std::size_t ks[] = {1, 5, 20, 40, 80};

  // The paper's sensitivity study uses ~256 configurations per function; a
  // denser space than the default keeps the search large enough for K (which
  // weakens the cost blade of the pruning) to show in the overhead.
  profile::ConfigSpaceOptions dense;
  dense.batches = {1, 2, 3, 4, 6, 8, 12, 16};
  dense.vcpus = {1, 2, 4, 8};
  dense.vgpus = {1, 2, 3, 4, 5, 6, 7};

  std::vector<exp::Scenario> grid;
  for (const std::size_t k : ks) {
    exp::Scenario s = bench::make_scenario(exp::SchedulerKind::kEsg, combo);
    s.esg.k = k;
    s.config_space = dense;
    grid.push_back(s);
  }
  const auto results = bench::run_grid(grid);

  // Cost normalised to K = 5 (second row).
  const double k5_cost = results[1].aggregate.total_cost;

  AsciiTable table({"K", "mean overhead (ms)", "mean latency (ms)",
                    "cost (K=5 -> 1)", "hit rate"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    RunningStats overhead;
    RunningStats latency;
    for (const auto& run : results[i].replicas) {
      for (double o : run.metrics.plan_overhead_ms) overhead.add(o);
      for (const auto& rec : run.metrics.completions) latency.add(rec.latency_ms);
    }
    table.add_row({std::to_string(ks[i]), AsciiTable::num(overhead.mean(), 2),
                   AsciiTable::num(latency.mean(), 0),
                   AsciiTable::num(k5_cost > 0
                                       ? results[i].aggregate.total_cost / k5_cost
                                       : 0.0,
                                   3),
                   AsciiTable::pct(results[i].aggregate.slo_hit_rate)});
  }
  std::printf("%s\n", table.render().c_str());

  // Isolated search cost vs K: under the strict end-to-end setting the time
  // blade prunes so hard that K barely registers, so the paper's observed
  // overhead growth is reproduced on a relaxed target where the cost blade
  // (whose tightness K controls) does the work.
  const auto profiles = profile::ProfileSet::builtin(dense);
  const auto apps = workload::builtin_applications();
  std::vector<core::StageInput> stages;
  TimeMs base = 0.0;
  for (const auto& node : apps[3].nodes()) {  // first 3 stages of the 5-stage app
    if (stages.size() == 3) break;
    const auto& tbl = profiles.table(node.function);
    stages.push_back(core::StageInput{&tbl, 0});
    base += tbl.min_config_entry().latency_ms;
  }
  const core::OverheadModel model;
  AsciiTable search_table({"K", "nodes expanded", "cost-pruned", "configPQ",
                           "modeled overhead (ms)"});
  for (const std::size_t k : ks) {
    core::SearchOptions opts;
    opts.k = k;
    const auto result = core::esg_1q(stages, 1.1 * base, opts);
    search_table.add_row(
        {std::to_string(k), std::to_string(result.stats.nodes_expanded),
         std::to_string(result.stats.pruned_cost),
         std::to_string(result.config_pq.size()),
         AsciiTable::num(model.overhead_ms(result.stats.nodes_expanded), 2)});
  }
  std::printf("--- isolated ESG_1Q cost vs K (group of 3, 1.1x base target) ---\n%s",
              search_table.render().c_str());
  std::printf("(deviation from the paper: with these profiles the time blade "
              "dominates, so K's\n effect on the examined-node count — and "
              "thus the overhead — is negligible.)\n");
  return 0;
}
