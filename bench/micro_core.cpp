// google-benchmark microbenchmarks of the scheduling core: ESG_1Q at several
// group sizes and K values, dominator-tree construction, SLO distribution,
// placement, profile lookup, and raw simulator event throughput.
#include <benchmark/benchmark.h>

#include "core/dominator.hpp"
#include "core/esg_1q.hpp"
#include "core/slo_distribution.hpp"
#include "platform/scheduler.hpp"
#include "profile/function_spec.hpp"
#include "sim/simulator.hpp"
#include "workload/applications.hpp"

namespace {

using namespace esg;

const profile::ProfileSet& profiles() {
  static const profile::ProfileSet set = profile::ProfileSet::builtin();
  return set;
}

const std::vector<workload::AppDag>& apps() {
  static const std::vector<workload::AppDag> a = workload::builtin_applications();
  return a;
}

std::vector<core::StageInput> stages_of(std::size_t group) {
  static const profile::Function fns[] = {
      profile::Function::kDeblur, profile::Function::kSuperResolution,
      profile::Function::kBackgroundRemoval, profile::Function::kSegmentation};
  std::vector<core::StageInput> stages;
  for (std::size_t i = 0; i < group; ++i) {
    stages.push_back(core::StageInput{&profiles().table(profile::id_of(fns[i])), 0});
  }
  return stages;
}

void BM_Esg1q(benchmark::State& state) {
  const auto stages = stages_of(static_cast<std::size_t>(state.range(0)));
  core::SearchOptions opts;
  opts.k = static_cast<std::size_t>(state.range(1));
  TimeMs base = 0.0;
  for (const auto& s : stages) base += s.table->min_config_entry().latency_ms;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto result = core::esg_1q(stages, 1.1 * base, opts);
    nodes += result.stats.nodes_expanded;
    benchmark::DoNotOptimize(result.config_pq.data());
  }
  state.counters["nodes/iter"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Esg1q)
    ->Args({1, 5})
    ->Args({2, 5})
    ->Args({3, 1})
    ->Args({3, 5})
    ->Args({3, 80})
    ->Unit(benchmark::kMicrosecond);

void BM_DominatorTree(benchmark::State& state) {
  const auto& app = apps()[3];  // 5-stage pipeline
  for (auto _ : state) {
    core::DominatorTree dom(app);
    benchmark::DoNotOptimize(dom.idom(app.size() - 1));
  }
}
BENCHMARK(BM_DominatorTree)->Unit(benchmark::kMicrosecond);

void BM_SloDistribution(benchmark::State& state) {
  const auto& app = apps()[3];
  for (auto _ : state) {
    core::SloDistribution dist(app, profiles(), 3);
    benchmark::DoNotOptimize(dist.groups().data());
  }
}
BENCHMARK(BM_SloDistribution)->Unit(benchmark::kMicrosecond);

void BM_LocalityPlacement(benchmark::State& state) {
  cluster::Cluster cluster(16);
  platform::PlacementContext ctx;
  ctx.function = FunctionId(0);
  ctx.config = profile::Config{4, 2, 2};
  ctx.home_invoker = InvokerId(5);
  for (auto _ : state) {
    auto chosen = platform::locality_first_place(ctx, cluster);
    benchmark::DoNotOptimize(chosen);
  }
}
BENCHMARK(BM_LocalityPlacement);

void BM_ProfileLookup(benchmark::State& state) {
  const auto& table = profiles().table(FunctionId(0));
  const profile::Config c{4, 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(&table.at(c));
  }
}
BENCHMARK(BM_ProfileLookup);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(static_cast<double>(i % 17), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMicrosecond);

}  // namespace
