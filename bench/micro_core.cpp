// google-benchmark microbenchmarks of the scheduling core: ESG_1Q at several
// group sizes and K values, dominator-tree construction, SLO distribution,
// placement, profile lookup, and raw simulator event throughput.
//
// The custom main also writes the rows as a BENCH_*.json-shaped baseline
// (argv[1] after benchmark flags, default BENCH_micro_core.json) so
// esg_perfdiff can compare microbench runs the same way it compares the
// macro baselines.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/dominator.hpp"
#include "core/esg_1q.hpp"
#include "core/slo_distribution.hpp"
#include "platform/scheduler.hpp"
#include "profile/function_spec.hpp"
#include "sim/simulator.hpp"
#include "workload/applications.hpp"

namespace {

using namespace esg;

const profile::ProfileSet& profiles() {
  static const profile::ProfileSet set = profile::ProfileSet::builtin();
  return set;
}

const std::vector<workload::AppDag>& apps() {
  static const std::vector<workload::AppDag> a = workload::builtin_applications();
  return a;
}

std::vector<core::StageInput> stages_of(std::size_t group) {
  static const profile::Function fns[] = {
      profile::Function::kDeblur, profile::Function::kSuperResolution,
      profile::Function::kBackgroundRemoval, profile::Function::kSegmentation};
  std::vector<core::StageInput> stages;
  for (std::size_t i = 0; i < group; ++i) {
    stages.push_back(core::StageInput{&profiles().table(profile::id_of(fns[i])), 0});
  }
  return stages;
}

void BM_Esg1q(benchmark::State& state) {
  const auto stages = stages_of(static_cast<std::size_t>(state.range(0)));
  core::SearchOptions opts;
  opts.k = static_cast<std::size_t>(state.range(1));
  TimeMs base = 0.0;
  for (const auto& s : stages) base += s.table->min_config_entry().latency_ms;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto result = core::esg_1q(stages, 1.1 * base, opts);
    nodes += result.stats.nodes_expanded;
    benchmark::DoNotOptimize(result.config_pq.data());
  }
  state.counters["nodes/iter"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Esg1q)
    ->Args({1, 5})
    ->Args({2, 5})
    ->Args({3, 1})
    ->Args({3, 5})
    ->Args({3, 80})
    ->Unit(benchmark::kMicrosecond);

void BM_DominatorTree(benchmark::State& state) {
  const auto& app = apps()[3];  // 5-stage pipeline
  for (auto _ : state) {
    core::DominatorTree dom(app);
    benchmark::DoNotOptimize(dom.idom(app.size() - 1));
  }
}
BENCHMARK(BM_DominatorTree)->Unit(benchmark::kMicrosecond);

void BM_SloDistribution(benchmark::State& state) {
  const auto& app = apps()[3];
  for (auto _ : state) {
    core::SloDistribution dist(app, profiles(), 3);
    benchmark::DoNotOptimize(dist.groups().data());
  }
}
BENCHMARK(BM_SloDistribution)->Unit(benchmark::kMicrosecond);

void BM_LocalityPlacement(benchmark::State& state) {
  cluster::Cluster cluster(16);
  platform::PlacementContext ctx;
  ctx.function = FunctionId(0);
  ctx.config = profile::Config{4, 2, 2};
  ctx.home_invoker = InvokerId(5);
  for (auto _ : state) {
    auto chosen = platform::locality_first_place(ctx, cluster);
    benchmark::DoNotOptimize(chosen);
  }
}
BENCHMARK(BM_LocalityPlacement);

void BM_ProfileLookup(benchmark::State& state) {
  const auto& table = profiles().table(FunctionId(0));
  const profile::Config c{4, 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(&table.at(c));
  }
}
BENCHMARK(BM_ProfileLookup);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(static_cast<double>(i % 17), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMicrosecond);

/// Console reporter that additionally collects per-benchmark rows for the
/// JSON baseline. Aggregate and errored runs are skipped; times are
/// normalised to ns/iteration so the JSON is unit-stable regardless of each
/// benchmark's display unit.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns_per_iter = 0.0;
    double cpu_ns_per_iter = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.real_ns_per_iter = run.real_accumulated_time * 1e9 / iters;
      row.cpu_ns_per_iter = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

std::string json_counter_name(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (c == '"' || c == '\\') ? '_' : c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::string out_path = "BENCH_micro_core.json";
  if (argc > 1 && argv[1][0] != '-') {
    out_path = argv[1];
    --argc;
    for (int i = 1; i < argc; ++i) argv[i] = argv[i + 1];
  }
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (reporter.rows.empty()) return 0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  esg::bench::write_meta_json(out);
  std::fprintf(out, "  \"bench\": \"micro_core\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
    const auto& row = reporter.rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"real_ns_per_iter\": %.1f, \"cpu_ns_per_iter\": %.1f",
                 json_counter_name(row.name).c_str(),
                 static_cast<long long>(row.iterations), row.real_ns_per_iter,
                 row.cpu_ns_per_iter);
    for (const auto& [name, value] : row.counters) {
      std::fprintf(out, ", \"%s\": %.4f", json_counter_name(name).c_str(),
                   value);
    }
    std::fprintf(out, "}%s\n", i + 1 < reporter.rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), reporter.rows.size());
  return 0;
}
