// Resilience sweep: SLO attainment degradation under increasing fault
// intensity, for each scheduler. Faults (transient dispatch failures,
// cold-start failures, invoker crashes, GPU-slice stragglers) are injected
// deterministically from a --fault-spec-style string; the controller's
// recovery policy (timeout -> capped-backoff retry on a different invoker,
// orphaned-resource release, ESG re-plan) decides how much attainment
// survives. A traced ESG re-run at each non-zero intensity attributes the
// misses (fault@stageK / retry_exhausted@stageK vs the ordinary causes).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fault/fault_spec.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"

namespace {

struct Intensity {
  const char* name;
  const char* spec;  // parse_fault_spec grammar; invoker ids < 16
};

// Cold-start probabilities stay well below 1: a provision that can never
// succeed would leave forced dispatches waiting for a warm container forever.
constexpr Intensity kIntensities[] = {
    {"none", ""},
    {"low", "dispatch:prob=0.01;coldstart:prob=0.05"},
    {"medium",
     "dispatch:prob=0.05;coldstart:prob=0.15;"
     "slow:invoker=3,at=1000,for=4000,factor=3"},
    {"high",
     "dispatch:prob=0.12;coldstart:prob=0.3;"
     "crash:invoker=1,at=2000,down=2000;crash:invoker=5,at=4000,down=1500;"
     "slow:invoker=2,at=500,for=5000,factor=4"},
};

}  // namespace

int main() {
  using namespace esg;
  bench::print_banner(
      "Resilience: SLO attainment vs fault intensity",
      "ESG's re-planned budgets and retry-aware margins degrade more "
      "gracefully than the static baselines as faults intensify");

  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal
  std::printf("setting: %s\n\n", exp::combo_name(combo).c_str());

  // One grid row per scheduler x intensity (seeds aggregated by run_grid).
  std::vector<exp::Scenario> grid;
  for (const auto kind : exp::all_schedulers()) {
    for (const Intensity& level : kIntensities) {
      exp::Scenario s = bench::make_scenario(kind, combo);
      s.fault = fault::parse_fault_spec(level.spec);
      grid.push_back(s);
    }
  }
  const auto results = bench::run_grid(grid);

  constexpr std::size_t kLevels = std::size(kIntensities);
  AsciiTable table({"scheduler", "intensity", "hit rate", "degradation",
                    "cost ($)", "retries", "aborted", "mean wait (ms)"});
  for (std::size_t si = 0; si < exp::all_schedulers().size(); ++si) {
    const double baseline_hit = results[si * kLevels].aggregate.slo_hit_rate;
    for (std::size_t li = 0; li < kLevels; ++li) {
      const auto& result = results[si * kLevels + li];
      std::size_t retries = 0, aborted = 0;
      for (const auto& run : result.replicas) {
        retries += run.metrics.retries;
        aborted += run.metrics.retries_exhausted;
      }
      const auto& agg = result.aggregate;
      table.add_row(
          {std::string(exp::to_string(grid[si * kLevels].scheduler)),
           kIntensities[li].name, AsciiTable::pct(agg.slo_hit_rate),
           li == 0 ? std::string("-")
                   : AsciiTable::pct(agg.slo_hit_rate - baseline_hit),
           AsciiTable::num(agg.total_cost, 4), std::to_string(retries),
           std::to_string(aborted), AsciiTable::num(agg.mean_job_wait_ms, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Miss-cause attribution: traced ESG run per non-zero intensity on the
  // first seed. fault@stageK / retry_exhausted@stageK only appear here.
  for (std::size_t li = 1; li < kLevels; ++li) {
    obs::TraceRecorder recorder;
    auto sink = std::make_unique<obs::analysis::AnalysisSink>();
    const auto* analysis = sink.get();
    recorder.add_sink(std::move(sink));
    exp::Scenario traced = bench::make_scenario(exp::SchedulerKind::kEsg, combo);
    traced.fault = fault::parse_fault_spec(kIntensities[li].spec);
    traced.seed = bench::seeds().front();
    (void)exp::run_scenario(traced, &recorder);
    const auto report = obs::analysis::build_report(analysis->dataset());

    std::string breakdown;
    for (const auto& [cause, count] : report.miss_causes) {
      if (!breakdown.empty()) breakdown += ", ";
      breakdown += cause + " x" + std::to_string(count);
    }
    if (breakdown.empty()) breakdown = "-";
    std::printf("ESG @ %s: %zu requests, %zu misses — %s\n",
                kIntensities[li].name, report.requests, report.misses,
                breakdown.c_str());
  }
  return 0;
}
