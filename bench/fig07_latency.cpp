// Figure 7: end-to-end latency of each application in the relaxed-heavy
// setting, per scheduler. The paper plots time series; the shape statement
// is that ESG stays below-but-close-to the SLO while FaST-GShare/INFless
// overshoot on the long pipeline and Orion/BO are erratic.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 7: per-application end-to-end latency, relaxed-heavy",
      "ESG runs below but close to the SLO; FaST-GShare and INFless yield "
      "the largest latency on expanded_image_classification");

  const exp::SettingCombo combo = exp::paper_combos()[2];  // relaxed-heavy
  std::vector<exp::Scenario> grid;
  for (const auto kind : exp::all_schedulers()) {
    grid.push_back(bench::make_scenario(kind, combo));
  }
  const auto results = bench::run_grid(grid);

  const auto apps = workload::builtin_applications();
  const auto profiles = profile::ProfileSet::builtin();
  for (const auto& app : apps) {
    const TimeMs slo =
        workload::slo_latency_ms(app, profiles, combo.slo);
    AsciiTable table({"scheduler", "mean (ms)", "p50 (ms)", "p95 (ms)",
                      "max (ms)", "SLO (ms)", "hit rate"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::vector<double> lat;
      double hits = 0.0;
      double n = 0.0;
      for (const auto& run : results[i].replicas) {
        for (const auto& rec : run.metrics.completions) {
          if (rec.app != app.id()) continue;
          lat.push_back(rec.latency_ms);
          hits += rec.hit ? 1.0 : 0.0;
          n += 1.0;
        }
      }
      const Summary s = summarize(lat);
      table.add_row({std::string(exp::to_string(grid[i].scheduler)),
                     AsciiTable::num(s.mean, 0), AsciiTable::num(s.median, 0),
                     AsciiTable::num(s.p95, 0), AsciiTable::num(s.max, 0),
                     AsciiTable::num(slo, 0),
                     AsciiTable::pct(n > 0 ? hits / n : 0.0)});
    }
    std::printf("--- %s ---\n%s\n", app.name().c_str(), table.render().c_str());
  }
  return 0;
}
