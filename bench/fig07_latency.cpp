// Figure 7: end-to-end latency of each application in the relaxed-heavy
// setting, per scheduler. The paper plots time series; the shape statement
// is that ESG stays below-but-close-to the SLO while FaST-GShare/INFless
// overshoot on the long pipeline and Orion/BO are erratic.
//
// Set ESG_BENCH_TRACE=<path> to additionally re-run the seed holding the
// worst-latency ESG request and dump that request's timeline (queue waits,
// stages, end-to-end span) as Perfetto-loadable Chrome-trace JSON.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "workload/applications.hpp"

namespace {

/// Finds the worst-latency ESG request across replicas, re-runs its seed
/// with an in-memory recorder, and writes just that request's track.
void dump_worst_request_trace(const char* path,
                              std::span<const esg::exp::Scenario> grid,
                              std::span<const esg::bench::GridResult> results) {
  using namespace esg;
  std::size_t esg_idx = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].scheduler == exp::SchedulerKind::kEsg) esg_idx = i;
  }
  const auto seeds = bench::seeds();
  RequestId worst{};
  double worst_latency = -1.0;
  std::size_t worst_replica = 0;
  for (std::size_t r = 0; r < results[esg_idx].replicas.size(); ++r) {
    for (const auto& rec : results[esg_idx].replicas[r].metrics.completions) {
      if (rec.latency_ms > worst_latency) {
        worst_latency = rec.latency_ms;
        worst = rec.request;
        worst_replica = r;
      }
    }
  }
  if (worst_latency < 0.0) {
    std::fprintf(stderr, "ESG_BENCH_TRACE: no completed requests to trace\n");
    return;
  }

  exp::Scenario scenario = grid[esg_idx];
  scenario.seed = seeds[worst_replica];
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::MemorySink>();
  const obs::MemorySink* mem = sink.get();
  recorder.add_sink(std::move(sink));
  (void)exp::run_scenario(scenario, &recorder);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ESG_BENCH_TRACE: cannot open %s\n", path);
    return;
  }
  obs::ChromeTraceSink trace(out);
  trace.on_process_name(obs::kRequestsPid, "requests");
  const obs::Track track = obs::request_track(worst);
  trace.on_thread_name(track, "worst ESG request");
  for (const auto& span : mem->spans()) {
    if (span.track == track) trace.on_span(span);
  }
  for (const auto& instant : mem->instants()) {
    if (instant.track == track) trace.on_instant(instant);
  }
  trace.flush();
  std::printf("worst ESG request %u (%.0f ms, seed %llu) traced to %s\n",
              worst.get(), worst_latency,
              static_cast<unsigned long long>(scenario.seed), path);
}

}  // namespace

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 7: per-application end-to-end latency, relaxed-heavy",
      "ESG runs below but close to the SLO; FaST-GShare and INFless yield "
      "the largest latency on expanded_image_classification");

  const exp::SettingCombo combo = exp::paper_combos()[2];  // relaxed-heavy
  std::vector<exp::Scenario> grid;
  for (const auto kind : exp::all_schedulers()) {
    grid.push_back(bench::make_scenario(kind, combo));
  }
  const auto results = bench::run_grid(grid);

  const auto apps = workload::builtin_applications();
  const auto profiles = profile::ProfileSet::builtin();
  for (const auto& app : apps) {
    const TimeMs slo =
        workload::slo_latency_ms(app, profiles, combo.slo);
    AsciiTable table({"scheduler", "mean (ms)", "p50 (ms)", "p95 (ms)",
                      "max (ms)", "SLO (ms)", "hit rate"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::vector<double> lat;
      double hits = 0.0;
      double n = 0.0;
      for (const auto& run : results[i].replicas) {
        for (const auto& rec : run.metrics.completions) {
          if (rec.app != app.id()) continue;
          lat.push_back(rec.latency_ms);
          hits += rec.hit ? 1.0 : 0.0;
          n += 1.0;
        }
      }
      const Summary s = summarize(lat);
      table.add_row({std::string(exp::to_string(grid[i].scheduler)),
                     AsciiTable::num(s.mean, 0), AsciiTable::num(s.median, 0),
                     AsciiTable::num(s.p95, 0), AsciiTable::num(s.max, 0),
                     AsciiTable::num(slo, 0),
                     AsciiTable::pct(n > 0 ? hits / n : 0.0)});
    }
    std::printf("--- %s ---\n%s\n", app.name().c_str(), table.render().c_str());
  }

  if (const char* trace_path = std::getenv("ESG_BENCH_TRACE");
      trace_path != nullptr && *trace_path != '\0') {
    dump_worst_request_trace(trace_path, grid, results);
  }
  return 0;
}
