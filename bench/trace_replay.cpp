// Trace-replay sweep: every scheduler driven by the same Azure-shaped
// production trace (diurnal sinusoid + Zipf app popularity + burst
// episodes) at increasing rate-scale, instead of the paper's stationary
// uniform ranges. The trace is regenerated in-process (deterministic seed),
// so the bench needs no input file. A traced ESG re-run at the highest
// scale attributes the misses with the standard miss-cause breakdown.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"
#include "trace/azure_shape.hpp"
#include "workload/applications.hpp"

namespace {

constexpr double kRateScales[] = {0.5, 1.0, 2.0};

}  // namespace

int main() {
  using namespace esg;
  bench::print_banner(
      "Trace replay: schedulers under an Azure-shaped production trace",
      "ESG's per-stage re-planning holds attainment through the diurnal "
      "peaks and burst episodes that the stationary settings average away");

  const exp::SettingCombo combo = exp::paper_combos()[1];  // moderate-normal

  // One diurnal cycle + bursts across the bench horizon; mean rate matches
  // the paper's "normal" setting (one arrival per ~26.8 ms).
  trace::AzureShapeOptions shape;
  shape.apps = workload::kBuiltinAppCount;
  shape.bin_ms = 500.0;
  shape.bins = static_cast<std::size_t>(bench::horizon_ms() / shape.bin_ms);
  shape.mean_rate_per_bin = shape.bin_ms / 26.8;
  const auto workload_trace = std::make_shared<const trace::WorkloadTrace>(
      trace::generate_azure_shaped(
          shape, RngFactory(7).stream("azure-shape")));
  std::printf("trace: %zu bins x %.0f ms, %.0f invocations, setting %s\n\n",
              workload_trace->bin_count(), workload_trace->bin_ms,
              workload_trace->total_count(), exp::combo_name(combo).c_str());

  std::vector<exp::Scenario> grid;
  for (const auto kind : exp::all_schedulers()) {
    for (const double rate_scale : kRateScales) {
      exp::Scenario s = bench::make_scenario(kind, combo);
      s.arrivals.mode = exp::ArrivalMode::kTrace;
      s.arrivals.trace = workload_trace;
      s.arrivals.replay.rate_scale = rate_scale;
      grid.push_back(s);
    }
  }
  const auto results = bench::run_grid(grid);

  constexpr std::size_t kScales = std::size(kRateScales);
  AsciiTable table({"scheduler", "rate-scale", "requests", "hit rate",
                    "cost ($)", "mean wait (ms)"});
  for (std::size_t si = 0; si < exp::all_schedulers().size(); ++si) {
    for (std::size_t ri = 0; ri < kScales; ++ri) {
      const auto& result = results[si * kScales + ri];
      table.add_row(
          {std::string(exp::to_string(grid[si * kScales].scheduler)),
           AsciiTable::num(kRateScales[ri], 1),
           std::to_string(result.aggregate.requests),
           AsciiTable::pct(result.aggregate.slo_hit_rate),
           AsciiTable::num(result.aggregate.total_cost, 4),
           AsciiTable::num(result.aggregate.mean_job_wait_ms, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Miss-cause attribution for ESG at the highest rate-scale (first seed).
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::analysis::AnalysisSink>();
  const auto* analysis = sink.get();
  recorder.add_sink(std::move(sink));
  exp::Scenario traced = bench::make_scenario(exp::SchedulerKind::kEsg, combo);
  traced.arrivals.mode = exp::ArrivalMode::kTrace;
  traced.arrivals.trace = workload_trace;
  traced.arrivals.replay.rate_scale = kRateScales[kScales - 1];
  traced.seed = bench::seeds().front();
  (void)exp::run_scenario(traced, &recorder);
  const auto report = obs::analysis::build_report(analysis->dataset());

  std::string breakdown;
  for (const auto& [cause, count] : report.miss_causes) {
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += cause + " x" + std::to_string(count);
  }
  if (breakdown.empty()) breakdown = "-";
  std::printf("ESG @ rate-scale %.1f: %zu requests, %zu misses — %s\n",
              kRateScales[kScales - 1], report.requests, report.misses,
              breakdown.c_str());
  return 0;
}
