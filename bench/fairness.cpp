// Multi-tenant fairness: a steady tenant sharing the cluster with a bursty
// neighbor, per scheduler variant x weight split (DESIGN.md §12). The
// isolation metric is steady-tenant p99 *inflation*: its p99 latency with
// the bursty neighbor divided by its p99 with a calm neighbor of the same
// mean rate (same total load, only the arrival shape differs — comparing
// against a solo run instead would confound contention with load-dependent
// batching behavior). No-tenant ESG anchors the undefended end (one shared
// queue per stage, the burst walks right over the steady tenant); weighted
// per-tenant queues (ESG+shares) and MQFQ-Sticky (virtual-time dispatch +
// throttle + sticky placement) should hold the inflation down, more so as
// the steady tenant's weight grows.
//
// Besides the table, the binary writes a machine-readable JSON baseline
// (argv[1], default BENCH_fairness.json) so later changes have an isolation
// trajectory to compare against.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "tenant/tenant_spec.hpp"
#include "trace/workload_trace.hpp"

namespace {

using namespace esg;

// Steady tenant (0) owns apps 0+1, bursty tenant (1) owns apps 2+3 — the
// builtin workload's four DAGs, split disjointly so per-app latencies
// identify the tenant even on the no-tenant anchor run.
constexpr std::uint32_t kSteadyApps[] = {0, 1};
constexpr std::uint32_t kBurstyApps[] = {2, 3};
constexpr double kBinMs = 1000.0;
constexpr double kSteadyPerAppPerBin = 2.0;  // 4 req/s sustained
// The neighbor sends the same mean rate either way: 30/app/bin for 1 bin
// out of every 10 (bursty), or a flat 3/app/bin (calm anchor).
constexpr double kBurstPerAppPerBin = 30.0;  // 60 req/s during bursts
constexpr double kNeighborMeanPerAppPerBin = 3.0;
constexpr std::size_t kBurstPeriodBins = 10;
constexpr std::size_t kBurstLenBins = 1;

/// Trace with steady rows every bin and neighbor rows either spiking for
/// kBurstLenBins out of every kBurstPeriodBins (`bursty_neighbor`) or flat
/// at the same mean rate (the calm anchor). `tenanted` controls whether the
/// trace carries a tenant column: without one the run takes the exact
/// legacy single-tenant path (no fair queue, one shared queue per stage) —
/// that is the undefended anchor; with one, resolve_for_trace activates
/// per-tenant queues even without an explicit --tenants spec.
trace::WorkloadTrace make_trace(TimeMs horizon_ms, bool bursty_neighbor,
                                bool tenanted) {
  trace::WorkloadTrace t;
  t.bin_ms = kBinMs;
  t.app_count = 4;
  t.tenant_count = tenanted ? 2 : 1;
  const auto bins = static_cast<std::size_t>(horizon_ms / kBinMs);
  for (std::size_t b = 0; b < bins; ++b) {
    for (const std::uint32_t app : kSteadyApps) {
      t.rows.push_back({b, app, kSteadyPerAppPerBin, 0});
    }
    const bool bursting =
        !bursty_neighbor || b % kBurstPeriodBins < kBurstLenBins;
    const double rate =
        bursty_neighbor ? kBurstPerAppPerBin : kNeighborMeanPerAppPerBin;
    if (!bursting) continue;
    for (const std::uint32_t app : kBurstyApps) {
      t.rows.push_back({b, app, rate, tenanted ? 1u : 0u});
    }
  }
  return t;
}

exp::Scenario make_scenario(const std::shared_ptr<const trace::WorkloadTrace>& t,
                            exp::SchedulerKind kind, const std::string& spec) {
  exp::Scenario s;
  s.scheduler = kind;
  s.slo = workload::SloSetting::kModerate;
  s.arrivals.mode = exp::ArrivalMode::kTrace;
  s.arrivals.trace = t;
  s.horizon_ms = bench::horizon_ms();
  s.warmup_ms = 0.2 * s.horizon_ms;
  // A small fleet keeps the bursts from being absorbed by spare capacity —
  // contention for GPU slots is the whole point of the bench.
  s.nodes = 6;
  if (!spec.empty()) s.tenants = tenant::parse_tenant_spec(spec);
  return s;
}

struct TenantStats {
  std::size_t requests = 0;
  double hit_rate = 0.0;
  double p99_ms = 0.0;
};

/// Rolls up the apps belonging to one tenant across every replica. Shed
/// requests count toward attainment but not the latency quantile.
TenantStats roll_up(const std::vector<exp::RunOutput>& replicas,
                    std::span<const std::uint32_t> apps) {
  TenantStats stats;
  std::size_t hits = 0;
  std::vector<double> latencies;
  for (const auto& run : replicas) {
    for (const auto& c : run.metrics.completions) {
      if (std::find(apps.begin(), apps.end(), c.app.get()) == apps.end()) {
        continue;
      }
      ++stats.requests;
      if (c.hit) ++hits;
      if (!c.shed) latencies.push_back(c.latency_ms);
    }
  }
  if (stats.requests > 0) {
    stats.hit_rate =
        static_cast<double>(hits) / static_cast<double>(stats.requests);
  }
  stats.p99_ms = percentile(std::move(latencies), 0.99);
  return stats;
}

struct Variant {
  const char* name;
  exp::SchedulerKind kind;
  double steady_weight;  // 0 = no tenant spec (the undefended anchor)
};

std::string spec_for(double steady_weight) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "steady:%g:apps=0,1;bursty:1:apps=2,3;throttle=50",
                steady_weight);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Fairness: steady tenant vs bursty neighbor",
      "per-tenant fair queueing (weighted shares, MQFQ-Sticky) bounds the "
      "steady tenant's p99 inflation where a shared queue lets the burst "
      "starve it");

  // Three arrival shapes: the contended trace twice (with and without a
  // tenant column — the latter is the undefended shared-queue anchor) and
  // the calm-neighbor baseline the inflation ratio divides by.
  const auto shared = std::make_shared<const trace::WorkloadTrace>(
      make_trace(bench::horizon_ms(), true, true));
  const auto shared_untenanted = std::make_shared<const trace::WorkloadTrace>(
      make_trace(bench::horizon_ms(), true, false));
  const auto calm = std::make_shared<const trace::WorkloadTrace>(
      make_trace(bench::horizon_ms(), false, false));

  const Variant variants[] = {
      {"esg-no-tenants", exp::SchedulerKind::kEsg, 0.0},
      {"esg+shares-1:1", exp::SchedulerKind::kEsg, 1.0},
      {"esg+shares-3:1", exp::SchedulerKind::kEsg, 3.0},
      {"mqfq-sticky-1:1", exp::SchedulerKind::kMqfqSticky, 1.0},
      {"mqfq-sticky-3:1", exp::SchedulerKind::kMqfqSticky, 3.0},
  };

  // The calm-neighbor anchor first, then every contended variant.
  std::vector<exp::Scenario> grid;
  grid.push_back(make_scenario(calm, exp::SchedulerKind::kEsg, ""));
  for (const Variant& v : variants) {
    const bool undefended = v.steady_weight <= 0.0;
    grid.push_back(make_scenario(undefended ? shared_untenanted : shared,
                                 v.kind,
                                 undefended ? "" : spec_for(v.steady_weight)));
  }
  const auto results = bench::run_grid(grid);

  const TenantStats steady_solo = roll_up(results[0].replicas, kSteadyApps);
  std::printf("steady tenant, calm neighbor (same mean rate): %zu requests, "
              "hit rate %.1f%%, p99 %.1f ms\n\n",
              steady_solo.requests, 100.0 * steady_solo.hit_rate,
              steady_solo.p99_ms);

  AsciiTable table({"variant", "steady hit", "steady p99 (ms)", "inflation",
                    "bursty hit", "bursty p99 (ms)"});
  std::vector<TenantStats> steady_rows, bursty_rows;
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const auto& replicas = results[i + 1].replicas;
    const TenantStats steady = roll_up(replicas, kSteadyApps);
    const TenantStats bursty = roll_up(replicas, kBurstyApps);
    const double inflation =
        steady_solo.p99_ms > 0.0 ? steady.p99_ms / steady_solo.p99_ms : 0.0;
    table.add_row({variants[i].name, AsciiTable::pct(steady.hit_rate),
                   AsciiTable::num(steady.p99_ms, 1),
                   AsciiTable::num(inflation, 2) + "x",
                   AsciiTable::pct(bursty.hit_rate),
                   AsciiTable::num(bursty.p99_ms, 1)});
    steady_rows.push_back(steady);
    bursty_rows.push_back(bursty);
  }
  std::printf("%s\n", table.render().c_str());

  // Machine-readable baseline for trend tracking across PRs.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fairness.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_meta_json(out);
  std::fprintf(out,
               "  \"bench\": \"fairness\",\n"
               "  \"horizon_ms\": %.0f,\n  \"seeds\": %zu,\n"
               "  \"steady_calm_anchor_p99_ms\": %.3f,\n  \"rows\": [\n",
               bench::horizon_ms(), bench::seeds().size(), steady_solo.p99_ms);
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const double inflation = steady_solo.p99_ms > 0.0
                                 ? steady_rows[i].p99_ms / steady_solo.p99_ms
                                 : 0.0;
    std::fprintf(
        out,
        "    {\"variant\": \"%s\", \"steady_weight\": %g, "
        "\"steady_requests\": %zu, \"steady_hit_rate\": %.6f, "
        "\"steady_p99_ms\": %.3f, \"inflation\": %.4f, "
        "\"bursty_requests\": %zu, \"bursty_hit_rate\": %.6f, "
        "\"bursty_p99_ms\": %.3f}%s\n",
        variants[i].name, variants[i].steady_weight, steady_rows[i].requests,
        steady_rows[i].hit_rate, steady_rows[i].p99_ms, inflation,
        bursty_rows[i].requests, bursty_rows[i].hit_rate,
        bursty_rows[i].p99_ms, i + 1 < std::size(variants) ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu rows)\n", out_path, std::size(variants));
  return 0;
}
