// Sections 5.3/5.4: search time vs function-group size, with 256
// configurations per function. The paper reports <10 ms for group size 3,
// a jump to ~1201 ms at group size 4, and 7258 ms for a brute force over
// 256^3 paths. We measure wall-clock of the real searches and print the
// deterministic overhead model's estimate alongside.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/brute_force.hpp"
#include "core/esg_1q.hpp"
#include "profile/function_spec.hpp"

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace esg;
  bench::print_banner(
      "Sections 5.3/5.4: search cost vs group size (256 configs/function)",
      "dual-blade pruned search stays in the ms range for group size <= 3; "
      "group size 4 jumps (~1201 ms modeled in the paper); brute force over "
      "256^3 costs 7258 ms");

  // A ~256-configuration space per function (8 batches x 4 vCPUs x 7 vGPU
  // levels = 224, enumerated WITHOUT the dominated-config filter so the
  // count matches the paper's "256 configurations" as closely as the
  // resource model allows).
  profile::ProfileSet profiles;
  {
    const std::uint16_t batches[] = {1, 2, 3, 4, 6, 8, 12, 16};
    const std::uint16_t vcpus[] = {1, 2, 4, 8};
    for (const auto& spec : profile::builtin_specs()) {
      std::vector<profile::Config> configs;
      for (std::uint16_t b : batches) {
        if (b > spec.max_batch) continue;
        for (std::uint16_t c : vcpus) {
          for (std::uint16_t g = 1; g <= 7; ++g) {
            configs.push_back(profile::Config{b, c, g});
          }
        }
      }
      profiles.add(profile::ProfileTable(spec, configs, profile::PriceModel{}));
    }
  }

  // The expanded pipeline's first four functions, as a worst-case group.
  const profile::Function fns[] = {
      profile::Function::kDeblur, profile::Function::kSuperResolution,
      profile::Function::kBackgroundRemoval, profile::Function::kSegmentation};

  AsciiTable table({"group size", "configs/function", "nodes expanded",
                    "measured search (ms)", "modeled overhead (ms)"});
  const core::OverheadModel model;

  for (std::size_t group = 1; group <= 4; ++group) {
    std::vector<core::StageInput> stages;
    TimeMs base = 0.0;
    std::size_t cfg_count = 0;
    for (std::size_t i = 0; i < group; ++i) {
      const auto& tbl = profiles.table(profile::id_of(fns[i]));
      stages.push_back(core::StageInput{&tbl, 0});
      base += tbl.min_config_entry().latency_ms;
      cfg_count = tbl.entries().size();
    }
    core::SearchResult result;
    const double ms = wall_ms([&] { result = core::esg_1q(stages, 1.1 * base); });
    table.add_row({std::to_string(group), std::to_string(cfg_count),
                   std::to_string(result.stats.nodes_expanded),
                   AsciiTable::num(ms, 2),
                   AsciiTable::num(model.overhead_ms(result.stats.nodes_expanded), 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Brute force over three stages (the paper's 7258 ms data point).
  {
    std::vector<core::StageInput> stages;
    TimeMs base = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& tbl = profiles.table(profile::id_of(fns[i]));
      stages.push_back(core::StageInput{&tbl, 0});
      base += tbl.min_config_entry().latency_ms;
    }
    core::SearchResult result;
    const double ms =
        wall_ms([&] { result = core::brute_force_search(stages, 1.1 * base); });
    std::printf("brute force, 3 stages: %zu paths, measured %.0f ms, "
                "modeled %.0f ms (paper: 7258 ms)\n",
                result.stats.nodes_expanded, ms,
                model.overhead_ms(result.stats.nodes_expanded));
  }
  return 0;
}
