// Figure 5: job arrival-interval distributions for the heavy / normal /
// light workload settings derived from the Azure traces.
#include <cstdio>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "workload/arrivals.hpp"

int main() {
  using namespace esg;
  std::printf("=== Figure 5: job arrival intervals per workload setting ===\n");
  std::printf("paper: heavy [10, 16.8] ms, normal [20, 33.6] ms, "
              "light [40, 67.2] ms, uniform within range\n\n");

  const RngFactory rng(42);
  for (const auto setting :
       {workload::LoadSetting::kHeavy, workload::LoadSetting::kNormal,
        workload::LoadSetting::kLight}) {
    workload::ArrivalGenerator gen(setting, {AppId(0)},
                                   rng.stream("fig5", static_cast<int>(setting)));
    const auto range = workload::interval_range(setting);

    Histogram hist(range.lo_ms, range.hi_ms, 12);
    RunningStats stats;
    TimeMs prev = 0.0;
    for (int i = 0; i < 50'000; ++i) {
      const auto arrival = gen.next();
      const TimeMs gap = arrival.time_ms - prev;
      prev = arrival.time_ms;
      hist.add(gap);
      stats.add(gap);
    }

    std::printf("--- %s: intervals in [%.1f, %.1f) ms ---\n",
                std::string(workload::to_string(setting)).c_str(), range.lo_ms,
                range.hi_ms);
    std::printf("samples=%zu mean=%.2f ms min=%.2f max=%.2f\n",
                stats.count(), stats.mean(), stats.min(), stats.max());
    std::printf("%s\n", hist.render(40).c_str());
  }
  return 0;
}
