// Figure 8: SLO hit rate and cost for each application, in each of the three
// workload settings, for the five schedulers.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 8: per-application SLO hit rates and cost",
      "ESG consistently achieves the highest hit rate at a lower cost; "
      "INFless consumes the most resources");

  const auto apps = workload::builtin_applications();
  for (const auto& combo : exp::paper_combos()) {
    std::vector<exp::Scenario> grid;
    for (const auto kind : exp::all_schedulers()) {
      grid.push_back(bench::make_scenario(kind, combo));
    }
    const auto results = bench::run_grid(grid);

    AsciiTable table({"app", "scheduler", "hit rate", "cost ($)"});
    for (const auto& app : apps) {
      for (std::size_t i = 0; i < grid.size(); ++i) {
        double hit = 0.0;
        Usd cost = 0.0;
        for (const auto& run : results[i].replicas) {
          hit += run.metrics.slo_hit_rate(app.id());
          cost += run.metrics.cost_of(app.id());
        }
        const double n = static_cast<double>(results[i].replicas.size());
        table.add_row({app.name(),
                       std::string(exp::to_string(grid[i].scheduler)),
                       AsciiTable::pct(hit / n), AsciiTable::num(cost / n, 4)});
      }
    }
    std::printf("--- %s ---\n%s\n", exp::combo_name(combo).c_str(),
                table.render().c_str());
  }
  return 0;
}
