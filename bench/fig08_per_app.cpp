// Figure 8: SLO hit rate and cost for each application, in each of the three
// workload settings, for the five schedulers. A traced ESG re-run per combo
// additionally attributes every SLO miss to its dominant cause (the
// obs/analysis critical-path decomposition).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 8: per-application SLO hit rates and cost",
      "ESG consistently achieves the highest hit rate at a lower cost; "
      "INFless consumes the most resources");

  const auto apps = workload::builtin_applications();
  for (const auto& combo : exp::paper_combos()) {
    std::vector<exp::Scenario> grid;
    for (const auto kind : exp::all_schedulers()) {
      grid.push_back(bench::make_scenario(kind, combo));
    }
    const auto results = bench::run_grid(grid);

    AsciiTable table({"app", "scheduler", "hit rate", "cost ($)"});
    for (const auto& app : apps) {
      for (std::size_t i = 0; i < grid.size(); ++i) {
        double hit = 0.0;
        Usd cost = 0.0;
        for (const auto& run : results[i].replicas) {
          hit += run.metrics.slo_hit_rate(app.id());
          cost += run.metrics.cost_of(app.id());
        }
        const double n = static_cast<double>(results[i].replicas.size());
        table.add_row({app.name(),
                       std::string(exp::to_string(grid[i].scheduler)),
                       AsciiTable::pct(hit / n), AsciiTable::num(cost / n, 4)});
      }
    }
    std::printf("--- %s ---\n%s\n", exp::combo_name(combo).c_str(),
                table.render().c_str());

    // Miss-cause attribution: re-run ESG (grid entry 0) on the first seed
    // with the in-memory analysis sink and decompose every miss.
    obs::TraceRecorder recorder;
    auto sink = std::make_unique<obs::analysis::AnalysisSink>();
    const auto* analysis = sink.get();
    recorder.add_sink(std::move(sink));
    exp::Scenario traced = grid.front();
    traced.seed = bench::seeds().front();
    (void)exp::run_scenario(traced, &recorder);
    const auto report = obs::analysis::build_report(analysis->dataset());

    AsciiTable causes({"app", "requests", "misses", "dominant causes"});
    for (const auto& app_report : report.apps) {
      std::string breakdown;
      for (const auto& [cause, count] : app_report.miss_causes) {
        if (!breakdown.empty()) breakdown += ", ";
        breakdown += cause + " x" + std::to_string(count);
      }
      if (breakdown.empty()) breakdown = "-";
      causes.add_row({apps.at(app_report.app).name(),
                      std::to_string(app_report.requests),
                      std::to_string(app_report.misses), breakdown});
    }
    std::printf("ESG miss-cause attribution (seed %llu):\n%s\n",
                static_cast<unsigned long long>(traced.seed),
                causes.render().c_str());
  }
  return 0;
}
