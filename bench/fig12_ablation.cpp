// Figure 12: ablation of the GPU-sharing and batching strategies under the
// relaxed-heavy setting (the heavy load underlines the batching effect).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 12: GPU-sharing / batching ablation (relaxed-heavy)",
      "removing GPU sharing greatly prolongs waiting (jobs queue for whole "
      "GPUs) and hurts hit rate + cost; removing batching keeps hit rates "
      "but raises cost");

  for (const exp::SettingCombo& combo :
       {exp::paper_combos()[2], exp::paper_combos()[1]}) {
    exp::Scenario full = bench::make_scenario(exp::SchedulerKind::kEsg, combo);
    exp::Scenario no_share = full;
    no_share.controller.enable_gpu_sharing = false;
    exp::Scenario no_batch = full;
    no_batch.controller.enable_batching = false;

    const exp::Scenario grid[] = {full, no_share, no_batch};
    const auto results = bench::run_grid(grid);

    const char* labels[] = {"ESG", "ESG w/o GPU-sharing", "ESG w/o batching"};
    const double esg_cost = results[0].aggregate.total_cost;

    AsciiTable table({"variant", "hit rate", "cost (ESG=1)",
                      "mean job wait (ms)"});
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& agg = results[i].aggregate;
      table.add_row({labels[i], AsciiTable::pct(agg.slo_hit_rate),
                     AsciiTable::num(esg_cost > 0 ? agg.total_cost / esg_cost : 0, 2),
                     AsciiTable::num(agg.mean_job_wait_ms, 1)});
    }
    std::printf("--- %s ---\n%s\n", exp::combo_name(combo).c_str(),
                table.render().c_str());
  }
  return 0;
}
