#include "bench_util.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/build_info.hpp"

namespace esg::bench {

TimeMs horizon_ms() {
  if (const char* env = std::getenv("ESG_BENCH_HORIZON_MS")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 60'000.0;
}

std::vector<std::uint64_t> seeds() {
  std::size_t n = 1;
  if (const char* env = std::getenv("ESG_BENCH_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) n = static_cast<std::size_t>(v);
  }
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(42 + i);
  return out;
}

exp::Scenario make_scenario(exp::SchedulerKind kind,
                            const exp::SettingCombo& combo) {
  exp::Scenario s;
  s.scheduler = kind;
  s.slo = combo.slo;
  s.load = combo.load;
  s.horizon_ms = horizon_ms();
  // Measure steady state: let the warm pools build up and queues settle
  // before counting (the transient affects every scheduler identically).
  s.warmup_ms = 0.55 * s.horizon_ms;
  return s;
}

std::vector<GridResult> run_grid(std::span<const exp::Scenario> grid) {
  const auto seed_list = seeds();

  // Expand to (scenario, seed) work items so the pool stays busy.
  struct Item {
    std::size_t scenario;
    std::uint64_t seed;
  };
  std::vector<Item> items;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (const std::uint64_t seed : seed_list) items.push_back({i, seed});
  }

  std::vector<GridResult> results(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    results[i].replicas.resize(seed_list.size());
  }

  std::atomic<std::size_t> next{0};
  const unsigned workers = std::min<unsigned>(
      std::max(1u, std::thread::hardware_concurrency()),
      static_cast<unsigned>(items.size()));
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= items.size()) return;
          exp::Scenario scenario = grid[items[i].scenario];
          scenario.seed = items[i].seed;
          const std::size_t replica = i % seed_list.size();
          results[items[i].scenario].replicas[replica] =
              exp::run_scenario(scenario);
        }
      });
    }
  }
  for (auto& r : results) r.aggregate = exp::aggregate(r.replicas);
  return results;
}

void write_meta_json(std::FILE* out) {
  // Single source of truth for the provenance block: the same object backs
  // esg_sim --build-info, the esg.perf.v1 "meta" field, and every BENCH_*.json.
  std::fprintf(out, "  \"meta\": %s,\n", common::meta_json_object().c_str());
}

void print_banner(const std::string& id, const std::string& paper_claim) {
  std::printf("=== %s ===\n", id.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("horizon: %.0f ms simulated traffic, %zu seed(s)\n\n",
              horizon_ms(), seeds().size());
}

}  // namespace esg::bench
