// Shared helpers for the per-figure/table bench binaries.
//
// Environment knobs (all optional):
//   ESG_BENCH_HORIZON_MS — arrival-window length per run (default 10000)
//   ESG_BENCH_SEEDS      — replicas per scenario (default 1)
#pragma once

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace esg::bench {

/// Arrival horizon from the environment (default 10 s of simulated traffic).
[[nodiscard]] TimeMs horizon_ms();

/// Replica seeds from the environment (default {42}).
[[nodiscard]] std::vector<std::uint64_t> seeds();

/// A paper scenario: scheduler x (SLO, load) combo with the bench horizon.
[[nodiscard]] exp::Scenario make_scenario(exp::SchedulerKind kind,
                                          const exp::SettingCombo& combo);

/// Runs every scenario (each over all seeds) using a thread pool; outputs
/// are ordered like the inputs and each entry aggregates its seeds.
struct GridResult {
  exp::Aggregate aggregate;
  std::vector<exp::RunOutput> replicas;
};

[[nodiscard]] std::vector<GridResult> run_grid(std::span<const exp::Scenario> grid);

/// Prints the standard bench banner.
void print_banner(const std::string& id, const std::string& paper_claim);

/// Writes the shared provenance block for checked-in BENCH_*.json baselines:
///   "meta": {"host": ..., "kernel": ..., "cpus": N, "commit": ...},
/// (two-space indent, trailing comma + newline). The commit is the git HEAD
/// at run time ("unknown" outside a checkout), so a regenerated baseline
/// records which revision and machine produced its numbers.
void write_meta_json(std::FILE* out);

}  // namespace esg::bench
