// Figure 9: effect of Orion's search time on SLO hit rates (strict-light).
// The search budget is swept; each budget is evaluated twice — once with the
// search latency charged to the dispatched jobs ("counted") and once without.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/esg_1q.hpp"

int main() {
  using namespace esg;
  bench::print_banner(
      "Figure 9: Orion hit rate vs search time, strict-light",
      "Orion finds decent configs given time, but counting the search time "
      "drops the hit rate dramatically");

  const exp::SettingCombo combo = exp::paper_combos()[0];  // strict-light
  const core::OverheadModel overhead_model;
  const std::size_t budgets[] = {200, 1'000, 5'000, 20'000, 80'000, 240'000};

  std::vector<exp::Scenario> grid;
  for (const std::size_t budget : budgets) {
    for (const bool charge : {false, true}) {
      exp::Scenario s = bench::make_scenario(exp::SchedulerKind::kOrion, combo);
      s.orion.max_expansions = budget;
      s.orion.charge_search_time = charge;
      grid.push_back(s);
    }
  }
  const auto results = bench::run_grid(grid);

  AsciiTable table({"search budget (states)", "approx search time (ms)",
                    "hit rate (not counted)", "hit rate (counted)"});
  for (std::size_t b = 0; b < std::size(budgets); ++b) {
    const auto& uncounted = results[2 * b].aggregate;
    const auto& counted = results[2 * b + 1].aggregate;
    table.add_row({std::to_string(budgets[b]),
                   AsciiTable::num(overhead_model.overhead_ms(budgets[b]), 1),
                   AsciiTable::pct(uncounted.slo_hit_rate),
                   AsciiTable::pct(counted.slo_hit_rate)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
