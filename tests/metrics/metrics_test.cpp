#include <gtest/gtest.h>

#include <sstream>

#include "metrics/export.hpp"
#include "metrics/run_metrics.hpp"

namespace esg::metrics {
namespace {

RunMetrics sample_metrics() {
  RunMetrics m;
  m.completions.push_back(
      {RequestId(0), AppId(0), 0, 0.0, 500.0, 500.0, 600.0, true});
  m.completions.push_back(
      {RequestId(1), AppId(0), 0, 10.0, 910.0, 900.0, 600.0, false});
  m.completions.push_back(
      {RequestId(2), AppId(1), 1, 20.0, 420.0, 400.0, 450.0, true});
  m.total_cost = 0.5;
  m.cost_by_app[AppId(0)] = 0.3;
  m.cost_by_app[AppId(1)] = 0.2;
  m.plan_uses = 10;
  m.plan_misses = 3;
  m.job_wait_ms = {1.0, 2.0, 3.0};
  m.task_trace.push_back(TaskRecord{TaskId(0), AppId(0), 1, FunctionId(2),
                                    InvokerId(3), 4, 2, 1, 100.0, 5.0, 250.0,
                                    0.01});
  return m;
}

TEST(RunMetrics, HitRateOverall) {
  const RunMetrics m = sample_metrics();
  EXPECT_EQ(m.requests(), 3u);
  EXPECT_NEAR(m.slo_hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(RunMetrics, HitRatePerApp) {
  const RunMetrics m = sample_metrics();
  EXPECT_NEAR(m.slo_hit_rate(AppId(0)), 0.5, 1e-12);
  EXPECT_NEAR(m.slo_hit_rate(AppId(1)), 1.0, 1e-12);
  EXPECT_EQ(m.slo_hit_rate(AppId(9)), 0.0);  // unknown app
}

TEST(RunMetrics, EmptyMetricsAreZero) {
  const RunMetrics m;
  EXPECT_EQ(m.slo_hit_rate(), 0.0);
  EXPECT_EQ(m.config_miss_rate(), 0.0);
  EXPECT_EQ(m.mean_job_wait_ms(), 0.0);
  EXPECT_TRUE(m.latencies().empty());
}

TEST(RunMetrics, CostLookup) {
  const RunMetrics m = sample_metrics();
  EXPECT_DOUBLE_EQ(m.cost_of(AppId(0)), 0.3);
  EXPECT_DOUBLE_EQ(m.cost_of(AppId(7)), 0.0);
}

TEST(RunMetrics, LatencyExtraction) {
  const RunMetrics m = sample_metrics();
  EXPECT_EQ(m.latencies().size(), 3u);
  EXPECT_EQ(m.latencies(AppId(0)), (std::vector<double>{500.0, 900.0}));
}

TEST(RunMetrics, MissRateAndWait) {
  const RunMetrics m = sample_metrics();
  EXPECT_NEAR(m.config_miss_rate(), 0.3, 1e-12);
  EXPECT_NEAR(m.mean_job_wait_ms(), 2.0, 1e-12);
}

TEST(Export, CompletionsCsvRoundTrip) {
  std::ostringstream out;
  write_completions_csv(sample_metrics(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("request,app,arrival_ms"), std::string::npos);
  EXPECT_NE(csv.find("0,0,0,500,500,600,1"), std::string::npos);
  EXPECT_NE(csv.find("1,0,10,910,900,600,0"), std::string::npos);
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Export, TaskTraceCsv) {
  std::ostringstream out;
  write_task_trace_csv(sample_metrics(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("task,app,stage,function"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,2,3,4,2,1,100,5,250,"), std::string::npos);
}

TEST(Export, SummaryCsv) {
  std::ostringstream out;
  write_summary_csv(sample_metrics(), "strict-light/ESG", out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("label,requests,slo_hit_rate"), std::string::npos);
  EXPECT_NE(csv.find("strict-light/ESG,3,0.666667,0.5"), std::string::npos);

  // Header suppression for appending multiple rows.
  std::ostringstream no_header;
  write_summary_csv(sample_metrics(), "x", no_header, false);
  EXPECT_EQ(no_header.str().find("label,"), std::string::npos);
}

TEST(Export, SummaryCsvCarriesLatencyPercentiles) {
  std::ostringstream out;
  write_summary_csv(sample_metrics(), "x", out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("latency_p50_ms,latency_p95_ms,latency_p99_ms"),
            std::string::npos);
  // Latencies {400, 500, 900}: p50 = 500, p95/p99 interpolate towards 900.
  EXPECT_NE(csv.find(",500,"), std::string::npos);
}

TEST(Export, PerAppSummaryCsv) {
  std::ostringstream out;
  write_per_app_summary_csv(sample_metrics(), "seed42", out);
  const std::string csv = out.str();
  EXPECT_NE(
      csv.find("label,app,requests,slo_hit_rate,latency_p50_ms,latency_p95_ms,"
               "latency_p99_ms,cost"),
      std::string::npos);
  // App 0: two requests {500, 900}, one hit; p50 = 700 by interpolation.
  EXPECT_NE(csv.find("seed42,0,2,0.5,700,"), std::string::npos);
  // App 1: one request, always hit, all percentiles 400.
  EXPECT_NE(csv.find("seed42,1,1,1,400,400,400,0.2"), std::string::npos);
  // Header + one row per app, apps in id order.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_LT(csv.find("seed42,0,"), csv.find("seed42,1,"));

  std::ostringstream no_header;
  write_per_app_summary_csv(sample_metrics(), "x", no_header, false);
  EXPECT_EQ(no_header.str().find("label,"), std::string::npos);
}

}  // namespace
}  // namespace esg::metrics
