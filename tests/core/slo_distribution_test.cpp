#include "core/slo_distribution.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "profile/function_spec.hpp"
#include "workload/applications.hpp"

namespace esg::core {
namespace {

using profile::Function;
using workload::AppDag;
using workload::NodeIndex;

const profile::ProfileSet& profiles() {
  static const profile::ProfileSet set = profile::ProfileSet::builtin();
  return set;
}

TEST(Anl, SumsToOneForPipelines) {
  for (const auto& app : workload::builtin_applications()) {
    const auto anl = average_normalized_lengths(app, profiles());
    const double total = std::accumulate(anl.begin(), anl.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << app.name();
    for (double v : anl) EXPECT_GT(v, 0.0);
  }
}

TEST(Anl, SlowerFunctionsGetLargerShares) {
  // background_elimination: super_resolution (86) < deblur (319) <
  // background_removal (1047) at every aligned rank.
  const auto apps = workload::builtin_applications();
  const auto anl = average_normalized_lengths(apps[2], profiles());
  EXPECT_LT(anl[0], anl[1]);
  EXPECT_LT(anl[1], anl[2]);
}

TEST(SloDistribution, RejectsZeroGroupSize) {
  const auto apps = workload::builtin_applications();
  EXPECT_THROW(SloDistribution(apps[0], profiles(), 0), std::invalid_argument);
}

TEST(SloDistribution, PipelineFractionsSumToOne) {
  for (const auto& app : workload::builtin_applications()) {
    for (std::size_t g : {1, 2, 3, 5}) {
      const SloDistribution dist(app, profiles(), g);
      double total = 0.0;
      for (const auto& group : dist.groups()) total += group.fraction;
      EXPECT_NEAR(total, 1.0, 1e-9) << app.name() << " g=" << g;
    }
  }
}

TEST(SloDistribution, EveryNodeInExactlyOneGroup) {
  for (const auto& app : workload::builtin_applications()) {
    const SloDistribution dist(app, profiles(), 3);
    std::vector<int> seen(app.size(), 0);
    for (const auto& group : dist.groups()) {
      for (NodeIndex n : group.nodes) ++seen[n];
    }
    for (NodeIndex n = 0; n < app.size(); ++n) {
      EXPECT_EQ(seen[n], 1) << app.name() << " node " << n;
      const auto gi = dist.group_of(n);
      const auto& nodes = dist.groups()[gi].nodes;
      EXPECT_NE(std::find(nodes.begin(), nodes.end(), n), nodes.end());
    }
  }
}

TEST(SloDistribution, GroupSizeRespected) {
  const auto apps = workload::builtin_applications();
  for (std::size_t g : {1, 2, 3}) {
    const SloDistribution dist(apps[3], profiles(), g);  // 5-stage pipeline
    for (const auto& group : dist.groups()) {
      EXPECT_LE(group.nodes.size(), g);
    }
  }
}

TEST(SloDistribution, GroupSizeOneMatchesAnl) {
  // With singleton groups on a pipeline, each group's fraction equals the
  // node's ANL.
  const auto apps = workload::builtin_applications();
  const auto anl = average_normalized_lengths(apps[0], profiles());
  const SloDistribution dist(apps[0], profiles(), 1);
  ASSERT_EQ(dist.groups().size(), apps[0].size());
  for (NodeIndex n = 0; n < apps[0].size(); ++n) {
    EXPECT_NEAR(dist.groups()[dist.group_of(n)].fraction, anl[n], 1e-12);
    EXPECT_NEAR(dist.node_fraction(n), anl[n], 1e-12);
  }
}

TEST(SloDistribution, NodeFractionsPartitionGroupFraction) {
  const auto apps = workload::builtin_applications();
  const SloDistribution dist(apps[3], profiles(), 3);
  for (std::size_t gi = 0; gi < dist.groups().size(); ++gi) {
    double sum = 0.0;
    for (NodeIndex n : dist.groups()[gi].nodes) sum += dist.node_fraction(n);
    EXPECT_NEAR(sum, dist.groups()[gi].fraction, 1e-12);
  }
}

TEST(SloDistribution, RemainingFractionDecreasesAlongPipeline) {
  const auto apps = workload::builtin_applications();
  const SloDistribution dist(apps[3], profiles(), 3);
  EXPECT_NEAR(dist.remaining_fraction(0), 1.0, 1e-9);
  for (NodeIndex n = 1; n < apps[3].size(); ++n) {
    EXPECT_LT(dist.remaining_fraction(n), dist.remaining_fraction(n - 1));
  }
  // The last stage's remaining fraction is its own share.
  const NodeIndex last = apps[3].size() - 1;
  EXPECT_NEAR(dist.remaining_fraction(last), dist.node_fraction(last), 1e-12);
}

AppDag diamond_app() {
  AppDag dag(AppId(7), "diamond");
  dag.add_node(profile::id_of(Function::kDeblur));            // 0
  dag.add_node(profile::id_of(Function::kSuperResolution));   // 1 (branch a)
  dag.add_node(profile::id_of(Function::kSegmentation));      // 2 (branch b)
  dag.add_node(profile::id_of(Function::kClassification));    // 3 (join)
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  dag.validate();
  return dag;
}

TEST(SloDistribution, DiamondBranchesShareReducedQuota) {
  const AppDag dag = diamond_app();
  const SloDistribution dist(dag, profiles(), 3);

  // Both branch nodes form their own groups; the slower branch
  // (segmentation) receives the reduced node's full quota, the faster branch
  // a smaller-or-equal one scaled by its own ANL.
  const double f1 = dist.groups()[dist.group_of(1)].fraction;
  const double f2 = dist.groups()[dist.group_of(2)].fraction;
  EXPECT_GT(f1, 0.0);
  EXPECT_GT(f2, 0.0);
  // Parallel branches each receive the reduced node's FULL quota — they run
  // concurrently, so both may use the whole window.
  EXPECT_NEAR(f1, f2, 1e-12);

  // Along either root-to-sink path the fractions must sum to <= 1, and the
  // critical path (through the slower branch) to exactly 1.
  const double head = dist.node_fraction(0);
  const double tail = dist.node_fraction(3);
  EXPECT_NEAR(head + f2 + tail, 1.0, 1e-9);
  EXPECT_LE(head + f1 + tail, 1.0 + 1e-9);

  EXPECT_NEAR(dist.remaining_fraction(0), 1.0, 1e-9);
}

TEST(SloDistribution, NestedSplitBranch) {
  // 0 -> {1, 2} -> 3, where branch node counts differ: branch a is 1 -> 4.
  AppDag dag(AppId(8), "nested-branch");
  dag.add_node(profile::id_of(Function::kDeblur));           // 0
  dag.add_node(profile::id_of(Function::kSuperResolution));  // 1
  dag.add_node(profile::id_of(Function::kSegmentation));     // 2
  dag.add_node(profile::id_of(Function::kClassification));   // 3 join
  dag.add_node(profile::id_of(Function::kDepthRecognition)); // 4 (after 1)
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 4);
  dag.add_edge(4, 3);
  dag.add_edge(2, 3);
  dag.validate();

  const SloDistribution dist(dag, profiles(), 3);
  std::vector<int> seen(dag.size(), 0);
  for (const auto& group : dist.groups()) {
    for (NodeIndex n : group.nodes) ++seen[n];
  }
  for (NodeIndex n = 0; n < dag.size(); ++n) EXPECT_EQ(seen[n], 1);
  // Both branches receive the same (full) reduced quota, but inside the
  // two-stage branch it is split between the stages, while segmentation
  // keeps it whole: node 2's individual share exceeds node 1's.
  const double branch_a = dist.groups()[dist.group_of(1)].fraction;
  const double branch_b = dist.groups()[dist.group_of(2)].fraction;
  EXPECT_NEAR(branch_a, branch_b, 1e-12);
  EXPECT_LT(dist.node_fraction(1), dist.node_fraction(2));
  EXPECT_NEAR(dist.node_fraction(1) + dist.node_fraction(4), branch_a, 1e-12);
}

}  // namespace
}  // namespace esg::core
