#include "core/esg_1q.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "profile/function_spec.hpp"

namespace esg::core {
namespace {

using profile::Function;
using profile::ProfileSet;

const ProfileSet& profiles() {
  static const ProfileSet set = ProfileSet::builtin();
  return set;
}

std::vector<StageInput> pipeline_stages(std::initializer_list<Function> fns,
                                        std::uint16_t first_cap = 0) {
  std::vector<StageInput> stages;
  for (Function f : fns) {
    stages.push_back(StageInput{&profiles().table(profile::id_of(f)), 0});
  }
  if (!stages.empty()) stages.front().batch_cap = first_cap;
  return stages;
}

TEST(Esg1q, RejectsBadInput) {
  EXPECT_THROW(esg_1q({}, 100.0), std::invalid_argument);
  auto stages = pipeline_stages({Function::kDeblur});
  SearchOptions opts;
  opts.k = 0;
  EXPECT_THROW(esg_1q(stages, 100.0, opts), std::invalid_argument);
}

TEST(Esg1q, SingleStageFindsCheapestMeetingTarget) {
  auto stages = pipeline_stages({Function::kDeblur});
  const auto result = esg_1q(stages, 400.0);
  ASSERT_TRUE(result.met_slo);
  ASSERT_FALSE(result.config_pq.empty());
  const auto& best = result.config_pq.front();
  EXPECT_LT(best.total_latency_ms, 400.0);

  // No admissible config may be cheaper while staying under the target.
  for (const auto& e : profiles().table(profile::id_of(Function::kDeblur)).entries()) {
    if (e.latency_ms < 400.0) {
      EXPECT_GE(e.per_job_cost, best.total_per_job_cost - 1e-12);
    }
  }
}

TEST(Esg1q, InfeasibleTargetFallsBackToFastestPath) {
  auto stages = pipeline_stages({Function::kDeblur, Function::kSegmentation});
  const auto result = esg_1q(stages, 1.0);  // impossible
  EXPECT_FALSE(result.met_slo);
  ASSERT_EQ(result.config_pq.size(), 1u);
  // The fallback is the per-stage fastest configuration.
  TimeMs fastest = 0.0;
  for (const auto& in : stages) fastest += in.table->min_latency();
  EXPECT_NEAR(result.config_pq.front().total_latency_ms, fastest, 1e-9);
}

TEST(Esg1q, PathsRespectTarget) {
  auto stages = pipeline_stages(
      {Function::kSuperResolution, Function::kSegmentation,
       Function::kClassification});
  const auto result = esg_1q(stages, 700.0);
  ASSERT_TRUE(result.met_slo);
  for (const auto& path : result.config_pq) {
    EXPECT_LT(path.total_latency_ms, 700.0);
    ASSERT_EQ(path.entries.size(), 3u);
    // Totals are consistent with the per-stage entries.
    TimeMs lat = 0.0;
    Usd cost = 0.0;
    for (const auto& e : path.entries) {
      lat += e.latency_ms;
      cost += e.per_job_cost;
    }
    EXPECT_NEAR(lat, path.total_latency_ms, 1e-9);
    EXPECT_NEAR(cost, path.total_per_job_cost, 1e-9);
  }
}

TEST(Esg1q, ConfigPqSortedByCost) {
  auto stages = pipeline_stages(
      {Function::kDeblur, Function::kSuperResolution,
       Function::kDepthRecognition});
  SearchOptions opts;
  opts.k = 8;
  const auto result = esg_1q(stages, 2'000.0, opts);
  ASSERT_TRUE(result.met_slo);
  for (std::size_t i = 1; i < result.config_pq.size(); ++i) {
    EXPECT_LE(result.config_pq[i - 1].total_per_job_cost,
              result.config_pq[i].total_per_job_cost);
  }
}

TEST(Esg1q, BatchCapRestrictsFirstStage) {
  auto stages = pipeline_stages(
      {Function::kSuperResolution, Function::kSegmentation}, /*first_cap=*/2);
  const auto result = esg_1q(stages, 800.0);
  for (const auto& path : result.config_pq) {
    EXPECT_LE(path.entries.front().config.batch, 2);
  }
}

// The core optimality property: dual-blade pruning never loses the optimum.
TEST(Esg1q, MatchesBruteForceOptimum) {
  profile::ConfigSpaceOptions small;
  small.batches = {1, 2, 4, 8};
  small.vcpus = {1, 2, 4};
  small.vgpus = {1, 2, 4};
  const ProfileSet set = ProfileSet::builtin(small);

  for (double slo_scale : {0.9, 1.0, 1.3, 2.0, 5.0}) {
    std::vector<StageInput> stages = {
        {&set.table(profile::id_of(Function::kSuperResolution)), 0},
        {&set.table(profile::id_of(Function::kSegmentation)), 0},
        {&set.table(profile::id_of(Function::kClassification)), 0},
    };
    TimeMs base = 0.0;
    for (const auto& in : stages) base += in.table->min_config_entry().latency_ms;
    const TimeMs target = base * slo_scale;

    const auto pruned = esg_1q(stages, target);
    const auto brute = brute_force_search(stages, target);
    ASSERT_EQ(pruned.met_slo, brute.met_slo) << "scale " << slo_scale;
    if (brute.met_slo) {
      EXPECT_NEAR(pruned.config_pq.front().total_per_job_cost,
                  brute.config_pq.front().total_per_job_cost, 1e-12)
          << "scale " << slo_scale;
      // Pruning must examine strictly fewer nodes than enumeration.
      EXPECT_LT(pruned.stats.nodes_expanded, brute.stats.nodes_expanded);
    }
  }
}

TEST(Esg1q, KBestMatchBruteForceCosts) {
  profile::ConfigSpaceOptions small;
  small.batches = {1, 2, 4};
  small.vcpus = {1, 2};
  small.vgpus = {1, 2};
  const ProfileSet set = ProfileSet::builtin(small);
  std::vector<StageInput> stages = {
      {&set.table(profile::id_of(Function::kDeblur)), 0},
      {&set.table(profile::id_of(Function::kSuperResolution)), 0},
  };
  SearchOptions opts;
  opts.k = 5;
  const TimeMs target = 600.0;
  const auto pruned = esg_1q(stages, target, opts);
  const auto brute = brute_force_search(stages, target, opts);
  ASSERT_TRUE(pruned.met_slo);
  ASSERT_EQ(pruned.config_pq.size(), brute.config_pq.size());
  for (std::size_t i = 0; i < pruned.config_pq.size(); ++i) {
    EXPECT_NEAR(pruned.config_pq[i].total_per_job_cost,
                brute.config_pq[i].total_per_job_cost, 1e-12);
  }
}

TEST(Esg1q, TighterSloPrunesMore) {
  auto stages = pipeline_stages(
      {Function::kSuperResolution, Function::kSegmentation,
       Function::kClassification});
  TimeMs base = 0.0;
  for (const auto& in : stages) base += in.table->min_config_entry().latency_ms;
  const auto strict = esg_1q(stages, 0.8 * base);
  const auto relaxed = esg_1q(stages, 1.2 * base);
  // Relaxed SLOs leave more of the space unpruned (Section 5.3's finding).
  EXPECT_LE(strict.stats.nodes_expanded, relaxed.stats.nodes_expanded);
}

TEST(Esg1q, LargerKExpandsMoreOrEqual) {
  auto stages = pipeline_stages(
      {Function::kDeblur, Function::kSuperResolution,
       Function::kBackgroundRemoval});
  TimeMs base = 0.0;
  for (const auto& in : stages) base += in.table->min_config_entry().latency_ms;
  SearchOptions k1;
  k1.k = 1;
  SearchOptions k80;
  k80.k = 80;
  const auto r1 = esg_1q(stages, 1.2 * base, k1);
  const auto r80 = esg_1q(stages, 1.2 * base, k80);
  EXPECT_LE(r1.stats.nodes_expanded, r80.stats.nodes_expanded);
  EXPECT_LE(r1.config_pq.size(), r80.config_pq.size());
  // The best path is identical regardless of K.
  EXPECT_NEAR(r1.config_pq.front().total_per_job_cost,
              r80.config_pq.front().total_per_job_cost, 1e-12);
}

TEST(OverheadModel, LinearInNodes) {
  const OverheadModel m;
  EXPECT_NEAR(m.overhead_ms(0), m.base_ms, 1e-12);
  EXPECT_NEAR(m.overhead_ms(1000) - m.overhead_ms(0), m.per_node_us, 1e-9);
  // The calibration target: ~16.7M brute-force paths cost ~7.2 s (paper §5.3).
  EXPECT_NEAR(m.overhead_ms(256 * 256 * 256), 7'214.0, 120.0);
}

}  // namespace
}  // namespace esg::core
