// Cross-checks ESG_1Q against an independent textbook A* implementation:
// identical optimal costs on every feasible instance, identical
// infeasibility verdicts otherwise.
#include <gtest/gtest.h>

#include "core/astar_reference.hpp"
#include "core/esg_1q.hpp"
#include "profile/function_spec.hpp"
#include "workload/applications.hpp"

namespace esg::core {
namespace {

using profile::ProfileSet;

const ProfileSet& small_profiles() {
  static const ProfileSet set = [] {
    profile::ConfigSpaceOptions opts;
    opts.batches = {1, 2, 4, 8};
    opts.vcpus = {1, 2, 4};
    opts.vgpus = {1, 2, 4};
    return ProfileSet::builtin(opts);
  }();
  return set;
}

struct Case {
  std::size_t app;     // builtin application index
  double slo_scale;    // target = scale x min-config critical path
  std::uint16_t cap;   // batch cap on the first stage (0 = none)
};

class AstarCross : public ::testing::TestWithParam<Case> {};

TEST_P(AstarCross, AgreesWithEsg1q) {
  const Case c = GetParam();
  const auto apps = workload::builtin_applications();
  const auto& app = apps[c.app];

  std::vector<StageInput> stages;
  TimeMs base = 0.0;
  for (const auto& node : app.nodes()) {
    const auto& tbl = small_profiles().table(node.function);
    stages.push_back(StageInput{&tbl, 0});
    base += tbl.min_config_entry().latency_ms;
  }
  stages.front().batch_cap = c.cap;
  const TimeMs target = base * c.slo_scale;

  const SearchResult esg = esg_1q(stages, target);
  const SearchResult astar = astar_reference(stages, target);

  ASSERT_EQ(esg.met_slo, astar.met_slo)
      << "app " << c.app << " scale " << c.slo_scale;
  if (astar.met_slo) {
    EXPECT_NEAR(esg.config_pq.front().total_per_job_cost,
                astar.config_pq.front().total_per_job_cost, 1e-12);
    EXPECT_LT(astar.config_pq.front().total_latency_ms, target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AstarCross,
    ::testing::Values(Case{0, 0.7, 0}, Case{0, 0.9, 0}, Case{0, 1.0, 0},
                      Case{0, 1.2, 0}, Case{0, 2.0, 0}, Case{0, 1.2, 2},
                      Case{1, 0.8, 0}, Case{1, 1.1, 0}, Case{1, 3.0, 0},
                      Case{2, 0.9, 0}, Case{2, 1.5, 4}, Case{3, 0.85, 0},
                      Case{3, 1.1, 0}, Case{3, 1.3, 1}, Case{3, 5.0, 0}),
    [](const auto& info) {
      return "app" + std::to_string(info.param.app) + "scale" +
             std::to_string(static_cast<int>(info.param.slo_scale * 100)) +
             "cap" + std::to_string(info.param.cap);
    });

TEST(AstarReference, InfeasibleReturnsEmpty) {
  const auto apps = workload::builtin_applications();
  std::vector<StageInput> stages;
  for (const auto& node : apps[0].nodes()) {
    stages.push_back(StageInput{&small_profiles().table(node.function), 0});
  }
  const auto result = astar_reference(stages, 1.0);
  EXPECT_FALSE(result.met_slo);
  EXPECT_TRUE(result.config_pq.empty());
}

TEST(AstarReference, RejectsEmptyInput) {
  EXPECT_THROW(astar_reference({}, 100.0), std::invalid_argument);
}

TEST(AstarReference, Esg1qNeverExpandsMoreUnderTightTargets) {
  // The dual-blade pruning's advantage: under a tight (just-feasible)
  // target, it should not need dramatically more expansions than A*.
  const auto apps = workload::builtin_applications();
  std::vector<StageInput> stages;
  TimeMs base = 0.0;
  for (const auto& node : apps[0].nodes()) {
    const auto& tbl = small_profiles().table(node.function);
    stages.push_back(StageInput{&tbl, 0});
    base += tbl.min_config_entry().latency_ms;
  }
  const auto esg = esg_1q(stages, 0.85 * base);
  ASSERT_TRUE(esg.met_slo);
  EXPECT_LT(esg.stats.nodes_expanded, 10'000u);
}

}  // namespace
}  // namespace esg::core
