#include "core/dominator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/dag.hpp"

namespace esg::core {
namespace {

using workload::AppDag;
using workload::NodeIndex;

FunctionId fn(int i) { return FunctionId(static_cast<std::uint32_t>(i % 6)); }

AppDag chain(std::size_t n) {
  AppDag dag(AppId(0), "chain");
  for (std::size_t i = 0; i < n; ++i) dag.add_node(fn(static_cast<int>(i)));
  for (std::size_t i = 0; i + 1 < n; ++i) dag.add_edge(i, i + 1);
  return dag;
}

AppDag diamond() {
  AppDag dag(AppId(0), "diamond");
  for (int i = 0; i < 4; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  return dag;
}

TEST(DominatorTree, ChainParentsAreImmediatePredecessors) {
  const DominatorTree dom(chain(5));
  EXPECT_EQ(dom.idom(0), 0u);
  for (NodeIndex i = 1; i < 5; ++i) EXPECT_EQ(dom.idom(i), i - 1);
}

TEST(DominatorTree, DiamondJoinDominatedByFork) {
  const DominatorTree dom(diamond());
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 0u);
  EXPECT_EQ(dom.idom(3), 0u);  // the join's idom skips both branches
  EXPECT_EQ(dom.children(0).size(), 3u);
}

TEST(DominatorTree, DominatesRelation) {
  const DominatorTree dom(diamond());
  EXPECT_TRUE(dom.dominates(0, 3));
  EXPECT_TRUE(dom.dominates(2, 2));  // every node dominates itself
  EXPECT_FALSE(dom.dominates(1, 3));
  EXPECT_FALSE(dom.dominates(3, 1));
  EXPECT_THROW(dom.dominates(0, 99), std::out_of_range);
}

TEST(DominatorTree, NestedDiamonds) {
  // 0 -> {1, 2} -> 3 -> {4, 5} -> 6
  AppDag dag(AppId(0), "nested");
  for (int i = 0; i < 7; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  dag.add_edge(3, 4);
  dag.add_edge(3, 5);
  dag.add_edge(4, 6);
  dag.add_edge(5, 6);
  const DominatorTree dom(dag);
  EXPECT_EQ(dom.idom(3), 0u);
  EXPECT_EQ(dom.idom(4), 3u);
  EXPECT_EQ(dom.idom(5), 3u);
  EXPECT_EQ(dom.idom(6), 3u);
  EXPECT_TRUE(dom.dominates(3, 6));
  EXPECT_FALSE(dom.dominates(4, 6));
}

TEST(DominatorTree, SkipEdgeDiamond) {
  // 0 -> 1 -> 2 plus the skip edge 0 -> 2.
  AppDag dag(AppId(0), "skip");
  for (int i = 0; i < 3; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(0, 2);
  const DominatorTree dom(dag);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 0u);  // 1 no longer dominates 2
}

// Property: on random series-parallel-ish DAGs, the brute-force dominator
// relation (set intersection over all paths) matches the tree.
TEST(DominatorTree, MatchesBruteForceOnRandomDags) {
  RngStream rng = RngFactory(2024).stream("domtest");
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.below(8);
    AppDag dag(AppId(0), "rand");
    for (std::size_t i = 0; i < n; ++i) dag.add_node(fn(static_cast<int>(i)));
    // Guarantee connectivity: each node i>0 gets an edge from a random
    // earlier node; then sprinkle extra forward edges.
    for (std::size_t i = 1; i < n; ++i) {
      dag.add_edge(rng.below(i), i);
    }
    for (std::size_t extra = 0; extra < n; ++extra) {
      const std::size_t a = rng.below(n - 1);
      const std::size_t b = a + 1 + rng.below(n - a - 1);
      const auto& succ = dag.node(a).successors;
      if (std::find(succ.begin(), succ.end(), b) == succ.end()) {
        dag.add_edge(a, b);
      }
    }
    dag.validate();
    const DominatorTree dom(dag);

    // Brute force: a dominates b iff removing a leaves b unreachable.
    auto reachable_without = [&](NodeIndex removed, NodeIndex target) {
      if (removed == 0) return target == 0 && removed != target;
      std::vector<char> seen(n, 0);
      std::vector<NodeIndex> stack = {0};
      seen[0] = 1;
      while (!stack.empty()) {
        const NodeIndex u = stack.back();
        stack.pop_back();
        if (u == target) return true;
        for (NodeIndex v : dag.node(u).successors) {
          if (v == removed || seen[v]) continue;
          seen[v] = 1;
          stack.push_back(v);
        }
      }
      return false;
    };
    for (NodeIndex a = 0; a < n; ++a) {
      for (NodeIndex b = 0; b < n; ++b) {
        const bool brute =
            a == b || (a == 0) || !reachable_without(a, b);
        EXPECT_EQ(dom.dominates(a, b), brute)
            << "trial " << trial << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(DominatorTree, ChildrenPartitionNodes) {
  const DominatorTree dom(diamond());
  std::size_t total = 0;
  for (NodeIndex u = 0; u < dom.size(); ++u) total += dom.children(u).size();
  EXPECT_EQ(total, dom.size() - 1);  // every node except the entry has a parent
}

}  // namespace
}  // namespace esg::core
