#include "core/esg_scheduler.hpp"

#include <gtest/gtest.h>

#include "workload/applications.hpp"

namespace esg::core {
namespace {

struct Fixture {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
};

platform::QueueView make_view(const Fixture& f, std::size_t app_idx,
                              workload::NodeIndex stage, std::size_t queue_len,
                              workload::SloSetting slo) {
  platform::QueueView view;
  view.app = f.apps[app_idx].id();
  view.stage = stage;
  view.function = f.apps[app_idx].node(stage).function;
  view.dag = &f.apps[app_idx];
  view.profiles = &f.profiles;
  view.queue_length = queue_len;
  view.head_wait_ms = 0.0;
  view.oldest_elapsed_ms = 0.0;
  view.slo_ms = workload::slo_latency_ms(f.apps[app_idx], f.profiles, slo);
  view.now_ms = 0.0;
  return view;
}

TEST(EsgScheduler, RejectsZeroK) {
  Fixture f;
  EsgScheduler::Options opts;
  opts.k = 0;
  EXPECT_THROW(EsgScheduler(f.apps, f.profiles, opts), std::invalid_argument);
}

TEST(EsgScheduler, BuildsDistributionsForAllApps) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  for (const auto& app : f.apps) {
    EXPECT_NO_THROW(sched.distribution(app.id()));
  }
  EXPECT_THROW(sched.distribution(AppId(77)), std::out_of_range);
  EXPECT_EQ(sched.name(), "ESG");
}

TEST(EsgScheduler, PlanProducesFeasibleCandidates) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  // Queue already holds the largest possible batch, so no deferral.
  const auto view = make_view(f, 0, 0, 32, workload::SloSetting::kModerate);
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.defer);
  ASSERT_FALSE(plan.candidates.empty());
  for (const auto& c : plan.candidates) {
    EXPECT_LE(c.batch, view.queue_length);
    EXPECT_GE(c.batch, 1);
    EXPECT_GE(c.vcpus, 1);
    EXPECT_GE(c.vgpus, 1);
  }
  EXPECT_GT(plan.overhead_ms, 0.0);
  EXPECT_FALSE(plan.used_preplanned);  // ESG never pre-plans
}

TEST(EsgScheduler, DefersWhenBatchWouldPayOff) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  // Segmentation stage, relaxed budget, one queued job: batching the stage
  // is cheaper (the optimal path uses batch >= 2) and the untouched budget
  // leaves slack to wait for a second job.
  auto view = make_view(f, 0, 1, 1, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 0.0;
  view.oldest_elapsed_ms = 0.0;
  const auto plan = sched.plan(view);
  EXPECT_TRUE(plan.defer);
}

TEST(EsgScheduler, StopsDeferringOnceWaitConsumesSlack) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  auto view = make_view(f, 0, 0, 1, workload::SloSetting::kRelaxed);
  view.head_wait_ms = view.slo_ms;  // waited far beyond any slack
  view.oldest_elapsed_ms = view.head_wait_ms;
  const auto plan = sched.plan(view);
  EXPECT_FALSE(plan.defer);
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_LE(plan.candidates.front().batch, 1);
}

TEST(EsgScheduler, AdaptsToElapsedTime) {
  // When most of the SLO is consumed, the plan for a later stage must pick
  // configurations at least as fast as the unhurried plan's.
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);

  auto relaxed_view = make_view(f, 0, 1, 4, workload::SloSetting::kModerate);
  relaxed_view.head_wait_ms = relaxed_view.slo_ms;  // rule out deferral
  const auto relaxed_plan = sched.plan(relaxed_view);

  auto hurried_view = relaxed_view;
  hurried_view.oldest_elapsed_ms = 0.35 * hurried_view.slo_ms;
  const auto hurried_plan = sched.plan(hurried_view);

  ASSERT_FALSE(relaxed_plan.candidates.empty());
  ASSERT_FALSE(hurried_plan.candidates.empty());
  const auto& table = f.profiles.table(relaxed_view.function);
  const TimeMs relaxed_latency = table.at(relaxed_plan.candidates.front()).latency_ms;
  const TimeMs hurried_latency = table.at(hurried_plan.candidates.front()).latency_ms;
  EXPECT_LE(hurried_latency, relaxed_latency + 1e-9);

  // Once the SLO is unreachable, ESG deliberately stops racing and drains
  // cost-efficiently instead — but it always still proposes something.
  auto hopeless_view = relaxed_view;
  hopeless_view.oldest_elapsed_ms = 2.0 * hopeless_view.slo_ms;
  const auto hopeless_plan = sched.plan(hopeless_view);
  EXPECT_FALSE(hopeless_plan.defer);
  EXPECT_FALSE(hopeless_plan.candidates.empty());
}

TEST(EsgScheduler, LastStagePlansOnlyItself) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  // Stage 2 of a 3-stage pipeline with group size 3: the remaining group is
  // just that stage; candidates must be configs of its function.
  auto view = make_view(f, 0, 2, 4, workload::SloSetting::kModerate);
  view.head_wait_ms = view.slo_ms;  // rule out deferral
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.candidates.empty());
  const auto& table = f.profiles.table(view.function);
  for (const auto& c : plan.candidates) {
    EXPECT_TRUE(table.contains(c));
  }
}

TEST(EsgScheduler, CandidatesAreUnique) {
  Fixture f;
  EsgScheduler::Options opts;
  opts.k = 20;
  EsgScheduler sched(f.apps, f.profiles, opts);
  auto view = make_view(f, 3, 0, 16, workload::SloSetting::kRelaxed);
  view.head_wait_ms = view.slo_ms;  // force dispatch
  view.oldest_elapsed_ms = 0.0;
  const auto plan = sched.plan(view);
  for (std::size_t i = 0; i < plan.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.candidates.size(); ++j) {
      EXPECT_NE(plan.candidates[i], plan.candidates[j]);
    }
  }
}

TEST(EsgScheduler, PlacePrefersPredecessorInvoker) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(4);
  platform::PlacementContext ctx;
  ctx.app = f.apps[0].id();
  ctx.stage = 1;
  ctx.function = f.apps[0].node(1).function;
  ctx.config = profile::Config{1, 1, 1};
  ctx.predecessor_invoker = InvokerId(2);
  ctx.home_invoker = InvokerId(0);
  ctx.now_ms = 0.0;
  const auto chosen = sched.place(ctx, cluster);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(2));
}

TEST(EsgScheduler, PlaceFallsBackWhenPredecessorFull) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(3);
  cluster.invoker(InvokerId(2)).allocate(16, 7);  // predecessor saturated
  platform::PlacementContext ctx;
  ctx.app = f.apps[0].id();
  ctx.stage = 1;
  ctx.function = f.apps[0].node(1).function;
  ctx.config = profile::Config{1, 1, 1};
  ctx.predecessor_invoker = InvokerId(2);
  ctx.home_invoker = InvokerId(1);
  const auto chosen = sched.place(ctx, cluster);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(1));  // home invoker next
}

TEST(EsgScheduler, PlaceReturnsNulloptWhenClusterFull) {
  Fixture f;
  EsgScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(2);
  for (auto& inv : cluster.invokers()) inv.allocate(16, 7);
  platform::PlacementContext ctx;
  ctx.function = f.apps[0].node(0).function;
  ctx.config = profile::Config{1, 1, 1};
  ctx.home_invoker = InvokerId(0);
  EXPECT_FALSE(sched.place(ctx, cluster).has_value());
}

TEST(EsgScheduler, OverheadGrowsWithK) {
  Fixture f;
  EsgScheduler::Options small;
  small.k = 1;
  EsgScheduler::Options large;
  large.k = 80;
  EsgScheduler s1(f.apps, f.profiles, small);
  EsgScheduler s80(f.apps, f.profiles, large);
  auto view = make_view(f, 3, 0, 32, workload::SloSetting::kRelaxed);
  view.head_wait_ms = view.slo_ms;  // skip deferral
  const auto p1 = s1.plan(view);
  const auto p80 = s80.plan(view);
  EXPECT_LE(p1.overhead_ms, p80.overhead_ms);
}

}  // namespace
}  // namespace esg::core
