// Randomised property tests of the search stack over SYNTHETIC profile
// tables (not the Table 3 functions): ESG_1Q must agree with both the brute
// force and the A* reference on optimal cost and feasibility for arbitrary
// monotone profiles, and its invariants must hold regardless of the shape
// of the configuration space.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/astar_reference.hpp"
#include "core/brute_force.hpp"
#include "core/esg_1q.hpp"
#include "profile/profile_table.hpp"

namespace esg::core {
namespace {

/// A random function spec with random (but sane) scaling constants.
profile::FunctionSpec random_spec(RngStream& rng, std::uint32_t id) {
  profile::FunctionSpec spec;
  spec.id = FunctionId(id);
  spec.name = "synthetic_" + std::to_string(id);
  spec.model = "synthetic";
  spec.base_latency_ms = rng.uniform(50.0, 1'500.0);
  spec.cold_start_ms = rng.uniform(1'000.0, 25'000.0);
  spec.input_mb = rng.uniform(0.1, 4.0);
  spec.cpu_share = rng.uniform(0.1, 0.6);
  spec.cpu_parallel_fraction = rng.uniform(0.6, 0.95);
  spec.batch_efficiency = rng.uniform(0.1, 0.7);
  spec.max_batch = static_cast<std::uint16_t>(4 << rng.below(3));  // 4/8/16
  return spec;
}

profile::ProfileTable random_table(RngStream& rng, std::uint32_t id) {
  profile::ConfigSpaceOptions opts;
  opts.batches = {1, 2, 4, 8};
  opts.vcpus = {1, 2, 4};
  opts.vgpus = {1, 2};
  const auto spec = random_spec(rng, id);
  return profile::ProfileTable(spec, enumerate_configs(opts, spec),
                               profile::PriceModel{});
}

class RandomProfiles : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProfiles, Esg1qMatchesBruteForceAndAstar) {
  RngStream rng = RngFactory(GetParam()).stream("profiles");
  const std::size_t stages_n = 2 + rng.below(2);  // 2 or 3 stages

  std::vector<profile::ProfileTable> tables;
  tables.reserve(stages_n);
  for (std::size_t i = 0; i < stages_n; ++i) {
    tables.push_back(random_table(rng, static_cast<std::uint32_t>(i)));
  }
  std::vector<StageInput> stages;
  TimeMs base = 0.0;
  for (const auto& t : tables) {
    stages.push_back(StageInput{&t, 0});
    base += t.min_config_entry().latency_ms;
  }

  for (const double scale : {0.6, 0.9, 1.05, 1.5, 4.0}) {
    const TimeMs target = base * scale;
    const auto esg = esg_1q(stages, target);
    const auto brute = brute_force_search(stages, target);
    const auto astar = astar_reference(stages, target);

    ASSERT_EQ(esg.met_slo, brute.met_slo) << "seed " << GetParam()
                                          << " scale " << scale;
    ASSERT_EQ(astar.met_slo, brute.met_slo);
    if (brute.met_slo) {
      EXPECT_NEAR(esg.config_pq.front().total_per_job_cost,
                  brute.config_pq.front().total_per_job_cost, 1e-12);
      EXPECT_NEAR(astar.config_pq.front().total_per_job_cost,
                  brute.config_pq.front().total_per_job_cost, 1e-12);
      // Every returned path really is feasible and internally consistent.
      for (const auto& path : esg.config_pq) {
        EXPECT_LT(path.total_latency_ms, target);
        TimeMs lat = 0.0;
        Usd cost = 0.0;
        for (const auto& e : path.entries) {
          lat += e.latency_ms;
          cost += e.per_job_cost;
        }
        EXPECT_NEAR(lat, path.total_latency_ms, 1e-9);
        EXPECT_NEAR(cost, path.total_per_job_cost, 1e-9);
      }
    } else {
      // Fallback path is the per-stage fastest.
      TimeMs fastest = 0.0;
      for (const auto& t : tables) fastest += t.min_latency();
      ASSERT_EQ(esg.config_pq.size(), 1u);
      EXPECT_NEAR(esg.config_pq.front().total_latency_ms, fastest, 1e-9);
    }
  }
}

TEST_P(RandomProfiles, BatchCapNeverImprovesCost) {
  RngStream rng = RngFactory(GetParam() ^ 0xabcdef).stream("cap");
  std::vector<profile::ProfileTable> tables;
  for (std::uint32_t i = 0; i < 2; ++i) tables.push_back(random_table(rng, i));
  std::vector<StageInput> stages = {{&tables[0], 0}, {&tables[1], 0}};
  TimeMs base = 0.0;
  for (const auto& t : tables) base += t.min_config_entry().latency_ms;

  const auto free_batch = esg_1q(stages, 1.5 * base);
  stages[0].batch_cap = 1;
  const auto capped = esg_1q(stages, 1.5 * base);
  if (free_batch.met_slo && capped.met_slo) {
    // Restricting choice can only cost more (or equal).
    EXPECT_GE(capped.config_pq.front().total_per_job_cost,
              free_batch.config_pq.front().total_per_job_cost - 1e-12);
    EXPECT_EQ(capped.config_pq.front().entries.front().config.batch, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProfiles,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace esg::core
