#include "workload/dag.hpp"

#include <gtest/gtest.h>

#include "profile/function_spec.hpp"

namespace esg::workload {
namespace {

FunctionId fn(int i) { return FunctionId(static_cast<std::uint32_t>(i)); }

TEST(AppDag, PipelineBuilder) {
  const AppDag dag = make_pipeline(AppId(0), "p", {fn(0), fn(1), fn(2)});
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_TRUE(dag.is_linear());
  EXPECT_EQ(dag.entry(), 0u);
  EXPECT_EQ(dag.sinks(), (std::vector<NodeIndex>{2}));
  EXPECT_EQ(dag.node(0).successors, (std::vector<NodeIndex>{1}));
  EXPECT_EQ(dag.node(2).predecessors, (std::vector<NodeIndex>{1}));
}

TEST(AppDag, EmptyPipelineThrows) {
  EXPECT_THROW(make_pipeline(AppId(0), "p", {}), std::invalid_argument);
}

TEST(AppDag, RejectsSelfEdge) {
  AppDag dag(AppId(0), "x");
  dag.add_node(fn(0));
  EXPECT_THROW(dag.add_edge(0, 0), std::invalid_argument);
}

TEST(AppDag, RejectsDuplicateEdge) {
  AppDag dag(AppId(0), "x");
  dag.add_node(fn(0));
  dag.add_node(fn(1));
  dag.add_edge(0, 1);
  EXPECT_THROW(dag.add_edge(0, 1), std::invalid_argument);
}

TEST(AppDag, RejectsOutOfRangeEdge) {
  AppDag dag(AppId(0), "x");
  dag.add_node(fn(0));
  EXPECT_THROW(dag.add_edge(0, 5), std::invalid_argument);
}

TEST(AppDag, ValidateRejectsEmpty) {
  AppDag dag(AppId(0), "x");
  EXPECT_THROW(dag.validate(), std::invalid_argument);
}

TEST(AppDag, ValidateRejectsSecondSource) {
  AppDag dag(AppId(0), "x");
  dag.add_node(fn(0));
  dag.add_node(fn(1));
  dag.add_node(fn(2));
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);  // node 1 is a second source
  EXPECT_THROW(dag.validate(), std::invalid_argument);
}

TEST(AppDag, ValidateRejectsEntryWithPredecessors) {
  AppDag dag(AppId(0), "x");
  dag.add_node(fn(0));
  dag.add_node(fn(1));
  dag.add_edge(0, 1);
  dag.add_edge(1, 0);  // cycle back into the entry
  EXPECT_THROW(dag.validate(), std::invalid_argument);
}

TEST(AppDag, ValidateAcceptsDiamond) {
  AppDag dag(AppId(0), "diamond");
  for (int i = 0; i < 4; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  EXPECT_NO_THROW(dag.validate());
  EXPECT_FALSE(dag.is_linear());
  EXPECT_EQ(dag.sinks(), (std::vector<NodeIndex>{3}));
}

TEST(AppDag, TopoOrderRespectsEdges) {
  AppDag dag(AppId(0), "diamond");
  for (int i = 0; i < 4; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 2);
  dag.add_edge(0, 1);
  dag.add_edge(2, 3);
  dag.add_edge(1, 3);
  const auto order = dag.topo_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeIndex u = 0; u < dag.size(); ++u) {
    for (NodeIndex v : dag.node(u).successors) {
      EXPECT_LT(pos[u], pos[v]);
    }
  }
}

TEST(AppDag, MultiSinkDag) {
  AppDag dag(AppId(1), "fork");
  for (int i = 0; i < 3; ++i) dag.add_node(fn(i));
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  EXPECT_NO_THROW(dag.validate());
  EXPECT_EQ(dag.sinks(), (std::vector<NodeIndex>{1, 2}));
}

}  // namespace
}  // namespace esg::workload
