#include "workload/applications.hpp"

#include <gtest/gtest.h>

#include "profile/function_spec.hpp"

namespace esg::workload {
namespace {

using profile::Function;

TEST(Applications, FourAppsWithPaperPipelines) {
  const auto apps = builtin_applications();
  ASSERT_EQ(apps.size(), kBuiltinAppCount);

  const auto& ic = apps[0];
  EXPECT_EQ(ic.name(), "image_classification");
  ASSERT_EQ(ic.size(), 3u);
  EXPECT_EQ(ic.node(0).function, profile::id_of(Function::kSuperResolution));
  EXPECT_EQ(ic.node(1).function, profile::id_of(Function::kSegmentation));
  EXPECT_EQ(ic.node(2).function, profile::id_of(Function::kClassification));

  const auto& dr = apps[1];
  EXPECT_EQ(dr.name(), "depth_recognition");
  ASSERT_EQ(dr.size(), 3u);
  EXPECT_EQ(dr.node(0).function, profile::id_of(Function::kDeblur));

  const auto& be = apps[2];
  EXPECT_EQ(be.name(), "background_elimination");
  ASSERT_EQ(be.size(), 3u);
  EXPECT_EQ(be.node(2).function,
            profile::id_of(Function::kBackgroundRemoval));

  const auto& ec = apps[3];
  EXPECT_EQ(ec.name(), "expanded_image_classification");
  ASSERT_EQ(ec.size(), 5u);
  EXPECT_EQ(ec.node(4).function, profile::id_of(Function::kClassification));
}

TEST(Applications, AllPipelinesValidateAndAreLinear) {
  for (const auto& app : builtin_applications()) {
    EXPECT_NO_THROW(app.validate());
    EXPECT_TRUE(app.is_linear());
  }
}

TEST(SloSettings, Multipliers) {
  EXPECT_DOUBLE_EQ(slo_multiplier(SloSetting::kStrict), 0.8);
  EXPECT_DOUBLE_EQ(slo_multiplier(SloSetting::kModerate), 1.0);
  EXPECT_DOUBLE_EQ(slo_multiplier(SloSetting::kRelaxed), 1.2);
  EXPECT_EQ(to_string(SloSetting::kStrict), "strict");
  EXPECT_EQ(to_string(SloSetting::kRelaxed), "relaxed");
}

TEST(BaselineLatency, PipelineIsSumOfBaseTimes) {
  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = builtin_applications();
  // image_classification = super_resolution + segmentation + classification.
  const TimeMs expected = 86.0 + 293.0 + 147.0;
  EXPECT_NEAR(baseline_latency_ms(apps[0], profiles), expected, 1e-9);
}

TEST(BaselineLatency, ExpandedPipelineIsLongest) {
  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = builtin_applications();
  const TimeMs expanded = baseline_latency_ms(apps[3], profiles);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(expanded, baseline_latency_ms(apps[i], profiles));
  }
}

TEST(BaselineLatency, DiamondUsesCriticalPath) {
  const auto profiles = profile::ProfileSet::builtin();
  AppDag dag(AppId(9), "diamond");
  // deblur -> {super_resolution, segmentation} -> classification.
  dag.add_node(profile::id_of(Function::kDeblur));
  dag.add_node(profile::id_of(Function::kSuperResolution));  // 86 ms
  dag.add_node(profile::id_of(Function::kSegmentation));     // 293 ms
  dag.add_node(profile::id_of(Function::kClassification));
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  // Critical path takes the slower branch (segmentation).
  EXPECT_NEAR(baseline_latency_ms(dag, profiles), 319.0 + 293.0 + 147.0, 1e-9);
}

TEST(SloLatency, ScalesWithSetting) {
  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = builtin_applications();
  const TimeMs base = baseline_latency_ms(apps[0], profiles);
  EXPECT_NEAR(slo_latency_ms(apps[0], profiles, SloSetting::kStrict),
              0.8 * base, 1e-9);
  EXPECT_NEAR(slo_latency_ms(apps[0], profiles, SloSetting::kModerate), base,
              1e-9);
  EXPECT_NEAR(slo_latency_ms(apps[0], profiles, SloSetting::kRelaxed),
              1.2 * base, 1e-9);
}

}  // namespace
}  // namespace esg::workload
