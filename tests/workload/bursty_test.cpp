#include "workload/bursty_arrivals.hpp"

#include <gtest/gtest.h>

namespace esg::workload {
namespace {

RngStream stream(std::uint64_t seed = 7) {
  return RngFactory(seed).stream("bursty");
}

TEST(BurstyArrivals, RejectsBadInput) {
  EXPECT_THROW(BurstyArrivalGenerator({}, {}, stream()), std::invalid_argument);
  BurstProfile bad;
  bad.mean_calm_ms = 0.0;
  EXPECT_THROW(BurstyArrivalGenerator(bad, {AppId(0)}, stream()),
               std::invalid_argument);
}

TEST(BurstyArrivals, TimesStrictlyIncrease) {
  BurstyArrivalGenerator gen({}, {AppId(0), AppId(1)}, stream());
  TimeMs prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Arrival a = gen.next();
    EXPECT_GT(a.time_ms, prev);
    prev = a.time_ms;
  }
}

TEST(BurstyArrivals, IntervalsComeFromEitherPhaseRange) {
  BurstyArrivalGenerator gen({}, {AppId(0)}, stream());
  const auto calm = interval_range(LoadSetting::kLight);
  const auto burst = interval_range(LoadSetting::kHeavy);
  TimeMs prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Arrival a = gen.next();
    const TimeMs gap = a.time_ms - prev;
    prev = a.time_ms;
    const bool in_calm = gap >= calm.lo_ms && gap < calm.hi_ms;
    const bool in_burst = gap >= burst.lo_ms && gap < burst.hi_ms;
    EXPECT_TRUE(in_calm || in_burst) << "gap " << gap;
  }
}

TEST(BurstyArrivals, ProducesBothPhases) {
  BurstyArrivalGenerator gen({}, {AppId(0)}, stream());
  bool saw_calm = false;
  bool saw_burst = false;
  for (int i = 0; i < 20'000 && !(saw_calm && saw_burst); ++i) {
    gen.next();
    (gen.in_burst() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_calm);
  EXPECT_TRUE(saw_burst);
}

TEST(BurstyArrivals, DenserThanPureCalm) {
  // Mixing heavy bursts into a light baseline must produce more arrivals
  // than the pure light process over the same horizon.
  BurstyArrivalGenerator bursty({}, {AppId(0)}, stream(1));
  ArrivalGenerator calm(LoadSetting::kLight, {AppId(0)}, stream(1));
  const auto b = bursty.generate_until(120'000.0);
  const auto c = calm.generate_until(120'000.0);
  EXPECT_GT(b.size(), c.size());
}

TEST(BurstyArrivals, DeterministicForSameSeed) {
  BurstyArrivalGenerator a({}, {AppId(0), AppId(1)}, stream(9));
  BurstyArrivalGenerator b({}, {AppId(0), AppId(1)}, stream(9));
  for (int i = 0; i < 500; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.time_ms, y.time_ms);
    EXPECT_EQ(x.app, y.app);
  }
}

TEST(BurstyArrivals, HorizonRespected) {
  BurstyArrivalGenerator gen({}, {AppId(0)}, stream());
  for (const auto& a : gen.generate_until(30'000.0)) {
    EXPECT_LT(a.time_ms, 30'000.0);
  }
}

}  // namespace
}  // namespace esg::workload
