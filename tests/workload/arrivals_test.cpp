#include "workload/arrivals.hpp"

#include <gtest/gtest.h>

#include <map>

namespace esg::workload {
namespace {

RngStream stream() { return RngFactory(1234).stream("arrivals"); }

TEST(IntervalRange, PaperRanges) {
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kHeavy).lo_ms, 10.0);
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kHeavy).hi_ms, 16.8);
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kNormal).lo_ms, 20.0);
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kNormal).hi_ms, 33.6);
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kLight).lo_ms, 40.0);
  EXPECT_DOUBLE_EQ(interval_range(LoadSetting::kLight).hi_ms, 67.2);
}

TEST(LoadSetting, Names) {
  EXPECT_EQ(to_string(LoadSetting::kHeavy), "heavy");
  EXPECT_EQ(to_string(LoadSetting::kNormal), "normal");
  EXPECT_EQ(to_string(LoadSetting::kLight), "light");
}

TEST(ArrivalGenerator, RequiresApps) {
  EXPECT_THROW(ArrivalGenerator(LoadSetting::kLight, {}, stream()),
               std::invalid_argument);
}

TEST(ArrivalGenerator, TimesStrictlyIncrease) {
  ArrivalGenerator gen(LoadSetting::kHeavy, {AppId(0), AppId(1)}, stream());
  TimeMs prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Arrival a = gen.next();
    EXPECT_GT(a.time_ms, prev);
    prev = a.time_ms;
  }
}

TEST(ArrivalGenerator, IntervalsWithinRange) {
  ArrivalGenerator gen(LoadSetting::kNormal, {AppId(0)}, stream());
  TimeMs prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Arrival a = gen.next();
    const TimeMs gap = a.time_ms - prev;
    EXPECT_GE(gap, 20.0);
    EXPECT_LT(gap, 33.6);
    prev = a.time_ms;
  }
}

TEST(ArrivalGenerator, AppsSampledRoughlyUniformly) {
  std::vector<AppId> apps = {AppId(0), AppId(1), AppId(2), AppId(3)};
  ArrivalGenerator gen(LoadSetting::kHeavy, apps, stream());
  std::map<std::uint32_t, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().app.get()];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [app, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(n), 0.25, 0.02);
  }
}

TEST(ArrivalGenerator, GenerateUntilRespectsHorizon) {
  ArrivalGenerator gen(LoadSetting::kLight, {AppId(0)}, stream());
  const auto arrivals = gen.generate_until(10'000.0);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& a : arrivals) EXPECT_LT(a.time_ms, 10'000.0);
  // Light load: mean interval 53.6 ms -> about 186 arrivals in 10 s.
  EXPECT_GT(arrivals.size(), 150u);
  EXPECT_LT(arrivals.size(), 260u);
}

TEST(ArrivalGenerator, HeavyLoadDenserThanLight) {
  ArrivalGenerator heavy(LoadSetting::kHeavy, {AppId(0)}, stream());
  ArrivalGenerator light(LoadSetting::kLight, {AppId(0)}, stream());
  EXPECT_GT(heavy.generate_until(5'000.0).size(),
            2 * light.generate_until(5'000.0).size());
}

TEST(ArrivalGenerator, TimesStrictlyIncreaseOverLongHorizons) {
  // 200k draws (~45 min of heavy load): double accumulation must never
  // stall or go backwards even when the clock is large relative to a gap.
  ArrivalGenerator gen(LoadSetting::kHeavy, {AppId(0), AppId(1)}, stream());
  TimeMs prev = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    const Arrival a = gen.next();
    ASSERT_GT(a.time_ms, prev) << "draw " << i;
    prev = a.time_ms;
  }
}

TEST(ArrivalGenerator, GenerateUntilExcludesArrivalAtHorizon) {
  // Find the first arrival time with a clone, then use it as the horizon:
  // an arrival at exactly time == horizon_ms must be excluded.
  ArrivalGenerator probe(LoadSetting::kNormal, {AppId(0)}, stream());
  const TimeMs first = probe.next().time_ms;
  ArrivalGenerator gen(LoadSetting::kNormal, {AppId(0)}, stream());
  EXPECT_TRUE(gen.generate_until(first).empty());
  // The excluded draw is consumed, not replayed: the next window starts
  // strictly after it.
  const auto rest = gen.generate_until(first + 1'000.0);
  ASSERT_FALSE(rest.empty());
  EXPECT_GT(rest.front().time_ms, first);
}

TEST(ArrivalGenerator, MeanIntervalMatchesSectionFourMidpoints) {
  // Uniform inter-arrival over [lo, hi) -> mean is the range midpoint
  // (Section 4.1: heavy 13.4 ms, normal 26.8 ms, light 53.6 ms).
  const struct {
    LoadSetting load;
    double midpoint_ms;
  } cases[] = {{LoadSetting::kHeavy, 13.4},
               {LoadSetting::kNormal, 26.8},
               {LoadSetting::kLight, 53.6}};
  for (const auto& c : cases) {
    ArrivalGenerator gen(c.load, {AppId(0)}, stream());
    constexpr int kDraws = 50'000;
    TimeMs prev = 0.0, sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const Arrival a = gen.next();
      sum += a.time_ms - prev;
      prev = a.time_ms;
    }
    const double mean = sum / kDraws;
    EXPECT_NEAR(mean, c.midpoint_ms, 0.02 * c.midpoint_ms)
        << to_string(c.load);
  }
}

TEST(ArrivalGenerator, DeterministicForSameSeed) {
  ArrivalGenerator a(LoadSetting::kHeavy, {AppId(0), AppId(1)}, stream());
  ArrivalGenerator b(LoadSetting::kHeavy, {AppId(0), AppId(1)}, stream());
  for (int i = 0; i < 100; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.time_ms, y.time_ms);
    EXPECT_EQ(x.app, y.app);
  }
}

}  // namespace
}  // namespace esg::workload
