// The scoped hierarchical profiler is always compiled (only the
// ESG_PROF_SCOPE macro is gated behind -DESG_PROFILE=ON), so these tests
// exercise enter/leave, the RAII wrapper, and every unwind edge case in the
// default OFF build too.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "perf/profiler.hpp"

namespace esg::perf {
namespace {

/// Finds one scope by path in a snapshot; fails the test when absent.
Profiler::ScopeStats find_scope(const std::vector<Profiler::ScopeStats>& all,
                                const std::string& path) {
  for (const auto& s : all) {
    if (s.path == path) return s;
  }
  ADD_FAILURE() << "scope not found: " << path;
  return {};
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { Profiler::instance().reset(); }
  void TearDown() override { Profiler::instance().reset(); }
};

TEST_F(ProfilerTest, StartsEmpty) {
  EXPECT_TRUE(Profiler::instance().empty());
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
}

TEST_F(ProfilerTest, NestedScopesBuildPaths) {
  auto& p = Profiler::instance();
  Profiler::Node* outer = p.enter("run");
  Profiler::Node* inner = p.enter("step");
  p.leave(inner, 100);
  p.leave(outer, 500);

  const auto all = p.snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].path, "run");
  EXPECT_EQ(all[0].depth, 0);
  EXPECT_EQ(all[1].path, "run/step");
  EXPECT_EQ(all[1].depth, 1);
}

TEST_F(ProfilerTest, RepeatedScopeReusesNode) {
  auto& p = Profiler::instance();
  for (int i = 0; i < 3; ++i) p.leave(p.enter("scan"), 10);
  const auto all = p.snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].calls, 3u);
  EXPECT_EQ(all[0].total_ns, 30u);
}

TEST_F(ProfilerTest, SameLabelUnderDifferentParentsIsTwoNodes) {
  auto& p = Profiler::instance();
  Profiler::Node* a = p.enter("a");
  p.leave(p.enter("plan"), 10);
  p.leave(a, 20);
  Profiler::Node* b = p.enter("b");
  p.leave(p.enter("plan"), 30);
  p.leave(b, 40);

  const auto all = p.snapshot();
  EXPECT_EQ(find_scope(all, "a/plan").total_ns, 10u);
  EXPECT_EQ(find_scope(all, "b/plan").total_ns, 30u);
}

TEST_F(ProfilerTest, ReentrantScopeNestsAsChild) {
  auto& p = Profiler::instance();
  Profiler::Node* outer = p.enter("recurse");
  Profiler::Node* inner = p.enter("recurse");
  EXPECT_NE(outer, inner);
  p.leave(inner, 5);
  p.leave(outer, 20);

  const auto all = p.snapshot();
  EXPECT_EQ(find_scope(all, "recurse").calls, 1u);
  EXPECT_EQ(find_scope(all, "recurse/recurse").calls, 1u);
  // Self time subtracts the nested child.
  EXPECT_EQ(find_scope(all, "recurse").self_ns, 15u);
}

TEST_F(ProfilerTest, MinMaxMeanAndSelf) {
  auto& p = Profiler::instance();
  Profiler::Node* node = p.enter("work");
  p.leave(node, 10);
  p.leave(p.enter("work"), 30);

  const auto s = find_scope(p.snapshot(), "work");
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.min_ns, 10u);
  EXPECT_EQ(s.max_ns, 30u);
  EXPECT_EQ(s.total_ns, 40u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 20.0);
  EXPECT_EQ(s.self_ns, 40u);  // no children
}

TEST_F(ProfilerTest, ScopedProfileRecordsOnEarlyReturn) {
  auto& p = Profiler::instance();
  const auto fn = [](int x) {
    ScopedProfile scope("early");
    if (x > 0) return x;  // early return must still record the scope
    return -x;
  };
  EXPECT_EQ(fn(7), 7);
  const auto all = p.snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].path, "early");
  EXPECT_EQ(all[0].calls, 1u);
}

TEST_F(ProfilerTest, ScopedProfileUnwindsThroughExceptions) {
  auto& p = Profiler::instance();
  Profiler::Node* outer = p.enter("outer");
  try {
    ScopedProfile scope("throws");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The thrown-through scope recorded itself and restored "outer" as
  // current: a new scope must open under outer, not under "throws".
  p.leave(p.enter("after"), 1);
  p.leave(outer, 100);

  const auto all = p.snapshot();
  EXPECT_EQ(find_scope(all, "outer/throws").calls, 1u);
  EXPECT_EQ(find_scope(all, "outer/after").calls, 1u);
}

TEST_F(ProfilerTest, LeaveOnDetachedNodeFallsBackToRoot) {
  auto& p = Profiler::instance();
  Profiler::Node* node = p.enter("solo");
  // Simulate a node whose parent pointer is gone mid-unwind; leave() must
  // restore the root rather than dereference null.
  node->parent = nullptr;
  p.leave(node, 10);
  p.leave(p.enter("next"), 1);
  const auto all = p.snapshot();
  EXPECT_EQ(find_scope(all, "next").depth, 0);
}

TEST_F(ProfilerTest, ResetClearsEverything) {
  auto& p = Profiler::instance();
  p.leave(p.enter("gone"), 10);
  EXPECT_FALSE(p.empty());
  p.reset();
  EXPECT_TRUE(p.empty());
  // And the current scope is back at the root.
  p.leave(p.enter("fresh"), 1);
  EXPECT_EQ(p.snapshot()[0].depth, 0);
}

TEST_F(ProfilerTest, BucketOfIsLog2) {
  EXPECT_EQ(Profiler::bucket_of(0), 0);
  EXPECT_EQ(Profiler::bucket_of(1), 0);
  EXPECT_EQ(Profiler::bucket_of(2), 1);
  EXPECT_EQ(Profiler::bucket_of(3), 1);
  EXPECT_EQ(Profiler::bucket_of(1024), 10);
  EXPECT_EQ(Profiler::bucket_of(1025), 10);
}

TEST_F(ProfilerTest, P99IsABucketUpperBound) {
  auto& p = Profiler::instance();
  // 99 fast calls (~1 us) and 1 slow call (~1 ms): p99 must land at the
  // fast bucket's upper bound, not at the outlier.
  for (int i = 0; i < 99; ++i) p.leave(p.enter("mixed"), 1000);
  p.leave(p.enter("mixed"), 1'000'000);

  const auto s = find_scope(p.snapshot(), "mixed");
  EXPECT_GE(s.p99_ns, 1000.0);
  EXPECT_LE(s.p99_ns, 2048.0);
  EXPECT_EQ(s.max_ns, 1'000'000u);
}

TEST_F(ProfilerTest, P99OfUniformCallsCoversTheValue) {
  auto& p = Profiler::instance();
  for (int i = 0; i < 100; ++i) p.leave(p.enter("uniform"), 700);
  const auto s = find_scope(p.snapshot(), "uniform");
  // 700 ns lives in bucket 9 ([512, 1024)); the approximate p99 reports the
  // bucket's upper bound.
  EXPECT_DOUBLE_EQ(s.p99_ns, 1024.0);
}

#ifdef ESG_PROFILE_BUILD
TEST_F(ProfilerTest, MacroRecordsWhenCompiledIn) {
  {
    ESG_PROF_SCOPE("macro/on");
  }
  EXPECT_EQ(Profiler::instance().snapshot().at(0).path, "macro/on");
}
#else
TEST_F(ProfilerTest, MacroIsANoOpWhenCompiledOut) {
  {
    ESG_PROF_SCOPE("macro/off");
  }
  EXPECT_TRUE(Profiler::instance().empty());
}
#endif

}  // namespace
}  // namespace esg::perf
