// Diff semantics of the perf/BENCH JSON comparator: only *_per_sec leaves
// gate the verdict, rows line up by their key fields rather than position,
// meta.* provenance never participates, and malformed input is a
// std::invalid_argument (the CLI maps it to exit code 2).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "perf/perfdiff.hpp"

namespace esg::perf {
namespace {

const DiffLine* find_line(const DiffResult& result, const std::string& metric) {
  for (const auto& line : result.lines) {
    if (line.metric == metric) return &line;
  }
  return nullptr;
}

std::string run_doc(double events_per_sec, double wall_seconds) {
  return R"({"schema": "esg.perf.v1",)"
         R"( "meta": {"host": "a", "cpus": 1},)"
         R"( "run": {"scheduler": "ESG", "events_per_sec": )" +
         std::to_string(events_per_sec) +
         R"(, "wall_seconds": )" + std::to_string(wall_seconds) + "}}";
}

TEST(PerfDiffTest, IdenticalDocumentsDoNotRegress) {
  const std::string doc = run_doc(1000.0, 1.0);
  const DiffResult result = diff_json(doc, doc, DiffOptions{});
  EXPECT_FALSE(result.regressed);
  EXPECT_TRUE(result.notes.empty());
  const DiffLine* line = find_line(result, "run.events_per_sec");
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->gating);
  EXPECT_FALSE(line->regression);
  EXPECT_DOUBLE_EQ(line->delta_frac, 0.0);
}

TEST(PerfDiffTest, DropPastThresholdIsARegression) {
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(850.0, 1.0), DiffOptions{});
  EXPECT_TRUE(result.regressed);
  const DiffLine* line = find_line(result, "run.events_per_sec");
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->regression);
  EXPECT_NEAR(line->delta_frac, -0.15, 1e-9);
}

TEST(PerfDiffTest, DropWithinThresholdPasses) {
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(950.0, 1.0), DiffOptions{});
  EXPECT_FALSE(result.regressed);
}

TEST(PerfDiffTest, ThresholdBoundaryIsNotARegression) {
  // delta == -threshold exactly: the contract is strictly-worse-than.
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(900.0, 1.0), DiffOptions{});
  EXPECT_FALSE(result.regressed);
}

TEST(PerfDiffTest, TighterThresholdCatchesSmallerDrops) {
  DiffOptions options;
  options.threshold = 0.01;
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(950.0, 1.0), options);
  EXPECT_TRUE(result.regressed);
}

TEST(PerfDiffTest, ImprovementIsNotARegression) {
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(2000.0, 1.0), DiffOptions{});
  EXPECT_FALSE(result.regressed);
}

TEST(PerfDiffTest, NonGatingMetricsNeverGate) {
  // Wall time tripled — informational only, because wall_seconds does not
  // end in _per_sec.
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(1000.0, 3.0), DiffOptions{});
  EXPECT_FALSE(result.regressed);
  const DiffLine* line = find_line(result, "run.wall_seconds");
  ASSERT_NE(line, nullptr);
  EXPECT_FALSE(line->gating);
}

TEST(PerfDiffTest, MetaLeavesAreSkipped) {
  const std::string base = R"({"meta": {"cpus": 1}, "run": {"x": 1}})";
  const std::string cur = R"({"meta": {"cpus": 64}, "run": {"x": 1}})";
  const DiffResult result = diff_json(base, cur, DiffOptions{});
  EXPECT_EQ(find_line(result, "meta.cpus"), nullptr);
  EXPECT_TRUE(result.notes.empty());
}

TEST(PerfDiffTest, RowsMatchByKeyNotPosition) {
  const std::string base = R"({"rows": [
    {"scheduler": "ESG", "rate_scale": 1, "events_per_sec": 100},
    {"scheduler": "Orion", "rate_scale": 1, "events_per_sec": 200}]})";
  // Same rows, reversed order; Orion regressed.
  const std::string cur = R"({"rows": [
    {"scheduler": "Orion", "rate_scale": 1, "events_per_sec": 100},
    {"scheduler": "ESG", "rate_scale": 1, "events_per_sec": 100}]})";
  const DiffResult result = diff_json(base, cur, DiffOptions{});
  EXPECT_TRUE(result.notes.empty()) << "reordered rows must still line up";
  EXPECT_TRUE(result.regressed);
  const DiffLine* esg =
      find_line(result, "rows[scheduler=ESG,rate_scale=1].events_per_sec");
  ASSERT_NE(esg, nullptr);
  EXPECT_FALSE(esg->regression);
  const DiffLine* orion =
      find_line(result, "rows[scheduler=Orion,rate_scale=1].events_per_sec");
  ASSERT_NE(orion, nullptr);
  EXPECT_TRUE(orion->regression);
}

TEST(PerfDiffTest, OneSidedMetricsBecomeNotes) {
  const std::string base = R"({"run": {"old_counter": 5, "shared": 1}})";
  const std::string cur = R"({"run": {"new_counter": 6, "shared": 1}})";
  const DiffResult result = diff_json(base, cur, DiffOptions{});
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.notes.size(), 2u);
  EXPECT_EQ(result.notes[0], "missing in current: run.old_counter");
  EXPECT_EQ(result.notes[1], "missing in baseline: run.new_counter");
}

TEST(PerfDiffTest, MalformedJsonThrowsInvalidArgument) {
  EXPECT_THROW(diff_json("{", "{}", DiffOptions{}), std::invalid_argument);
  EXPECT_THROW(diff_json("{}", "[1, 2,]", DiffOptions{}),
               std::invalid_argument);
  EXPECT_THROW(diff_json("{} trailing", "{}", DiffOptions{}),
               std::invalid_argument);
  EXPECT_THROW(diff_json(R"({"x": nan})", "{}", DiffOptions{}),
               std::invalid_argument);
}

TEST(PerfDiffTest, UnreadableFileThrowsInvalidArgument) {
  EXPECT_THROW(
      diff_files("/nonexistent/a.json", "/nonexistent/b.json", DiffOptions{}),
      std::invalid_argument);
}

TEST(PerfDiffTest, ZeroBaselineDoesNotDivide) {
  const DiffResult result =
      diff_json(R"({"run": {"events_per_sec": 0}})",
                R"({"run": {"events_per_sec": 10}})", DiffOptions{});
  const DiffLine* line = find_line(result, "run.events_per_sec");
  ASSERT_NE(line, nullptr);
  EXPECT_DOUBLE_EQ(line->delta_frac, 1.0);
  EXPECT_FALSE(result.regressed);
}

TEST(PerfDiffTest, GateSuffixPromotesQualityMetrics) {
  // attainment is informational by default but gates once promoted.
  const std::string base = R"({"rows": [{"scheduler": "ESG",
    "attainment": 0.80, "events_per_sec": 100}]})";
  const std::string cur = R"({"rows": [{"scheduler": "ESG",
    "attainment": 0.60, "events_per_sec": 100}]})";
  EXPECT_FALSE(diff_json(base, cur, DiffOptions{}).regressed);
  DiffOptions options;
  options.gate_suffixes.push_back("attainment");
  const DiffResult result = diff_json(base, cur, options);
  EXPECT_TRUE(result.regressed);
  const DiffLine* line =
      find_line(result, "rows[scheduler=ESG].attainment");
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->gating);
  EXPECT_TRUE(line->regression);
  // The default *_per_sec gate keeps working alongside the extra suffix.
  const DiffLine* eps =
      find_line(result, "rows[scheduler=ESG].events_per_sec");
  ASSERT_NE(eps, nullptr);
  EXPECT_TRUE(eps->gating);
}

TEST(PerfDiffTest, MinusPrefixedSuffixGatesLowerIsBetter) {
  const std::string base = R"({"run": {"cold_start_rate": 0.10}})";
  const std::string worse = R"({"run": {"cold_start_rate": 0.20}})";
  const std::string better = R"({"run": {"cold_start_rate": 0.05}})";
  DiffOptions options;
  options.gate_suffixes.push_back("-cold_start_rate");
  // A rise past the threshold regresses; a drop is an improvement.
  EXPECT_TRUE(diff_json(base, worse, options).regressed);
  EXPECT_FALSE(diff_json(base, better, options).regressed);
  // Without the promotion the same rise is informational.
  EXPECT_FALSE(diff_json(base, worse, DiffOptions{}).regressed);
}

TEST(PerfDiffTest, ReportOnlyStillReportsRegressions) {
  // report_only changes only the CLI exit code; the result keeps the flag
  // so CI logs still show what would have failed.
  DiffOptions options;
  options.report_only = true;
  const DiffResult result =
      diff_json(run_doc(1000.0, 1.0), run_doc(500.0, 1.0), options);
  EXPECT_TRUE(result.regressed);
}

}  // namespace
}  // namespace esg::perf
