// Determinism and plumbing of the always-on hot-path counters (DESIGN.md
// §13): two runs with the same seed must produce bit-identical counters —
// that is the whole point of keeping them separate from the wall-clock
// timers — and the merged RunOutput view must line up with what the
// components actually did.
#include <gtest/gtest.h>

#include <string_view>

#include "exp/scenario.hpp"
#include "perf/counters.hpp"
#include "tenant/tenant_spec.hpp"

namespace esg::perf {
namespace {

exp::Scenario small_scenario(exp::SchedulerKind kind, std::uint64_t seed) {
  exp::Scenario s;
  s.scheduler = kind;
  s.horizon_ms = 1'000.0;
  s.seed = seed;
  return s;
}

TEST(CountersTest, MergeSumsEveryField) {
  Counters a;
  Counters b;
  // Give each field a distinct value on both sides via the descriptor table
  // so a forgotten field in merge() cannot hide.
  for (std::size_t i = 0; i < kCounterFieldCount; ++i) {
    a.*kCounterFields[i].member = i + 1;
    b.*kCounterFields[i].member = 100 * (i + 1);
  }
  a.merge(b);
  for (std::size_t i = 0; i < kCounterFieldCount; ++i) {
    EXPECT_EQ(a.*kCounterFields[i].member, 101 * (i + 1))
        << kCounterFields[i].name;
  }
}

TEST(CountersTest, FieldNamesAreUnique) {
  for (std::size_t i = 0; i < kCounterFieldCount; ++i) {
    for (std::size_t j = i + 1; j < kCounterFieldCount; ++j) {
      EXPECT_STRNE(kCounterFields[i].name, kCounterFields[j].name);
    }
  }
}

TEST(CountersTest, DescriptorTableCarriesPrewarmAndForecastAccounting) {
  // These names feed the perf/* gauge stream and the stats JSONL schema;
  // removing one would silently drop the telemetry consumers key on.
  const char* required[] = {"prewarms_issued", "prewarms_skipped",
                           "forecasts_issued", "forecasts_consumed"};
  for (const char* name : required) {
    bool found = false;
    for (const CounterField& f : kCounterFields) {
      found |= std::string_view(f.name) == name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(CountersTest, PrewarmAccountingReachesTheMergedView) {
  exp::Scenario s = small_scenario(exp::SchedulerKind::kEsg, 42);
  s.horizon_ms = 4'000.0;
  const exp::RunOutput out = exp::run_scenario(s);
  // A multi-second run drives the prewarm manager; whichever way each
  // decision went, the issued/skipped pair must be plumbed through.
  EXPECT_GT(out.counters.prewarms_issued + out.counters.prewarms_skipped, 0u);
}

TEST(CountersTest, SameSeedSameCounters) {
  const exp::Scenario s = small_scenario(exp::SchedulerKind::kEsg, 42);
  const exp::RunOutput first = exp::run_scenario(s);
  const exp::RunOutput second = exp::run_scenario(s);
  for (const CounterField& f : kCounterFields) {
    EXPECT_EQ(first.counters.*f.member, second.counters.*f.member) << f.name;
  }
}

TEST(CountersTest, DifferentSeedsDiverge) {
  const exp::RunOutput a =
      exp::run_scenario(small_scenario(exp::SchedulerKind::kEsg, 1));
  const exp::RunOutput b =
      exp::run_scenario(small_scenario(exp::SchedulerKind::kEsg, 2));
  bool any_differs = false;
  for (const CounterField& f : kCounterFields) {
    any_differs |= a.counters.*f.member != b.counters.*f.member;
  }
  EXPECT_TRUE(any_differs);
}

TEST(CountersTest, EventLoopInvariants) {
  const exp::RunOutput out =
      exp::run_scenario(small_scenario(exp::SchedulerKind::kEsg, 42));
  const Counters& c = out.counters;
  EXPECT_GT(c.events_scheduled, 0u);
  EXPECT_GT(c.events_fired, 0u);
  // Every fired event was scheduled and popped; cancelled events never fire.
  EXPECT_LE(c.events_fired, c.events_scheduled);
  EXPECT_LE(c.heap_pops, c.heap_pushes);
  EXPECT_LE(c.events_fired + c.events_cancelled, c.events_scheduled);
  // The controller did real work on a 1 s arrival window.
  EXPECT_GT(c.scan_rounds, 0u);
  EXPECT_GT(c.queue_visits, 0u);
  EXPECT_GT(c.plans, 0u);
  EXPECT_GE(c.plans, c.replans);
  EXPECT_GT(c.dispatches, 0u);
  // Warm hits are dispatches that found a container; misses are cold
  // provisions — both bounded by the work that actually happened.
  EXPECT_LE(c.warm_hits, c.dispatches);
  EXPECT_GT(c.warm_misses, 0u);
}

TEST(CountersTest, SingleTenantRunHasNoVirtualTimeUpdates) {
  const exp::RunOutput out =
      exp::run_scenario(small_scenario(exp::SchedulerKind::kEsg, 42));
  EXPECT_EQ(out.counters.vt_updates, 0u);
}

TEST(CountersTest, TenantedRunAdvancesVirtualTime) {
  exp::Scenario s = small_scenario(exp::SchedulerKind::kEsg, 42);
  s.horizon_ms = 2'000.0;
  s.tenants = tenant::parse_tenant_spec("a:1:apps=0,1;b:1:apps=2,3");
  const exp::RunOutput out = exp::run_scenario(s);
  EXPECT_GT(out.counters.vt_updates, 0u);
}

TEST(CountersTest, EverySchedulerKindPopulatesCounters) {
  std::vector<exp::SchedulerKind> kinds(exp::all_schedulers().begin(),
                                        exp::all_schedulers().end());
  kinds.push_back(exp::SchedulerKind::kMqfqSticky);
  for (const exp::SchedulerKind kind : kinds) {
    const exp::RunOutput out = exp::run_scenario(small_scenario(kind, 42));
    EXPECT_GT(out.counters.events_fired, 0u)
        << std::string(exp::to_string(kind));
    EXPECT_GT(out.counters.dispatches, 0u)
        << std::string(exp::to_string(kind));
  }
}

}  // namespace
}  // namespace esg::perf
