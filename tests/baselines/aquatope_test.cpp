#include "baselines/aquatope.hpp"

#include <gtest/gtest.h>

#include "workload/applications.hpp"

namespace esg::baselines {
namespace {

struct Fixture {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
  RngFactory rng{99};
};

AquatopeScheduler::Options small_training() {
  AquatopeScheduler::Options o;
  o.bootstrap_samples = 30;
  o.rounds = 8;
  o.samples_per_round = 5;
  o.ei_pool = 64;
  return o;
}

platform::QueueView make_view(const Fixture& f, std::size_t app_idx,
                              workload::NodeIndex stage, std::size_t queue_len) {
  platform::QueueView view;
  view.app = f.apps[app_idx].id();
  view.stage = stage;
  view.function = f.apps[app_idx].node(stage).function;
  view.dag = &f.apps[app_idx];
  view.profiles = &f.profiles;
  view.queue_length = queue_len;
  view.slo_ms = workload::slo_latency_ms(f.apps[app_idx], f.profiles,
                                         workload::SloSetting::kModerate);
  return view;
}

TEST(Aquatope, LearnsOneConfigPerStagePerApp) {
  Fixture f;
  AquatopeScheduler sched(f.apps, f.profiles, workload::SloSetting::kModerate,
                          f.rng, small_training());
  EXPECT_EQ(sched.name(), "Aquatope");
  for (const auto& app : f.apps) {
    const auto& configs = sched.learned(app.id());
    EXPECT_EQ(configs.size(), app.size());
    for (workload::NodeIndex s = 0; s < app.size(); ++s) {
      EXPECT_TRUE(f.profiles.table(app.node(s).function).contains(configs[s]));
    }
  }
  EXPECT_THROW(sched.learned(AppId(42)), std::out_of_range);
}

TEST(Aquatope, TrainingIsDeterministicPerSeed) {
  Fixture f;
  AquatopeScheduler a(f.apps, f.profiles, workload::SloSetting::kModerate,
                      RngFactory(5), small_training());
  AquatopeScheduler b(f.apps, f.profiles, workload::SloSetting::kModerate,
                      RngFactory(5), small_training());
  for (const auto& app : f.apps) {
    EXPECT_EQ(a.learned(app.id()), b.learned(app.id()));
  }
}

TEST(Aquatope, LearnedConfigRoughlyMeetsSlo) {
  Fixture f;
  AquatopeScheduler::Options training = small_training();
  training.bootstrap_samples = 60;
  training.rounds = 15;
  AquatopeScheduler sched(f.apps, f.profiles, workload::SloSetting::kModerate,
                          f.rng, training);
  // The BO objective penalises SLO violations 10x: the learned expected
  // latency should be at most moderately above the SLO.
  for (const auto& app : f.apps) {
    TimeMs expected = 0.0;
    const auto& configs = sched.learned(app.id());
    for (workload::NodeIndex s = 0; s < app.size(); ++s) {
      expected += f.profiles.table(app.node(s).function).at(configs[s]).latency_ms;
    }
    const TimeMs slo = workload::slo_latency_ms(app, f.profiles,
                                                workload::SloSetting::kModerate);
    // "Roughly": the BO objective trades the 10x violation penalty against
    // cost, and a shortened offline phase leaves some slack.
    EXPECT_LT(expected, 1.6 * slo) << app.name();
  }
}

TEST(Aquatope, PlanIsStaticAndCountsMisses) {
  Fixture f;
  AquatopeScheduler sched(f.apps, f.profiles, workload::SloSetting::kModerate,
                          f.rng, small_training());
  const auto& learned = sched.learned(f.apps[0].id());

  auto later = make_view(f, 0, 1, 64);
  const auto plan = sched.plan(later);
  ASSERT_EQ(plan.candidates.size(), 1u);
  EXPECT_EQ(plan.candidates.front(), learned[1]);
  EXPECT_TRUE(plan.used_preplanned);
  EXPECT_FALSE(plan.preplanned_miss);  // queue holds plenty of jobs
  EXPECT_EQ(plan.overhead_ms, 0.0);    // pre-trained: negligible overhead

  auto starved = later;
  starved.queue_length = 0;
  const auto missed = sched.plan(starved);
  EXPECT_TRUE(missed.preplanned_miss);
}

TEST(Aquatope, FirstStageDispatchesWhenQueueSuffices) {
  Fixture f;
  AquatopeScheduler sched(f.apps, f.profiles, workload::SloSetting::kModerate,
                          f.rng, small_training());
  auto view = make_view(f, 0, 0, 64);
  view.head_wait_ms = 1e9;
  const auto plan = sched.plan(view);
  EXPECT_FALSE(plan.defer);
  ASSERT_EQ(plan.candidates.size(), 1u);
  EXPECT_FALSE(plan.used_preplanned);  // first stage is the planning point
}

TEST(Aquatope, BiggerPenaltyFavoursFasterConfigs) {
  Fixture f;
  AquatopeScheduler::Options lax = small_training();
  lax.penalty = 0.0;  // pure cost minimisation
  AquatopeScheduler cheap(f.apps, f.profiles, workload::SloSetting::kStrict,
                          RngFactory(7), lax);
  AquatopeScheduler::Options harsh = small_training();
  harsh.penalty = 50.0;
  AquatopeScheduler fast(f.apps, f.profiles, workload::SloSetting::kStrict,
                         RngFactory(7), harsh);
  // Expected latency of the zero-penalty learner is never below the
  // violation-averse learner's for the same app (statistically; check app 3,
  // the longest pipeline, where the contrast is starkest).
  const auto& app = f.apps[3];
  auto expected_latency = [&](const AquatopeScheduler& s) {
    TimeMs t = 0.0;
    const auto& configs = s.learned(app.id());
    for (workload::NodeIndex n = 0; n < app.size(); ++n) {
      t += f.profiles.table(app.node(n).function).at(configs[n]).latency_ms;
    }
    return t;
  };
  EXPECT_GE(expected_latency(cheap), expected_latency(fast));
}

}  // namespace
}  // namespace esg::baselines
