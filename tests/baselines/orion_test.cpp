#include "baselines/orion.hpp"

#include <gtest/gtest.h>

#include "workload/applications.hpp"

namespace esg::baselines {
namespace {

struct Fixture {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
};

platform::QueueView make_view(const Fixture& f, std::size_t app_idx,
                              workload::NodeIndex stage, std::size_t queue_len,
                              workload::SloSetting slo) {
  platform::QueueView view;
  view.app = f.apps[app_idx].id();
  view.stage = stage;
  view.function = f.apps[app_idx].node(stage).function;
  view.dag = &f.apps[app_idx];
  view.profiles = &f.profiles;
  view.queue_length = queue_len;
  view.slo_ms = workload::slo_latency_ms(f.apps[app_idx], f.profiles, slo);
  return view;
}

TEST(Orion, PlansWholeApplicationAtFirstStage) {
  Fixture f;
  OrionScheduler sched(f.apps, f.profiles);
  EXPECT_EQ(sched.name(), "Orion");
  auto view = make_view(f, 0, 0, 8, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 1e9;  // rule out deferral
  const auto plan = sched.plan(view);
  ASSERT_EQ(plan.candidates.size(), 1u);
  EXPECT_GT(plan.overhead_ms, 0.0);  // the search was charged
  EXPECT_GT(sched.total_expansions(), 0u);
}

TEST(Orion, LaterStagesReusePlanAndCountMisses) {
  Fixture f;
  OrionScheduler sched(f.apps, f.profiles);
  auto first = make_view(f, 0, 0, 8, workload::SloSetting::kRelaxed);
  first.head_wait_ms = 1e9;
  (void)sched.plan(first);

  auto later = make_view(f, 0, 1, 8, workload::SloSetting::kRelaxed);
  const auto plan = sched.plan(later);
  ASSERT_EQ(plan.candidates.size(), 1u);
  EXPECT_TRUE(plan.used_preplanned);
  EXPECT_EQ(plan.overhead_ms, 0.0);  // no fresh search for later stages

  // Shrink the queue below the planned batch: that is a configuration miss.
  auto starved = later;
  starved.queue_length = 0;
  const auto missed = sched.plan(starved);
  EXPECT_TRUE(missed.used_preplanned);
  EXPECT_TRUE(missed.preplanned_miss);
}

TEST(Orion, SearchGoalRespectsSlo) {
  Fixture f;
  OrionScheduler::Options opts;
  opts.max_expansions = 200'000;
  OrionScheduler sched(f.apps, f.profiles, opts);
  auto view = make_view(f, 0, 0, 32, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 1e9;
  const auto plan = sched.plan(view);
  ASSERT_EQ(plan.candidates.size(), 1u);
  // Reconstruct the predicted P95 of the planned path: it must fit the SLO
  // (the search had a generous budget).
  auto later1 = make_view(f, 0, 1, 32, workload::SloSetting::kRelaxed);
  auto later2 = make_view(f, 0, 2, 32, workload::SloSetting::kRelaxed);
  const auto p1 = sched.plan(later1);
  const auto p2 = sched.plan(later2);
  const TimeMs total =
      f.profiles.table(view.function).at(plan.candidates.front()).latency_ms +
      f.profiles.table(later1.function).at(p1.candidates.front()).latency_ms +
      f.profiles.table(later2.function).at(p2.candidates.front()).latency_ms;
  EXPECT_LE(total * opts.p95_factor, view.slo_ms + 1e-9);
}

TEST(Orion, CutOffStillReturnsAPlan) {
  Fixture f;
  OrionScheduler::Options opts;
  opts.max_expansions = 3;  // brutally small budget
  OrionScheduler sched(f.apps, f.profiles, opts);
  auto view = make_view(f, 3, 0, 8, workload::SloSetting::kStrict);
  view.head_wait_ms = 1e9;
  const auto plan = sched.plan(view);
  ASSERT_EQ(plan.candidates.size(), 1u);  // closest-latency state returned
}

TEST(Orion, ChargeSearchTimeToggle) {
  Fixture f;
  OrionScheduler::Options no_charge;
  no_charge.charge_search_time = false;
  OrionScheduler sched(f.apps, f.profiles, no_charge);
  auto view = make_view(f, 0, 0, 8, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 1e9;
  EXPECT_EQ(sched.plan(view).overhead_ms, 0.0);
}

TEST(Orion, RefreshesAfterDispatch) {
  Fixture f;
  OrionScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(4);
  auto view = make_view(f, 0, 0, 8, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 1e9;
  (void)sched.plan(view);
  const std::size_t after_first = sched.total_expansions();

  platform::PlacementContext ctx;
  ctx.app = view.app;
  ctx.stage = 0;
  ctx.function = view.function;
  ctx.config = profile::Config{1, 1, 1};
  ctx.home_invoker = InvokerId(0);
  ASSERT_TRUE(sched.place(ctx, cluster).has_value());

  (void)sched.plan(view);  // next cohort triggers a fresh search
  EXPECT_GT(sched.total_expansions(), after_first);
}

TEST(Orion, NoRepeatSearchWithoutDispatch) {
  Fixture f;
  OrionScheduler sched(f.apps, f.profiles);
  auto view = make_view(f, 0, 0, 8, workload::SloSetting::kRelaxed);
  view.head_wait_ms = 1e9;
  (void)sched.plan(view);
  const std::size_t once = sched.total_expansions();
  (void)sched.plan(view);
  EXPECT_EQ(sched.total_expansions(), once);
}

}  // namespace
}  // namespace esg::baselines
