#include "baselines/bo/gaussian_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace esg::baselines::bo {
namespace {

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  const std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
  const auto l = cholesky(a, 2);
  EXPECT_NEAR(l[0], 2.0, 1e-12);
  EXPECT_NEAR(l[1], 0.0, 1e-12);
  EXPECT_NEAR(l[2], 1.0, 1e-12);
  EXPECT_NEAR(l[3], std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  const std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // indefinite
  EXPECT_THROW(cholesky(a, 2), std::invalid_argument);
}

TEST(Cholesky, RejectsBadDimensions) {
  EXPECT_THROW(cholesky({1.0, 2.0}, 2), std::invalid_argument);
}

TEST(CholeskySolve, SolvesLinearSystem) {
  // A x = b with A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  const auto l = cholesky({4.0, 2.0, 2.0, 3.0}, 2);
  const auto x = cholesky_solve(l, 2, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  GaussianProcess gp(GpHyperparams{0.5, 1.0, 1e-6});
  const std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}};
  const std::vector<double> y = {1.0, 2.0, 0.5};
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-2);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(GpHyperparams{0.2, 1.0, 1e-4});
  gp.fit({{0.0}, {0.1}}, {1.0, 1.1});
  const auto near = gp.predict({0.05});
  const auto far = gp.predict({0.9});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcess, PredictBeforeFitThrows) {
  GaussianProcess gp;
  EXPECT_THROW(gp.predict({0.0}), std::logic_error);
  EXPECT_FALSE(gp.fitted());
}

TEST(GaussianProcess, FitRejectsMismatchedData) {
  GaussianProcess gp;
  EXPECT_THROW(gp.fit({{0.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
}

TEST(GaussianProcess, ConstantTargetsHandled) {
  GaussianProcess gp;
  gp.fit({{0.0}, {1.0}}, {3.0, 3.0});
  EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 0.5);
}

TEST(ExpectedImprovement, ZeroWhereNoImprovementPossible) {
  GaussianProcess gp(GpHyperparams{0.3, 1.0, 1e-6});
  gp.fit({{0.0}, {1.0}}, {0.0, 10.0});
  // At the known bad point, EI against best 0.0 should be tiny; near the
  // known good point it is small too (little uncertainty), but in between
  // uncertainty creates positive EI.
  const double ei_mid = gp.expected_improvement({0.5}, 0.0);
  EXPECT_GE(ei_mid, 0.0);
  const double ei_bad = gp.expected_improvement({1.0}, 0.0);
  EXPECT_LT(ei_bad, ei_mid + 1e-9);
}

TEST(ExpectedImprovement, PrefersPromisingRegions) {
  GaussianProcess gp(GpHyperparams{0.15, 1.0, 1e-4});
  // y decreases towards x=1: the minimum lies beyond the data.
  gp.fit({{0.0}, {0.25}, {0.5}}, {3.0, 2.0, 1.0});
  const double best = 1.0;
  EXPECT_GT(gp.expected_improvement({0.75}, best),
            gp.expected_improvement({0.0}, best));
}

}  // namespace
}  // namespace esg::baselines::bo
