#include <gtest/gtest.h>

#include "baselines/fast_gshare.hpp"
#include "baselines/infless.hpp"
#include "baselines/service_time_split.hpp"
#include "workload/applications.hpp"

namespace esg::baselines {
namespace {

struct Fixture {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
};

platform::QueueView make_view(const Fixture& f, std::size_t app_idx,
                              workload::NodeIndex stage, std::size_t queue_len) {
  platform::QueueView view;
  view.app = f.apps[app_idx].id();
  view.stage = stage;
  view.function = f.apps[app_idx].node(stage).function;
  view.dag = &f.apps[app_idx];
  view.profiles = &f.profiles;
  view.queue_length = queue_len;
  view.slo_ms = workload::slo_latency_ms(f.apps[app_idx], f.profiles,
                                         workload::SloSetting::kModerate);
  return view;
}

TEST(ServiceTimeSplit, FractionsSumToOne) {
  Fixture f;
  for (const auto& app : f.apps) {
    const ServiceTimeSplit split(app, f.profiles);
    double total = 0.0;
    for (workload::NodeIndex n = 0; n < app.size(); ++n) {
      total += split.node_fraction(n);
      EXPECT_GT(split.node_fraction(n), 0.0);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ServiceTimeSplit, SlowerStagesGetMore) {
  Fixture f;
  const ServiceTimeSplit split(f.apps[2], f.profiles);  // sr, deblur, bg
  EXPECT_LT(split.node_fraction(0), split.node_fraction(1));
  EXPECT_LT(split.node_fraction(1), split.node_fraction(2));
}

TEST(Infless, PlanFitsQueueAndSlice) {
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  EXPECT_EQ(sched.name(), "INFless");
  auto view = make_view(f, 0, 0, 8);
  view.head_wait_ms = 1e9;  // rule out deferral
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.candidates.empty());
  for (const auto& c : plan.candidates) EXPECT_LE(c.batch, 8);
  EXPECT_FALSE(plan.used_preplanned);
}

TEST(Infless, PrefersHighThroughputConfigs) {
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  // The queue already holds the maximum batch (no deferral) and the SLO is
  // generous, so the static slice admits batched configurations; with room
  // to choose, the throughput metric must batch.
  auto view = make_view(f, 0, 0, 32);
  view.slo_ms *= 4.0;
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.candidates.empty());
  // The throughput metric favours batching: the top candidate batches.
  EXPECT_GT(plan.candidates.front().batch, 1);
}

TEST(Infless, FallsBackToMaxThroughputWhenSliceImpossible) {
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  auto view = make_view(f, 0, 0, 4);
  view.slo_ms = 1.0;  // slice impossible
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.candidates.empty());
  // The fallback keeps INFless's own metric: the top candidate's throughput
  // beats the plain fastest config's, and the batch fits the queue.
  const auto& table = f.profiles.table(view.function);
  const auto& chosen = table.at(plan.candidates.front());
  const auto& fastest = table.fastest();
  EXPECT_LE(chosen.config.batch, 4);
  EXPECT_GE(chosen.config.batch / chosen.latency_ms,
            fastest.config.batch / fastest.latency_ms);
}

TEST(Infless, PlacesBestFit) {
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(3);
  cluster.invoker(InvokerId(0)).allocate(10, 5);  // tightest feasible fit
  cluster.invoker(InvokerId(1)).allocate(4, 2);
  platform::PlacementContext ctx;
  ctx.function = f.apps[0].node(0).function;
  ctx.config = profile::Config{1, 2, 1};
  const auto chosen = sched.place(ctx, cluster);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(0));
}

TEST(Infless, PlaceNulloptWhenFull) {
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(2);
  for (auto& inv : cluster.invokers()) inv.allocate(16, 7);
  platform::PlacementContext ctx;
  ctx.config = profile::Config{1, 1, 1};
  EXPECT_FALSE(sched.place(ctx, cluster).has_value());
}

TEST(FastGshare, PlanFitsQueue) {
  Fixture f;
  FastGshareScheduler sched(f.apps, f.profiles);
  EXPECT_EQ(sched.name(), "FaST-GShare");
  auto view = make_view(f, 0, 0, 8);
  view.head_wait_ms = 1e9;
  const auto plan = sched.plan(view);
  ASSERT_FALSE(plan.candidates.empty());
  for (const auto& c : plan.candidates) EXPECT_LE(c.batch, 8);
}

TEST(FastGshare, CheaperThanInflessChoice) {
  // The frugal selector must never pick a costlier configuration than the
  // throughput-maximising one for the same queue state.
  Fixture f;
  InflessScheduler infless(f.apps, f.profiles);
  FastGshareScheduler gshare(f.apps, f.profiles);
  auto view = make_view(f, 2, 1, 16);
  view.head_wait_ms = 1e9;
  const auto pi = infless.plan(view);
  const auto pg = gshare.plan(view);
  ASSERT_FALSE(pi.candidates.empty());
  ASSERT_FALSE(pg.candidates.empty());
  const auto& table = f.profiles.table(view.function);
  EXPECT_LE(table.at(pg.candidates.front()).per_job_cost,
            table.at(pi.candidates.front()).per_job_cost + 1e-12);
}

TEST(FastGshare, PacksGpusTightly) {
  Fixture f;
  FastGshareScheduler sched(f.apps, f.profiles);
  cluster::Cluster cluster(3);
  cluster.invoker(InvokerId(2)).allocate(2, 5);  // only 2 vGPUs free
  platform::PlacementContext ctx;
  ctx.function = f.apps[0].node(0).function;
  ctx.config = profile::Config{2, 1, 2};
  const auto chosen = sched.place(ctx, cluster);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(2));  // leaves zero free vGPUs there
}

TEST(Baselines, StaticSliceIgnoresElapsedTime) {
  // The defining INFless/FaST-GShare limitation: a stage's plan does not
  // change when the request has already burned most of its SLO.
  Fixture f;
  InflessScheduler sched(f.apps, f.profiles);
  auto early = make_view(f, 0, 1, 4);
  early.head_wait_ms = 1e9;
  auto late = early;
  late.oldest_elapsed_ms = 0.9 * late.slo_ms;
  const auto pe = sched.plan(early);
  const auto pl = sched.plan(late);
  ASSERT_FALSE(pe.candidates.empty());
  ASSERT_FALSE(pl.candidates.empty());
  EXPECT_EQ(pe.candidates.front(), pl.candidates.front());
}

}  // namespace
}  // namespace esg::baselines
