// Acceptance suite for fault injection & recovery (DESIGN.md §9):
//
//  - a zero-rate FaultSpec reproduces the fault-free run byte-identically
//    (trace bytes and metrics alike);
//  - the same seed + spec reproduces the same faulted run byte-identically;
//  - crashes leak no vCPU/vGPU and every request is accounted for;
//  - the critical-path latency decomposition still telescopes exactly with
//    retry spans in the trace;
//  - fault-injected misses surface as fault@stageK in the attribution report;
//  - a certain-failure spec terminates by exhausting retries, not by hanging.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "exp/scenario.hpp"
#include "fault/fault_engine.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/critical_path.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "platform/controller.hpp"
#include "workload/applications.hpp"

namespace esg {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  return scenario;
}

/// Runs `scenario` capturing the Chrome trace bytes and the run output.
struct TracedRun {
  std::string trace;
  exp::RunOutput output;
};

TracedRun traced_run(const exp::Scenario& scenario) {
  std::ostringstream trace_stream;
  TracedRun run;
  {
    obs::TraceRecorder recorder;
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_stream));
    run.output = exp::run_scenario(scenario, &recorder);
  }
  run.trace = trace_stream.str();
  return run;
}

obs::analysis::TraceDataset run_with_analysis(const exp::Scenario& scenario) {
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::analysis::AnalysisSink>();
  const auto* analysis = sink.get();
  recorder.add_sink(std::move(sink));
  (void)exp::run_scenario(scenario, &recorder);
  return analysis->dataset();
}

TEST(Recovery, ZeroRateSpecIsByteIdenticalToNoSpec) {
  const TracedRun baseline = traced_run(small_scenario());

  exp::Scenario zero_rate = small_scenario();
  zero_rate.fault = fault::parse_fault_spec(
      "dispatch:prob=0;coldstart:prob=0;slow:invoker=0,at=0,for=1000,factor=1");
  ASSERT_TRUE(zero_rate.fault.inert());
  const TracedRun inert = traced_run(zero_rate);

  ASSERT_GT(baseline.trace.size(), 0u);
  EXPECT_EQ(baseline.trace, inert.trace);
  EXPECT_EQ(baseline.output.metrics.total_cost, inert.output.metrics.total_cost);
  EXPECT_EQ(baseline.output.metrics.requests(), inert.output.metrics.requests());
  ASSERT_EQ(baseline.output.metrics.completions.size(),
            inert.output.metrics.completions.size());
  for (std::size_t i = 0; i < baseline.output.metrics.completions.size(); ++i) {
    EXPECT_EQ(baseline.output.metrics.completions[i].latency_ms,
              inert.output.metrics.completions[i].latency_ms);
  }
  EXPECT_EQ(inert.output.metrics.task_failures, 0u);
  EXPECT_EQ(inert.output.metrics.retries, 0u);
}

TEST(Recovery, SameSeedSameSpecReplaysByteIdentically) {
  exp::Scenario faulted = small_scenario();
  faulted.fault = fault::parse_fault_spec(
      "dispatch:prob=0.15;crash:invoker=1,at=800,down=500;"
      "slow:invoker=0,at=200,for=1000,factor=2");
  const TracedRun a = traced_run(faulted);
  const TracedRun b = traced_run(faulted);
  ASSERT_GT(a.trace.size(), 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.output.metrics.total_cost, b.output.metrics.total_cost);
  EXPECT_EQ(a.output.metrics.task_failures, b.output.metrics.task_failures);
  EXPECT_EQ(a.output.metrics.retries, b.output.metrics.retries);
  // The crash must actually have fired, or the replay proves little.
  EXPECT_EQ(a.output.metrics.invoker_crashes, 1u);
}

TEST(Recovery, FaultsChangeTheRun) {
  const TracedRun baseline = traced_run(small_scenario());
  exp::Scenario faulted = small_scenario();
  faulted.fault = fault::parse_fault_spec("dispatch:prob=0.3");
  const TracedRun run = traced_run(faulted);
  EXPECT_GT(run.output.metrics.task_failures, 0u);
  EXPECT_GT(run.output.metrics.retries, 0u);
  EXPECT_NE(baseline.trace, run.trace);
}

TEST(Recovery, OutOfRangeCrashInvokerIsRejected) {
  exp::Scenario scenario = small_scenario();  // 4 nodes
  scenario.fault = fault::parse_fault_spec("crash:invoker=7,at=100,down=100");
  EXPECT_THROW((void)exp::run_scenario(scenario), std::invalid_argument);
  scenario.fault = fault::parse_fault_spec("slow:invoker=7,at=0,for=1,factor=2");
  EXPECT_THROW((void)exp::run_scenario(scenario), std::invalid_argument);
}

// --- controller-level recovery invariants ------------------------------

/// Deterministic one-config strategy (mirrors the platform test harness).
class FixedScheduler : public platform::Scheduler {
 public:
  std::string_view name() const override { return "fixed"; }
  platform::PlanResult plan(const platform::QueueView& view) override {
    (void)view;
    platform::PlanResult r;
    r.candidates.push_back(profile::kMinConfig);
    return r;
  }
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override {
    return platform::locality_first_place(ctx, cluster);
  }
};

struct World {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
  sim::Simulator sim;
  cluster::Cluster cluster{4};
  RngFactory rng{7};
};

platform::ControllerOptions quiet_options(fault::FaultEngine* engine) {
  platform::ControllerOptions o;
  o.noise_cv = 0.0;
  o.enable_prewarm = false;
  o.fault = engine;
  return o;
}

TEST(Recovery, CrashLeaksNoResourcesAndRejoins) {
  World w;
  fault::FaultEngine engine(
      fault::parse_fault_spec("crash:invoker=0,at=4000,down=1000"),
      w.rng.scoped("fault"));
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kModerate, sched, w.rng,
                           quiet_options(&engine));
  for (int i = 0; i < 6; ++i) ctl.inject_request(w.apps[i % 4].id());
  ctl.run_to_completion();

  EXPECT_EQ(ctl.metrics().invoker_crashes, 1u);
  // Every request finished or was aborted; nothing is stuck in flight.
  EXPECT_EQ(ctl.metrics().completions.size(), 6u);
  EXPECT_EQ(ctl.inflight_requests(), 0u);
  // The crash released every orphaned vCPU/vGPU and the node rejoined.
  for (const auto& inv : w.cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0) << inv.id().get();
    EXPECT_EQ(inv.used_vgpus(), 0) << inv.id().get();
    EXPECT_TRUE(inv.alive()) << inv.id().get();
  }
}

TEST(Recovery, TransientFaultsRetryAndRecover) {
  World w;
  fault::FaultEngine engine(fault::parse_fault_spec("dispatch:prob=0.4"),
                            w.rng.scoped("fault"));
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kModerate, sched, w.rng,
                           quiet_options(&engine));
  for (int i = 0; i < 8; ++i) ctl.inject_request(w.apps[i % 4].id());
  ctl.run_to_completion();

  EXPECT_EQ(ctl.metrics().completions.size(), 8u);
  EXPECT_GT(ctl.metrics().task_failures, 0u);
  EXPECT_GT(ctl.metrics().retries, 0u);
  for (const auto& inv : w.cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0) << inv.id().get();
    EXPECT_EQ(inv.used_vgpus(), 0) << inv.id().get();
  }
}

TEST(Recovery, CertainFailureTerminatesByExhaustingRetries) {
  World w;
  fault::FaultEngine engine(fault::parse_fault_spec("dispatch:prob=1"),
                            w.rng.scoped("fault"));
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kModerate, sched, w.rng,
                           quiet_options(&engine));
  for (int i = 0; i < 3; ++i) ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();  // must not hang

  EXPECT_EQ(ctl.metrics().retries_exhausted, 3u);
  ASSERT_EQ(ctl.metrics().completions.size(), 3u);
  for (const auto& rec : ctl.metrics().completions) {
    EXPECT_TRUE(rec.failed);
    EXPECT_FALSE(rec.hit);
  }
  for (const auto& inv : w.cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0) << inv.id().get();
    EXPECT_EQ(inv.used_vgpus(), 0) << inv.id().get();
  }
}

// --- trace-level invariants under faults --------------------------------

TEST(Recovery, DecompositionStillTelescopesWithRetries) {
  exp::Scenario scenario = small_scenario();
  scenario.fault = fault::parse_fault_spec("dispatch:prob=0.3");
  const obs::analysis::TraceDataset dataset = run_with_analysis(scenario);
  const obs::analysis::CriticalPathResult paths =
      obs::analysis::reconstruct_critical_paths(dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  for (const auto& request : paths.requests) {
    double component_sum = 0.0;
    for (const auto& stage : request.path) component_sum += stage.component_sum_ms();
    EXPECT_NEAR(component_sum, request.latency_ms(), 1e-6)
        << "request " << request.request;
  }
}

TEST(Recovery, FaultsSurfaceInMissCauseAttribution) {
  exp::Scenario scenario = small_scenario();
  scenario.fault = fault::parse_fault_spec("dispatch:prob=0.5");
  const obs::analysis::TraceDataset dataset = run_with_analysis(scenario);
  const obs::analysis::AttributionReport report =
      obs::analysis::build_report(dataset);
  ASSERT_GT(report.requests, 0u);
  EXPECT_GT(report.misses, 0u);
  bool fault_cause = false;
  for (const auto& [cause, count] : report.miss_causes) {
    if (cause.rfind("fault@stage", 0) == 0 ||
        cause.rfind("retry_exhausted@stage", 0) == 0) {
      fault_cause = true;
      EXPECT_GT(count, 0u);
    }
  }
  EXPECT_TRUE(fault_cause);
}

}  // namespace
}  // namespace esg
