#include "fault/fault_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace esg::fault {
namespace {

TEST(FaultSpec, DefaultIsInert) {
  EXPECT_TRUE(FaultSpec{}.inert());
  EXPECT_TRUE(parse_fault_spec("").inert());
}

TEST(FaultSpec, ParsesCrashClause) {
  const FaultSpec spec = parse_fault_spec("crash:invoker=3,at=2000,down=1500");
  ASSERT_EQ(spec.crashes.size(), 1u);
  EXPECT_EQ(spec.crashes[0].invoker, InvokerId(3));
  EXPECT_DOUBLE_EQ(spec.crashes[0].at_ms, 2000.0);
  EXPECT_DOUBLE_EQ(spec.crashes[0].down_ms, 1500.0);
  EXPECT_FALSE(spec.inert());
}

TEST(FaultSpec, ParsesDispatchWithOptionalFunction) {
  const FaultSpec any = parse_fault_spec("dispatch:prob=0.05");
  ASSERT_EQ(any.dispatch.size(), 1u);
  EXPECT_DOUBLE_EQ(any.dispatch[0].prob, 0.05);
  EXPECT_FALSE(any.dispatch[0].function.has_value());

  const FaultSpec one = parse_fault_spec("dispatch:prob=0.5,function=2");
  ASSERT_EQ(one.dispatch.size(), 1u);
  ASSERT_TRUE(one.dispatch[0].function.has_value());
  EXPECT_EQ(*one.dispatch[0].function, FunctionId(2));
}

TEST(FaultSpec, ParsesColdStartAndSlowdown) {
  const FaultSpec spec = parse_fault_spec(
      "coldstart:prob=0.2,function=1;slow:invoker=1,at=500,for=4000,factor=3");
  ASSERT_EQ(spec.cold_start.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.cold_start[0].prob, 0.2);
  ASSERT_EQ(spec.slowdowns.size(), 1u);
  EXPECT_EQ(spec.slowdowns[0].invoker, InvokerId(1));
  EXPECT_DOUBLE_EQ(spec.slowdowns[0].at_ms, 500.0);
  EXPECT_DOUBLE_EQ(spec.slowdowns[0].duration_ms, 4000.0);
  EXPECT_DOUBLE_EQ(spec.slowdowns[0].factor, 3.0);
}

TEST(FaultSpec, NewlinesCommentsAndWhitespace) {
  const FaultSpec spec = parse_fault_spec(
      "# a comment line\n"
      " dispatch : prob = 0.1 \n"
      "\n"
      "coldstart:prob=0.2");
  EXPECT_EQ(spec.dispatch.size(), 1u);
  EXPECT_EQ(spec.cold_start.size(), 1u);
}

TEST(FaultSpec, ZeroRateSpecsAreInert) {
  EXPECT_TRUE(parse_fault_spec("dispatch:prob=0").inert());
  EXPECT_TRUE(parse_fault_spec("coldstart:prob=0;dispatch:prob=0").inert());
  // factor=1 slows nothing down.
  EXPECT_TRUE(
      parse_fault_spec("slow:invoker=0,at=0,for=100,factor=1").inert());
  // Any crash makes the spec active regardless of probabilities.
  EXPECT_FALSE(
      parse_fault_spec("dispatch:prob=0;crash:invoker=0,at=1,down=1").inert());
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_spec("nonsense"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("explode:prob=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob=nan"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:rate=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob=0.5,prob=0.6"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:invoker=1,at=10"),  // down missing
               std::invalid_argument);
}

TEST(FaultSpec, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_fault_spec("dispatch:prob=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:invoker=1,at=-5,down=10"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:invoker=1.5,at=0,down=10"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("slow:invoker=0,at=0,for=10,factor=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dispatch:prob=0.5,function=-1"),
               std::invalid_argument);
}

TEST(FaultSpec, ToStringRoundTrips) {
  const char* text =
      "crash:invoker=3,at=2000,down=1500;dispatch:prob=0.05;"
      "coldstart:prob=0.2,function=1;slow:invoker=1,at=500,for=4000,factor=3";
  const FaultSpec spec = parse_fault_spec(text);
  const std::string rendered = to_string(spec);
  EXPECT_EQ(rendered, text);
  EXPECT_EQ(to_string(parse_fault_spec(rendered)), rendered);
}

TEST(FaultSpec, LoadInlineOrFromFile) {
  EXPECT_EQ(load_fault_spec("dispatch:prob=0.3").dispatch.size(), 1u);

  const std::string path =
      ::testing::TempDir() + "/fault_spec_test_input.txt";
  {
    std::ofstream out(path);
    out << "# resilience scenario\ncrash:invoker=2,at=100,down=50\n";
  }
  const FaultSpec from_file = load_fault_spec("@" + path);
  ASSERT_EQ(from_file.crashes.size(), 1u);
  EXPECT_EQ(from_file.crashes[0].invoker, InvokerId(2));
  std::remove(path.c_str());

  EXPECT_THROW(load_fault_spec("@/no/such/fault/spec/file"),
               std::invalid_argument);
}

}  // namespace
}  // namespace esg::fault
