#include "fault/fault_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace esg::fault {
namespace {

FaultEngine make_engine(const char* spec, std::uint64_t seed = 5) {
  return FaultEngine(parse_fault_spec(spec), RngFactory(seed).scoped("fault"));
}

std::vector<bool> dispatch_draws(FaultEngine& engine, FunctionId fn, int n) {
  std::vector<bool> draws;
  for (int i = 0; i < n; ++i) draws.push_back(engine.dispatch_fails(fn));
  return draws;
}

TEST(FaultEngine, SameSeedSameSpecReproducesDraws) {
  FaultEngine a = make_engine("dispatch:prob=0.3;coldstart:prob=0.4");
  FaultEngine b = make_engine("dispatch:prob=0.3;coldstart:prob=0.4");
  EXPECT_EQ(dispatch_draws(a, FunctionId(1), 200),
            dispatch_draws(b, FunctionId(1), 200));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.cold_start_fails(FunctionId(0)),
              b.cold_start_fails(FunctionId(0)));
  }
}

TEST(FaultEngine, DifferentSeedsDiverge) {
  FaultEngine a = make_engine("dispatch:prob=0.5", 1);
  FaultEngine b = make_engine("dispatch:prob=0.5", 2);
  EXPECT_NE(dispatch_draws(a, FunctionId(0), 200),
            dispatch_draws(b, FunctionId(0), 200));
}

TEST(FaultEngine, ZeroProbabilityNeverFails) {
  FaultEngine engine = make_engine("dispatch:prob=0;coldstart:prob=0");
  EXPECT_FALSE(engine.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine.dispatch_fails(FunctionId(i % 3)));
    EXPECT_FALSE(engine.cold_start_fails(FunctionId(i % 3)));
  }
}

TEST(FaultEngine, CertainFailureAlwaysFails) {
  FaultEngine engine = make_engine("dispatch:prob=1");
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(engine.dispatch_fails(FunctionId(0)));
}

TEST(FaultEngine, FunctionFilterTargetsOneFunction) {
  FaultEngine engine = make_engine("dispatch:prob=1,function=2");
  EXPECT_TRUE(engine.dispatch_fails(FunctionId(2)));
  EXPECT_FALSE(engine.dispatch_fails(FunctionId(3)));
}

TEST(FaultEngine, PerFunctionSubstreamsAreIsolated) {
  // The draw sequence of function 0 must not depend on how often any other
  // function draws — substreams are keyed by function, not shared.
  FaultEngine solo = make_engine("dispatch:prob=0.5");
  const std::vector<bool> expected = dispatch_draws(solo, FunctionId(0), 100);

  FaultEngine interleaved = make_engine("dispatch:prob=0.5");
  std::vector<bool> observed;
  for (int i = 0; i < 100; ++i) {
    (void)interleaved.dispatch_fails(FunctionId(1));  // extra traffic
    observed.push_back(interleaved.dispatch_fails(FunctionId(0)));
    (void)interleaved.dispatch_fails(FunctionId(1));
  }
  EXPECT_EQ(observed, expected);
}

TEST(FaultEngine, DispatchAndColdStartStreamsAreIndependent) {
  FaultEngine a = make_engine("dispatch:prob=0.5;coldstart:prob=0.5");
  FaultEngine b = make_engine("dispatch:prob=0.5;coldstart:prob=0.5");
  // Burning cold-start draws must not shift the dispatch stream.
  for (int i = 0; i < 37; ++i) (void)b.cold_start_fails(FunctionId(0));
  EXPECT_EQ(dispatch_draws(a, FunctionId(0), 100),
            dispatch_draws(b, FunctionId(0), 100));
}

TEST(FaultEngine, SlowdownFactorIsAWindowLookup) {
  FaultEngine engine = make_engine("slow:invoker=1,at=500,for=4000,factor=3");
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(1), 499.9), 1.0);
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(1), 500.0), 3.0);  // start inclusive
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(1), 4499.9), 3.0);
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(1), 4500.0), 1.0);  // end exclusive
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(2), 1000.0), 1.0);  // other node
}

TEST(FaultEngine, OverlappingSlowdownsMultiply) {
  FaultEngine engine = make_engine(
      "slow:invoker=0,at=0,for=100,factor=2;slow:invoker=0,at=50,for=100,factor=3");
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(0), 25.0), 2.0);
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(0), 75.0), 6.0);
  EXPECT_DOUBLE_EQ(engine.slowdown_factor(InvokerId(0), 125.0), 3.0);
}

TEST(FaultEngine, InstallSchedulesCrashThenRejoin) {
  FaultEngine engine = make_engine("crash:invoker=3,at=2000,down=1500");
  std::vector<std::pair<std::uint32_t, TimeMs>> crashes;
  std::vector<std::uint32_t> rejoins;
  engine.set_crash_handler([&](InvokerId id, TimeMs rejoin_at) {
    crashes.emplace_back(id.get(), rejoin_at);
  });
  engine.set_rejoin_handler([&](InvokerId id) { rejoins.push_back(id.get()); });

  sim::Simulator sim;
  engine.install(sim);
  sim.run_until(1999.0);
  EXPECT_TRUE(crashes.empty());
  sim.run_until(1e9);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].first, 3u);
  EXPECT_DOUBLE_EQ(crashes[0].second, 3500.0);
  ASSERT_EQ(rejoins.size(), 1u);
  EXPECT_EQ(rejoins[0], 3u);
}

TEST(FaultEngine, InstallTwiceIsAnError) {
  FaultEngine engine = make_engine("crash:invoker=0,at=1,down=1");
  sim::Simulator sim;
  engine.install(sim);
  EXPECT_THROW(engine.install(sim), std::logic_error);
}

}  // namespace
}  // namespace esg::fault
