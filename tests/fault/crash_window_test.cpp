// Crash-window edge cases (ISSUE 6 satellite): overlapping windows on one
// invoker are rejected with line-numbered errors, touching windows are fine,
// and windows straddling the arrival horizon terminate cleanly. Also covers
// the spot: clause grammar added alongside.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/scenario.hpp"
#include "fault/fault_spec.hpp"

namespace esg::fault {
namespace {

std::string error_of(const std::string& spec) {
  try {
    (void)parse_fault_spec(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(CrashWindow, OverlappingWindowsOnSameInvokerAreRejected) {
  const std::string err = error_of(
      "crash:invoker=2,at=1000,down=500\n"
      "crash:invoker=2,at=1200,down=100");
  ASSERT_FALSE(err.empty());
  // The error names both clauses by line so the bad window is findable in a
  // spec file.
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("invoker 2"), std::string::npos) << err;
}

TEST(CrashWindow, ContainedAndIdenticalWindowsAreRejected) {
  EXPECT_THROW(parse_fault_spec("crash:invoker=0,at=0,down=1000;"
                                "crash:invoker=0,at=200,down=100"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:invoker=0,at=500,down=500;"
                                "crash:invoker=0,at=500,down=500"),
               std::invalid_argument);
}

TEST(CrashWindow, TouchingAndDisjointWindowsAreAllowed) {
  // [1000, 1500) then [1500, 2000): back-to-back is legal (rejoin fires
  // before the next crash by insertion order).
  const FaultSpec spec = parse_fault_spec(
      "crash:invoker=1,at=1000,down=500;crash:invoker=1,at=1500,down=500");
  EXPECT_EQ(spec.crashes.size(), 2u);
  // Same window on different invokers never conflicts.
  EXPECT_NO_THROW(parse_fault_spec(
      "crash:invoker=0,at=100,down=100;crash:invoker=1,at=100,down=100"));
}

TEST(CrashWindow, CrashAtExactlyHorizonTerminates) {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  scenario.fault = parse_fault_spec("crash:invoker=0,at=2000,down=500");
  const exp::RunOutput out = exp::run_scenario(scenario);  // must not hang
  EXPECT_GT(out.metrics.completions.size(), 0u);
  // The run drains past the crash and the rejoin.
  EXPECT_GE(out.simulated_end_ms, 2'000.0);
}

TEST(CrashWindow, RejoinPastEndOfWorkStillFires) {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 1'000.0;
  scenario.seed = 7;
  // The node is down from well before the last arrival until long after all
  // work has drained; the rejoin event alone keeps the clock moving.
  scenario.fault = parse_fault_spec("crash:invoker=3,at=500,down=60000");
  const exp::RunOutput out = exp::run_scenario(scenario);
  EXPECT_GT(out.metrics.completions.size(), 0u);
  EXPECT_GE(out.simulated_end_ms, 60'500.0);
}

// --- spot: clause grammar ------------------------------------------------

TEST(SpotClause, Parses) {
  const FaultSpec spec = parse_fault_spec("spot:at=2000,nodes=3,warn=500");
  ASSERT_EQ(spec.spot.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.spot[0].at_ms, 2'000.0);
  EXPECT_EQ(spec.spot[0].nodes, 3u);
  EXPECT_DOUBLE_EQ(spec.spot[0].warn_ms, 500.0);
  EXPECT_FALSE(spec.inert());
}

TEST(SpotClause, WarnDefaultsToZero) {
  const FaultSpec spec = parse_fault_spec("spot:at=100,nodes=1");
  ASSERT_EQ(spec.spot.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.spot[0].warn_ms, 0.0);
}

TEST(SpotClause, RejectsMalformedClauses) {
  EXPECT_THROW(parse_fault_spec("spot:nodes=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spot:at=100"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spot:at=100,nodes=0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spot:at=-1,nodes=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spot:at=100,nodes=1,warn=-5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spot:at=100,nodes=1,surprise=1"),
               std::invalid_argument);
}

TEST(SpotClause, RoundTripsThroughToString) {
  const FaultSpec spec =
      parse_fault_spec("spot:at=2000,nodes=3,warn=500;spot:at=5000,nodes=1");
  const FaultSpec again = parse_fault_spec(to_string(spec));
  ASSERT_EQ(again.spot.size(), 2u);
  EXPECT_DOUBLE_EQ(again.spot[0].at_ms, 2'000.0);
  EXPECT_EQ(again.spot[0].nodes, 3u);
  EXPECT_DOUBLE_EQ(again.spot[0].warn_ms, 500.0);
  EXPECT_EQ(again.spot[1].nodes, 1u);
  EXPECT_DOUBLE_EQ(again.spot[1].warn_ms, 0.0);
}

}  // namespace
}  // namespace esg::fault
