// Work-stealing thread pool tests (DESIGN.md §15): task completion across
// worker counts, wait_idle as a full barrier, work stealing under skewed
// submission, and destructor draining.
#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace esg::sweep {
namespace {

TEST(ThreadPool, RunsEveryTaskOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(64);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.steals(), 0u);  // nobody to steal from
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 12; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 12);
  // The pool is reusable after an idle barrier.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 13);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, StealsWhenSubmissionIsSkewed) {
  // Round-robin dealing spreads tasks across per-worker deques; slow tasks
  // on some workers force the fast ones to steal. With tasks >> workers and
  // real imbalance, at least one steal is effectively certain.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done, i] {
      if (i % 4 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
  EXPECT_GT(pool.steals(), 0u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // No wait_idle: the destructor must run everything already submitted.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace esg::sweep
