// Sweep runner tests (DESIGN.md §15): cross-product construction, result
// ordering, per-cell failure isolation, and the determinism contract —
// identical merged results for any --jobs count.
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

namespace esg::sweep {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.horizon_ms = 800.0;
  s.nodes = 4;
  return s;
}

TEST(CrossProduct, SchedulerMajorOrderWithLabels) {
  const std::array<exp::SchedulerKind, 2> kinds = {
      exp::SchedulerKind::kEsg, exp::SchedulerKind::kInfless};
  const std::array<std::uint64_t, 3> seeds = {7, 8, 9};
  const auto tasks = cross_product(small_scenario(), kinds, seeds);
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_EQ(tasks[0].label, "ESG/seed7");
  EXPECT_EQ(tasks[2].label, "ESG/seed9");
  EXPECT_EQ(tasks[3].label, "INFless/seed7");
  EXPECT_EQ(tasks[5].label, "INFless/seed9");
  EXPECT_EQ(tasks[4].scenario.scheduler, exp::SchedulerKind::kInfless);
  EXPECT_EQ(tasks[4].scenario.seed, 8u);
}

TEST(CrossProduct, StripsFileBackedTracing) {
  exp::Scenario base = small_scenario();
  base.trace.trace_path = "/tmp/never_written.json";
  base.trace.stats_path = "/tmp/never_written.jsonl";
  const std::array<exp::SchedulerKind, 1> kinds = {exp::SchedulerKind::kEsg};
  const std::array<std::uint64_t, 1> seeds = {42};
  const auto tasks = cross_product(base, kinds, seeds);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_FALSE(tasks[0].scenario.trace.enabled());
}

TEST(RunSweep, ResultsLandInTaskOrderForAnyJobCount) {
  const std::array<exp::SchedulerKind, 2> kinds = {
      exp::SchedulerKind::kEsg, exp::SchedulerKind::kInfless};
  const std::array<std::uint64_t, 2> seeds = {42, 43};

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto base = run_sweep(cross_product(small_scenario(), kinds, seeds),
                              serial);
  const auto wide = run_sweep(cross_product(small_scenario(), kinds, seeds),
                              parallel);

  ASSERT_EQ(base.size(), 4u);
  ASSERT_EQ(wide.size(), 4u);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_FALSE(base[i].failed) << base[i].error;
    EXPECT_FALSE(wide[i].failed) << wide[i].error;
    EXPECT_EQ(base[i].label, wide[i].label);
    // Everything but wall_seconds must be replica-deterministic.
    EXPECT_EQ(base[i].output.metrics.requests(),
              wide[i].output.metrics.requests());
    EXPECT_EQ(base[i].output.metrics.slo_hit_rate(),
              wide[i].output.metrics.slo_hit_rate());
    EXPECT_EQ(base[i].output.metrics.total_cost,
              wide[i].output.metrics.total_cost);
    EXPECT_EQ(base[i].output.counters.events_fired,
              wide[i].output.counters.events_fired);
    EXPECT_EQ(base[i].output.simulated_end_ms,
              wide[i].output.simulated_end_ms);
  }
  // Different seeds really produced different runs (the cells aren't all
  // accidentally identical).
  EXPECT_NE(base[0].output.counters.events_fired,
            base[1].output.counters.events_fired);
}

TEST(RunSweep, EngineChoicePropagatesAndMatches) {
  exp::Scenario heap = small_scenario();
  heap.engine = sim::EngineKind::kHeap;
  const std::array<exp::SchedulerKind, 1> kinds = {exp::SchedulerKind::kEsg};
  const std::array<std::uint64_t, 1> seeds = {42};
  const auto heap_out = run_sweep(cross_product(heap, kinds, seeds), {});
  const auto cal_out =
      run_sweep(cross_product(small_scenario(), kinds, seeds), {});
  ASSERT_EQ(heap_out.size(), 1u);
  ASSERT_FALSE(heap_out[0].failed);
  EXPECT_EQ(heap_out[0].output.counters.events_fired,
            cal_out[0].output.counters.events_fired);
  EXPECT_EQ(heap_out[0].output.metrics.total_cost,
            cal_out[0].output.metrics.total_cost);
}

TEST(RunSweep, FailedCellIsIsolated) {
  std::vector<SweepTask> tasks =
      cross_product(small_scenario(),
                    std::array<exp::SchedulerKind, 1>{exp::SchedulerKind::kEsg},
                    std::array<std::uint64_t, 2>{42, 43});
  // An impossible scenario: elastic min above the resolved max throws inside
  // run_scenario on the worker thread; the sibling cell must still succeed.
  tasks[0].scenario.elastic.policy = elastic::ElasticPolicy::kQueue;
  tasks[0].scenario.elastic.min_nodes = 9;
  tasks[0].scenario.elastic.max_nodes = 2;
  const auto results = run_sweep(std::move(tasks), {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].failed);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_FALSE(results[1].failed) << results[1].error;
  EXPECT_GT(results[1].output.metrics.requests(), 0u);
}

}  // namespace
}  // namespace esg::sweep
