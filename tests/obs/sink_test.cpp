#include "obs/sinks.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mini_json.hpp"

namespace esg::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("req 7 (app 3)"), "req 7 (app 3)");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(ChromeTraceSink, EmptyTraceIsValidJsonArray) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.flush();
  }
  EXPECT_TRUE(test_json::is_valid_json(out.str()));
}

TEST(ChromeTraceSink, EmitsValidJsonWithExpectedEvents) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.on_process_name(kControllerPid, "controller");
    sink.on_thread_name(invoker_track(InvokerId{0}, 0), "gpu slice 0");
    sink.on_span({SpanKind::kExec, "f1/b4", invoker_track(InvokerId{0}, 0),
                  1.5, 4.0, {{"batch", "4"}}});
    sink.on_instant({InstantKind::kDispatch, "dispatch", controller_track(),
                     1.5, {{"app", "2"}}});
    sink.on_counter({"free_vgpus", controller_track(), 2.0, 5.0});
    sink.flush();
  }
  const std::string trace = out.str();
  EXPECT_TRUE(test_json::is_valid_json(trace)) << trace;
  // One of each phase, with ms converted to µs at fixed precision.
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"X\""), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"C\""), 1u);
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"M\""), 2u);
  EXPECT_NE(trace.find("\"ts\":1500.000"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":2500.000"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"exec\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"dispatch\""), std::string::npos);
  EXPECT_NE(trace.find("\"batch\":\"4\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":100"), std::string::npos);
}

TEST(ChromeTraceSink, EscapesNamesInOutput) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.on_span({SpanKind::kExec, "quo\"te\nline", controller_track(), 0.0,
                  1.0, {}});
    sink.flush();
  }
  EXPECT_TRUE(test_json::is_valid_json(out.str())) << out.str();
}

TEST(ChromeTraceSink, FlushIsIdempotentAndDestructorSafe) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.on_counter({"x", controller_track(), 0.0, 1.0});
    sink.flush();
    sink.flush();           // second explicit flush must not re-close
    // destructor runs here — must not append another "]"
  }
  const std::string trace = out.str();
  EXPECT_EQ(count_occurrences(trace, "]"), 1u);
  EXPECT_TRUE(test_json::is_valid_json(trace));
}

TEST(ChromeTraceSink, EventsAfterFlushAreDropped) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.flush();
    sink.on_counter({"late", controller_track(), 0.0, 1.0});
  }
  EXPECT_EQ(out.str().find("late"), std::string::npos);
  EXPECT_TRUE(test_json::is_valid_json(out.str()));
}

TEST(ChromeTraceSink, OwnsStreamWhenGivenOwnership) {
  auto stream = std::make_unique<std::ostringstream>();
  std::ostringstream* raw = stream.get();
  ChromeTraceSink sink(std::unique_ptr<std::ostream>(std::move(stream)));
  sink.on_counter({"x", controller_track(), 0.0, 1.0});
  sink.flush();
  EXPECT_TRUE(test_json::is_valid_json(raw->str()));
}

TEST(JsonlStatsSink, EachLineIsValidJson) {
  std::ostringstream out;
  JsonlStatsSink sink(out);
  sink.on_counter({"used_vgpus", invoker_track(InvokerId{1}, 0), 10.0, 3.0});
  sink.on_counter({"queued_jobs", controller_track(), 20.0, 0.0});
  // Spans and instants are not part of the stats stream.
  sink.on_span({SpanKind::kExec, "e", controller_track(), 0.0, 1.0, {}});
  sink.on_instant({InstantKind::kDefer, "d", controller_track(), 0.0, {}});

  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(test_json::is_valid_json(line)) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 2u);
  EXPECT_NE(out.str().find("\"ts_ms\":10.000"), std::string::npos);
  EXPECT_NE(out.str().find("\"name\":\"used_vgpus\""), std::string::npos);
  EXPECT_NE(out.str().find("\"value\":3"), std::string::npos);
}

}  // namespace
}  // namespace esg::obs
