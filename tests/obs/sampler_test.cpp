#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "obs/sinks.hpp"
#include "sim/simulator.hpp"

namespace esg::obs {
namespace {

struct SamplerFixture {
  sim::Simulator sim;
  cluster::Cluster cluster{2};
  TraceRecorder recorder;
  MemorySink* mem = nullptr;

  void enable() {
    auto sink = std::make_unique<MemorySink>();
    mem = sink.get();
    recorder.add_sink(std::move(sink));
  }
};

TEST(StatsSampler, RejectsNonPositiveInterval) {
  SamplerFixture f;
  EXPECT_THROW(StatsSampler(f.sim, f.cluster, f.recorder, 0.0),
               std::invalid_argument);
  EXPECT_THROW(StatsSampler(f.sim, f.cluster, f.recorder, -5.0),
               std::invalid_argument);
}

TEST(StatsSampler, DisabledRecorderNeverSchedules) {
  SamplerFixture f;
  StatsSampler sampler(f.sim, f.cluster, f.recorder, 10.0);
  sampler.start();
  EXPECT_TRUE(f.sim.empty());
  EXPECT_EQ(f.sim.run(), 0u);
  EXPECT_EQ(sampler.samples_taken(), 0u);
}

TEST(StatsSampler, TicksOnIntervalUntilDrain) {
  SamplerFixture f;
  f.enable();
  StatsSampler sampler(f.sim, f.cluster, f.recorder, 10.0);
  // A lone platform event at t=35 keeps the run alive through four re-arms;
  // the tick at t=40 then finds the queue drained and stops the series.
  f.sim.schedule_in(35.0, [] {});
  sampler.start();
  f.sim.run();
  EXPECT_EQ(sampler.samples_taken(), 5u);  // t = 0, 10, 20, 30, 40
  EXPECT_EQ(f.sim.now(), 40.0);
  EXPECT_TRUE(f.sim.empty());
}

TEST(StatsSampler, StopsImmediatelyWhenNothingElsePending) {
  SamplerFixture f;
  f.enable();
  StatsSampler sampler(f.sim, f.cluster, f.recorder, 10.0);
  sampler.start();
  f.sim.run();
  EXPECT_EQ(sampler.samples_taken(), 1u);
}

TEST(StatsSampler, GaugesReflectClusterState) {
  SamplerFixture f;
  f.enable();
  auto& inv0 = f.cluster.invoker(InvokerId{0});
  inv0.allocate(4, 2);
  inv0.add_warm(FunctionId{1}, 0.0);
  StatsSampler sampler(f.sim, f.cluster, f.recorder, 10.0);
  sampler.start();
  f.sim.run();

  // 2 invokers x 3 gauges + 2 cluster-wide gauges (no queue provider set)
  // + 3 fleet-size gauges.
  ASSERT_EQ(f.mem->counters().size(), 11u);
  double used_vcpus0 = -1.0;
  double warm0 = -1.0;
  double free_vgpus = -1.0;
  double fleet_active = -1.0;
  double fleet_warming = -1.0;
  double fleet_draining = -1.0;
  bool saw_queue = false;
  for (const auto& c : f.mem->counters()) {
    if (c.name == "used_vcpus" && c.track.pid == kInvokerPidBase) {
      used_vcpus0 = c.value;
    }
    if (c.name == "warm_containers" && c.track.pid == kInvokerPidBase) {
      warm0 = c.value;
    }
    if (c.name == "free_vgpus") free_vgpus = c.value;
    if (c.name == "fleet_active") fleet_active = c.value;
    if (c.name == "fleet_warming") fleet_warming = c.value;
    if (c.name == "fleet_draining") fleet_draining = c.value;
    if (c.name == "queued_jobs") saw_queue = true;
  }
  EXPECT_DOUBLE_EQ(used_vcpus0, 4.0);
  EXPECT_DOUBLE_EQ(warm0, 1.0);
  // Two nodes at 7 slices each, 2 in use on node 0.
  EXPECT_DOUBLE_EQ(free_vgpus, 12.0);
  // A static fleet is all-Active; the timeline is emitted regardless.
  EXPECT_DOUBLE_EQ(fleet_active, 2.0);
  EXPECT_DOUBLE_EQ(fleet_warming, 0.0);
  EXPECT_DOUBLE_EQ(fleet_draining, 0.0);
  EXPECT_FALSE(saw_queue);
}

TEST(StatsSampler, QueueDepthProviderAddsGauge) {
  SamplerFixture f;
  f.enable();
  StatsSampler sampler(f.sim, f.cluster, f.recorder, 10.0);
  sampler.set_queue_depth_provider([] { return std::size_t{42}; });
  sampler.start();
  f.sim.run();
  bool found = false;
  for (const auto& c : f.mem->counters()) {
    if (c.name == "queued_jobs") {
      found = true;
      EXPECT_DOUBLE_EQ(c.value, 42.0);
      EXPECT_EQ(c.track.pid, kControllerPid);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace esg::obs
