// Acceptance suite for the SLO-attribution engine (obs/analysis): the
// critical-path decomposition must sum to the end-to-end latency within
// 1e-6 ms, every SLO miss must receive a dominant cause, and the online
// (AnalysisSink) and offline (trace_reader) paths must render byte-identical
// reports for the same run.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "exp/scenario.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/critical_path.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/analysis/trace_reader.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"

namespace esg {
namespace {

using obs::analysis::AnalysisSink;
using obs::analysis::AttributionReport;
using obs::analysis::CriticalPathResult;
using obs::analysis::TraceDataset;

exp::Scenario small_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  return scenario;
}

/// A scenario that reliably produces SLO misses: heavy traffic on a cluster
/// too small for it, under strict SLOs.
exp::Scenario overloaded_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 2;
  scenario.load = workload::LoadSetting::kHeavy;
  scenario.slo = workload::SloSetting::kStrict;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  return scenario;
}

/// Runs `scenario` with an in-memory analysis sink and returns its dataset.
TraceDataset run_with_analysis(const exp::Scenario& scenario,
                               std::ostream* trace_out = nullptr) {
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<AnalysisSink>();
  const AnalysisSink* analysis = sink.get();
  recorder.add_sink(std::move(sink));
  if (trace_out != nullptr) {
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(*trace_out));
  }
  (void)exp::run_scenario(scenario, &recorder);
  return analysis->dataset();
}

std::string report_json(const AttributionReport& report) {
  std::ostringstream out;
  obs::analysis::write_report_json(report, out);
  return out.str();
}

TEST(Analysis, QuantizeIsIdempotent) {
  for (const double v : {0.0, 0.1234567, 17.5, 12345.000501, 1e7 / 3.0}) {
    const double q = obs::analysis::quantize_ms(v);
    EXPECT_EQ(q, obs::analysis::quantize_ms(q)) << v;
    EXPECT_NEAR(q, v, 5.1e-7) << v;
  }
}

TEST(Analysis, EveryRequestReconstructs) {
  const TraceDataset dataset = run_with_analysis(small_scenario());
  const CriticalPathResult paths =
      obs::analysis::reconstruct_critical_paths(dataset);
  EXPECT_EQ(paths.unreconstructed, 0u);
  ASSERT_GT(paths.requests.size(), 0u);
  for (const auto& request : paths.requests) {
    EXPECT_FALSE(request.path.empty()) << request.request;
  }
}

TEST(Analysis, DecompositionSumsToEndToEndLatency) {
  const TraceDataset dataset = run_with_analysis(small_scenario());
  const CriticalPathResult paths =
      obs::analysis::reconstruct_critical_paths(dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  for (const auto& request : paths.requests) {
    double component_sum = 0.0;
    for (const auto& stage : request.path) {
      component_sum += stage.component_sum_ms();
      // Per-stage components account for that stage's whole interval.
      EXPECT_NEAR(stage.component_sum_ms(), stage.actual_ms(), 1e-9)
          << "request " << request.request << " stage " << stage.stage;
      EXPECT_GE(stage.batch_wait_ms, 0.0);
      EXPECT_GE(stage.cold_start_ms, 0.0);
      EXPECT_GE(stage.queueing_ms, -1e-9);
      EXPECT_GE(stage.sched_overhead_ms, 0.0);
      EXPECT_GE(stage.transfer_ms, 0.0);
      EXPECT_GE(stage.exec_ms, 0.0);
    }
    // The headline invariant: the decomposition telescopes to the
    // end-to-end latency within 1e-6 ms.
    EXPECT_NEAR(component_sum, request.latency_ms(), 1e-6)
        << "request " << request.request;
  }
}

TEST(Analysis, EsgRunsCarryPlannedBudgets) {
  const TraceDataset dataset = run_with_analysis(small_scenario());
  CriticalPathResult paths = obs::analysis::reconstruct_critical_paths(dataset);
  obs::analysis::attribute_slo_budgets(paths, dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  for (const auto& request : paths.requests) {
    EXPECT_FALSE(request.uniform_budget) << request.request;
    for (const auto& stage : request.path) {
      EXPECT_GT(stage.planned_ms, 0.0)
          << "request " << request.request << " stage " << stage.stage;
      EXPECT_LE(stage.planned_ms, request.slo_ms);
    }
  }
}

TEST(Analysis, BaselineRunsFallBackToUniformBudgets) {
  exp::Scenario scenario = small_scenario();
  scenario.scheduler = exp::SchedulerKind::kInfless;
  const TraceDataset dataset = run_with_analysis(scenario);
  CriticalPathResult paths = obs::analysis::reconstruct_critical_paths(dataset);
  obs::analysis::attribute_slo_budgets(paths, dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  for (const auto& request : paths.requests) {
    EXPECT_TRUE(request.uniform_budget) << request.request;
    const double uniform =
        request.slo_ms / static_cast<double>(request.path.size());
    for (const auto& stage : request.path) {
      EXPECT_DOUBLE_EQ(stage.planned_ms, uniform);
    }
  }
}

TEST(Analysis, EveryMissGetsADominantCause) {
  const TraceDataset dataset = run_with_analysis(overloaded_scenario());
  CriticalPathResult paths = obs::analysis::reconstruct_critical_paths(dataset);
  obs::analysis::attribute_slo_budgets(paths, dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  std::size_t misses = 0;
  for (const auto& request : paths.requests) {
    if (request.hit) {
      EXPECT_TRUE(request.miss_cause.empty());
      continue;
    }
    ++misses;
    EXPECT_FALSE(request.miss_cause.empty()) << request.request;
    EXPECT_NE(request.miss_cause.find("@stage"), std::string::npos)
        << request.miss_cause;
  }
  // The overloaded cluster must actually miss, or the test proves nothing.
  EXPECT_GT(misses, 0u);
}

TEST(Analysis, ReportAggregatesConsistently) {
  const TraceDataset dataset = run_with_analysis(overloaded_scenario());
  const AttributionReport report = obs::analysis::build_report(dataset);
  ASSERT_GT(report.requests, 0u);
  EXPECT_EQ(report.unreconstructed, 0u);

  std::size_t app_requests = 0;
  std::size_t app_misses = 0;
  for (const auto& app : report.apps) {
    app_requests += app.requests;
    app_misses += app.misses;
    EXPECT_GT(app.slo_ms, 0.0);
    EXPECT_LE(app.latency_ms.p50, app.latency_ms.p95);
    EXPECT_LE(app.latency_ms.p95, app.latency_ms.p99);
    EXPECT_FALSE(app.stages.empty());
  }
  EXPECT_EQ(app_requests, report.requests);
  EXPECT_EQ(app_misses, report.misses);

  std::size_t cause_total = 0;
  for (const auto& [cause, count] : report.miss_causes) cause_total += count;
  EXPECT_EQ(cause_total, report.misses);

  // ESG re-plans queues mid-workflow; the replan series must be present.
  EXPECT_FALSE(report.replans.empty());

  const std::string table = obs::analysis::render_report_table(report);
  EXPECT_NE(table.find("attribution:"), std::string::npos);
}

TEST(Analysis, OnlineAndOfflineReportsAreByteIdentical) {
  std::ostringstream trace_stream;
  const TraceDataset online = run_with_analysis(small_scenario(), &trace_stream);

  const std::string online_json = report_json(obs::analysis::build_report(online));

  std::istringstream trace_in(trace_stream.str());
  const TraceDataset offline = obs::analysis::read_chrome_trace(trace_in);
  const std::string offline_json =
      report_json(obs::analysis::build_report(offline));

  ASSERT_GT(online.spans.size(), 0u);
  EXPECT_EQ(online.spans.size(), offline.spans.size());
  EXPECT_EQ(online.instants.size(), offline.instants.size());
  EXPECT_EQ(online_json, offline_json);
  EXPECT_NE(online_json.find("\"schema\":\"esg.attribution.v1\""),
            std::string::npos);
}

TEST(Analysis, ReaderRejectsDuplicateObjectKeys) {
  // A duplicated column in a hand-edited trace is corruption, not data; the
  // reader must name the line instead of silently keeping one value.
  std::istringstream dup(
      "[{\"ph\":\"X\",\"name\":\"a\",\"cat\":\"request\",\"ph\":\"X\","
      "\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1}]");
  try {
    (void)obs::analysis::read_chrome_trace(dup);
    FAIL() << "duplicate key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key"),
              std::string::npos)
        << e.what();
  }
}

TEST(Analysis, ReaderRejectsGarbage) {
  // invalid_argument, so esg_report maps malformed traces to its
  // configuration-error exit code (2) instead of a runtime failure (1).
  std::istringstream not_json("this is not a trace");
  EXPECT_THROW(obs::analysis::read_chrome_trace(not_json),
               std::invalid_argument);
  std::istringstream wrong_shape("{\"foo\": 1}");
  EXPECT_THROW(obs::analysis::read_chrome_trace(wrong_shape),
               std::invalid_argument);
}

}  // namespace
}  // namespace esg
