// End-to-end checks of the traced platform: span counts line up with the
// exported metrics, tracing never perturbs the simulation, and identical
// (scenario, seed) runs produce byte-identical artefacts.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "exp/scenario.hpp"
#include "metrics/export.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "mini_json.hpp"

namespace esg {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  return scenario;
}

std::string completions_csv(const exp::RunOutput& output) {
  std::ostringstream out;
  metrics::write_completions_csv(output.metrics, out);
  return out.str();
}

TEST(TraceIntegration, SpanCountsMatchMetrics) {
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* mem = sink.get();
  recorder.add_sink(std::move(sink));

  const exp::RunOutput output = exp::run_scenario(small_scenario(), &recorder);

  ASSERT_GT(output.metrics.requests(), 0u);
  // Exactly one exec span per dispatched task, one request span per
  // completed request — the acceptance contract of the trace exporter.
  EXPECT_EQ(mem->count(obs::SpanKind::kExec),
            output.metrics.task_trace.size());
  EXPECT_EQ(mem->count(obs::SpanKind::kRequest),
            output.metrics.completions.size());
  EXPECT_EQ(mem->count(obs::InstantKind::kDispatch),
            mem->count(obs::SpanKind::kExec));
  // Stage/queue-wait spans are per *job*; batched jobs share one task, so
  // there are at least as many of them as exec spans and the two agree.
  EXPECT_EQ(mem->count(obs::SpanKind::kStage),
            mem->count(obs::SpanKind::kQueueWait));
  EXPECT_GE(mem->count(obs::SpanKind::kStage),
            mem->count(obs::SpanKind::kExec));
  EXPECT_GT(mem->count(obs::SpanKind::kColdStart), 0u);
  EXPECT_GT(recorder.counters_recorded(), 0u);  // sampler ran
}

TEST(TraceIntegration, SpansAreWellFormed) {
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* mem = sink.get();
  recorder.add_sink(std::move(sink));
  (void)exp::run_scenario(small_scenario(), &recorder);
  for (const auto& span : mem->spans()) {
    EXPECT_GE(span.end_ms, span.start_ms) << span.name;
    EXPECT_GE(span.start_ms, 0.0) << span.name;
  }
}

TEST(TraceIntegration, TracingDoesNotPerturbTheRun) {
  const exp::Scenario scenario = small_scenario();
  const exp::RunOutput bare = exp::run_scenario(scenario, nullptr);

  obs::TraceRecorder recorder;
  recorder.add_sink(std::make_unique<obs::MemorySink>());
  const exp::RunOutput traced = exp::run_scenario(scenario, &recorder);

  EXPECT_EQ(completions_csv(bare), completions_csv(traced));
  EXPECT_EQ(bare.metrics.cold_starts, traced.metrics.cold_starts);
  EXPECT_DOUBLE_EQ(bare.metrics.total_cost, traced.metrics.total_cost);
}

TEST(TraceIntegration, RepeatedRunsAreByteIdentical) {
  // The determinism regression: same scenario + seed, twice, must yield
  // byte-identical trace JSON and completions CSV.
  const exp::Scenario scenario = small_scenario();

  auto run_once = [&](std::string& trace_out, std::string& csv_out) {
    std::ostringstream trace_stream;
    obs::TraceRecorder recorder;
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_stream));
    const exp::RunOutput output = exp::run_scenario(scenario, &recorder);
    trace_out = trace_stream.str();
    csv_out = completions_csv(output);
  };

  std::string trace_a;
  std::string csv_a;
  std::string trace_b;
  std::string csv_b;
  run_once(trace_a, csv_a);
  run_once(trace_b, csv_b);

  ASSERT_FALSE(trace_a.empty());
  EXPECT_TRUE(test_json::is_valid_json(trace_a));
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(csv_a, csv_b);
}

}  // namespace
}  // namespace esg
