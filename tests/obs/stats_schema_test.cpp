// Schema validation for the StatsSampler's JSONL output: every line must be
// standalone parseable JSON with exactly the documented field names, known
// gauge names, and non-decreasing timestamps — the contract downstream
// pandas/jq pipelines depend on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "mini_json.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"

namespace esg {
namespace {

std::vector<std::string> run_stats_lines() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 1'000.0;
  scenario.seed = 11;
  scenario.trace.stats_interval_ms = 50.0;

  std::ostringstream stats_stream;
  obs::TraceRecorder recorder;
  recorder.add_sink(std::make_unique<obs::JsonlStatsSink>(stats_stream));
  (void)exp::run_scenario(scenario, &recorder);

  std::vector<std::string> lines;
  std::istringstream in(stats_stream.str());
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Extracts the raw text of a `"key":value` field; empty when absent.
std::string field_text(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  auto end = start;
  int depth = 0;
  bool in_string = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (in_string) {
      if (c == '"' && line[end - 1] != '\\') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (depth == 0) break;
      --depth;
    }
    if (c == ',' && depth == 0) break;
  }
  return line.substr(start, end - start);
}

TEST(StatsSchema, EveryLineIsParseableJson) {
  const auto lines = run_stats_lines();
  ASSERT_GT(lines.size(), 0u);
  for (const auto& line : lines) {
    EXPECT_TRUE(test_json::is_valid_json(line)) << line;
  }
}

TEST(StatsSchema, FieldNamesAreExactlyTheDocumentedSet) {
  const auto lines = run_stats_lines();
  ASSERT_GT(lines.size(), 0u);
  for (const auto& line : lines) {
    // The sink's documented schema: {"ts_ms":..,"pid":..,"name":..,"value":..}
    EXPECT_NE(line.find("{\"ts_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find(",\"pid\":"), std::string::npos) << line;
    EXPECT_NE(line.find(",\"name\":\""), std::string::npos) << line;
    EXPECT_NE(line.find(",\"value\":"), std::string::npos) << line;
  }
}

TEST(StatsSchema, GaugeNamesAreKnown) {
  const std::set<std::string> known = {
      "used_vcpus",  "used_vgpus",   "warm_containers",
      "free_vcpus",  "free_vgpus",   "queued_jobs",
      "fleet_active", "fleet_warming", "fleet_draining"};
  const auto lines = run_stats_lines();
  ASSERT_GT(lines.size(), 0u);
  std::set<std::string> seen;
  for (const auto& line : lines) {
    std::string name = field_text(line, "name");
    ASSERT_GE(name.size(), 2u) << line;
    name = name.substr(1, name.size() - 2);  // strip quotes
    EXPECT_TRUE(known.count(name) == 1) << "unknown gauge '" << name << "'";
    seen.insert(name);
  }
  // The sampler emits every documented gauge at least once.
  EXPECT_EQ(seen, known);
}

TEST(StatsSchema, TimestampsAreMonotoneNonDecreasing) {
  const auto lines = run_stats_lines();
  ASSERT_GT(lines.size(), 1u);
  double prev = -1.0;
  for (const auto& line : lines) {
    const std::string ts = field_text(line, "ts_ms");
    ASSERT_FALSE(ts.empty()) << line;
    const double value = std::strtod(ts.c_str(), nullptr);
    EXPECT_GE(value, prev) << line;
    prev = value;
  }
}

}  // namespace
}  // namespace esg
