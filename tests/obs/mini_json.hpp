// Minimal recursive-descent JSON validator for the sink tests. Accepts
// exactly the RFC 8259 grammar (with a permissive number scanner); rejects
// trailing garbage. Validation only — nothing is materialised.
#pragma once

#include <cctype>
#include <string_view>

namespace esg::test_json {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    while (!eof()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    return pos_ > start && pos_ > start + (text_[start] == '-' ? 1u : 0u);
  }
};

[[nodiscard]] inline bool is_valid_json(std::string_view text) {
  return Validator(text).valid();
}

}  // namespace esg::test_json
