#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "obs/sinks.hpp"

namespace esg::obs {
namespace {

TEST(TraceRecorder, DisabledByDefault) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.is_enabled());
  rec.span(SpanKind::kExec, "e", invoker_track(InvokerId{0}, 0), 1.0, 2.0);
  rec.instant(InstantKind::kDispatch, "d", controller_track(), 1.0);
  rec.counter("c", controller_track(), 1.0, 3.0);
  EXPECT_EQ(rec.spans_recorded(), 0u);
  EXPECT_EQ(rec.instants_recorded(), 0u);
  EXPECT_EQ(rec.counters_recorded(), 0u);
  rec.flush();  // must not crash without sinks
}

TEST(TraceRecorder, NullSinkDoesNotEnable) {
  TraceRecorder rec;
  rec.add_sink(nullptr);
  EXPECT_FALSE(rec.is_enabled());
}

TEST(TraceRecorder, AddingSinkEnablesAndForwards) {
  TraceRecorder rec;
  auto sink = std::make_unique<MemorySink>();
  MemorySink* mem = sink.get();
  rec.add_sink(std::move(sink));
  EXPECT_TRUE(rec.is_enabled());

  rec.span(SpanKind::kExec, "task", invoker_track(InvokerId{2}, 1), 10.0, 25.0,
           {{"batch", "4"}});
  rec.instant(InstantKind::kNoPlacement, "rej", controller_track(), 12.0);
  rec.counter("free_vgpus", controller_track(), 13.0, 7.0);

  ASSERT_EQ(mem->spans().size(), 1u);
  const Span& s = mem->spans().front();
  EXPECT_EQ(s.kind, SpanKind::kExec);
  EXPECT_EQ(s.name, "task");
  EXPECT_EQ(s.track.pid, kInvokerPidBase + 2);
  EXPECT_EQ(s.track.tid, 1u);
  EXPECT_DOUBLE_EQ(s.start_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.end_ms, 25.0);
  ASSERT_EQ(s.args.size(), 1u);
  EXPECT_EQ(s.args[0].first, "batch");

  ASSERT_EQ(mem->instants().size(), 1u);
  EXPECT_EQ(mem->instants().front().kind, InstantKind::kNoPlacement);
  ASSERT_EQ(mem->counters().size(), 1u);
  EXPECT_DOUBLE_EQ(mem->counters().front().value, 7.0);

  EXPECT_EQ(rec.spans_recorded(), 1u);
  EXPECT_EQ(rec.instants_recorded(), 1u);
  EXPECT_EQ(rec.counters_recorded(), 1u);
}

TEST(TraceRecorder, FansOutToAllSinks) {
  TraceRecorder rec;
  auto a = std::make_unique<MemorySink>();
  auto b = std::make_unique<MemorySink>();
  MemorySink* pa = a.get();
  MemorySink* pb = b.get();
  rec.add_sink(std::move(a));
  rec.add_sink(std::move(b));
  rec.span(SpanKind::kRequest, "r", request_track(RequestId{1}), 0.0, 5.0);
  EXPECT_EQ(pa->spans().size(), 1u);
  EXPECT_EQ(pb->spans().size(), 1u);
}

TEST(TraceRecorder, MemorySinkCountsByKind) {
  TraceRecorder rec;
  auto sink = std::make_unique<MemorySink>();
  MemorySink* mem = sink.get();
  rec.add_sink(std::move(sink));
  rec.span(SpanKind::kExec, "a", controller_track(), 0.0, 1.0);
  rec.span(SpanKind::kExec, "b", controller_track(), 1.0, 2.0);
  rec.span(SpanKind::kColdStart, "c", controller_track(), 0.0, 3.0);
  rec.instant(InstantKind::kDefer, "d", controller_track(), 0.5);
  EXPECT_EQ(mem->count(SpanKind::kExec), 2u);
  EXPECT_EQ(mem->count(SpanKind::kColdStart), 1u);
  EXPECT_EQ(mem->count(SpanKind::kKeepAlive), 0u);
  EXPECT_EQ(mem->count(InstantKind::kDefer), 1u);
  EXPECT_EQ(mem->count(InstantKind::kDispatch), 0u);
}

TEST(TraceRecorder, KindNamesAreStable) {
  // The category strings are part of the trace file format.
  EXPECT_EQ(to_string(SpanKind::kExec), "exec");
  EXPECT_EQ(to_string(SpanKind::kQueueWait), "queue_wait");
  EXPECT_EQ(to_string(SpanKind::kKeepAlive), "keep_alive");
  EXPECT_EQ(to_string(InstantKind::kForcedMinDispatch), "forced_min_dispatch");
  EXPECT_EQ(to_string(InstantKind::kPrewarmSkipped), "prewarm_skipped");
}

TEST(TrackHelpers, MapToDocumentedCoordinates) {
  EXPECT_EQ(controller_track().pid, kControllerPid);
  EXPECT_EQ(request_track(RequestId{7}).pid, kRequestsPid);
  EXPECT_EQ(request_track(RequestId{7}).tid, 7u);
  EXPECT_EQ(invoker_track(InvokerId{3}, 2).pid, kInvokerPidBase + 3);
  EXPECT_EQ(invoker_track(InvokerId{3}, 2).tid, 2u);
}

TEST(LaneAllocator, AssignsLowestFreeLanes) {
  LaneAllocator lanes;
  lanes.configure(0, 4);
  EXPECT_EQ(lanes.acquire(0, 2), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(lanes.acquire(0, 1), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(lanes.busy_lanes(0), 3u);
}

TEST(LaneAllocator, ReturnsFewerWhenSaturated) {
  LaneAllocator lanes;
  lanes.configure(0, 2);
  EXPECT_EQ(lanes.acquire(0, 2).size(), 2u);
  // Saturated: an over-subscribed acquire claims nothing rather than lying.
  EXPECT_TRUE(lanes.acquire(0, 1).empty());
}

TEST(LaneAllocator, ReleaseMakesLanesReusable) {
  LaneAllocator lanes;
  lanes.configure(0, 3);
  const auto first = lanes.acquire(0, 3);
  lanes.release(0, {first[1]});
  EXPECT_EQ(lanes.acquire(0, 2), (std::vector<std::uint32_t>{1}));
  lanes.release(0, first);
  EXPECT_EQ(lanes.busy_lanes(0), 0u);
}

TEST(LaneAllocator, GroupsAreIndependent) {
  LaneAllocator lanes;
  lanes.configure(0, 1);
  lanes.configure(1, 1);
  EXPECT_EQ(lanes.acquire(0, 1).size(), 1u);
  EXPECT_EQ(lanes.acquire(1, 1).size(), 1u);
  EXPECT_EQ(lanes.busy_lanes(0), 1u);
  EXPECT_EQ(lanes.busy_lanes(1), 1u);
}

TEST(LaneAllocator, UnknownGroupIsEmpty) {
  LaneAllocator lanes;
  EXPECT_TRUE(lanes.acquire(9, 1).empty());
  EXPECT_EQ(lanes.busy_lanes(9), 0u);
  lanes.release(9, {0});  // must not crash
}

}  // namespace
}  // namespace esg::obs
