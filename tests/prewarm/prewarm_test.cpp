#include "prewarm/prewarm_manager.hpp"

#include <gtest/gtest.h>

#include "profile/function_spec.hpp"

namespace esg::prewarm {
namespace {

using profile::Function;

struct World {
  sim::Simulator sim;
  cluster::Cluster cluster{2};
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
};

const FunctionId kFn = profile::id_of(Function::kSuperResolution);  // cold 3503 ms

TEST(PrewarmManager, NoPredictionAfterSingleInvocation) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 0.0);
  w.sim.run();
  EXPECT_EQ(mgr.prewarms_issued(), 0u);
  EXPECT_FALSE(w.cluster.invoker(InvokerId(0)).has_warm(kFn, 10'000.0));
}

TEST(PrewarmManager, WarmsContainerBeforePredictedInvocation) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  // Two invocations 5000 ms apart -> EWMA interval 5000 ms; next predicted
  // at 10000 ms; warming starts at 10000 - 3503 = 6497 ms.
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 0.0);
  w.sim.run_until(5'000.0);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 5'000.0);
  w.sim.run();
  EXPECT_EQ(mgr.prewarms_issued(), 1u);
  EXPECT_TRUE(w.cluster.invoker(InvokerId(0)).has_warm(kFn, 10'001.0));
  EXPECT_GE(w.sim.now(), 6'497.0 + 3'503.0 - 1e-9);
}

TEST(PrewarmManager, SkipsWhenContainerAlreadyWarm) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  w.cluster.invoker(InvokerId(0)).add_warm(kFn, 0.0);  // already warm
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 0.0);
  w.sim.run_until(5'000.0);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 5'000.0);
  w.sim.run();
  // Demand (one container) is already covered: nothing gets warmed.
  EXPECT_EQ(mgr.prewarms_issued(), 0u);
  EXPECT_TRUE(w.cluster.invoker(InvokerId(0)).has_warm(kFn, 5'001.0));
}

TEST(PrewarmManager, ShortIntervalFiresImmediately) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  // Interval (100 ms) is far below the cold start (3503 ms): warming starts
  // right away rather than at a negative offset.
  mgr.on_invocation(AppId(0), kFn, InvokerId(1), 0.0);
  w.sim.run_until(100.0);
  mgr.on_invocation(AppId(0), kFn, InvokerId(1), 100.0);
  w.sim.run();
  EXPECT_EQ(mgr.prewarms_issued(), 1u);
  EXPECT_TRUE(w.cluster.invoker(InvokerId(1)).has_warm(kFn, 100.0 + 3'503.0 + 1.0));
}

TEST(PrewarmManager, StreamsAreIndependentPerAppFunction) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  // App 0 invokes twice (enough for a prediction); app 1 only once.
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 0.0);
  w.sim.run_until(1'000.0);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 1'000.0);
  mgr.on_invocation(AppId(1), kFn, InvokerId(1), 1'000.0);
  w.sim.run();
  EXPECT_EQ(mgr.prewarms_issued(), 1u);
  EXPECT_FALSE(w.cluster.invoker(InvokerId(1)).has_warm(kFn, 60'000.0));
}

TEST(PrewarmManager, OnlyOneOutstandingPrewarmPerStream) {
  World w;
  PrewarmManager mgr(w.sim, w.cluster, w.profiles);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 0.0);
  w.sim.run_until(500.0);
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 500.0);
  // A third invocation before the outstanding prewarm fires must not stack
  // a second one.
  mgr.on_invocation(AppId(0), kFn, InvokerId(0), 500.0);
  w.sim.run();
  EXPECT_LE(mgr.prewarms_issued() + mgr.prewarms_skipped(), 1u);
}

}  // namespace
}  // namespace esg::prewarm
