// Container-provisioning semantics: cold starts create warm containers off
// the execution resources, deduplicate per (invoker, function), and surface
// as queueing delay.
#include <gtest/gtest.h>

#include "platform/controller.hpp"
#include "workload/applications.hpp"

namespace esg::platform {
namespace {

class MinScheduler : public Scheduler {
 public:
  explicit MinScheduler(std::uint16_t batch = 1) : batch_(batch) {}
  std::string_view name() const override { return "min"; }
  PlanResult plan(const QueueView&) override {
    PlanResult r;
    profile::Config c = profile::kMinConfig;
    c.batch = batch_;
    r.candidates.push_back(c);
    return r;
  }
  std::optional<InvokerId> place(const PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override {
    return locality_first_place(ctx, cluster);
  }

 private:
  std::uint16_t batch_ = 1;
};

struct World {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
  sim::Simulator sim;
  cluster::Cluster cluster{4};
  RngFactory rng{3};
  MinScheduler sched;
};

ControllerOptions bare() {
  ControllerOptions o;
  o.noise_cv = 0.0;
  o.enable_prewarm = false;
  return o;
}

TEST(Provisioning, ConcurrentRequestsShareOneProvisioning) {
  World w;
  MinScheduler batching(2);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, batching, w.rng, bare());
  // Two simultaneous requests batched together: the entry function needs a
  // container on its home invoker; the provisioning must not be duplicated
  // (same invoker, same function) while the jobs wait for it.
  ctl.inject_request(w.apps[0].id());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 2u);
  // One provisioning per stage (both requests batch into the same tasks).
  EXPECT_EQ(ctl.metrics().cold_starts, 3u);
  EXPECT_EQ(ctl.metrics().tasks, 3u);
}

TEST(Provisioning, ResourcesStayFreeDuringModelLoad) {
  World w;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, w.sched, w.rng, bare());
  ctl.inject_request(w.apps[0].id());
  // Run just past the provisioning trigger, mid cold start (3503 ms for
  // super_resolution): no invoker may hold resources yet.
  w.sim.run_until(1'000.0);
  for (const auto& inv : w.cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0);
    EXPECT_EQ(inv.used_vgpus(), 0);
  }
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 1u);
}

TEST(Provisioning, ColdLatencySurfacesAsQueueingDelay) {
  World w;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, w.sched, w.rng, bare());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  // The entry job waited at least the super_resolution model-load time.
  ASSERT_FALSE(ctl.metrics().job_wait_ms.empty());
  double max_wait = 0.0;
  for (double wait : ctl.metrics().job_wait_ms) {
    max_wait = std::max(max_wait, wait);
  }
  EXPECT_GE(max_wait, 3'503.0 - 1.0);
}

TEST(Provisioning, WarmPoolSkipsProvisioning) {
  World w;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, w.sched, w.rng, bare());
  // Pre-warm a container for every stage of app 0 everywhere it may land.
  for (auto& inv : w.cluster.invokers()) {
    for (const auto& node : w.apps[0].nodes()) {
      inv.add_warm(node.function, 0.0);
    }
  }
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().cold_starts, 0u);
  // No model loads: the request flies through in roughly base latency.
  EXPECT_LT(ctl.metrics().completions.front().latency_ms, 1'000.0);
}

TEST(Provisioning, TaskTraceRecordsDispatches) {
  World w;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, w.sched, w.rng, bare());
  ctl.inject_request(w.apps[1].id());
  ctl.run_to_completion();
  ASSERT_EQ(ctl.metrics().task_trace.size(), 3u);
  const auto& first = ctl.metrics().task_trace.front();
  EXPECT_EQ(first.app, w.apps[1].id());
  EXPECT_EQ(first.batch, 1);
  EXPECT_GT(first.exec_ms, 0.0);
  EXPECT_GT(first.cost, 0.0);
  // Stages appear in pipeline order.
  EXPECT_EQ(ctl.metrics().task_trace[0].stage, 0u);
  EXPECT_EQ(ctl.metrics().task_trace[2].stage, 2u);
}

TEST(Provisioning, WarmupWindowExcludesEarlyTasks) {
  World w;
  ControllerOptions opts = bare();
  opts.metrics_warmup_ms = 1'000'000.0;  // everything is warm-up
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, w.sched, w.rng, opts);
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 0u);
  EXPECT_EQ(ctl.metrics().tasks, 0u);
  EXPECT_EQ(ctl.metrics().total_cost, 0.0);
  EXPECT_TRUE(ctl.metrics().task_trace.empty());
  EXPECT_EQ(ctl.inflight_requests(), 0u);  // still simulated to completion
}

}  // namespace
}  // namespace esg::platform
