#include "platform/controller.hpp"

#include <gtest/gtest.h>

#include "workload/applications.hpp"

namespace esg::platform {
namespace {

/// Deterministic strategy for platform tests: always proposes one fixed
/// configuration (batch clamped by the controller) and places locality-first.
class FixedScheduler : public Scheduler {
 public:
  explicit FixedScheduler(profile::Config config) : config_(config) {}

  std::string_view name() const override { return "fixed"; }

  PlanResult plan(const QueueView& view) override {
    ++plans_;
    PlanResult r;
    r.candidates.push_back(config_);
    (void)view;
    return r;
  }

  std::optional<InvokerId> place(const PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override {
    return locality_first_place(ctx, cluster);
  }

  std::size_t plans_ = 0;

 private:
  profile::Config config_;
};

/// A strategy whose placement always fails — exercises the recheck list and
/// the forced minimum-configuration escape hatch.
class UnplaceableScheduler : public FixedScheduler {
 public:
  UnplaceableScheduler() : FixedScheduler(profile::kMinConfig) {}
  std::optional<InvokerId> place(const PlacementContext&,
                                 const cluster::Cluster&) override {
    return std::nullopt;
  }
};

struct World {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
  sim::Simulator sim;
  cluster::Cluster cluster{16};
  RngFactory rng{7};
};

ControllerOptions quiet_options() {
  ControllerOptions o;
  o.noise_cv = 0.0;          // deterministic latencies
  o.enable_prewarm = false;  // keep the event stream minimal
  return o;
}

TEST(Controller, RejectsEmptyApps) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  std::vector<workload::AppDag> none;
  EXPECT_THROW(Controller(w.sim, w.cluster, w.profiles, none,
                          workload::SloSetting::kModerate, sched, w.rng),
               std::invalid_argument);
}

TEST(Controller, SingleRequestCompletesAllStages) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();

  ASSERT_EQ(ctl.metrics().requests(), 1u);
  const auto& rec = ctl.metrics().completions.front();
  EXPECT_EQ(rec.app, w.apps[0].id());
  EXPECT_GT(rec.latency_ms, 0.0);
  EXPECT_EQ(ctl.metrics().tasks, 3u);  // three pipeline stages
  EXPECT_EQ(ctl.inflight_requests(), 0u);
}

TEST(Controller, FirstRunProvisionsEveryStage) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  // Nothing is warm at first: every stage pays one container provisioning
  // (the cold start), and the task itself then runs warm.
  EXPECT_EQ(ctl.metrics().cold_starts, 3u);
  EXPECT_EQ(ctl.metrics().warm_starts, 3u);
  // The cold-start latency surfaces as queueing delay.
  double max_wait = 0.0;
  for (double wait : ctl.metrics().job_wait_ms) max_wait = std::max(max_wait, wait);
  EXPECT_GT(max_wait, 3'000.0);  // super_resolution's 3503 ms model load
}

TEST(Controller, SecondRequestHitsWarmContainers) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 2u);
  EXPECT_EQ(ctl.metrics().cold_starts, 3u);  // only the first request's
  EXPECT_EQ(ctl.metrics().warm_starts, 6u);  // every task runs warm
  // The warm request is far faster than the cold one.
  EXPECT_LT(ctl.metrics().completions[1].latency_ms,
            ctl.metrics().completions[0].latency_ms / 3.0);
}

TEST(Controller, WarmRequestMeetsRelaxedSlo) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  ControllerOptions opts = quiet_options();
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kRelaxed, sched, w.rng, opts);
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_FALSE(ctl.metrics().completions[0].hit);  // cold starts blow the SLO
  EXPECT_TRUE(ctl.metrics().completions[1].hit);
}

TEST(Controller, BatchGroupsSimultaneousRequests) {
  World w;
  FixedScheduler sched(profile::Config{4, 1, 1});
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  for (int i = 0; i < 4; ++i) ctl.inject_request(w.apps[1].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 4u);
  // 4 jobs per stage, batch 4 -> one task per stage.
  EXPECT_EQ(ctl.metrics().tasks, 3u);
}

TEST(Controller, BatchClampedToQueueLength) {
  World w;
  FixedScheduler sched(profile::Config{32, 1, 1});
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().requests(), 1u);  // ran despite batch 32 > 1 queued
}

TEST(Controller, ResourcesFullyReleasedAfterRun) {
  World w;
  FixedScheduler sched(profile::Config{2, 4, 2});
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  for (int i = 0; i < 6; ++i) ctl.inject_request(w.apps[i % 4].id());
  ctl.run_to_completion();
  for (const auto& inv : w.cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0) << inv.id().get();
    EXPECT_EQ(inv.used_vgpus(), 0) << inv.id().get();
  }
}

TEST(Controller, CostAccumulatesPerApp) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.inject_request(w.apps[2].id());
  ctl.run_to_completion();
  const auto& m = ctl.metrics();
  EXPECT_GT(m.total_cost, 0.0);
  const Usd sum = m.cost_of(w.apps[0].id()) + m.cost_of(w.apps[2].id());
  EXPECT_NEAR(m.total_cost, sum, 1e-12);
  EXPECT_EQ(m.cost_of(w.apps[1].id()), 0.0);
}

TEST(Controller, DataLocalityCountsLocalInputs) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  const auto& m = ctl.metrics();
  // Entry stage fetches remotely; successor stages run on the predecessor's
  // invoker (locality-first placement on an empty cluster) and read locally.
  EXPECT_EQ(m.remote_inputs, 1u);
  EXPECT_EQ(m.local_inputs, 2u);
}

TEST(Controller, ForcedMinConfigAfterPlacementFailures) {
  World w;
  UnplaceableScheduler sched;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  // The request still completes via the recheck-list escape hatch.
  EXPECT_EQ(ctl.metrics().requests(), 1u);
  EXPECT_GE(ctl.metrics().forced_min_dispatches, 3u);  // once per stage
}

TEST(Controller, ExecutionNoiseVariesLatency) {
  auto run_with_noise = [](double cv, std::uint64_t seed) {
    World w;
    w.rng = RngFactory(seed);
    FixedScheduler sched(profile::kMinConfig);
    ControllerOptions opts;
    opts.noise_cv = cv;
    opts.enable_prewarm = false;
    Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                   workload::SloSetting::kModerate, sched, w.rng, opts);
    ctl.inject_request(w.apps[0].id());
    ctl.run_to_completion();
    return ctl.metrics().completions.front().latency_ms;
  };
  // Zero noise: same seed or not, identical latency.
  EXPECT_DOUBLE_EQ(run_with_noise(0.0, 1), run_with_noise(0.0, 2));
  // With noise, different seeds diverge.
  EXPECT_NE(run_with_noise(0.1, 1), run_with_noise(0.1, 2));
  // Same seed is perfectly reproducible.
  EXPECT_DOUBLE_EQ(run_with_noise(0.1, 3), run_with_noise(0.1, 3));
}

TEST(Controller, NoBatchingAblationSplitsTasks) {
  World w;
  FixedScheduler sched(profile::Config{4, 1, 1});
  ControllerOptions opts = quiet_options();
  opts.enable_batching = false;
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, opts);
  for (int i = 0; i < 4; ++i) ctl.inject_request(w.apps[1].id());
  ctl.run_to_completion();
  // Without batching every job is its own task: 4 requests x 3 stages.
  EXPECT_EQ(ctl.metrics().tasks, 12u);
}

TEST(Controller, NoGpuSharingAblationCostsMore) {
  auto total_cost = [](bool sharing) {
    World w;
    FixedScheduler sched(profile::kMinConfig);
    ControllerOptions opts;
    opts.noise_cv = 0.0;
    opts.enable_prewarm = false;
    opts.enable_gpu_sharing = sharing;
    Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                   workload::SloSetting::kModerate, sched, w.rng, opts);
    ctl.inject_request(w.apps[0].id());
    ctl.run_to_completion();
    return ctl.metrics().total_cost;
  };
  // Exclusive GPUs bill all 7 slices per task.
  EXPECT_GT(total_cost(false), 3.0 * total_cost(true));
}

TEST(Controller, SloOfMatchesWorkloadDerivation) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kStrict, sched, w.rng, quiet_options());
  for (const auto& app : w.apps) {
    EXPECT_NEAR(ctl.slo_of(app.id()),
                workload::slo_latency_ms(app, w.profiles,
                                         workload::SloSetting::kStrict),
                1e-9);
  }
}

TEST(Controller, InjectSchedulesFutureArrivals) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  std::vector<workload::Arrival> arrivals = {
      {100.0, w.apps[0].id()},
      {250.0, w.apps[1].id()},
  };
  ctl.inject(arrivals);
  ctl.run_to_completion();
  ASSERT_EQ(ctl.metrics().requests(), 2u);
  EXPECT_DOUBLE_EQ(ctl.metrics().completions[0].arrival_ms, 100.0);
  EXPECT_DOUBLE_EQ(ctl.metrics().completions[1].arrival_ms, 250.0);
}

TEST(Controller, JobWaitsRecorded) {
  World w;
  FixedScheduler sched(profile::kMinConfig);
  Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                 workload::SloSetting::kModerate, sched, w.rng, quiet_options());
  ctl.inject_request(w.apps[0].id());
  ctl.run_to_completion();
  EXPECT_EQ(ctl.metrics().job_wait_ms.size(), 3u);  // one wait per job-stage
  for (double wait : ctl.metrics().job_wait_ms) EXPECT_GE(wait, 0.0);
}

}  // namespace
}  // namespace esg::platform
