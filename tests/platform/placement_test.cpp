#include <gtest/gtest.h>

#include "platform/scheduler.hpp"

namespace esg::platform {
namespace {

PlacementContext ctx_with(profile::Config config, InvokerId pred, InvokerId home) {
  PlacementContext ctx;
  ctx.app = AppId(0);
  ctx.stage = 1;
  ctx.function = FunctionId(0);
  ctx.config = config;
  ctx.predecessor_invoker = pred;
  ctx.home_invoker = home;
  ctx.now_ms = 0.0;
  return ctx;
}

TEST(LocalityFirstPlace, PredecessorWins) {
  cluster::Cluster c(4);
  const auto chosen = locality_first_place(
      ctx_with({1, 2, 1}, InvokerId(3), InvokerId(1)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(3));
}

TEST(LocalityFirstPlace, HomeWhenNoPredecessor) {
  cluster::Cluster c(4);
  const auto chosen =
      locality_first_place(ctx_with({1, 2, 1}, InvokerId{}, InvokerId(1)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(1));
}

TEST(LocalityFirstPlace, WarmInvokerBeforeCold) {
  cluster::Cluster c(4);
  // Predecessor and home both full.
  c.invoker(InvokerId(3)).allocate(16, 7);
  c.invoker(InvokerId(1)).allocate(16, 7);
  c.invoker(InvokerId(2)).add_warm(FunctionId(0), 0.0);
  const auto chosen = locality_first_place(
      ctx_with({1, 2, 1}, InvokerId(3), InvokerId(1)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(2));
}

TEST(LocalityFirstPlace, ColdFallbackPicksEmptiest) {
  cluster::Cluster c(3);
  c.invoker(InvokerId(0)).allocate(16, 7);  // pred/home candidates busy
  c.invoker(InvokerId(1)).allocate(8, 3);
  // Invoker 2 is fully free -> most available resources.
  const auto chosen = locality_first_place(
      ctx_with({1, 2, 1}, InvokerId(0), InvokerId(0)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(2));
}

TEST(LocalityFirstPlace, NulloptWhenNothingFits) {
  cluster::Cluster c(2);
  for (auto& inv : c.invokers()) inv.allocate(16, 7);
  EXPECT_FALSE(
      locality_first_place(ctx_with({1, 1, 1}, InvokerId{}, InvokerId(0)), c)
          .has_value());
}

TEST(LocalityFirstPlace, SkipsWarmInvokerThatCannotFit) {
  cluster::Cluster c(2);
  c.invoker(InvokerId(0)).allocate(16, 7);
  c.invoker(InvokerId(1)).allocate(16, 6);  // one vGPU left, no vCPU
  c.invoker(InvokerId(1)).add_warm(FunctionId(0), 0.0);
  EXPECT_FALSE(
      locality_first_place(ctx_with({2, 4, 1}, InvokerId{}, InvokerId(0)), c)
          .has_value());
}

TEST(FirstFitFromHome, StartsAtHomeAndWraps) {
  cluster::Cluster c(4);
  c.invoker(InvokerId(2)).allocate(16, 7);
  c.invoker(InvokerId(3)).allocate(16, 7);
  const auto chosen =
      first_fit_from_home(ctx_with({1, 1, 1}, InvokerId{}, InvokerId(2)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(0));  // 2 full, 3 full, wrap to 0
}

TEST(FirstFitFromHome, PrefersHomeItself) {
  cluster::Cluster c(4);
  const auto chosen =
      first_fit_from_home(ctx_with({1, 1, 1}, InvokerId{}, InvokerId(2)), c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(2));
}

TEST(FirstFitFromHome, NulloptWhenFull) {
  cluster::Cluster c(2);
  for (auto& inv : c.invokers()) inv.allocate(16, 7);
  EXPECT_FALSE(
      first_fit_from_home(ctx_with({1, 1, 1}, InvokerId{}, InvokerId(1)), c)
          .has_value());
}

}  // namespace
}  // namespace esg::platform
