#include "trace/azure_shape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace esg::trace {
namespace {

RngStream stream(std::uint64_t seed = 7) {
  return RngFactory(seed).stream("azure-shape");
}

AzureShapeOptions small_options() {
  AzureShapeOptions o;
  o.apps = 4;
  o.bins = 64;
  o.bin_ms = 500.0;
  o.mean_rate_per_bin = 40.0;
  return o;
}

TEST(AzureShape, DeterministicForSameSeed) {
  const WorkloadTrace a = generate_azure_shaped(small_options(), stream());
  const WorkloadTrace b = generate_azure_shaped(small_options(), stream());
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].bin, b.rows[i].bin);
    EXPECT_EQ(a.rows[i].app, b.rows[i].app);
    EXPECT_DOUBLE_EQ(a.rows[i].count, b.rows[i].count);
  }
}

TEST(AzureShape, ProducesAValidTraceWithIntegerCounts) {
  const WorkloadTrace t = generate_azure_shaped(small_options(), stream());
  EXPECT_NO_THROW(validate(t));
  EXPECT_EQ(t.app_count, 4u);
  EXPECT_LE(t.bin_count(), 64u);
  for (const TraceBinRow& row : t.rows) {
    EXPECT_DOUBLE_EQ(row.count, std::floor(row.count));
    EXPECT_GT(row.count, 0.0);  // zero rows are omitted
  }
  // Mean 40/bin over 64 bins (plus bursts): the total must be in the right
  // ballpark and never zero.
  EXPECT_GT(t.total_count(), 0.3 * 40.0 * 64.0);
}

TEST(AzureShape, ZipfSkewOrdersAppPopularity) {
  AzureShapeOptions o = small_options();
  o.zipf_s = 1.5;
  o.bins = 256;
  const WorkloadTrace t = generate_azure_shaped(o, stream());
  std::vector<double> per_app(o.apps, 0.0);
  for (const TraceBinRow& row : t.rows) per_app[row.app] += row.count;
  for (std::size_t a = 1; a < o.apps; ++a) {
    EXPECT_GT(per_app[a - 1], per_app[a]) << "app " << a;
  }
}

TEST(AzureShape, DiurnalAmplitudeCreatesPeaksAndTroughs) {
  AzureShapeOptions o = small_options();
  o.diurnal_amplitude = 0.8;
  o.burst_count = 0;          // isolate the sinusoid
  o.integer_counts = false;   // exact expected counts
  const WorkloadTrace t = generate_azure_shaped(o, stream());
  const std::vector<double> totals = t.bin_totals();
  ASSERT_EQ(totals.size(), o.bins);
  double lo = totals[0], hi = totals[0];
  for (const double v : totals) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi, o.mean_rate_per_bin * 1.8, 1e-6);
  EXPECT_NEAR(lo, o.mean_rate_per_bin * 0.2, 1e-6);
}

TEST(AzureShape, BurstsLiftIntensityAboveTheSinusoid) {
  AzureShapeOptions quiet = small_options();
  quiet.burst_count = 0;
  quiet.integer_counts = false;
  AzureShapeOptions bursty = quiet;
  bursty.burst_count = 4;
  bursty.burst_factor = 8.0;
  // Burst draws happen before count sampling, so compare totals: with
  // factor 8 episodes the bursty trace must carry strictly more load.
  const double q = generate_azure_shaped(quiet, stream()).total_count();
  const double b = generate_azure_shaped(bursty, stream()).total_count();
  EXPECT_GT(b, q * 1.2);
}

TEST(AzureShape, FractionalModeStoresExpectedCounts) {
  AzureShapeOptions o = small_options();
  o.integer_counts = false;
  o.burst_count = 0;
  o.diurnal_amplitude = 0.0;
  const WorkloadTrace t = generate_azure_shaped(o, stream());
  // Flat profile: every bin total equals the mean rate exactly.
  for (const double total : t.bin_totals()) {
    EXPECT_NEAR(total, o.mean_rate_per_bin, 1e-9);
  }
}

TEST(AzureShape, SingleDayIsByteIdenticalToTheLegacyShape) {
  // days was introduced after traces were already checked in: days=1 must
  // consume the RNG in exactly the legacy order so old seeds reproduce.
  AzureShapeOptions legacy = small_options();
  AzureShapeOptions one_day = small_options();
  one_day.days = 1;
  const WorkloadTrace a = generate_azure_shaped(legacy, stream());
  const WorkloadTrace b = generate_azure_shaped(one_day, stream());
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].bin, b.rows[i].bin);
    EXPECT_EQ(a.rows[i].app, b.rows[i].app);
    EXPECT_DOUBLE_EQ(a.rows[i].count, b.rows[i].count);
  }
}

TEST(AzureShape, MultiDayRepeatsTheDiurnalPatternWithFreshBursts) {
  AzureShapeOptions o = small_options();
  o.days = 3;
  o.integer_counts = false;
  o.burst_count = 0;  // deterministic sinusoid: day 2 must equal day 1
  const WorkloadTrace t = generate_azure_shaped(o, stream());
  EXPECT_EQ(t.bin_count(), o.bins * o.days);
  const std::vector<double> totals = t.bin_totals();
  for (std::size_t b = 0; b < o.bins; ++b) {
    EXPECT_NEAR(totals[b], totals[b + o.bins], 1e-9) << "bin " << b;
    EXPECT_NEAR(totals[b], totals[b + 2 * o.bins], 1e-9) << "bin " << b;
  }
  // With bursts back on, the days diverge (fresh draws per day).
  o.burst_count = 4;
  o.burst_factor = 8.0;
  const std::vector<double> bursty =
      generate_azure_shaped(o, stream()).bin_totals();
  bool any_differs = false;
  for (std::size_t b = 0; b < o.bins; ++b) {
    any_differs |= std::fabs(bursty[b] - bursty[b + o.bins]) > 1e-9;
  }
  EXPECT_TRUE(any_differs);
}

TEST(AzureShape, RejectsBadOptions) {
  AzureShapeOptions o = small_options();
  o.apps = 0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.bins = 0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.bin_ms = 0.0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.burst_factor = 0.5;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.burst_fraction = 1.5;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.mean_rate_per_bin = -1.0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.days = 0;
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
  o = small_options();
  o.days = kMaxTraceBins;  // bins * days overflows the trace bin cap
  EXPECT_THROW(generate_azure_shaped(o, stream()), std::invalid_argument);
}

}  // namespace
}  // namespace esg::trace
