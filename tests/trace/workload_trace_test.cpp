#include "trace/workload_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace esg::trace {
namespace {

WorkloadTrace csv(const std::string& text) {
  std::istringstream in(text);
  return parse_trace_csv(in);
}

WorkloadTrace jsonl(const std::string& text) {
  std::istringstream in(text);
  return parse_trace_jsonl(in);
}

constexpr const char* kValidCsv =
    "# comment\n"
    "esg-trace,v1,bin_ms=500,apps=3\n"
    "0,0,12\n"
    "0,2,3\n"
    "\n"
    "2,1,7.5\n";

TEST(TraceCsv, ParsesValidTrace) {
  const WorkloadTrace t = csv(kValidCsv);
  EXPECT_DOUBLE_EQ(t.bin_ms, 500.0);
  EXPECT_EQ(t.app_count, 3u);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[0].bin, 0u);
  EXPECT_EQ(t.rows[0].app, 0u);
  EXPECT_DOUBLE_EQ(t.rows[0].count, 12.0);
  EXPECT_EQ(t.rows[2].bin, 2u);
  EXPECT_DOUBLE_EQ(t.rows[2].count, 7.5);
  EXPECT_EQ(t.bin_count(), 3u);  // gap bin 1 still counts
  EXPECT_DOUBLE_EQ(t.duration_ms(), 1500.0);
  EXPECT_DOUBLE_EQ(t.total_count(), 22.5);
  EXPECT_EQ(t.bin_totals(), (std::vector<double>{15.0, 0.0, 7.5}));
}

TEST(TraceCsv, EmptyTraceHasHeaderOnly) {
  const WorkloadTrace t = csv("esg-trace,v1,bin_ms=100,apps=1\n");
  EXPECT_TRUE(t.rows.empty());
  EXPECT_EQ(t.bin_count(), 0u);
  EXPECT_DOUBLE_EQ(t.duration_ms(), 0.0);
}

TEST(TraceCsv, RejectsMissingOrMalformedHeader) {
  EXPECT_THROW(csv(""), std::invalid_argument);
  EXPECT_THROW(csv("# only comments\n"), std::invalid_argument);
  EXPECT_THROW(csv("0,0,1\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v2,bin_ms=500,apps=3\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,apps=3,bin_ms=500\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=500\n"), std::invalid_argument);
}

TEST(TraceCsv, RejectsBadHeaderValues) {
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=0,apps=3\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=-5,apps=3\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=nan,apps=3\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=inf,apps=3\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=500,apps=0\n"), std::invalid_argument);
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=500,apps=2.5\n"),
               std::invalid_argument);
}

TEST(TraceCsv, RejectsMalformedRows) {
  const std::string header = "esg-trace,v1,bin_ms=500,apps=3\n";
  EXPECT_THROW(csv(header + "0,0\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,1,9\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,abc\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0.5,0,1\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,1.5,1\n"), std::invalid_argument);
}

TEST(TraceCsv, RejectsNanInfNegativeCounts) {
  const std::string header = "esg-trace,v1,bin_ms=500,apps=3\n";
  EXPECT_THROW(csv(header + "0,0,nan\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,inf\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,-1\n"), std::invalid_argument);
}

TEST(TraceCsv, RejectsUnsortedAndDuplicateRows) {
  const std::string header = "esg-trace,v1,bin_ms=500,apps=3\n";
  EXPECT_THROW(csv(header + "1,0,1\n0,0,1\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,1,1\n0,0,1\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,1\n0,0,2\n"), std::invalid_argument);
}

TEST(TraceCsv, RejectsUnknownAppsAndHugeBins) {
  const std::string header = "esg-trace,v1,bin_ms=500,apps=3\n";
  EXPECT_THROW(csv(header + "0,3,1\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "9999999999,0,1\n"), std::invalid_argument);
}

TEST(TraceCsv, ErrorNamesTheLine) {
  try {
    (void)csv("esg-trace,v1,bin_ms=500,apps=3\n0,0,1\n0,9,1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown app"), std::string::npos) << what;
  }
}

constexpr const char* kValidJsonl =
    "{\"schema\":\"esg.trace.v1\",\"bin_ms\":250,\"apps\":2}\n"
    "{\"bin\":0,\"app\":0,\"count\":4}\n"
    "{\"bin\":1,\"app\":1,\"count\":2.5}\n";

TEST(TraceJsonl, ParsesValidTrace) {
  const WorkloadTrace t = jsonl(kValidJsonl);
  EXPECT_DOUBLE_EQ(t.bin_ms, 250.0);
  EXPECT_EQ(t.app_count, 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1].bin, 1u);
  EXPECT_EQ(t.rows[1].app, 1u);
  EXPECT_DOUBLE_EQ(t.rows[1].count, 2.5);
}

TEST(TraceJsonl, RejectsBadFraming) {
  EXPECT_THROW(jsonl(""), std::invalid_argument);
  EXPECT_THROW(jsonl("not json\n"), std::invalid_argument);
  EXPECT_THROW(jsonl("{\"schema\":\"esg.trace.v2\",\"bin_ms\":1,\"apps\":1}\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl("{\"bin_ms\":1,\"apps\":1}\n"), std::invalid_argument);
  const std::string header =
      "{\"schema\":\"esg.trace.v1\",\"bin_ms\":250,\"apps\":2}\n";
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":0}\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":0,\"count\":1}garbage\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":0,\"count\":1,\"x\":2}\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"bin\":1,\"app\":0,\"count\":1}\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":0,\"count\":nan}\n"),
               std::invalid_argument);
}

TEST(TraceJsonl, RejectsUnsortedAndUnknownApps) {
  const std::string header =
      "{\"schema\":\"esg.trace.v1\",\"bin_ms\":250,\"apps\":2}\n";
  EXPECT_THROW(jsonl(header + "{\"bin\":1,\"app\":0,\"count\":1}\n"
                              "{\"bin\":0,\"app\":0,\"count\":1}\n"),
               std::invalid_argument);
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":2,\"count\":1}\n"),
               std::invalid_argument);
}

TEST(TraceWriters, CsvRoundTripsByteIdentically) {
  const WorkloadTrace t = csv(kValidCsv);
  std::ostringstream first;
  write_trace_csv(t, first);
  std::istringstream in(first.str());
  const WorkloadTrace reparsed = parse_trace_csv(in);
  std::ostringstream second;
  write_trace_csv(reparsed, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_DOUBLE_EQ(reparsed.total_count(), t.total_count());
  EXPECT_EQ(reparsed.rows.size(), t.rows.size());
}

TEST(TraceWriters, JsonlRoundTripsByteIdentically) {
  const WorkloadTrace t = jsonl(kValidJsonl);
  std::ostringstream first;
  write_trace_jsonl(t, first);
  std::istringstream in(first.str());
  const WorkloadTrace reparsed = parse_trace_jsonl(in);
  std::ostringstream second;
  write_trace_jsonl(reparsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(TraceWriters, FormatsCrossConvert) {
  const WorkloadTrace t = csv(kValidCsv);
  std::ostringstream as_jsonl;
  write_trace_jsonl(t, as_jsonl);
  std::istringstream in(as_jsonl.str());
  const WorkloadTrace back = parse_trace_jsonl(in);
  EXPECT_DOUBLE_EQ(back.bin_ms, t.bin_ms);
  EXPECT_EQ(back.app_count, t.app_count);
  EXPECT_EQ(back.rows.size(), t.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].bin, t.rows[i].bin);
    EXPECT_EQ(back.rows[i].app, t.rows[i].app);
    EXPECT_DOUBLE_EQ(back.rows[i].count, t.rows[i].count);
  }
}

TEST(TraceValidate, RejectsProgrammaticInvalidTraces) {
  WorkloadTrace t;
  t.bin_ms = 100.0;
  t.app_count = 2;
  t.rows = {{0, 0, 1.0}};
  EXPECT_NO_THROW(validate(t));

  WorkloadTrace bad = t;
  bad.bin_ms = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = t;
  bad.app_count = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = t;
  bad.rows = {{0, 5, 1.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = t;
  bad.rows = {{0, 0, -1.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = t;
  bad.rows = {{1, 0, 1.0}, {0, 0, 1.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(TraceLoad, UnreadableFileThrows) {
  EXPECT_THROW(load_workload_trace("/no/such/trace.csv"),
               std::invalid_argument);
}

}  // namespace
}  // namespace esg::trace
