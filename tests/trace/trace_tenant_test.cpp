// Tenant-column support in esg.trace.v1 (CSV and JSONL): the column is
// optional, defaults to a single tenant, round-trips byte-identically, and
// malformed tenant framing is rejected with the same rigor as the rest of
// the schema.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/workload_trace.hpp"

namespace esg::trace {
namespace {

WorkloadTrace csv(const std::string& text) {
  std::istringstream in(text);
  return parse_trace_csv(in);
}

WorkloadTrace jsonl(const std::string& text) {
  std::istringstream in(text);
  return parse_trace_jsonl(in);
}

constexpr const char* kTenantedCsv =
    "esg-trace,v1,bin_ms=500,apps=2,tenants=2\n"
    "0,0,4,0\n"
    "0,0,2,1\n"
    "0,1,3,1\n"
    "1,0,1,0\n";

TEST(TraceTenantCsv, ParsesTenantColumn) {
  const WorkloadTrace t = csv(kTenantedCsv);
  EXPECT_EQ(t.tenant_count, 2u);
  ASSERT_EQ(t.rows.size(), 4u);
  EXPECT_EQ(t.rows[0].tenant, 0u);
  EXPECT_EQ(t.rows[1].tenant, 1u);
  EXPECT_DOUBLE_EQ(t.rows[1].count, 2.0);
  EXPECT_EQ(t.rows[2].tenant, 1u);
}

TEST(TraceTenantCsv, TenantlessHeaderDefaultsToOneTenant) {
  const WorkloadTrace t = csv("esg-trace,v1,bin_ms=500,apps=2\n0,0,4\n");
  EXPECT_EQ(t.tenant_count, 1u);
  EXPECT_EQ(t.rows[0].tenant, 0u);
}

TEST(TraceTenantCsv, RoundTripsByteIdentically) {
  const WorkloadTrace t = csv(kTenantedCsv);
  std::ostringstream out;
  write_trace_csv(t, out);
  const WorkloadTrace again = csv(out.str());
  std::ostringstream out2;
  write_trace_csv(again, out2);
  EXPECT_EQ(out.str(), out2.str());
  EXPECT_EQ(again.tenant_count, 2u);
  ASSERT_EQ(again.rows.size(), t.rows.size());
  EXPECT_EQ(again.rows[1].tenant, t.rows[1].tenant);
}

TEST(TraceTenantCsv, SingleTenantWriteOmitsTheColumn) {
  const WorkloadTrace t = csv("esg-trace,v1,bin_ms=500,apps=2\n0,0,4\n");
  std::ostringstream out;
  write_trace_csv(t, out);
  EXPECT_EQ(out.str().find("tenants="), std::string::npos);
  EXPECT_EQ(out.str().find("0,0,4,0"), std::string::npos);
}

TEST(TraceTenantCsv, RejectsBadTenantFraming) {
  const std::string header = "esg-trace,v1,bin_ms=500,apps=2,tenants=2\n";
  // Declared tenants but missing column.
  EXPECT_THROW(csv(header + "0,0,4\n"), std::invalid_argument);
  // Out-of-range and malformed tenant ids.
  EXPECT_THROW(csv(header + "0,0,4,2\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,4,-1\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,4,0.5\n"), std::invalid_argument);
  // Rows must sort by (bin, app, tenant) and be unique.
  EXPECT_THROW(csv(header + "0,0,4,1\n0,0,2,0\n"), std::invalid_argument);
  EXPECT_THROW(csv(header + "0,0,4,1\n0,0,2,1\n"), std::invalid_argument);
  // tenants=1 is not a valid multi-tenant declaration.
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=500,apps=2,tenants=1\n"),
               std::invalid_argument);
  // Extra column on an untenanted trace.
  EXPECT_THROW(csv("esg-trace,v1,bin_ms=500,apps=2\n0,0,4,0\n"),
               std::invalid_argument);
}

constexpr const char* kTenantedJsonl =
    "{\"schema\":\"esg.trace.v1\",\"bin_ms\":500,\"apps\":2,\"tenants\":2}\n"
    "{\"bin\":0,\"app\":0,\"count\":4,\"tenant\":0}\n"
    "{\"bin\":0,\"app\":0,\"count\":2,\"tenant\":1}\n";

TEST(TraceTenantJsonl, ParsesTenantKey) {
  const WorkloadTrace t = jsonl(kTenantedJsonl);
  EXPECT_EQ(t.tenant_count, 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1].tenant, 1u);
}

TEST(TraceTenantJsonl, RoundTripsByteIdentically) {
  const WorkloadTrace t = jsonl(kTenantedJsonl);
  std::ostringstream out;
  write_trace_jsonl(t, out);
  const WorkloadTrace again = jsonl(out.str());
  std::ostringstream out2;
  write_trace_jsonl(again, out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(TraceTenantJsonl, CrossFormatConversionPreservesTenants) {
  const WorkloadTrace t = jsonl(kTenantedJsonl);
  std::ostringstream as_csv;
  write_trace_csv(t, as_csv);
  const WorkloadTrace back = csv(as_csv.str());
  EXPECT_EQ(back.tenant_count, t.tenant_count);
  ASSERT_EQ(back.rows.size(), t.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].tenant, t.rows[i].tenant);
    EXPECT_DOUBLE_EQ(back.rows[i].count, t.rows[i].count);
  }
}

TEST(TraceTenantJsonl, RejectsBadTenantFraming) {
  const std::string header =
      "{\"schema\":\"esg.trace.v1\",\"bin_ms\":500,\"apps\":2,\"tenants\":2}\n";
  // Declared tenants require the tenant key on every row.
  EXPECT_THROW(jsonl(header + "{\"bin\":0,\"app\":0,\"count\":4}\n"),
               std::invalid_argument);
  // Out-of-range tenant id.
  EXPECT_THROW(
      jsonl(header + "{\"bin\":0,\"app\":0,\"count\":4,\"tenant\":2}\n"),
      std::invalid_argument);
  // Tenant key on an untenanted trace.
  EXPECT_THROW(
      jsonl("{\"schema\":\"esg.trace.v1\",\"bin_ms\":500,\"apps\":2}\n"
            "{\"bin\":0,\"app\":0,\"count\":4,\"tenant\":0}\n"),
      std::invalid_argument);
  // Header tenant count above the cap.
  EXPECT_THROW(jsonl("{\"schema\":\"esg.trace.v1\",\"bin_ms\":500,"
                     "\"apps\":2,\"tenants\":999999}\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace esg::trace
