// Polymorphic-equivalence tests for the ArrivalSource refactor: the base
// class generate_until must reproduce exactly what a manual next() loop
// produced before the interface existed, for every concrete generator.
#include "workload/arrival_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/azure_shape.hpp"
#include "trace/replay.hpp"
#include "workload/arrivals.hpp"
#include "workload/bursty_arrivals.hpp"

namespace esg::workload {
namespace {

std::vector<AppId> apps() { return {AppId(0), AppId(1), AppId(2)}; }

RngStream stream(std::uint64_t seed = 321) {
  return RngFactory(seed).stream("arrivals");
}

/// Historic semantics: draw with next(), keep while strictly before the
/// horizon, discard the first draw at/after it.
template <typename Gen>
std::vector<Arrival> manual_generate_until(Gen& gen, TimeMs horizon_ms) {
  std::vector<Arrival> out;
  for (;;) {
    const Arrival a = gen.next();
    if (a.time_ms >= horizon_ms) break;
    out.push_back(a);
  }
  return out;
}

void expect_same(const std::vector<Arrival>& a, const std::vector<Arrival>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_ms, b[i].time_ms) << "index " << i;
    EXPECT_EQ(a[i].app, b[i].app) << "index " << i;
  }
}

TEST(ArrivalSource, BaseGenerateUntilMatchesManualLoopForPoisson) {
  ArrivalGenerator manual(LoadSetting::kNormal, apps(), stream());
  ArrivalGenerator base(LoadSetting::kNormal, apps(), stream());
  expect_same(manual_generate_until(manual, 20'000.0),
              base.generate_until(20'000.0));
}

TEST(ArrivalSource, BaseGenerateUntilMatchesManualLoopForBursty) {
  BurstProfile profile;
  BurstyArrivalGenerator manual(profile, apps(), stream());
  BurstyArrivalGenerator base(profile, apps(), stream());
  expect_same(manual_generate_until(manual, 30'000.0),
              base.generate_until(30'000.0));
}

TEST(ArrivalSource, WorksThroughTheBasePointer) {
  std::vector<std::unique_ptr<ArrivalSource>> sources;
  sources.push_back(std::make_unique<ArrivalGenerator>(LoadSetting::kHeavy,
                                                       apps(), stream()));
  sources.push_back(std::make_unique<BurstyArrivalGenerator>(BurstProfile{},
                                                             apps(), stream()));
  trace::AzureShapeOptions o;
  o.apps = 3;
  o.bins = 16;
  o.bin_ms = 1'000.0;
  o.mean_rate_per_bin = 20.0;
  auto shaped = std::make_shared<const trace::WorkloadTrace>(
      trace::generate_azure_shaped(o, RngFactory(5).stream("azure-shape")));
  sources.push_back(std::make_unique<trace::TraceArrivalGenerator>(
      shaped, apps(), trace::ReplayOptions{},
      RngFactory(5).scoped("trace").stream("replay")));

  for (auto& src : sources) {
    const auto arrivals = src->generate_until(8'000.0);
    ASSERT_FALSE(arrivals.empty());
    TimeMs prev = 0.0;
    for (const Arrival& a : arrivals) {
      EXPECT_GT(a.time_ms, prev);
      EXPECT_LT(a.time_ms, 8'000.0);
      prev = a.time_ms;
    }
  }
}

TEST(ArrivalSource, SuccessiveGenerateUntilCallsContinueTheStream) {
  ArrivalGenerator gen(LoadSetting::kNormal, apps(), stream());
  const auto first = gen.generate_until(5'000.0);
  const auto second = gen.generate_until(10'000.0);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  // The second call resumes after the first discarded its past-horizon
  // draw, so every later arrival comes strictly after the first batch.
  EXPECT_GT(second.front().time_ms, first.back().time_ms);
}

}  // namespace
}  // namespace esg::workload
