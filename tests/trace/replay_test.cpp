#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace esg::trace {
namespace {

/// Flat trace: `bins` bins of `per_bin` expected arrivals split over 2 apps
/// (3:1 in favour of app 0).
std::shared_ptr<const WorkloadTrace> flat_trace(std::size_t bins,
                                                double per_bin,
                                                TimeMs bin_ms = 1'000.0) {
  WorkloadTrace t;
  t.bin_ms = bin_ms;
  t.app_count = 2;
  for (std::size_t b = 0; b < bins; ++b) {
    t.rows.push_back({b, 0, per_bin * 0.75});
    t.rows.push_back({b, 1, per_bin * 0.25});
  }
  return std::make_shared<const WorkloadTrace>(std::move(t));
}

std::vector<AppId> two_apps() { return {AppId(0), AppId(1)}; }

RngStream replay_stream(std::uint64_t seed = 99) {
  return RngFactory(seed).scoped("trace").stream("replay");
}

TEST(TraceReplay, ValidatesInputs) {
  const auto t = flat_trace(4, 10.0);
  EXPECT_THROW(TraceArrivalGenerator(nullptr, two_apps(), {}, replay_stream()),
               std::invalid_argument);
  EXPECT_THROW(TraceArrivalGenerator(t, {}, {}, replay_stream()),
               std::invalid_argument);
  // Trace declares 2 apps; offering only 1 must be rejected (unknown app).
  EXPECT_THROW(TraceArrivalGenerator(t, {AppId(0)}, {}, replay_stream()),
               std::invalid_argument);
  EXPECT_THROW(
      TraceArrivalGenerator(t, two_apps(), {-1.0, 1.0}, replay_stream()),
      std::invalid_argument);
  EXPECT_THROW(
      TraceArrivalGenerator(t, two_apps(), {1.0, 0.0}, replay_stream()),
      std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW(
      TraceArrivalGenerator(t, two_apps(), {nan, 1.0}, replay_stream()),
      std::invalid_argument);
}

TEST(TraceReplay, DeterministicForSameSeed) {
  const auto t = flat_trace(10, 20.0);
  TraceArrivalGenerator a(t, two_apps(), {}, replay_stream());
  TraceArrivalGenerator b(t, two_apps(), {}, replay_stream());
  for (;;) {
    const auto x = a.try_next();
    const auto y = b.try_next();
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x.has_value()) break;
    EXPECT_EQ(x->time_ms, y->time_ms);
    EXPECT_EQ(x->app, y->app);
  }
}

TEST(TraceReplay, TimesStrictlyIncreaseAndStayInRange) {
  const auto t = flat_trace(10, 30.0);
  TraceArrivalGenerator gen(t, two_apps(), {}, replay_stream());
  TimeMs prev = 0.0;
  std::size_t n = 0;
  while (const auto a = gen.try_next()) {
    EXPECT_GT(a->time_ms, prev);
    EXPECT_LT(a->time_ms, t->duration_ms());
    prev = a->time_ms;
    ++n;
  }
  EXPECT_GT(n, 0u);
  // Exhaustion is permanent.
  EXPECT_FALSE(gen.try_next().has_value());
}

TEST(TraceReplay, ZeroRateScaleYieldsNoArrivals) {
  const auto t = flat_trace(10, 50.0);
  TraceArrivalGenerator gen(t, two_apps(), {0.0, 1.0}, replay_stream());
  EXPECT_FALSE(gen.try_next().has_value());
  EXPECT_TRUE(gen.generate_until(1e9).empty());
}

TEST(TraceReplay, EmptyTraceYieldsNoArrivals) {
  WorkloadTrace t;
  t.bin_ms = 100.0;
  t.app_count = 2;
  TraceArrivalGenerator gen(std::make_shared<const WorkloadTrace>(t),
                            two_apps(), {}, replay_stream());
  EXPECT_FALSE(gen.try_next().has_value());
}

TEST(TraceReplay, PerBinCountsMatchTraceExpectation) {
  // 40 bins x 100 expected arrivals: per-bin Poisson(100), so each bin must
  // land within 5 sigma (50) of its expectation and the total within 4
  // sigma of Poisson(4000).
  constexpr std::size_t kBins = 40;
  constexpr double kPerBin = 100.0;
  const auto t = flat_trace(kBins, kPerBin);
  TraceArrivalGenerator gen(t, two_apps(), {}, replay_stream());
  std::vector<double> observed(kBins, 0.0);
  std::size_t app0 = 0, total = 0;
  while (const auto a = gen.try_next()) {
    observed[static_cast<std::size_t>(a->time_ms / t->bin_ms)] += 1.0;
    app0 += a->app == AppId(0) ? 1 : 0;
    ++total;
  }
  for (std::size_t b = 0; b < kBins; ++b) {
    EXPECT_NEAR(observed[b], kPerBin, 5.0 * std::sqrt(kPerBin))
        << "bin " << b;
  }
  EXPECT_NEAR(static_cast<double>(total), kBins * kPerBin,
              4.0 * std::sqrt(kBins * kPerBin));
  // App mix follows the 3:1 per-bin categorical weights.
  EXPECT_NEAR(static_cast<double>(app0) / static_cast<double>(total), 0.75,
              0.03);
}

TEST(TraceReplay, RateScaleScalesCounts) {
  const auto t = flat_trace(20, 50.0);
  TraceArrivalGenerator base(t, two_apps(), {1.0, 1.0}, replay_stream());
  TraceArrivalGenerator doubled(t, two_apps(), {2.0, 1.0}, replay_stream());
  const double n1 = static_cast<double>(base.generate_until(1e9).size());
  const double n2 = static_cast<double>(doubled.generate_until(1e9).size());
  EXPECT_NEAR(n2 / n1, 2.0, 0.15);
}

TEST(TraceReplay, TimeScaleStretchesReplayWithoutChangingCounts) {
  const auto t = flat_trace(20, 50.0);
  TraceArrivalGenerator base(t, two_apps(), {1.0, 1.0}, replay_stream());
  TraceArrivalGenerator slow(t, two_apps(), {1.0, 2.0}, replay_stream());
  EXPECT_DOUBLE_EQ(base.duration_ms(), t->duration_ms());
  EXPECT_DOUBLE_EQ(slow.duration_ms(), 2.0 * t->duration_ms());
  const auto a1 = base.generate_until(1e9);
  const auto a2 = slow.generate_until(1e9);
  ASSERT_FALSE(a1.empty());
  ASSERT_FALSE(a2.empty());
  // Same expected totals; arrivals land twice as late.
  EXPECT_NEAR(static_cast<double>(a2.size()) / static_cast<double>(a1.size()),
              1.0, 0.1);
  EXPECT_GT(a2.back().time_ms, t->duration_ms());
}

TEST(TraceReplay, NonUniformBinsFollowTheTraceShape) {
  // One loud bin in the middle of silence: every arrival must land there.
  WorkloadTrace t;
  t.bin_ms = 1'000.0;
  t.app_count = 1;
  t.rows = {{0, 0, 0.0}, {3, 0, 200.0}, {5, 0, 0.0}};
  TraceArrivalGenerator gen(std::make_shared<const WorkloadTrace>(t),
                            {AppId(0)}, {}, replay_stream());
  std::size_t n = 0;
  while (const auto a = gen.try_next()) {
    EXPECT_GE(a->time_ms, 3'000.0);
    EXPECT_LT(a->time_ms, 4'000.0);
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n), 200.0, 5.0 * std::sqrt(200.0));
}

TEST(TraceReplay, GenerateUntilClipsAtHorizon) {
  const auto t = flat_trace(10, 40.0);
  TraceArrivalGenerator gen(t, two_apps(), {}, replay_stream());
  const auto arrivals = gen.generate_until(2'500.0);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& a : arrivals) EXPECT_LT(a.time_ms, 2'500.0);
}

TEST(TraceReplay, ScopedStreamLeavesBaseStreamsUntouched) {
  // The replay stream is derived via RngFactory::scoped("trace"), so the
  // "arrivals"/"noise" base streams of a run see the exact same values
  // whether or not a trace generator was constructed and consumed.
  const RngFactory rng(4242);
  RngStream before = rng.stream("arrivals");
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(before.uniform());

  const auto t = flat_trace(10, 30.0);
  TraceArrivalGenerator gen(t, two_apps(), {},
                            rng.scoped("trace").stream("replay"));
  (void)gen.generate_until(1e9);

  RngStream after = rng.stream("arrivals");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(after.uniform(), expected[i]);
}

}  // namespace
}  // namespace esg::trace
