// Acceptance suite for multi-tenant fair queueing on the platform
// (DESIGN.md §12):
//
//  - an inert --tenants spec reproduces the no-tenant run byte-identically
//    for all five paper schedulers (trace bytes and metrics alike);
//  - a two-tenant MQFQ-Sticky replay is deterministic;
//  - every completion carries its owning tenant and the per-tenant split
//    partitions the run's requests exactly;
//  - the critical-path decomposition still telescopes on tenanted runs that
//    shed at admission and retry after faults;
//  - isolation: MQFQ-Sticky with equal weights keeps the steady tenant's
//    p99 strictly below the undefended shared-queue ESG run on the same
//    bursty-neighbor workload, and a 3:1 weight split measurably shifts
//    attainment toward the favored tenant.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "elastic/elastic_spec.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_spec.hpp"
#include "obs/analysis/critical_path.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "tenant/tenant_spec.hpp"
#include "trace/workload_trace.hpp"

namespace esg {
namespace {

constexpr std::uint32_t kSteadyApps[] = {0, 1};
constexpr std::uint32_t kBurstyApps[] = {2, 3};

/// Steady tenant at a constant rate, neighbor spiking 1 bin in 10 (same
/// shape as bench_fairness, scaled down). `tenanted` controls whether the
/// trace carries the tenant column — without it the run takes the legacy
/// single-tenant path.
std::shared_ptr<const trace::WorkloadTrace> bursty_trace(std::size_t bins,
                                                         bool tenanted) {
  trace::WorkloadTrace t;
  t.bin_ms = 1000.0;
  t.app_count = 4;
  t.tenant_count = tenanted ? 2 : 1;
  for (std::size_t b = 0; b < bins; ++b) {
    for (const std::uint32_t app : kSteadyApps) t.rows.push_back({b, app, 2.0, 0});
    if (b % 10 != 0) continue;
    for (const std::uint32_t app : kBurstyApps) {
      t.rows.push_back({b, app, 30.0, tenanted ? 1u : 0u});
    }
  }
  return std::make_shared<const trace::WorkloadTrace>(std::move(t));
}

exp::Scenario contended_scenario(bool tenanted, const std::string& spec,
                                 exp::SchedulerKind kind) {
  exp::Scenario scenario;
  scenario.scheduler = kind;
  scenario.nodes = 6;
  scenario.seed = 42;
  scenario.horizon_ms = 30'000.0;
  scenario.warmup_ms = 5'000.0;
  scenario.arrivals.mode = exp::ArrivalMode::kTrace;
  scenario.arrivals.trace = bursty_trace(30, tenanted);
  if (!spec.empty()) scenario.tenants = tenant::parse_tenant_spec(spec);
  return scenario;
}

struct TracedRun {
  std::string trace;
  exp::RunOutput output;
};

TracedRun traced_run(const exp::Scenario& scenario) {
  std::ostringstream trace_stream;
  TracedRun run;
  {
    obs::TraceRecorder recorder;
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_stream));
    run.output = exp::run_scenario(scenario, &recorder);
  }
  run.trace = trace_stream.str();
  return run;
}

double tenant_p99(const exp::RunOutput& output,
                  std::span<const std::uint32_t> apps) {
  std::vector<double> latencies;
  for (const auto& c : output.metrics.completions) {
    if (std::find(apps.begin(), apps.end(), c.app.get()) == apps.end()) continue;
    if (!c.shed) latencies.push_back(c.latency_ms);
  }
  return percentile(std::move(latencies), 0.99);
}

double tenant_hit_rate(const exp::RunOutput& output, std::uint32_t tenant) {
  std::size_t requests = 0, hits = 0;
  for (const auto& c : output.metrics.completions) {
    if (c.tenant != tenant) continue;
    ++requests;
    if (c.hit) ++hits;
  }
  return requests > 0 ? static_cast<double>(hits) / requests : 0.0;
}

// --- byte-identity contract ---------------------------------------------

TEST(TenantPlatform, InertSpecIsByteIdenticalForEveryScheduler) {
  for (const exp::SchedulerKind kind : exp::all_schedulers()) {
    exp::Scenario baseline;
    baseline.scheduler = kind;
    baseline.nodes = 4;
    baseline.horizon_ms = 2'000.0;
    baseline.seed = 7;
    const TracedRun plain = traced_run(baseline);

    exp::Scenario tenanted = baseline;
    tenanted.tenants = tenant::parse_tenant_spec("solo:1");
    ASSERT_TRUE(tenanted.tenants.inert());
    const TracedRun inert = traced_run(tenanted);

    ASSERT_GT(plain.trace.size(), 0u);
    EXPECT_EQ(plain.trace, inert.trace)
        << "scheduler " << exp::to_string(kind);
    EXPECT_EQ(plain.output.metrics.total_cost,
              inert.output.metrics.total_cost);
    ASSERT_EQ(plain.output.metrics.completions.size(),
              inert.output.metrics.completions.size());
    for (std::size_t i = 0; i < plain.output.metrics.completions.size(); ++i) {
      EXPECT_EQ(plain.output.metrics.completions[i].latency_ms,
                inert.output.metrics.completions[i].latency_ms);
      EXPECT_EQ(inert.output.metrics.completions[i].tenant, 0u);
    }
  }
}

TEST(TenantPlatform, TwoTenantMqfqReplayIsDeterministic) {
  const auto scenario = contended_scenario(
      true, "steady:1:apps=0,1;bursty:1:apps=2,3",
      exp::SchedulerKind::kMqfqSticky);
  const TracedRun a = traced_run(scenario);
  const TracedRun b = traced_run(scenario);
  ASSERT_GT(a.trace.size(), 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.output.metrics.total_cost, b.output.metrics.total_cost);
  ASSERT_EQ(a.output.metrics.completions.size(),
            b.output.metrics.completions.size());
}

// --- per-tenant accounting ----------------------------------------------

TEST(TenantPlatform, CompletionsPartitionAcrossTenants) {
  const auto scenario = contended_scenario(
      true, "steady:1:apps=0,1;bursty:1:apps=2,3",
      exp::SchedulerKind::kMqfqSticky);
  const exp::RunOutput output = exp::run_scenario(scenario);
  ASSERT_GT(output.metrics.completions.size(), 0u);

  std::size_t by_tenant[2] = {0, 0};
  for (const auto& c : output.metrics.completions) {
    ASSERT_LT(c.tenant, 2u);
    ++by_tenant[c.tenant];
    // The static app->tenant map and the trace column must agree.
    const bool steady_app =
        std::find(std::begin(kSteadyApps), std::end(kSteadyApps),
                  c.app.get()) != std::end(kSteadyApps);
    EXPECT_EQ(c.tenant, steady_app ? 0u : 1u);
  }
  EXPECT_GT(by_tenant[0], 0u);
  EXPECT_GT(by_tenant[1], 0u);
  EXPECT_EQ(by_tenant[0] + by_tenant[1], output.metrics.completions.size());
}

// --- decomposition survives tenancy + sheds + retries -------------------

TEST(TenantPlatform, DecompositionTelescopesWithShedsAndRetries) {
  exp::Scenario scenario = contended_scenario(
      true, "steady:1:apps=0,1;bursty:1:apps=2,3",
      exp::SchedulerKind::kMqfqSticky);
  scenario.horizon_ms = 10'000.0;
  scenario.arrivals.trace = bursty_trace(10, true);
  scenario.nodes = 2;
  scenario.elastic = elastic::parse_elastic_spec(
      "queue:min=1,max=2,out=1,idle-ms=2000,provision-ms=500,shed=on");
  scenario.fault = fault::parse_fault_spec("dispatch:prob=0.05");

  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::analysis::AnalysisSink>();
  const auto* analysis = sink.get();
  recorder.add_sink(std::move(sink));
  const exp::RunOutput output = exp::run_scenario(scenario, &recorder);

  // The run must actually exercise both hazards, or this proves little.
  EXPECT_GT(output.metrics.retries, 0u);
  EXPECT_GT(output.metrics.shed_requests, 0u);

  const obs::analysis::CriticalPathResult paths =
      obs::analysis::reconstruct_critical_paths(analysis->dataset());
  ASSERT_GT(paths.requests.size(), 0u);
  EXPECT_EQ(paths.unreconstructed, 0u);
  for (const auto& request : paths.requests) {
    double component_sum = 0.0;
    for (const auto& stage : request.path) {
      component_sum += stage.component_sum_ms();
    }
    EXPECT_NEAR(component_sum, request.latency_ms(), 1e-6)
        << "request " << request.request;
  }
}

// --- isolation ----------------------------------------------------------

TEST(TenantPlatform, MqfqShieldsSteadyTenantFromBurstyNeighbor) {
  // Undefended: no tenant column, no spec — one shared queue per stage.
  const exp::RunOutput undefended = exp::run_scenario(
      contended_scenario(false, "", exp::SchedulerKind::kEsg));
  // Defended: same arrivals, MQFQ-Sticky with equal weights.
  const exp::RunOutput defended = exp::run_scenario(contended_scenario(
      true, "steady:1:apps=0,1;bursty:1:apps=2,3",
      exp::SchedulerKind::kMqfqSticky));

  const double undefended_p99 = tenant_p99(undefended, kSteadyApps);
  const double defended_p99 = tenant_p99(defended, kSteadyApps);
  ASSERT_GT(undefended_p99, 0.0);
  ASSERT_GT(defended_p99, 0.0);
  EXPECT_LT(defended_p99, undefended_p99);
}

TEST(TenantPlatform, WeightsShiftAttainmentTowardFavoredTenant) {
  // Weights only bite when the favored flow is itself backlogged, so this
  // test saturates both tenants with flat demand and varies only the split.
  trace::WorkloadTrace flat;
  flat.bin_ms = 1000.0;
  flat.app_count = 4;
  flat.tenant_count = 2;
  for (std::size_t b = 0; b < 20; ++b) {
    for (std::uint32_t app = 0; app < 4; ++app) {
      flat.rows.push_back({b, app, 6.0, app < 2 ? 0u : 1u});
    }
  }
  const auto trace_ptr =
      std::make_shared<const trace::WorkloadTrace>(std::move(flat));

  const auto saturated = [&](const std::string& spec) {
    exp::Scenario scenario;
    scenario.scheduler = exp::SchedulerKind::kMqfqSticky;
    scenario.nodes = 4;
    scenario.seed = 42;
    scenario.horizon_ms = 20'000.0;
    scenario.warmup_ms = 4'000.0;
    scenario.arrivals.mode = exp::ArrivalMode::kTrace;
    scenario.arrivals.trace = trace_ptr;
    scenario.tenants = tenant::parse_tenant_spec(spec);
    return exp::run_scenario(scenario);
  };
  const exp::RunOutput equal =
      saturated("gold:1:apps=0,1;bronze:1:apps=2,3");
  const exp::RunOutput favored =
      saturated("gold:3:apps=0,1;bronze:1:apps=2,3");

  // Tripling gold's weight must measurably raise its attainment relative to
  // the equal split on the identical workload.
  EXPECT_GT(tenant_hit_rate(favored, 0), tenant_hit_rate(equal, 0));
}

}  // namespace
}  // namespace esg
