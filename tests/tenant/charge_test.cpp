// ChargeModel (ETF's time/energy fairness knob): the three modes must be
// mutually comparable — all expressed in equivalent single-vGPU service-ms —
// or a throttle threshold would mean different things per tenant.
#include "tenant/charge.hpp"

#include <gtest/gtest.h>

namespace esg::tenant {
namespace {

TEST(Charge, TimeChargeScalesWithVgpuSlices) {
  const ChargeModel model;
  EXPECT_DOUBLE_EQ(model.time_charge_ms(100.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(model.time_charge_ms(100.0, 2), 200.0);
  // CPU-only stages still consume scheduler attention: one slice minimum.
  EXPECT_DOUBLE_EQ(model.time_charge_ms(100.0, 0), 100.0);
  EXPECT_DOUBLE_EQ(model.time_charge_ms(-5.0, 1), 0.0);
}

TEST(Charge, JoulesFollowLinearPowerModel) {
  const ChargeModel model({/*base_w=*/50.0, /*per_vgpu_w=*/250.0,
                           /*per_vcpu_w=*/12.5});
  // 1000 ms at (50 + 250 + 2*12.5) W = 325 J.
  EXPECT_DOUBLE_EQ(model.joules(1000.0, 2, 1), 325.0);
  EXPECT_DOUBLE_EQ(model.joules(0.0, 2, 1), 0.0);
}

TEST(Charge, EnergyChargeIsNormalisedToOneVgpuReference) {
  const ChargeModel model;
  // A pure one-vGPU zero-vCPU task IS the reference: energy == time charge.
  EXPECT_DOUBLE_EQ(model.energy_charge_ms(100.0, 0, 1),
                   model.time_charge_ms(100.0, 1));
  // Adding vCPUs makes the same occupancy cost more under energy fairness.
  EXPECT_GT(model.energy_charge_ms(100.0, 8, 1),
            model.energy_charge_ms(100.0, 0, 1));
}

TEST(Charge, HybridBlendsEndpoints) {
  const ChargeModel model;
  TenantDef tenant;
  tenant.mode = ChargeMode::kHybrid;

  tenant.hybrid_alpha = 1.0;  // pure time
  EXPECT_DOUBLE_EQ(model.charge_ms(tenant, 100.0, 8, 2),
                   model.time_charge_ms(100.0, 2));
  tenant.hybrid_alpha = 0.0;  // pure energy
  EXPECT_DOUBLE_EQ(model.charge_ms(tenant, 100.0, 8, 2),
                   model.energy_charge_ms(100.0, 8, 2));

  tenant.hybrid_alpha = 0.5;
  const double mid = model.charge_ms(tenant, 100.0, 8, 2);
  EXPECT_DOUBLE_EQ(mid, 0.5 * model.time_charge_ms(100.0, 2) +
                            0.5 * model.energy_charge_ms(100.0, 8, 2));
}

TEST(Charge, DeclaredModeSelectsTheCharge) {
  const ChargeModel model;
  TenantDef tenant;
  tenant.mode = ChargeMode::kTime;
  EXPECT_DOUBLE_EQ(model.charge_ms(tenant, 50.0, 4, 2),
                   model.time_charge_ms(50.0, 2));
  tenant.mode = ChargeMode::kEnergy;
  EXPECT_DOUBLE_EQ(model.charge_ms(tenant, 50.0, 4, 2),
                   model.energy_charge_ms(50.0, 4, 2));
}

}  // namespace
}  // namespace esg::tenant
