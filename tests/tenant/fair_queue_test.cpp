// FairQueue core invariants (MQFQ-Sticky bookkeeping): weighted virtual
// time, idle-flow catch-up (no banked credit), the throttle threshold T,
// and the weight-proportional sticky device ring.
#include "tenant/fair_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tenant/tenant_spec.hpp"

namespace esg::tenant {
namespace {

FairQueue make_queue(const std::string& spec_text, std::size_t devices,
                     bool gate) {
  return FairQueue(parse_tenant_spec(spec_text), devices, gate);
}

TEST(FairQueue, VirtualTimeAdvancesByChargeOverWeight) {
  FairQueue fq = make_queue("heavy:4;light:1", 4, false);
  fq.on_enqueue(0);
  fq.on_enqueue(1);
  fq.on_charge(0, 100.0, 0, 1);  // 100 service-ms at weight 4
  fq.on_charge(1, 100.0, 0, 1);  // 100 service-ms at weight 1
  EXPECT_DOUBLE_EQ(fq.virtual_time(0), 25.0);
  EXPECT_DOUBLE_EQ(fq.virtual_time(1), 100.0);
  EXPECT_DOUBLE_EQ(fq.charged_ms(0), 100.0);
  EXPECT_DOUBLE_EQ(fq.charged_ms(1), 100.0);
}

TEST(FairQueue, OrderedTenantsAscendByVirtualTime) {
  FairQueue fq = make_queue("a:1;b:1;c:1", 4, false);
  for (std::uint32_t t = 0; t < 3; ++t) fq.on_enqueue(t);
  fq.on_charge(0, 300.0, 0, 1);
  fq.on_charge(2, 100.0, 0, 1);
  // b (vt 0) first, then c (100), then a (300).
  EXPECT_EQ(fq.ordered_tenants(), (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(FairQueue, IdleFlowResumesAtGlobalVirtualTime) {
  FairQueue fq = make_queue("busy:1;sleeper:1", 4, false);
  // The sleeper stays idle while the busy flow works its backlog up to a
  // large VT; when the sleeper finally activates it must NOT dispatch from
  // vt 0 (that would cash in service it never requested).
  fq.on_enqueue(0);
  fq.on_charge(0, 500.0, 0, 1);
  EXPECT_DOUBLE_EQ(fq.virtual_time(1), 0.0);  // still asleep
  fq.on_enqueue(1);
  EXPECT_DOUBLE_EQ(fq.virtual_time(1), 500.0);  // caught up on activation
}

TEST(FairQueue, CatchUpNeverRewindsAnActiveFlow) {
  FairQueue fq = make_queue("a:1;b:1", 4, false);
  fq.on_enqueue(0);
  fq.on_charge(0, 200.0, 0, 1);
  fq.on_dequeue(0, 1);  // idle again at vt 200
  fq.on_enqueue(0);
  EXPECT_DOUBLE_EQ(fq.virtual_time(0), 200.0);  // max(own vt, global vt)
}

TEST(FairQueue, ThrottleGatesOnlyBeyondThresholdOfActivePeer) {
  FairQueue fq = make_queue("front:1;behind:1;throttle=50", 4, true);
  ASSERT_TRUE(fq.gating());
  fq.on_enqueue(0);
  fq.on_enqueue(1);
  fq.on_charge(0, 40.0, 0, 1);  // lead 40 <= T
  EXPECT_FALSE(fq.throttled(0));
  fq.on_charge(0, 40.0, 0, 1);  // lead 80 > T
  EXPECT_TRUE(fq.throttled(0));
  EXPECT_FALSE(fq.throttled(1));  // the laggard is never paused
  EXPECT_EQ(fq.throttle_events(0), 1u);
  // Once the laggard catches up, the gate opens again.
  fq.on_charge(1, 60.0, 0, 1);
  EXPECT_FALSE(fq.throttled(0));
}

TEST(FairQueue, ThrottleIgnoresIdlePeers) {
  FairQueue fq = make_queue("front:1;idle:1;throttle=50", 4, true);
  fq.on_enqueue(0);
  fq.on_charge(0, 1000.0, 0, 1);
  // The only other flow has no backlog: a flow can never be throttled by a
  // tenant that is not asking for service.
  EXPECT_FALSE(fq.throttled(0));
}

TEST(FairQueue, GatingOffNeverThrottles) {
  FairQueue fq = make_queue("a:1;b:1;throttle=50", 4, false);
  fq.on_enqueue(0);
  fq.on_enqueue(1);
  fq.on_charge(0, 10'000.0, 0, 1);
  EXPECT_FALSE(fq.throttled(0));
  EXPECT_EQ(fq.throttle_events(0), 0u);
}

TEST(FairQueue, StickyRingIsWeightProportionalAndCoversAllDevices) {
  FairQueue fq = make_queue("heavy:3;light:1", 8, true);
  // 8 devices split 3:1 -> 6 and 2, contiguous from device 0.
  std::size_t heavy = 0, light = 0;
  for (std::uint32_t d = 0; d < 8; ++d) {
    const bool h = fq.sticky(0, InvokerId(d));
    const bool l = fq.sticky(1, InvokerId(d));
    EXPECT_TRUE(h || l) << "device " << d << " belongs to no slice";
    heavy += h;
    light += l;
  }
  EXPECT_EQ(heavy, 6u);
  EXPECT_EQ(light, 2u);
  EXPECT_EQ(fq.sticky_home(0).get(), 0u);
  EXPECT_TRUE(fq.sticky(0, fq.sticky_home(0)));
  EXPECT_TRUE(fq.sticky(1, fq.sticky_home(1)));
}

TEST(FairQueue, EveryFlowGetsADeviceEvenWhenOutnumbered) {
  // 3 flows on 2 devices: slices overlap rather than starve anyone.
  FairQueue fq = make_queue("a:1;b:1;c:1", 2, true);
  for (std::uint32_t t = 0; t < 3; ++t) {
    bool anywhere = false;
    for (std::uint32_t d = 0; d < 2; ++d) {
      anywhere = anywhere || fq.sticky(t, InvokerId(d));
    }
    EXPECT_TRUE(anywhere) << "flow " << t << " has no sticky device";
  }
}

TEST(FairQueue, GatedRunWithoutSpecGetsOneImplicitFlow) {
  // MQFQ-Sticky without --tenants: a single flow covering everything.
  FairQueue fq(TenantSpec{}, 4, true);
  EXPECT_EQ(fq.tenant_count(), 1u);
  EXPECT_EQ(fq.spec().tenant_name(0), "t0");
  fq.on_enqueue(0);
  EXPECT_FALSE(fq.throttled(0));  // a lone flow can never be paused
}

}  // namespace
}  // namespace esg::tenant
