// TenantSpec grammar acceptance (DESIGN.md §12): the --tenants string is
// user input, so every malformed clause must be rejected at parse time with
// a precise error, and every accepted spec must round-trip.
#include "tenant/tenant_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace esg::tenant {
namespace {

TEST(TenantSpec, EmptyAndNoneDisable) {
  EXPECT_FALSE(parse_tenant_spec("").enabled());
  EXPECT_FALSE(parse_tenant_spec("none").enabled());
  EXPECT_FALSE(parse_tenant_spec("  none  ").enabled());
  EXPECT_TRUE(parse_tenant_spec("").inert());
}

TEST(TenantSpec, ParsesMinimalTwoTenantSpec) {
  const TenantSpec spec = parse_tenant_spec("premium:3;free:1");
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_EQ(spec.tenants[0].name, "premium");
  EXPECT_DOUBLE_EQ(spec.tenants[0].weight, 3.0);
  EXPECT_EQ(spec.tenants[0].mode, ChargeMode::kTime);
  EXPECT_EQ(spec.tenants[1].name, "free");
  EXPECT_DOUBLE_EQ(spec.tenants[1].weight, 1.0);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(spec.inert());
  EXPECT_DOUBLE_EQ(spec.throttle_ms, 50.0);  // default T
}

TEST(TenantSpec, SingleTenantIsEnabledButInert) {
  const TenantSpec spec = parse_tenant_spec("solo:1");
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.inert());
}

TEST(TenantSpec, ParsesModesAndApps) {
  const TenantSpec spec = parse_tenant_spec(
      "gold:3:energy:apps=0,2;silver:2:hybrid=0.25;bronze:1:time:apps=1");
  ASSERT_EQ(spec.tenants.size(), 3u);
  EXPECT_EQ(spec.tenants[0].mode, ChargeMode::kEnergy);
  EXPECT_EQ(spec.tenants[0].apps, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(spec.tenants[1].mode, ChargeMode::kHybrid);
  EXPECT_DOUBLE_EQ(spec.tenants[1].hybrid_alpha, 0.25);
  EXPECT_EQ(spec.tenants[2].mode, ChargeMode::kTime);
  EXPECT_EQ(spec.tenants[2].apps, (std::vector<std::uint32_t>{1}));
}

TEST(TenantSpec, FieldOrderIsFlexibleAfterWeight) {
  // apps= may precede the mode; both orders parse identically.
  const TenantSpec a = parse_tenant_spec("t:1:apps=3:energy;u:1");
  const TenantSpec b = parse_tenant_spec("t:1:energy:apps=3;u:1");
  EXPECT_EQ(a.tenants[0].mode, b.tenants[0].mode);
  EXPECT_EQ(a.tenants[0].apps, b.tenants[0].apps);
}

TEST(TenantSpec, ParsesThrottleClause) {
  const TenantSpec spec = parse_tenant_spec("a:1;b:1;throttle=12.5");
  EXPECT_DOUBLE_EQ(spec.throttle_ms, 12.5);
}

TEST(TenantSpec, TenantOfUsesStaticMapWithUnclaimedToZero) {
  const TenantSpec spec = parse_tenant_spec("a:1:apps=2;b:1:apps=0,3");
  EXPECT_EQ(spec.tenant_of(2), 0u);
  EXPECT_EQ(spec.tenant_of(0), 1u);
  EXPECT_EQ(spec.tenant_of(3), 1u);
  EXPECT_EQ(spec.tenant_of(7), 0u);  // unclaimed app -> tenant 0
}

TEST(TenantSpec, TenantNameFallsBackBeyondDeclared) {
  const TenantSpec spec = parse_tenant_spec("a:1;b:2");
  EXPECT_EQ(spec.tenant_name(0), "a");
  EXPECT_EQ(spec.tenant_name(1), "b");
  EXPECT_EQ(spec.tenant_name(5), "t5");
  EXPECT_DOUBLE_EQ(spec.weight_of(1), 2.0);
  EXPECT_DOUBLE_EQ(spec.weight_of(5), 1.0);
}

TEST(TenantSpec, RejectsMalformedClauses) {
  EXPECT_THROW(parse_tenant_spec("justaname"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:0"), std::invalid_argument);     // w <= 0
  EXPECT_THROW(parse_tenant_spec("a:-1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:nan"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:x"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("bad name:1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec(":1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:plasma"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:hybrid=2"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:hybrid=-0.5"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps="), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps=1,,2"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps=-1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:time:energy"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps=1:apps=2"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("throttle=10"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1;b:1;throttle=0"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1;b:1;throttle=x"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1;b:1;throttle=1;throttle=2"),
               std::invalid_argument);
}

TEST(TenantSpec, RejectsDuplicateNamesAndApps) {
  EXPECT_THROW(parse_tenant_spec("a:1;a:2"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:apps=3;b:1:apps=3"),
               std::invalid_argument);
}

TEST(TenantSpec, ToStringRoundTrips) {
  const std::string canonical = to_string(parse_tenant_spec(
      "gold:3:energy:apps=0,2;silver:2:hybrid=0.25;throttle=40"));
  const TenantSpec again = parse_tenant_spec(canonical);
  EXPECT_EQ(to_string(again), canonical);
  EXPECT_EQ(to_string(TenantSpec{}), "none");
}

TEST(TenantSpec, LoadsFromFileWithNewlineClauses) {
  const std::string path = ::testing::TempDir() + "tenants_spec_test.txt";
  {
    std::ofstream file(path);
    file << "gold:3:apps=0\n";
    file << "bronze:1:apps=1\n";
    file << "throttle=30\n";
  }
  const TenantSpec spec = load_tenant_spec("@" + path);
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_EQ(spec.tenants[0].name, "gold");
  EXPECT_DOUBLE_EQ(spec.throttle_ms, 30.0);
  std::remove(path.c_str());
}

TEST(TenantSpec, LoadRejectsUnreadableFile) {
  EXPECT_THROW(load_tenant_spec("@/no/such/tenant/file"),
               std::invalid_argument);
}

TEST(TenantSpec, ResolveForTraceGrowsImplicitTenants) {
  const TenantSpec resolved = resolve_for_trace(TenantSpec{}, 3);
  ASSERT_EQ(resolved.tenants.size(), 3u);
  EXPECT_EQ(resolved.tenants[0].name, "t0");
  EXPECT_EQ(resolved.tenants[2].name, "t2");
  EXPECT_DOUBLE_EQ(resolved.tenants[0].weight, resolved.tenants[2].weight);
}

TEST(TenantSpec, ResolveForTraceKeepsDisabledSpecOnSingleTenantTrace) {
  EXPECT_FALSE(resolve_for_trace(TenantSpec{}, 1).enabled());
  EXPECT_FALSE(resolve_for_trace(TenantSpec{}, 0).enabled());
}

TEST(TenantSpec, ResolveForTraceRequiresDeclaredCoverage) {
  const TenantSpec two = parse_tenant_spec("a:1;b:1");
  EXPECT_EQ(resolve_for_trace(two, 2).tenants.size(), 2u);
  EXPECT_EQ(resolve_for_trace(two, 1).tenants.size(), 2u);
  EXPECT_THROW(resolve_for_trace(two, 3), std::invalid_argument);
}

}  // namespace
}  // namespace esg::tenant
