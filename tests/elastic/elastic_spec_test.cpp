// Grammar and validation tests for --elastic specs (DESIGN.md §11).
#include <gtest/gtest.h>

#include <stdexcept>

#include "elastic/elastic_spec.hpp"

namespace esg::elastic {
namespace {

TEST(ElasticSpec, DefaultIsDisabledAndInert) {
  const ElasticSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.inert());
}

TEST(ElasticSpec, ParsesQueuePolicyWithDefaults) {
  const ElasticSpec spec = parse_elastic_spec("queue");
  EXPECT_EQ(spec.policy, ElasticPolicy::kQueue);
  EXPECT_TRUE(spec.enabled());
  EXPECT_EQ(spec.min_nodes, 1u);
  EXPECT_EQ(spec.max_nodes, 0u);
  EXPECT_DOUBLE_EQ(spec.out_threshold, 8.0);
  EXPECT_EQ(spec.out_step, 1u);
  EXPECT_DOUBLE_EQ(spec.idle_ms, 30'000.0);
  EXPECT_DOUBLE_EQ(spec.eval_ms, 250.0);
  EXPECT_DOUBLE_EQ(spec.provision_ms, 2'000.0);
  EXPECT_FALSE(spec.shed);
  EXPECT_DOUBLE_EQ(spec.shed_margin, 1.0);
}

TEST(ElasticSpec, ParsesEveryKey) {
  const ElasticSpec spec = parse_elastic_spec(
      "rate:min=2,max=12,out=4.5,step=3,idle-ms=5000,eval-ms=100,"
      "provision-ms=1500,alpha=0.5,shed=on,shed-margin=1.25");
  EXPECT_EQ(spec.policy, ElasticPolicy::kRate);
  EXPECT_EQ(spec.min_nodes, 2u);
  EXPECT_EQ(spec.max_nodes, 12u);
  EXPECT_DOUBLE_EQ(spec.out_threshold, 4.5);
  EXPECT_EQ(spec.out_step, 3u);
  EXPECT_DOUBLE_EQ(spec.idle_ms, 5'000.0);
  EXPECT_DOUBLE_EQ(spec.eval_ms, 100.0);
  EXPECT_DOUBLE_EQ(spec.provision_ms, 1'500.0);
  EXPECT_DOUBLE_EQ(spec.rate_alpha, 0.5);
  EXPECT_TRUE(spec.shed);
  EXPECT_DOUBLE_EQ(spec.shed_margin, 1.25);
}

TEST(ElasticSpec, ScaleToZeroFloorParses) {
  const ElasticSpec spec = parse_elastic_spec("queue:min=0,idle-ms=1000");
  EXPECT_EQ(spec.min_nodes, 0u);
}

TEST(ElasticSpec, InertRequiresFrozenFleetAndNoShedding) {
  EXPECT_TRUE(parse_elastic_spec("queue:min=4,max=4,idle-ms=0").inert());
  // Any headroom, idle-out, or shedding makes the spec live.
  EXPECT_FALSE(parse_elastic_spec("queue:min=2,max=4,idle-ms=0").inert());
  EXPECT_FALSE(parse_elastic_spec("queue:min=4,max=4,idle-ms=100").inert());
  EXPECT_FALSE(
      parse_elastic_spec("queue:min=4,max=4,idle-ms=0,shed=on").inert());
}

TEST(ElasticSpec, EmptyAndNoneAreDisabled) {
  EXPECT_FALSE(parse_elastic_spec("").enabled());
  EXPECT_FALSE(parse_elastic_spec("none").enabled());
}

TEST(ElasticSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_elastic_spec("gradient"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:min"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:min=abc"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:min=1,min=2"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:min=5,max=2"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:out=0"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:step=0"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:eval-ms=0"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:idle-ms=-1"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("rate:alpha=0"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("rate:alpha=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:shed=maybe"), std::invalid_argument);
  EXPECT_THROW(parse_elastic_spec("queue:shed-margin=0"),
               std::invalid_argument);
}

TEST(ElasticSpec, ToStringRoundTrips) {
  const char* specs[] = {
      "queue:min=2,max=8,out=4,step=2,idle-ms=5000,shed=on,shed-margin=1.5",
      "rate:out=3,alpha=0.2",
      "queue:min=4,max=4,idle-ms=0",
  };
  for (const char* text : specs) {
    const ElasticSpec once = parse_elastic_spec(text);
    const ElasticSpec twice = parse_elastic_spec(to_string(once));
    EXPECT_EQ(to_string(once), to_string(twice)) << text;
    EXPECT_EQ(once.policy, twice.policy);
    EXPECT_EQ(once.min_nodes, twice.min_nodes);
    EXPECT_EQ(once.max_nodes, twice.max_nodes);
    EXPECT_DOUBLE_EQ(once.out_threshold, twice.out_threshold);
    EXPECT_DOUBLE_EQ(once.idle_ms, twice.idle_ms);
    EXPECT_EQ(once.shed, twice.shed);
  }
}

}  // namespace
}  // namespace esg::elastic
