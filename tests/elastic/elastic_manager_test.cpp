// Acceptance suite for the elastic fleet lifecycle (DESIGN.md §11):
//
//  - an inert --elastic spec reproduces the static-fleet run byte-identically
//    (trace bytes and metrics alike);
//  - the same seed + spot churn replays byte-identically;
//  - scale-in drains and retires idle nodes, and a later burst re-acquires
//    them (rejoin after scale-in);
//  - a draining node finishes its in-flight stages, takes no new placements,
//    and releases every vCPU/vGPU and warm container on departure;
//  - spot reclamation leaks nothing, and its kills surface as
//    reclaimed@stageK in the attribution report;
//  - admission-control sheds are deterministic, attributed as shed@admission,
//    and the critical-path decomposition still telescopes around them.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "elastic/elastic_manager.hpp"
#include "elastic/elastic_spec.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_engine.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/critical_path.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "platform/controller.hpp"
#include "workload/applications.hpp"

namespace esg {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 2'000.0;
  scenario.seed = 7;
  return scenario;
}

struct TracedRun {
  std::string trace;
  exp::RunOutput output;
};

TracedRun traced_run(const exp::Scenario& scenario) {
  std::ostringstream trace_stream;
  TracedRun run;
  {
    obs::TraceRecorder recorder;
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_stream));
    run.output = exp::run_scenario(scenario, &recorder);
  }
  run.trace = trace_stream.str();
  return run;
}

obs::analysis::TraceDataset run_with_analysis(const exp::Scenario& scenario) {
  obs::TraceRecorder recorder;
  auto sink = std::make_unique<obs::analysis::AnalysisSink>();
  const auto* analysis = sink.get();
  recorder.add_sink(std::move(sink));
  (void)exp::run_scenario(scenario, &recorder);
  return analysis->dataset();
}

// --- determinism contract -----------------------------------------------

TEST(Elastic, InertSpecIsByteIdenticalToStaticFleet) {
  const TracedRun baseline = traced_run(small_scenario());

  exp::Scenario inert_scenario = small_scenario();
  inert_scenario.elastic =
      elastic::parse_elastic_spec("queue:min=4,max=4,idle-ms=0");
  ASSERT_TRUE(inert_scenario.elastic.inert());
  const TracedRun inert = traced_run(inert_scenario);

  ASSERT_GT(baseline.trace.size(), 0u);
  EXPECT_EQ(baseline.trace, inert.trace);
  EXPECT_EQ(baseline.output.metrics.total_cost,
            inert.output.metrics.total_cost);
  EXPECT_EQ(baseline.output.metrics.requests(),
            inert.output.metrics.requests());
  ASSERT_EQ(baseline.output.metrics.completions.size(),
            inert.output.metrics.completions.size());
  for (std::size_t i = 0; i < baseline.output.metrics.completions.size();
       ++i) {
    EXPECT_EQ(baseline.output.metrics.completions[i].latency_ms,
              inert.output.metrics.completions[i].latency_ms);
  }
  EXPECT_EQ(inert.output.metrics.scale_outs, 0u);
  EXPECT_EQ(inert.output.metrics.scale_ins, 0u);
  EXPECT_EQ(inert.output.metrics.shed_requests, 0u);
}

exp::Scenario churn_scenario() {
  exp::Scenario scenario;
  scenario.nodes = 4;
  scenario.horizon_ms = 6'000.0;
  scenario.seed = 7;
  scenario.elastic = elastic::parse_elastic_spec(
      "queue:min=1,max=6,out=2,idle-ms=1000,provision-ms=500,shed=on");
  scenario.fault = fault::parse_fault_spec("spot:at=2000,nodes=2,warn=300");
  return scenario;
}

TEST(Elastic, SpotChurnReplaysByteIdentically) {
  const TracedRun a = traced_run(churn_scenario());
  const TracedRun b = traced_run(churn_scenario());
  ASSERT_GT(a.trace.size(), 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.output.metrics.total_cost, b.output.metrics.total_cost);
  EXPECT_EQ(a.output.metrics.shed_requests, b.output.metrics.shed_requests);
  // The churn must actually have fired, or the replay proves little.
  EXPECT_EQ(a.output.metrics.spot_reclaims, 2u);
}

TEST(Elastic, SpotWithoutElasticIsRejected) {
  exp::Scenario scenario = small_scenario();
  scenario.fault = fault::parse_fault_spec("spot:at=100,nodes=1");
  EXPECT_THROW((void)exp::run_scenario(scenario), std::invalid_argument);
}

TEST(Elastic, InitialFleetOutsideElasticRangeIsRejected) {
  exp::Scenario scenario = small_scenario();  // 4 nodes
  scenario.elastic = elastic::parse_elastic_spec("queue:min=1,max=2");
  EXPECT_THROW((void)exp::run_scenario(scenario), std::invalid_argument);
  scenario.elastic = elastic::parse_elastic_spec("queue:min=6,max=0");
  EXPECT_THROW((void)exp::run_scenario(scenario), std::invalid_argument);
}

// --- controller-level lifecycle invariants ------------------------------

/// Deterministic one-config strategy (mirrors the platform test harness).
class FixedScheduler : public platform::Scheduler {
 public:
  std::string_view name() const override { return "fixed"; }
  platform::PlanResult plan(const platform::QueueView& view) override {
    (void)view;
    platform::PlanResult r;
    r.candidates.push_back(profile::kMinConfig);
    return r;
  }
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override {
    return platform::locality_first_place(ctx, cluster);
  }
};

struct World {
  profile::ProfileSet profiles = profile::ProfileSet::builtin();
  std::vector<workload::AppDag> apps = workload::builtin_applications();
  sim::Simulator sim;
  cluster::Cluster cluster{4};
  RngFactory rng{7};
};

platform::ControllerOptions quiet_options(fault::FaultEngine* fault,
                                          elastic::ElasticManager* manager) {
  platform::ControllerOptions o;
  o.noise_cv = 0.0;
  o.enable_prewarm = false;
  o.fault = fault;
  o.elastic = manager;
  return o;
}

void expect_no_leaks(const cluster::Cluster& cluster) {
  for (const auto& inv : cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0) << inv.id().get();
    EXPECT_EQ(inv.used_vgpus(), 0) << inv.id().get();
    if (inv.state() == cluster::NodeState::kRetired) {
      EXPECT_EQ(inv.total_warm(0.0), 0u)
          << "retired node " << inv.id().get() << " still holds warm state";
    }
  }
}

TEST(Elastic, ScaleInRetiresIdleNodesAndBurstReacquiresThem) {
  World w;
  elastic::ElasticManager manager(
      w.sim, w.cluster,
      elastic::parse_elastic_spec(
          "queue:min=1,max=4,out=1,idle-ms=1000,eval-ms=100,provision-ms=200"),
      w.rng.scoped("elastic"), 4);
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kRelaxed, sched, w.rng,
                           quiet_options(nullptr, &manager));

  // The fleet starts idle: by ~1.1 s the idle-out has drained it to min=1.
  // A burst then lands on the lone survivor; its backlog exceeds the
  // out-threshold at the next tick and retired nodes are re-acquired.
  std::vector<workload::Arrival> arrivals;
  for (int i = 0; i < 12; ++i) {
    arrivals.push_back(
        {5'000.0 + static_cast<TimeMs>(1.0 * i), w.apps[i % 4].id()});
  }
  ctl.inject(arrivals);
  ctl.run_to_completion();

  EXPECT_EQ(ctl.metrics().completions.size(), 12u);
  EXPECT_EQ(ctl.inflight_requests(), 0u);
  // The idle gap shrank the fleet, and the second burst grew it back.
  EXPECT_GT(ctl.metrics().scale_ins, 0u);
  EXPECT_GT(ctl.metrics().scale_outs, 0u);
  expect_no_leaks(w.cluster);
}

TEST(Elastic, DrainingNodeFinishesInFlightAndTakesNothingNew) {
  World w;
  // Spot warning at 300 ms with a long lead time: in-flight work on the
  // victim must finish, while nothing new lands there.
  fault::FaultEngine engine(
      fault::parse_fault_spec("spot:at=300,nodes=1,warn=5000"),
      w.rng.scoped("fault"));
  elastic::ElasticManager manager(
      w.sim, w.cluster,
      elastic::parse_elastic_spec("queue:min=1,max=4,out=100,idle-ms=0"),
      w.rng.scoped("elastic"), 4);
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kRelaxed, sched, w.rng,
                           quiet_options(&engine, &manager));

  std::vector<workload::Arrival> arrivals;
  for (int i = 0; i < 24; ++i) {
    arrivals.push_back({static_cast<TimeMs>(50.0 * i), w.apps[i % 4].id()});
  }
  ctl.inject(arrivals);
  ctl.run_to_completion();

  EXPECT_EQ(ctl.metrics().completions.size(), 24u);
  EXPECT_EQ(ctl.metrics().spot_reclaims, 1u);
  // The highest-id in-fleet node is the deterministic victim.
  const auto& victim = w.cluster.invokers()[3];
  EXPECT_EQ(victim.state(), cluster::NodeState::kRetired);
  // In-flight stages were allowed to finish: nothing the victim ran was
  // killed (no task failures at all — the lead time covers min-config
  // stages), and no dispatch ever landed there after the warning.
  EXPECT_EQ(ctl.metrics().task_failures, 0u);
  for (const auto& t : ctl.metrics().task_trace) {
    if (t.invoker == victim.id()) {
      EXPECT_LT(t.dispatch_ms, 300.0)
          << "task dispatched onto a draining node";
    }
  }
  expect_no_leaks(w.cluster);
}

TEST(Elastic, ReclaimKillsStragglersWithoutLeaking) {
  World w;
  // No warning lead time: whatever runs on the victims dies at the deadline
  // and retries elsewhere.
  fault::FaultEngine engine(
      fault::parse_fault_spec("spot:at=400,nodes=2,warn=0"),
      w.rng.scoped("fault"));
  elastic::ElasticManager manager(
      w.sim, w.cluster,
      elastic::parse_elastic_spec("queue:min=1,max=4,out=100,idle-ms=0"),
      w.rng.scoped("elastic"), 4);
  FixedScheduler sched;
  platform::Controller ctl(w.sim, w.cluster, w.profiles, w.apps,
                           workload::SloSetting::kRelaxed, sched, w.rng,
                           quiet_options(&engine, &manager));

  std::vector<workload::Arrival> arrivals;
  for (int i = 0; i < 24; ++i) {
    arrivals.push_back({static_cast<TimeMs>(25.0 * i), w.apps[i % 4].id()});
  }
  ctl.inject(arrivals);
  ctl.run_to_completion();

  // Every request still completes (retries land on surviving nodes), and the
  // reclaimed nodes hold nothing. Invoker::retire() would have aborted the
  // run if a reclaim leaked a vCPU/vGPU.
  EXPECT_EQ(ctl.metrics().completions.size(), 24u);
  EXPECT_EQ(ctl.metrics().spot_reclaims, 2u);
  EXPECT_EQ(w.cluster.invokers()[2].state(), cluster::NodeState::kRetired);
  EXPECT_EQ(w.cluster.invokers()[3].state(), cluster::NodeState::kRetired);
  expect_no_leaks(w.cluster);
}

// --- shedding ------------------------------------------------------------

TEST(Elastic, ShedsWhenFleetHasNoCapacityAndAttributesThem) {
  exp::Scenario scenario;
  scenario.nodes = 1;
  scenario.horizon_ms = 4'000.0;
  scenario.seed = 7;
  // One node, reclaimed immediately, fleet floor zero, shedding on: once the
  // fleet is gone every arrival before re-acquisition must be shed.
  scenario.elastic = elastic::parse_elastic_spec(
      "queue:min=0,max=1,out=1000,idle-ms=0,shed=on");
  scenario.fault = fault::parse_fault_spec("spot:at=500,nodes=1,warn=0");

  const obs::analysis::TraceDataset dataset = run_with_analysis(scenario);
  const obs::analysis::AttributionReport report =
      obs::analysis::build_report(dataset);
  ASSERT_GT(report.requests, 0u);
  const auto shed = report.miss_causes.find("shed@admission");
  ASSERT_NE(shed, report.miss_causes.end());
  EXPECT_GT(shed->second, 0u);

  // Sheds count as requests and misses; per-app causes sum to the misses.
  std::size_t cause_sum = 0;
  for (const auto& [cause, count] : report.miss_causes) cause_sum += count;
  EXPECT_EQ(cause_sum, report.misses);
  EXPECT_LE(report.misses, report.requests);
}

TEST(Elastic, DecompositionStillTelescopesWithSheds) {
  exp::Scenario scenario = churn_scenario();
  const obs::analysis::TraceDataset dataset = run_with_analysis(scenario);
  const obs::analysis::CriticalPathResult paths =
      obs::analysis::reconstruct_critical_paths(dataset);
  ASSERT_GT(paths.requests.size(), 0u);
  // Shed requests never ran, so they must not confuse reconstruction.
  EXPECT_EQ(paths.unreconstructed, 0u);
  for (const auto& request : paths.requests) {
    double component_sum = 0.0;
    for (const auto& stage : request.path) {
      component_sum += stage.component_sum_ms();
    }
    EXPECT_NEAR(component_sum, request.latency_ms(), 1e-6)
        << "request " << request.request;
  }
}

TEST(Elastic, ShedRequestsAreExcludedFromLatencyStats) {
  exp::Scenario scenario;
  scenario.nodes = 1;
  scenario.horizon_ms = 3'000.0;
  scenario.seed = 7;
  scenario.elastic = elastic::parse_elastic_spec(
      "queue:min=0,max=1,out=1000,idle-ms=0,shed=on");
  scenario.fault = fault::parse_fault_spec("spot:at=500,nodes=1,warn=0");
  const exp::RunOutput out = exp::run_scenario(scenario);

  ASSERT_GT(out.metrics.shed_requests, 0u);
  std::size_t shed_records = 0;
  for (const auto& c : out.metrics.completions) {
    if (c.shed) {
      ++shed_records;
      EXPECT_FALSE(c.hit);
      EXPECT_EQ(c.latency_ms, 0.0);
    }
  }
  EXPECT_EQ(shed_records, out.metrics.shed_requests);
  // latencies() skips shed records entirely.
  EXPECT_EQ(out.metrics.latencies().size(),
            out.metrics.completions.size() - shed_records);
}

}  // namespace
}  // namespace esg
