// Heterogeneous-fleet support (Appendix A: the algorithms work with
// heterogeneous hardware; only the evaluation assumes identical nodes).
#include <gtest/gtest.h>

#include "core/esg_scheduler.hpp"
#include "platform/controller.hpp"
#include "workload/applications.hpp"

namespace esg::cluster {
namespace {

TEST(HeterogeneousCluster, PerNodeCapacities) {
  Cluster c(std::vector<NodeCapacity>{{16, 7}, {8, 4}, {32, 7}});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.invoker(InvokerId(0)).capacity().vcpus, 16);
  EXPECT_EQ(c.invoker(InvokerId(1)).capacity().vcpus, 8);
  EXPECT_EQ(c.invoker(InvokerId(1)).capacity().vgpus, 4);
  EXPECT_EQ(c.invoker(InvokerId(2)).capacity().vcpus, 32);
  EXPECT_EQ(c.total_free_vcpus(), 56u);
  EXPECT_EQ(c.total_free_vgpus(), 18u);
}

TEST(HeterogeneousCluster, RejectsEmpty) {
  EXPECT_THROW(Cluster(std::vector<NodeCapacity>{}), std::invalid_argument);
}

TEST(HeterogeneousCluster, PlacementRespectsSmallNodes) {
  Cluster c(std::vector<NodeCapacity>{{2, 1}, {16, 7}});
  platform::PlacementContext ctx;
  ctx.function = FunctionId(0);
  ctx.config = profile::Config{4, 4, 2};  // does not fit node 0
  ctx.home_invoker = InvokerId(0);
  const auto chosen = platform::locality_first_place(ctx, c);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, InvokerId(1));
}

TEST(HeterogeneousCluster, EndToEndRunCompletes) {
  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = workload::builtin_applications();
  sim::Simulator sim;
  // A mixed fleet: two big nodes, two GPU-poor nodes, one CPU-poor node.
  Cluster cluster(std::vector<NodeCapacity>{
      {16, 7}, {16, 7}, {16, 2}, {16, 2}, {4, 7}});
  const RngFactory rng(5);
  core::EsgScheduler sched(apps, profiles);
  platform::Controller controller(sim, cluster, profiles, apps,
                                  workload::SloSetting::kRelaxed, sched, rng);
  for (int i = 0; i < 12; ++i) {
    controller.inject({{i * 200.0, apps[i % 4].id()}});
  }
  controller.run_to_completion();
  EXPECT_EQ(controller.metrics().requests(), 12u);
  for (const auto& inv : cluster.invokers()) {
    EXPECT_EQ(inv.used_vcpus(), 0);
    EXPECT_EQ(inv.used_vgpus(), 0);
  }
}

}  // namespace
}  // namespace esg::cluster
