#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

namespace esg::cluster {
namespace {

TEST(Cluster, RejectsZeroNodes) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
}

TEST(Cluster, BuildsIdenticalInvokers) {
  Cluster c(16);
  EXPECT_EQ(c.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(c.invoker(InvokerId(i)).id(), InvokerId(i));
    EXPECT_EQ(c.invoker(InvokerId(i)).capacity().vcpus, 16);
    EXPECT_EQ(c.invoker(InvokerId(i)).capacity().vgpus, 7);
  }
}

TEST(Cluster, BadIdThrows) {
  Cluster c(2);
  EXPECT_THROW(c.invoker(InvokerId(2)), std::out_of_range);
  const Cluster& cc = c;
  EXPECT_THROW(cc.invoker(InvokerId(99)), std::out_of_range);
}

TEST(Cluster, HomeInvokerIsStableAndInRange) {
  Cluster c(16);
  const InvokerId h1 = c.home_invoker(AppId(3), FunctionId(2));
  const InvokerId h2 = c.home_invoker(AppId(3), FunctionId(2));
  EXPECT_EQ(h1, h2);
  EXPECT_LT(h1.get(), 16u);
}

TEST(Cluster, HomeInvokerSpreadsFunctions) {
  Cluster c(16);
  std::set<std::uint32_t> homes;
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t f = 0; f < 6; ++f) {
      homes.insert(c.home_invoker(AppId(a), FunctionId(f)).get());
    }
  }
  // 24 (app, fn) pairs over 16 nodes: a reasonable hash spreads them widely.
  EXPECT_GE(homes.size(), 8u);
}

TEST(Cluster, TotalFreeTracksAllocations) {
  Cluster c(4);
  EXPECT_EQ(c.total_free_vcpus(), 4u * 16u);
  EXPECT_EQ(c.total_free_vgpus(), 4u * 7u);
  c.invoker(InvokerId(1)).allocate(10, 3);
  EXPECT_EQ(c.total_free_vcpus(), 64u - 10u);
  EXPECT_EQ(c.total_free_vgpus(), 28u - 3u);
}

TEST(DataTransfer, LocalFasterThanRemote) {
  const DataTransferModel m;
  EXPECT_LT(m.transfer_ms(2.5, true), m.transfer_ms(2.5, false));
}

TEST(DataTransfer, ScalesWithSize) {
  const DataTransferModel m;
  EXPECT_GT(m.transfer_ms(10.0, false), m.transfer_ms(1.0, false));
  // 2.5 MB remotely at 0.5 MB/ms = 5 ms + 3 ms base.
  EXPECT_NEAR(m.transfer_ms(2.5, false), 8.0, 1e-9);
  EXPECT_NEAR(m.transfer_ms(2.5, true), 0.2 + 1.25, 1e-9);
}

TEST(DataTransfer, NegativeSizeClamped) {
  const DataTransferModel m;
  EXPECT_DOUBLE_EQ(m.transfer_ms(-3.0, true), m.transfer_ms(0.0, true));
}

}  // namespace
}  // namespace esg::cluster
