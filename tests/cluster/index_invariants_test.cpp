// Incremental cluster-state index invariants (DESIGN.md §15): the
// function-keyed warm-candidate index must stay a superset of the true warm
// state and the free-resource running sums must match a full fleet scan,
// across every lifecycle transition — allocate/release, warm add/acquire/
// lazy expiry, crash/rejoin, drain/retire, and elastic begin_warming/
// activate. check_index_invariants() is the cross-validating scan.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster/cluster.hpp"

namespace esg::cluster {
namespace {

FunctionId fn(std::uint32_t v) { return FunctionId{v}; }
InvokerId inv(std::uint32_t v) { return InvokerId{v}; }

std::size_t scan_free_vcpus(const Cluster& cluster) {
  std::size_t total = 0;
  for (const auto& node : cluster.invokers()) {
    if (node.state() != NodeState::kRetired) total += node.free_vcpus();
  }
  return total;
}

std::size_t scan_free_vgpus(const Cluster& cluster) {
  std::size_t total = 0;
  for (const auto& node : cluster.invokers()) {
    if (node.state() != NodeState::kRetired) total += node.free_vgpus();
  }
  return total;
}

TEST(ClusterIndex, FreshClusterSeedsTotalsFromCapacity) {
  Cluster cluster(4);
  EXPECT_EQ(cluster.total_free_vcpus(), 4u * 16u);
  EXPECT_EQ(cluster.total_free_vgpus(), 4u * 7u);
  cluster.check_index_invariants(0.0);
}

TEST(ClusterIndex, AllocateReleaseKeepTotalsExact) {
  Cluster cluster(3);
  cluster.invoker(inv(0)).allocate(4, 2);
  cluster.invoker(inv(1)).allocate(16, 0);
  cluster.check_index_invariants(0.0);
  EXPECT_EQ(cluster.total_free_vcpus(), scan_free_vcpus(cluster));
  EXPECT_EQ(cluster.total_free_vgpus(), scan_free_vgpus(cluster));
  cluster.invoker(inv(0)).release(4, 2);
  cluster.invoker(inv(1)).release(16, 0);
  cluster.check_index_invariants(0.0);
  EXPECT_EQ(cluster.total_free_vcpus(), 3u * 16u);
}

TEST(ClusterIndex, WarmAddMakesNodeACandidate) {
  Cluster cluster(4);
  cluster.invoker(inv(2)).add_warm(fn(7), 0.0);
  cluster.invoker(inv(0)).add_warm(fn(7), 1.0);
  const std::set<InvokerId>& candidates = cluster.warm_candidates(fn(7));
  ASSERT_EQ(candidates.size(), 2u);
  // Ascending-id order reproduces the historical whole-fleet first-fit.
  EXPECT_EQ(*candidates.begin(), inv(0));
  EXPECT_EQ(*std::next(candidates.begin()), inv(2));
  EXPECT_TRUE(cluster.warm_candidates(fn(8)).empty());
  cluster.check_index_invariants(1.0);
}

TEST(ClusterIndex, AcquireLeavesLazySupersetIntact) {
  Cluster cluster(2);
  cluster.invoker(inv(1)).add_warm(fn(3), 0.0);
  EXPECT_TRUE(cluster.invoker(inv(1)).acquire_warm(fn(3), 5.0));
  // The index may still list the node (lazy superset); the invariant only
  // demands it contains every node with has_warm == true.
  cluster.check_index_invariants(5.0);
  EXPECT_FALSE(cluster.invoker(inv(1)).has_warm(fn(3), 5.0));
  cluster.drop_warm_candidate(fn(3), inv(1));
  EXPECT_TRUE(cluster.warm_candidates(fn(3)).empty());
  cluster.check_index_invariants(5.0);
}

TEST(ClusterIndex, LazyExpiryObservedThenDropped) {
  Cluster cluster(2);
  cluster.invoker(inv(0)).add_warm(fn(1), 0.0, /*keep_alive=*/100.0);
  cluster.check_index_invariants(50.0);
  // Past expiry the entry is gone from the true state but may linger in the
  // candidate set until a caller observes has_warm == false and drops it.
  EXPECT_FALSE(cluster.invoker(inv(0)).has_warm(fn(1), 200.0));
  cluster.check_index_invariants(200.0);
  cluster.drop_warm_candidate(fn(1), inv(0));
  cluster.check_index_invariants(200.0);
  // Re-parking after the drop re-inserts the candidate.
  cluster.invoker(inv(0)).add_warm(fn(1), 300.0);
  EXPECT_EQ(cluster.warm_candidates(fn(1)).count(inv(0)), 1u);
  cluster.check_index_invariants(300.0);
}

TEST(ClusterIndex, CrashErasesCandidatesEagerly) {
  Cluster cluster(3);
  cluster.invoker(inv(1)).add_warm(fn(4), 0.0);
  cluster.invoker(inv(1)).add_warm(fn(5), 0.0);
  cluster.invoker(inv(2)).add_warm(fn(4), 0.0);
  cluster.invoker(inv(1)).crash(10.0);
  // A crashed node must not be offered as a warm candidate for any function.
  EXPECT_EQ(cluster.warm_candidates(fn(4)).count(inv(1)), 0u);
  EXPECT_EQ(cluster.warm_candidates(fn(5)).count(inv(1)), 0u);
  EXPECT_EQ(cluster.warm_candidates(fn(4)).count(inv(2)), 1u);
  cluster.check_index_invariants(10.0);
  cluster.invoker(inv(1)).rejoin();
  cluster.check_index_invariants(10.0);
  cluster.invoker(inv(1)).add_warm(fn(4), 11.0);
  EXPECT_EQ(cluster.warm_candidates(fn(4)).count(inv(1)), 1u);
  cluster.check_index_invariants(11.0);
}

TEST(ClusterIndex, DrainRetireRemovesCapacityAndCandidates) {
  Cluster cluster(3);
  cluster.invoker(inv(0)).add_warm(fn(2), 0.0);
  cluster.invoker(inv(0)).begin_drain();
  // Draining nodes keep their warm pool (in-flight work may still land
  // warm); retiring releases everything.
  cluster.check_index_invariants(1.0);
  cluster.invoker(inv(0)).retire(2.0);
  EXPECT_EQ(cluster.warm_candidates(fn(2)).count(inv(0)), 0u);
  EXPECT_EQ(cluster.total_free_vcpus(), 2u * 16u);
  EXPECT_EQ(cluster.total_free_vgpus(), 2u * 7u);
  EXPECT_EQ(cluster.total_free_vcpus(), scan_free_vcpus(cluster));
  cluster.check_index_invariants(2.0);
}

TEST(ClusterIndex, WarmingNodeRejoinsTotalsBeforeActivation) {
  Cluster cluster(2);
  cluster.invoker(inv(1)).begin_drain();
  cluster.invoker(inv(1)).retire(0.0);
  EXPECT_EQ(cluster.total_free_vcpus(), 16u);
  cluster.check_index_invariants(0.0);
  // Elastic re-acquisition: Warming already contributes free capacity (the
  // scan counts every non-retired node), so the hook must add it back at
  // begin_warming, not at activate.
  cluster.invoker(inv(1)).begin_warming();
  EXPECT_EQ(cluster.total_free_vcpus(), 2u * 16u);
  EXPECT_EQ(cluster.total_free_vcpus(), scan_free_vcpus(cluster));
  cluster.check_index_invariants(1.0);
  cluster.invoker(inv(1)).activate();
  EXPECT_EQ(cluster.total_free_vcpus(), 2u * 16u);
  cluster.check_index_invariants(2.0);
}

TEST(ClusterIndex, FullLifecycleChurnStaysConsistent) {
  Cluster cluster(5);
  for (std::uint32_t round = 0; round < 4; ++round) {
    const TimeMs now = 100.0 * round;
    for (std::uint32_t i = 0; i < 5; ++i) {
      cluster.invoker(inv(i)).add_warm(fn(i % 3), now, 150.0);
    }
    cluster.invoker(inv(round % 5)).allocate(2, 1);
    cluster.check_index_invariants(now);
    cluster.invoker(inv((round + 1) % 5)).crash(now + 10.0);
    cluster.check_index_invariants(now + 10.0);
    cluster.invoker(inv((round + 1) % 5)).rejoin();
    cluster.invoker(inv(round % 5)).release(2, 1);
    cluster.check_index_invariants(now + 20.0);
  }
  // Scale the fleet down and back up through drain/retire/warming.
  cluster.invoker(inv(4)).begin_drain();
  cluster.check_index_invariants(500.0);
  cluster.invoker(inv(4)).retire(510.0);
  cluster.check_index_invariants(510.0);
  cluster.invoker(inv(4)).begin_warming();
  cluster.invoker(inv(4)).activate();
  cluster.invoker(inv(4)).add_warm(fn(0), 520.0);
  cluster.check_index_invariants(520.0);
  EXPECT_EQ(cluster.total_free_vcpus(), scan_free_vcpus(cluster));
  EXPECT_EQ(cluster.total_free_vgpus(), scan_free_vgpus(cluster));
}

TEST(ClusterIndex, MovedClusterKeepsWorkingIndex) {
  Cluster original(2);
  original.invoker(inv(0)).add_warm(fn(9), 0.0);
  Cluster moved(std::move(original));
  // The index is heap-allocated, so invoker back-pointers survive the move.
  EXPECT_EQ(moved.warm_candidates(fn(9)).count(inv(0)), 1u);
  moved.invoker(inv(1)).add_warm(fn(9), 1.0);
  EXPECT_EQ(moved.warm_candidates(fn(9)).size(), 2u);
  moved.check_index_invariants(1.0);
}

}  // namespace
}  // namespace esg::cluster
