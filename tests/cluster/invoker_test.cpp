#include "cluster/invoker.hpp"

#include <gtest/gtest.h>

namespace esg::cluster {
namespace {

FunctionId fn(int i) { return FunctionId(static_cast<std::uint32_t>(i)); }

TEST(Invoker, StartsEmpty) {
  Invoker inv(InvokerId(0), NodeCapacity{16, 7});
  EXPECT_EQ(inv.free_vcpus(), 16);
  EXPECT_EQ(inv.free_vgpus(), 7);
  EXPECT_EQ(inv.used_vcpus(), 0);
  EXPECT_EQ(inv.used_vgpus(), 0);
}

TEST(Invoker, AllocateAndRelease) {
  Invoker inv(InvokerId(0), NodeCapacity{16, 7});
  inv.allocate(4, 2);
  EXPECT_EQ(inv.free_vcpus(), 12);
  EXPECT_EQ(inv.free_vgpus(), 5);
  inv.allocate(12, 5);
  EXPECT_EQ(inv.free_vcpus(), 0);
  EXPECT_EQ(inv.free_vgpus(), 0);
  inv.release(16, 7);
  EXPECT_EQ(inv.free_vcpus(), 16);
  EXPECT_EQ(inv.free_vgpus(), 7);
}

TEST(Invoker, CanFitBoundary) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  EXPECT_TRUE(inv.can_fit(4, 2));
  EXPECT_FALSE(inv.can_fit(5, 2));
  EXPECT_FALSE(inv.can_fit(4, 3));
  inv.allocate(3, 1);
  EXPECT_TRUE(inv.can_fit(1, 1));
  EXPECT_FALSE(inv.can_fit(2, 1));
}

TEST(Invoker, OverCommitThrows) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  EXPECT_THROW(inv.allocate(5, 1), std::logic_error);
  inv.allocate(4, 2);
  EXPECT_THROW(inv.allocate(1, 0), std::logic_error);
}

TEST(Invoker, OverReleaseThrows) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  inv.allocate(2, 1);
  EXPECT_THROW(inv.release(3, 1), std::logic_error);
  EXPECT_THROW(inv.release(2, 2), std::logic_error);
  EXPECT_NO_THROW(inv.release(2, 1));
}

TEST(Invoker, WarmPoolLifecycle) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  EXPECT_FALSE(inv.has_warm(fn(1), 0.0));
  inv.add_warm(fn(1), 0.0);  // expires at 10 min
  EXPECT_TRUE(inv.has_warm(fn(1), 1.0));
  EXPECT_EQ(inv.warm_count(fn(1), 1.0), 1u);
  EXPECT_TRUE(inv.acquire_warm(fn(1), 1.0));
  EXPECT_FALSE(inv.has_warm(fn(1), 1.0));        // consumed
  EXPECT_FALSE(inv.acquire_warm(fn(1), 1.0));
}

TEST(Invoker, WarmExpiresAfterKeepAlive) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  EXPECT_TRUE(inv.has_warm(fn(1), kKeepAliveMs - 1.0));
  EXPECT_FALSE(inv.has_warm(fn(1), kKeepAliveMs));
  EXPECT_FALSE(inv.acquire_warm(fn(1), kKeepAliveMs + 1.0));
}

TEST(Invoker, CustomKeepAlive) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(2), 100.0, 50.0);
  EXPECT_TRUE(inv.has_warm(fn(2), 149.0));
  EXPECT_FALSE(inv.has_warm(fn(2), 150.0));
}

TEST(Invoker, WarmPoolsPerFunction) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  EXPECT_FALSE(inv.has_warm(fn(2), 1.0));
  EXPECT_TRUE(inv.has_warm(fn(1), 1.0));
}

TEST(Invoker, AcquireTakesSoonestExpiring) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0, 100.0);   // expires at 100
  inv.add_warm(fn(1), 0.0, 500.0);   // expires at 500
  EXPECT_TRUE(inv.acquire_warm(fn(1), 10.0));  // takes the 100 one
  // The remaining container must still be alive at t=200.
  EXPECT_TRUE(inv.has_warm(fn(1), 200.0));
}

TEST(Invoker, TotalWarmCountsAcrossFunctions) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  inv.add_warm(fn(1), 0.0);
  inv.add_warm(fn(2), 0.0, 10.0);
  EXPECT_EQ(inv.total_warm(1.0), 3u);
  EXPECT_EQ(inv.total_warm(11.0), 2u);  // fn(2) expired
}

}  // namespace
}  // namespace esg::cluster
