#include "cluster/invoker.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace esg::cluster {
namespace {

FunctionId fn(int i) { return FunctionId(static_cast<std::uint32_t>(i)); }

TEST(Invoker, StartsEmpty) {
  Invoker inv(InvokerId(0), NodeCapacity{16, 7});
  EXPECT_EQ(inv.free_vcpus(), 16);
  EXPECT_EQ(inv.free_vgpus(), 7);
  EXPECT_EQ(inv.used_vcpus(), 0);
  EXPECT_EQ(inv.used_vgpus(), 0);
}

TEST(Invoker, AllocateAndRelease) {
  Invoker inv(InvokerId(0), NodeCapacity{16, 7});
  inv.allocate(4, 2);
  EXPECT_EQ(inv.free_vcpus(), 12);
  EXPECT_EQ(inv.free_vgpus(), 5);
  inv.allocate(12, 5);
  EXPECT_EQ(inv.free_vcpus(), 0);
  EXPECT_EQ(inv.free_vgpus(), 0);
  inv.release(16, 7);
  EXPECT_EQ(inv.free_vcpus(), 16);
  EXPECT_EQ(inv.free_vgpus(), 7);
}

TEST(Invoker, CanFitBoundary) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  EXPECT_TRUE(inv.can_fit(4, 2));
  EXPECT_FALSE(inv.can_fit(5, 2));
  EXPECT_FALSE(inv.can_fit(4, 3));
  inv.allocate(3, 1);
  EXPECT_TRUE(inv.can_fit(1, 1));
  EXPECT_FALSE(inv.can_fit(2, 1));
}

TEST(Invoker, OverCommitThrows) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  EXPECT_THROW(inv.allocate(5, 1), std::logic_error);
  inv.allocate(4, 2);
  EXPECT_THROW(inv.allocate(1, 0), std::logic_error);
}

TEST(Invoker, OverReleaseThrows) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  inv.allocate(2, 1);
  EXPECT_THROW(inv.release(3, 1), std::logic_error);
  EXPECT_THROW(inv.release(2, 2), std::logic_error);
  EXPECT_NO_THROW(inv.release(2, 1));
}

TEST(Invoker, WarmPoolLifecycle) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  EXPECT_FALSE(inv.has_warm(fn(1), 0.0));
  inv.add_warm(fn(1), 0.0);  // expires at 10 min
  EXPECT_TRUE(inv.has_warm(fn(1), 1.0));
  EXPECT_EQ(inv.warm_count(fn(1), 1.0), 1u);
  EXPECT_TRUE(inv.acquire_warm(fn(1), 1.0));
  EXPECT_FALSE(inv.has_warm(fn(1), 1.0));        // consumed
  EXPECT_FALSE(inv.acquire_warm(fn(1), 1.0));
}

TEST(Invoker, WarmExpiresAfterKeepAlive) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  EXPECT_TRUE(inv.has_warm(fn(1), kKeepAliveMs - 1.0));
  EXPECT_FALSE(inv.has_warm(fn(1), kKeepAliveMs));
  EXPECT_FALSE(inv.acquire_warm(fn(1), kKeepAliveMs + 1.0));
}

TEST(Invoker, CustomKeepAlive) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(2), 100.0, 50.0);
  EXPECT_TRUE(inv.has_warm(fn(2), 149.0));
  EXPECT_FALSE(inv.has_warm(fn(2), 150.0));
}

TEST(Invoker, WarmPoolsPerFunction) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  EXPECT_FALSE(inv.has_warm(fn(2), 1.0));
  EXPECT_TRUE(inv.has_warm(fn(1), 1.0));
}

TEST(Invoker, AcquireTakesSoonestExpiring) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0, 100.0);   // expires at 100
  inv.add_warm(fn(1), 0.0, 500.0);   // expires at 500
  EXPECT_TRUE(inv.acquire_warm(fn(1), 10.0));  // takes the 100 one
  // The remaining container must still be alive at t=200.
  EXPECT_TRUE(inv.has_warm(fn(1), 200.0));
}

TEST(Invoker, WarmExpiresExactlyAtKeepAliveBoundary) {
  // Regression pin: at exactly t == start + keep-alive, the entry is expired
  // — not acquirable, not counted, and reported as kExpired on flush.
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  EXPECT_EQ(inv.warm_count(fn(1), kKeepAliveMs), 0u);
  EXPECT_FALSE(inv.has_warm(fn(1), kKeepAliveMs));
  inv.add_warm(fn(1), 0.0);
  EXPECT_FALSE(inv.acquire_warm(fn(1), kKeepAliveMs));

  // Same boundary with a custom keep-alive window.
  Invoker custom(InvokerId(1), NodeCapacity{});
  custom.add_warm(fn(2), 100.0, 50.0);
  EXPECT_FALSE(custom.acquire_warm(fn(2), 150.0));
  EXPECT_EQ(custom.warm_count(fn(2), 150.0), 0u);
}

TEST(Invoker, FlushReportsBoundaryEntryAsExpired) {
  Invoker inv(InvokerId(3), NodeCapacity{});
  std::vector<WarmEnd> ends;
  TimeMs reported_end = -1.0;
  inv.set_warm_span_callback(
      [&](InvokerId, FunctionId, TimeMs, TimeMs end, WarmEnd how) {
        ends.push_back(how);
        reported_end = end;
      });
  inv.add_warm(fn(1), 0.0, 100.0);
  inv.flush_warm_spans(100.0);  // exactly at expiry
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], WarmEnd::kExpired);
  EXPECT_DOUBLE_EQ(reported_end, 100.0);
}

TEST(Invoker, CrashDropsWarmPoolAndMarksDead) {
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  std::vector<std::pair<std::uint32_t, WarmEnd>> reported;
  inv.set_warm_span_callback(
      [&](InvokerId, FunctionId f, TimeMs, TimeMs, WarmEnd how) {
        reported.emplace_back(f.get(), how);
      });
  inv.add_warm(fn(2), 0.0);
  inv.add_warm(fn(1), 0.0);
  inv.add_warm(fn(1), 10.0, 5.0);  // expires at 15, before the crash

  EXPECT_TRUE(inv.alive());
  inv.crash(50.0);
  EXPECT_FALSE(inv.alive());
  // Callbacks come in sorted function order; the already-expired entry is
  // reported as expired, the live ones as crashed.
  ASSERT_EQ(reported.size(), 3u);
  EXPECT_EQ(reported[0].first, 1u);
  EXPECT_EQ(reported[1].first, 1u);
  EXPECT_EQ(reported[2].first, 2u);
  std::size_t crashed = 0, expired = 0;
  for (const auto& [_, how] : reported) {
    crashed += how == WarmEnd::kCrashed;
    expired += how == WarmEnd::kExpired;
  }
  EXPECT_EQ(crashed, 2u);
  EXPECT_EQ(expired, 1u);

  // Dead node: fits nothing, serves no warm starts, parks no containers.
  EXPECT_FALSE(inv.can_fit(1, 0));
  EXPECT_FALSE(inv.has_warm(fn(1), 51.0));
  inv.add_warm(fn(1), 51.0);
  EXPECT_EQ(inv.total_warm(52.0), 0u);

  inv.rejoin();
  EXPECT_TRUE(inv.alive());
  EXPECT_TRUE(inv.can_fit(1, 0));
  EXPECT_EQ(inv.total_warm(52.0), 0u);  // rejoins empty
}

TEST(Invoker, CrashKeepsResourceCountersForOrphanRelease) {
  // The controller releases the resources of the tasks a crash killed; the
  // counters must survive the crash so that release is well-defined.
  Invoker inv(InvokerId(0), NodeCapacity{4, 2});
  inv.allocate(3, 1);
  inv.crash(10.0);
  EXPECT_EQ(inv.used_vcpus(), 3);
  EXPECT_EQ(inv.used_vgpus(), 1);
  EXPECT_NO_THROW(inv.release(3, 1));
  EXPECT_EQ(inv.used_vcpus(), 0);
}

TEST(Invoker, TotalWarmCountsAcrossFunctions) {
  Invoker inv(InvokerId(0), NodeCapacity{});
  inv.add_warm(fn(1), 0.0);
  inv.add_warm(fn(1), 0.0);
  inv.add_warm(fn(2), 0.0, 10.0);
  EXPECT_EQ(inv.total_warm(1.0), 3u);
  EXPECT_EQ(inv.total_warm(11.0), 2u);  // fn(2) expired
}

}  // namespace
}  // namespace esg::cluster
