// Engine and sweep CLI surface (DESIGN.md §15): parse coverage for
// --engine/--sweep/--jobs/--sweep-out including the cross-flag validation,
// plus the scenario-level contract the CI byte-identity check rests on —
// heap and calendar runs produce identical RunOutput on full scenarios.
#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "exp/cli.hpp"
#include "exp/scenario.hpp"

namespace esg::exp {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return parse_cli({v.data(), v.size()});
}

TEST(EngineCli, DefaultsToCalendar) {
  const CliOptions opts = parse({});
  EXPECT_EQ(opts.scenario.engine, sim::EngineKind::kCalendar);
  EXPECT_FALSE(opts.sweep);
  EXPECT_EQ(opts.jobs, 0u);
  EXPECT_TRUE(opts.sweep_out.empty());
  EXPECT_EQ(opts.schedulers,
            (std::vector<SchedulerKind>{SchedulerKind::kEsg}));
}

TEST(EngineCli, ParsesEngineNames) {
  EXPECT_EQ(parse({"--engine", "heap"}).scenario.engine,
            sim::EngineKind::kHeap);
  EXPECT_EQ(parse({"--engine", "calendar"}).scenario.engine,
            sim::EngineKind::kCalendar);
  EXPECT_THROW(parse({"--engine", "splay"}), std::invalid_argument);
}

TEST(EngineCli, SweepFlagsParse) {
  const CliOptions opts =
      parse({"--sweep", "--scheduler", "esg,infless,orion", "--jobs", "4",
             "--seeds", "2", "--sweep-out", "/tmp/s.json"});
  EXPECT_TRUE(opts.sweep);
  EXPECT_EQ(opts.jobs, 4u);
  EXPECT_EQ(opts.sweep_out, "/tmp/s.json");
  EXPECT_EQ(opts.schedulers,
            (std::vector<SchedulerKind>{SchedulerKind::kEsg,
                                        SchedulerKind::kInfless,
                                        SchedulerKind::kOrion}));
  // scenario.scheduler mirrors the list head.
  EXPECT_EQ(opts.scenario.scheduler, SchedulerKind::kEsg);
}

TEST(EngineCli, SchedulerListRequiresSweep) {
  EXPECT_THROW(parse({"--scheduler", "esg,infless"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scheduler", "esg,esg", "--sweep"}),
               std::invalid_argument);  // duplicates
  EXPECT_THROW(parse({"--scheduler", "esg,,orion", "--sweep"}),
               std::invalid_argument);  // empty entry
}

TEST(EngineCli, SweepOutRequiresSweep) {
  EXPECT_THROW(parse({"--sweep-out", "/tmp/s.json"}), std::invalid_argument);
}

TEST(EngineCli, SweepRejectsFileProducingFlags) {
  EXPECT_THROW(parse({"--sweep", "--csv-dir", "/tmp/csv"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--sweep", "--trace-out", "/tmp/t.json"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--sweep", "--stats-out", "/tmp/s.jsonl"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--sweep", "--perf-summary"}), std::invalid_argument);
}

TEST(EngineCli, JobsAllowedWithoutSweep) {
  // --jobs also caps the multi-seed replica runner.
  EXPECT_EQ(parse({"--jobs", "2", "--seeds", "3"}).jobs, 2u);
}

/// The contract behind `--engine`: a full scenario (controller, prewarm,
/// noise, metrics) run on both engines yields identical outputs. This is
/// the in-process version of CI's artefact byte-identity cmp.
TEST(EngineEquivalence, FullScenarioRunsIdenticallyOnBothEngines) {
  for (const std::uint64_t seed : {42ull, 7ull}) {
    Scenario scenario;
    scenario.horizon_ms = 1'000.0;
    scenario.nodes = 8;
    scenario.seed = seed;

    Scenario heap = scenario;
    heap.engine = sim::EngineKind::kHeap;
    Scenario calendar = scenario;
    calendar.engine = sim::EngineKind::kCalendar;

    const RunOutput a = run_scenario(heap);
    const RunOutput b = run_scenario(calendar);

    EXPECT_EQ(a.metrics.requests(), b.metrics.requests());
    EXPECT_EQ(a.metrics.slo_hit_rate(), b.metrics.slo_hit_rate());
    EXPECT_EQ(a.metrics.total_cost, b.metrics.total_cost);
    EXPECT_EQ(a.metrics.cold_starts, b.metrics.cold_starts);
    EXPECT_EQ(a.metrics.mean_job_wait_ms(), b.metrics.mean_job_wait_ms());
    EXPECT_EQ(a.simulated_end_ms, b.simulated_end_ms);
    EXPECT_EQ(a.counters.events_fired, b.counters.events_fired);
    EXPECT_EQ(a.counters.events_scheduled, b.counters.events_scheduled);
    EXPECT_EQ(a.counters.events_cancelled, b.counters.events_cancelled);
    EXPECT_EQ(a.counters.heap_pushes, b.counters.heap_pushes);
    EXPECT_EQ(a.counters.heap_pops, b.counters.heap_pops);
    EXPECT_EQ(a.counters.queue_visits, b.counters.queue_visits);
    EXPECT_FALSE(a.truncated);
    EXPECT_FALSE(b.truncated);
  }
}

TEST(EngineEquivalence, WallBudgetTruncatesAndReports) {
  Scenario scenario;
  scenario.horizon_ms = 30'000.0;
  scenario.load = workload::LoadSetting::kHeavy;
  scenario.wall_budget_ms = 1.0;  // far too small for a 30 s heavy run
  const RunOutput out = run_scenario(scenario);
  EXPECT_TRUE(out.truncated);
  EXPECT_GT(out.counters.events_fired, 0u);
  // No budget: a (shorter) run drains fully and reports untruncated.
  scenario.wall_budget_ms = 0.0;
  scenario.horizon_ms = 500.0;
  EXPECT_FALSE(run_scenario(scenario).truncated);
}

}  // namespace
}  // namespace esg::exp
