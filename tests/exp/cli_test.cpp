#include "exp/cli.hpp"

#include <gtest/gtest.h>

namespace esg::exp {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return parse_cli({v.data(), v.size()});
}

TEST(Cli, DefaultsWhenEmpty) {
  const CliOptions opts = parse({});
  EXPECT_EQ(opts.scenario.scheduler, SchedulerKind::kEsg);
  EXPECT_EQ(opts.scenario.load, workload::LoadSetting::kLight);
  EXPECT_EQ(opts.scenario.slo, workload::SloSetting::kStrict);
  EXPECT_EQ(opts.seeds, (std::vector<std::uint64_t>{42}));
  EXPECT_FALSE(opts.help);
  EXPECT_TRUE(opts.csv_dir.empty());
}

TEST(Cli, ParsesEverySchedulerName) {
  EXPECT_EQ(parse({"--scheduler", "infless"}).scenario.scheduler,
            SchedulerKind::kInfless);
  EXPECT_EQ(parse({"--scheduler", "fast-gshare"}).scenario.scheduler,
            SchedulerKind::kFastGshare);
  EXPECT_EQ(parse({"--scheduler", "fastgshare"}).scenario.scheduler,
            SchedulerKind::kFastGshare);
  EXPECT_EQ(parse({"--scheduler", "orion"}).scenario.scheduler,
            SchedulerKind::kOrion);
  EXPECT_EQ(parse({"--scheduler", "aquatope"}).scenario.scheduler,
            SchedulerKind::kAquatope);
}

TEST(Cli, ParsesWorkloadAndSlo) {
  const CliOptions opts =
      parse({"--load", "heavy", "--slo", "relaxed", "--nodes", "4"});
  EXPECT_EQ(opts.scenario.load, workload::LoadSetting::kHeavy);
  EXPECT_EQ(opts.scenario.slo, workload::SloSetting::kRelaxed);
  EXPECT_EQ(opts.scenario.nodes, 4u);
}

TEST(Cli, ParsesNumbersAndSeeds) {
  const CliOptions opts = parse({"--horizon-ms", "12000", "--warmup-ms",
                                 "3000", "--seeds", "3", "--noise-cv", "0.1"});
  EXPECT_DOUBLE_EQ(opts.scenario.horizon_ms, 12000.0);
  EXPECT_DOUBLE_EQ(opts.scenario.warmup_ms, 3000.0);
  EXPECT_EQ(opts.seeds, (std::vector<std::uint64_t>{42, 43, 44}));
  EXPECT_DOUBLE_EQ(opts.scenario.controller.noise_cv, 0.1);
}

TEST(Cli, ParsesAblationSwitches) {
  const CliOptions opts = parse(
      {"--gpu-sharing", "off", "--batching", "off", "--prewarm", "off"});
  EXPECT_FALSE(opts.scenario.controller.enable_gpu_sharing);
  EXPECT_FALSE(opts.scenario.controller.enable_batching);
  EXPECT_FALSE(opts.scenario.controller.enable_prewarm);
}

TEST(Cli, ParsesEsgKnobs) {
  const CliOptions opts = parse({"--k", "20", "--group-size", "2"});
  EXPECT_EQ(opts.scenario.esg.k, 20u);
  EXPECT_EQ(opts.scenario.esg.max_group_size, 2u);
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, RejectsBadInput) {
  EXPECT_THROW(parse({"--scheduler", "nope"}), std::invalid_argument);
  EXPECT_THROW(parse({"--load", "extreme"}), std::invalid_argument);
  EXPECT_THROW(parse({"--slo", "loose"}), std::invalid_argument);
  EXPECT_THROW(parse({"--unknown", "1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--horizon-ms"}), std::invalid_argument);  // no value
  EXPECT_THROW(parse({"--horizon-ms", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--nodes", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--batching", "maybe"}), std::invalid_argument);
}

TEST(Cli, CsvDirCaptured) {
  EXPECT_EQ(parse({"--csv-dir", "/tmp/out"}).csv_dir, "/tmp/out");
}

TEST(Cli, ParsesTracingFlags) {
  const CliOptions opts =
      parse({"--trace-out", "t.json", "--stats-out", "s.jsonl",
             "--stats-interval-ms", "50"});
  EXPECT_EQ(opts.scenario.trace.trace_path, "t.json");
  EXPECT_EQ(opts.scenario.trace.stats_path, "s.jsonl");
  EXPECT_DOUBLE_EQ(opts.scenario.trace.stats_interval_ms, 50.0);
  EXPECT_TRUE(opts.scenario.trace.enabled());
}

TEST(Cli, TracingOffByDefault) {
  EXPECT_FALSE(parse({}).scenario.trace.enabled());
}

TEST(Cli, ParsesReportOut) {
  const CliOptions opts = parse({"--report-out", "report.json"});
  EXPECT_EQ(opts.scenario.trace.report_path, "report.json");
  // --report-out alone must enable the traced (sequential) run path.
  EXPECT_TRUE(opts.scenario.trace.enabled());
  EXPECT_NE(cli_usage().find("--report-out"), std::string::npos);
}

TEST(Cli, UnknownFlagNamesItselfAndPointsAtHelp) {
  try {
    (void)parse({"--no-such-flag", "1"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--no-such-flag"), std::string::npos) << what;
    EXPECT_NE(what.find("--help"), std::string::npos) << what;
  }
}

TEST(Cli, RejectsBadStatsInterval) {
  EXPECT_THROW(parse({"--stats-interval-ms", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stats-interval-ms", "-5"}), std::invalid_argument);
}

TEST(Cli, RejectsNegativeAndNonFiniteTimes) {
  EXPECT_THROW(parse({"--horizon-ms", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--warmup-ms", "-0.5"}), std::invalid_argument);
  // std::from_chars happily parses these; the CLI must not.
  EXPECT_THROW(parse({"--horizon-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--horizon-ms", "inf"}), std::invalid_argument);
  EXPECT_THROW(parse({"--warmup-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stats-interval-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--noise-cv", "inf"}), std::invalid_argument);
}

TEST(Cli, FaultSpecOffByDefault) {
  EXPECT_TRUE(parse({}).scenario.fault.inert());
}

TEST(Cli, ParsesFaultSpec) {
  const CliOptions opts =
      parse({"--fault-spec", "dispatch:prob=0.05;crash:invoker=3,at=2000,down=1500"});
  EXPECT_FALSE(opts.scenario.fault.inert());
  ASSERT_EQ(opts.scenario.fault.dispatch.size(), 1u);
  EXPECT_DOUBLE_EQ(opts.scenario.fault.dispatch[0].prob, 0.05);
  ASSERT_EQ(opts.scenario.fault.crashes.size(), 1u);
  EXPECT_NE(cli_usage().find("--fault-spec"), std::string::npos);
}

TEST(Cli, RejectsMalformedFaultSpec) {
  EXPECT_THROW(parse({"--fault-spec", "explode:prob=0.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--fault-spec", "dispatch:prob=2"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--fault-spec", "@/no/such/spec/file"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace esg::exp
