#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace esg::exp {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return parse_cli({v.data(), v.size()});
}

TEST(Cli, DefaultsWhenEmpty) {
  const CliOptions opts = parse({});
  EXPECT_EQ(opts.scenario.scheduler, SchedulerKind::kEsg);
  EXPECT_EQ(opts.scenario.load, workload::LoadSetting::kLight);
  EXPECT_EQ(opts.scenario.slo, workload::SloSetting::kStrict);
  EXPECT_EQ(opts.seeds, (std::vector<std::uint64_t>{42}));
  EXPECT_FALSE(opts.help);
  EXPECT_TRUE(opts.csv_dir.empty());
}

TEST(Cli, ParsesEverySchedulerName) {
  EXPECT_EQ(parse({"--scheduler", "infless"}).scenario.scheduler,
            SchedulerKind::kInfless);
  EXPECT_EQ(parse({"--scheduler", "fast-gshare"}).scenario.scheduler,
            SchedulerKind::kFastGshare);
  EXPECT_EQ(parse({"--scheduler", "fastgshare"}).scenario.scheduler,
            SchedulerKind::kFastGshare);
  EXPECT_EQ(parse({"--scheduler", "orion"}).scenario.scheduler,
            SchedulerKind::kOrion);
  EXPECT_EQ(parse({"--scheduler", "aquatope"}).scenario.scheduler,
            SchedulerKind::kAquatope);
}

TEST(Cli, ParsesWorkloadAndSlo) {
  const CliOptions opts =
      parse({"--load", "heavy", "--slo", "relaxed", "--nodes", "4"});
  EXPECT_EQ(opts.scenario.load, workload::LoadSetting::kHeavy);
  EXPECT_EQ(opts.scenario.slo, workload::SloSetting::kRelaxed);
  EXPECT_EQ(opts.scenario.nodes, 4u);
}

TEST(Cli, ParsesNumbersAndSeeds) {
  const CliOptions opts = parse({"--horizon-ms", "12000", "--warmup-ms",
                                 "3000", "--seeds", "3", "--noise-cv", "0.1"});
  EXPECT_DOUBLE_EQ(opts.scenario.horizon_ms, 12000.0);
  EXPECT_DOUBLE_EQ(opts.scenario.warmup_ms, 3000.0);
  EXPECT_EQ(opts.seeds, (std::vector<std::uint64_t>{42, 43, 44}));
  EXPECT_DOUBLE_EQ(opts.scenario.controller.noise_cv, 0.1);
}

TEST(Cli, ParsesAblationSwitches) {
  const CliOptions opts = parse(
      {"--gpu-sharing", "off", "--batching", "off", "--prewarm", "off"});
  EXPECT_FALSE(opts.scenario.controller.enable_gpu_sharing);
  EXPECT_FALSE(opts.scenario.controller.enable_batching);
  EXPECT_FALSE(opts.scenario.controller.enable_prewarm);
}

TEST(Cli, ParsesEsgKnobs) {
  const CliOptions opts = parse({"--k", "20", "--group-size", "2"});
  EXPECT_EQ(opts.scenario.esg.k, 20u);
  EXPECT_EQ(opts.scenario.esg.max_group_size, 2u);
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, RejectsBadInput) {
  EXPECT_THROW(parse({"--scheduler", "nope"}), std::invalid_argument);
  EXPECT_THROW(parse({"--load", "extreme"}), std::invalid_argument);
  EXPECT_THROW(parse({"--slo", "loose"}), std::invalid_argument);
  EXPECT_THROW(parse({"--unknown", "1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--horizon-ms"}), std::invalid_argument);  // no value
  EXPECT_THROW(parse({"--horizon-ms", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--nodes", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--batching", "maybe"}), std::invalid_argument);
}

TEST(Cli, CsvDirCaptured) {
  EXPECT_EQ(parse({"--csv-dir", "/tmp/out"}).csv_dir, "/tmp/out");
}

TEST(Cli, ParsesTracingFlags) {
  const CliOptions opts =
      parse({"--trace-out", "t.json", "--stats-out", "s.jsonl",
             "--stats-interval-ms", "50"});
  EXPECT_EQ(opts.scenario.trace.trace_path, "t.json");
  EXPECT_EQ(opts.scenario.trace.stats_path, "s.jsonl");
  EXPECT_DOUBLE_EQ(opts.scenario.trace.stats_interval_ms, 50.0);
  EXPECT_TRUE(opts.scenario.trace.enabled());
}

TEST(Cli, TracingOffByDefault) {
  EXPECT_FALSE(parse({}).scenario.trace.enabled());
}

TEST(Cli, ParsesReportOut) {
  const CliOptions opts = parse({"--report-out", "report.json"});
  EXPECT_EQ(opts.scenario.trace.report_path, "report.json");
  // --report-out alone must enable the traced (sequential) run path.
  EXPECT_TRUE(opts.scenario.trace.enabled());
  EXPECT_NE(cli_usage().find("--report-out"), std::string::npos);
}

TEST(Cli, ParsesPerfOut) {
  const CliOptions opts = parse({"--perf-out", "perf.json"});
  EXPECT_EQ(opts.scenario.trace.perf_path, "perf.json");
  // --perf-out alone must enable the traced (sequential) run path.
  EXPECT_TRUE(opts.scenario.trace.enabled());
  EXPECT_NE(cli_usage().find("--perf-out"), std::string::npos);
}

TEST(Cli, ParsesPerfSummary) {
  EXPECT_FALSE(parse({}).perf_summary);
  const CliOptions opts = parse({"--perf-summary", "--seeds", "2"});
  EXPECT_TRUE(opts.perf_summary);
  // The flag takes no value: the next token parsed as a normal flag.
  EXPECT_EQ(opts.seeds, (std::vector<std::uint64_t>{42, 43}));
  EXPECT_NE(cli_usage().find("--perf-summary"), std::string::npos);
}

TEST(Cli, VersionAndBuildInfoShortCircuit) {
  EXPECT_FALSE(parse({}).version);
  EXPECT_FALSE(parse({}).build_info);
  // Like --help, these return immediately without demanding values for
  // anything that follows.
  EXPECT_TRUE(parse({"--version", "--bogus"}).version);
  EXPECT_TRUE(parse({"--build-info", "--bogus"}).build_info);
}

TEST(Cli, UnknownFlagNamesItselfAndPointsAtHelp) {
  try {
    (void)parse({"--no-such-flag", "1"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--no-such-flag"), std::string::npos) << what;
    EXPECT_NE(what.find("--help"), std::string::npos) << what;
  }
}

TEST(Cli, RejectsBadStatsInterval) {
  EXPECT_THROW(parse({"--stats-interval-ms", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stats-interval-ms", "-5"}), std::invalid_argument);
}

TEST(Cli, RejectsNegativeAndNonFiniteTimes) {
  EXPECT_THROW(parse({"--horizon-ms", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--warmup-ms", "-0.5"}), std::invalid_argument);
  // std::from_chars happily parses these; the CLI must not.
  EXPECT_THROW(parse({"--horizon-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--horizon-ms", "inf"}), std::invalid_argument);
  EXPECT_THROW(parse({"--warmup-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stats-interval-ms", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "nan"}), std::invalid_argument);
  EXPECT_THROW(parse({"--noise-cv", "inf"}), std::invalid_argument);
}

TEST(Cli, FaultSpecOffByDefault) {
  EXPECT_TRUE(parse({}).scenario.fault.inert());
}

TEST(Cli, ParsesFaultSpec) {
  const CliOptions opts =
      parse({"--fault-spec", "dispatch:prob=0.05;crash:invoker=3,at=2000,down=1500"});
  EXPECT_FALSE(opts.scenario.fault.inert());
  ASSERT_EQ(opts.scenario.fault.dispatch.size(), 1u);
  EXPECT_DOUBLE_EQ(opts.scenario.fault.dispatch[0].prob, 0.05);
  ASSERT_EQ(opts.scenario.fault.crashes.size(), 1u);
  EXPECT_NE(cli_usage().find("--fault-spec"), std::string::npos);
}

TEST(Cli, RejectsMalformedFaultSpec) {
  EXPECT_THROW(parse({"--fault-spec", "explode:prob=0.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--fault-spec", "dispatch:prob=2"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--fault-spec", "@/no/such/spec/file"}),
               std::invalid_argument);
}

TEST(Cli, ParsesExplicitSeedList) {
  EXPECT_EQ(parse({"--seeds", "7,8,9"}).seeds,
            (std::vector<std::uint64_t>{7, 8, 9}));
  // Order is preserved, not sorted.
  EXPECT_EQ(parse({"--seeds", "9,7,8"}).seeds,
            (std::vector<std::uint64_t>{9, 7, 8}));
  // Trailing comma marks a single-element list (vs. the count form).
  EXPECT_EQ(parse({"--seeds", "7,"}).seeds, (std::vector<std::uint64_t>{7}));
  // Seed 0 is a legal seed in list form (only count 0 is rejected).
  EXPECT_EQ(parse({"--seeds", "0,1"}).seeds,
            (std::vector<std::uint64_t>{0, 1}));
}

TEST(Cli, RejectsEmptyAndDuplicateSeedLists) {
  EXPECT_THROW(parse({"--seeds", ","}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", ",,"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "1,,2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", ",1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "1,2,1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "1,2,abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seeds", "1,2.5"}), std::invalid_argument);
  try {
    (void)parse({"--seeds", "3,5,3"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate seed 3"),
              std::string::npos)
        << e.what();
  }
}

TEST(Cli, ArrivalsDefaultsToSynthetic) {
  const CliOptions opts = parse({});
  EXPECT_EQ(opts.scenario.arrivals.mode, ArrivalMode::kSynthetic);
  EXPECT_EQ(parse({"--arrivals", "synthetic"}).scenario.arrivals.mode,
            ArrivalMode::kSynthetic);
}

TEST(Cli, ParsesBurstyArrivals) {
  const CliOptions opts = parse(
      {"--arrivals", "bursty:calm=normal,burst=heavy,calm-ms=5000,burst-ms=1000"});
  EXPECT_EQ(opts.scenario.arrivals.mode, ArrivalMode::kBursty);
  EXPECT_EQ(opts.scenario.arrivals.burst.calm, workload::LoadSetting::kNormal);
  EXPECT_EQ(opts.scenario.arrivals.burst.burst, workload::LoadSetting::kHeavy);
  EXPECT_DOUBLE_EQ(opts.scenario.arrivals.burst.mean_calm_ms, 5000.0);
  EXPECT_DOUBLE_EQ(opts.scenario.arrivals.burst.mean_burst_ms, 1000.0);
  // Bare `bursty` uses the profile defaults.
  EXPECT_EQ(parse({"--arrivals", "bursty"}).scenario.arrivals.mode,
            ArrivalMode::kBursty);
}

TEST(Cli, RejectsMalformedBurstyArrivals) {
  EXPECT_THROW(parse({"--arrivals", "bursty:calm"}), std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "bursty:wave=big"}), std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "bursty:calm-ms=0"}),
               std::invalid_argument);
}

/// Writes a tiny valid trace to a temp path and removes it on destruction.
struct TempTrace {
  std::string path;
  explicit TempTrace(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::ofstream out(path);
    out << "esg-trace,v1,bin_ms=500,apps=2\n0,0,5\n0,1,2\n1,0,3\n";
  }
  ~TempTrace() { std::remove(path.c_str()); }
};

TEST(Cli, ParsesTraceArrivalsAndLoadsEagerly) {
  const TempTrace trace("cli_test_trace.csv");
  const CliOptions opts = parse(
      {"--arrivals",
       ("trace:@" + trace.path + ",rate-scale=2,time-scale=0.5").c_str()});
  EXPECT_EQ(opts.scenario.arrivals.mode, ArrivalMode::kTrace);
  EXPECT_EQ(opts.scenario.arrivals.trace_path, trace.path);
  EXPECT_DOUBLE_EQ(opts.scenario.arrivals.replay.rate_scale, 2.0);
  EXPECT_DOUBLE_EQ(opts.scenario.arrivals.replay.time_scale, 0.5);
  ASSERT_NE(opts.scenario.arrivals.trace, nullptr);
  EXPECT_EQ(opts.scenario.arrivals.trace->app_count, 2u);
  EXPECT_DOUBLE_EQ(opts.scenario.arrivals.trace->total_count(), 10.0);
}

TEST(Cli, RejectsMalformedTraceArrivals) {
  const TempTrace trace("cli_test_trace2.csv");
  EXPECT_THROW(parse({"--arrivals", "trace:"}), std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "trace:@"}), std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "trace:no-at-sign.csv"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "trace:@/no/such/trace.csv"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse({"--arrivals",
             ("trace:@" + trace.path + ",rate-scale=-1").c_str()}),
      std::invalid_argument);
  EXPECT_THROW(
      parse({"--arrivals",
             ("trace:@" + trace.path + ",time-scale=0").c_str()}),
      std::invalid_argument);
  EXPECT_THROW(
      parse({"--arrivals", ("trace:@" + trace.path + ",warp=9").c_str()}),
      std::invalid_argument);
  EXPECT_THROW(parse({"--arrivals", "stochastic"}), std::invalid_argument);
  EXPECT_NE(cli_usage().find("--arrivals"), std::string::npos);
}

TEST(Cli, ForecastDefaultsToInert) {
  const CliOptions opts = parse({});
  EXPECT_TRUE(opts.scenario.forecast.inert());
  EXPECT_TRUE(parse({"--forecast", "none"}).scenario.forecast.inert());
}

TEST(Cli, ParsesForecastSpec) {
  const CliOptions opts =
      parse({"--forecast", "ewma:alpha=0.5;lead-ms=3000,bin-ms=500"});
  EXPECT_EQ(opts.scenario.forecast.kind, forecast::ForecastKind::kEwma);
  EXPECT_DOUBLE_EQ(opts.scenario.forecast.ewma_alpha, 0.5);
  EXPECT_DOUBLE_EQ(opts.scenario.forecast.lead_ms, 3000.0);
  EXPECT_DOUBLE_EQ(opts.scenario.forecast.bin_ms, 500.0);
  EXPECT_NE(cli_usage().find("--forecast"), std::string::npos);
}

TEST(Cli, RejectsMalformedForecastSpecs) {
  EXPECT_THROW(parse({"--forecast"}), std::invalid_argument);  // no value
  EXPECT_THROW(parse({"--forecast", "arima"}), std::invalid_argument);
  EXPECT_THROW(parse({"--forecast", "ewma:alpha=2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--forecast", "oracle;lead-ms=-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--forecast", "@/no/such/forecast.spec"}),
               std::invalid_argument);
}

TEST(Cli, OracleForecastRequiresTraceArrivals) {
  // Hindsight needs a trace to read; synthetic arrivals have no truth.
  EXPECT_THROW(parse({"--forecast", "oracle"}), std::invalid_argument);
  const TempTrace trace("cli_test_trace3.csv");
  const CliOptions opts = parse(
      {"--arrivals", ("trace:@" + trace.path).c_str(), "--forecast", "oracle"});
  EXPECT_EQ(opts.scenario.forecast.kind, forecast::ForecastKind::kOracle);
}

TEST(Cli, ElasticForecastPolicyRequiresAForecaster) {
  EXPECT_THROW(parse({"--elastic", "forecast"}), std::invalid_argument);
  const CliOptions opts =
      parse({"--elastic", "forecast", "--forecast", "ewma"});
  EXPECT_EQ(opts.scenario.elastic.policy, elastic::ElasticPolicy::kForecast);
  EXPECT_EQ(opts.scenario.forecast.kind, forecast::ForecastKind::kEwma);
}

}  // namespace
}  // namespace esg::exp
