#include "profile/perf_model.hpp"

#include <gtest/gtest.h>

#include "profile/function_spec.hpp"

namespace esg::profile {
namespace {

const FunctionSpec& deblur() { return builtin_spec(id_of(Function::kDeblur)); }

TEST(PerfModel, BaseConfigMatchesTable3) {
  // The model is calibrated so (batch=1, 1 vCPU, 1 vGPU) reproduces the
  // measured base latency exactly, for every built-in function.
  for (const auto& spec : builtin_specs()) {
    EXPECT_DOUBLE_EQ(PerfModel::latency_ms(spec, kMinConfig),
                     spec.base_latency_ms)
        << spec.name;
  }
}

TEST(PerfModel, AmdahlBasics) {
  EXPECT_DOUBLE_EQ(PerfModel::amdahl(0.0, 8), 1.0);    // fully serial
  EXPECT_DOUBLE_EQ(PerfModel::amdahl(1.0, 8), 8.0);    // fully parallel
  EXPECT_DOUBLE_EQ(PerfModel::amdahl(0.5, 1), 1.0);
  EXPECT_GT(PerfModel::amdahl(0.5, 4), 1.0);
  EXPECT_LT(PerfModel::amdahl(0.5, 4), 4.0);
}

TEST(PerfModel, AmdahlRejectsZeroCpus) {
  EXPECT_THROW(PerfModel::amdahl(0.5, 0), std::invalid_argument);
}

TEST(PerfModel, BatchMultiplierLinearInEta) {
  EXPECT_DOUBLE_EQ(PerfModel::batch_multiplier(0.5, 1), 1.0);
  EXPECT_DOUBLE_EQ(PerfModel::batch_multiplier(0.5, 3), 2.0);
  EXPECT_DOUBLE_EQ(PerfModel::batch_multiplier(0.0, 100), 1.0);
}

TEST(PerfModel, BatchMultiplierRejectsZero) {
  EXPECT_THROW(PerfModel::batch_multiplier(0.5, 0), std::invalid_argument);
}

TEST(PerfModel, RejectsZeroConfigFields) {
  EXPECT_THROW(PerfModel::latency_ms(deblur(), Config{0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(PerfModel::latency_ms(deblur(), Config{1, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(PerfModel::latency_ms(deblur(), Config{1, 1, 0}),
               std::invalid_argument);
}

TEST(PerfModel, LatencyIncreasesWithBatch) {
  TimeMs prev = 0.0;
  for (std::uint16_t b : {1, 2, 4, 8}) {
    const TimeMs t = PerfModel::latency_ms(deblur(), Config{b, 1, 1});
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PerfModel, BatchingIsSubLinear) {
  // The whole point of batching on GPUs: doubling the batch costs less than
  // doubling the time, so per-job latency falls.
  const TimeMs t1 = PerfModel::latency_ms(deblur(), Config{1, 1, 1});
  const TimeMs t8 = PerfModel::latency_ms(deblur(), Config{8, 1, 1});
  EXPECT_LT(t8, 8.0 * t1);
  EXPECT_LT(t8 / 8.0, t1);  // per-job time improves
}

TEST(PerfModel, MoreVcpusNeverSlower) {
  for (const auto& spec : builtin_specs()) {
    TimeMs prev = PerfModel::latency_ms(spec, Config{4, 1, 1});
    for (std::uint16_t c : {2, 4, 8}) {
      const TimeMs t = PerfModel::latency_ms(spec, Config{4, c, 1});
      EXPECT_LE(t, prev) << spec.name;
      prev = t;
    }
  }
}

TEST(PerfModel, MoreVgpusNeverSlowerForBatches) {
  for (const auto& spec : builtin_specs()) {
    TimeMs prev = PerfModel::latency_ms(spec, Config{8, 1, 1});
    for (std::uint16_t g : {2, 4}) {
      const TimeMs t = PerfModel::latency_ms(spec, Config{8, 1, g});
      EXPECT_LE(t, prev) << spec.name;
      prev = t;
    }
  }
}

TEST(PerfModel, VgpusUselessForSingleJob) {
  // batch=1 cannot be split across slices, so extra slices change nothing.
  const TimeMs t1 = PerfModel::latency_ms(deblur(), Config{1, 1, 1});
  const TimeMs t4 = PerfModel::latency_ms(deblur(), Config{1, 1, 4});
  EXPECT_DOUBLE_EQ(t1, t4);
}

TEST(PerfModel, DataParallelSplitMatchesCeil) {
  // With g slices, the per-slice batch is ceil(b/g); b=8 on g=4 behaves like
  // a per-slice batch of 2.
  const auto& spec = deblur();
  const TimeMs split = PerfModel::latency_ms(spec, Config{8, 1, 4});
  const double expected_gpu =
      (1.0 - spec.cpu_share) * spec.base_latency_ms *
      PerfModel::batch_multiplier(spec.batch_efficiency, 2);
  const double expected_cpu = spec.cpu_share * spec.base_latency_ms * 8.0 /
                              PerfModel::amdahl(spec.cpu_parallel_fraction, 1);
  EXPECT_NEAR(split, expected_cpu + expected_gpu, 1e-9);
}

TEST(PerfModel, IsDeterministic) {
  const Config c{4, 2, 2};
  EXPECT_DOUBLE_EQ(PerfModel::latency_ms(deblur(), c),
                   PerfModel::latency_ms(deblur(), c));
}

class PerfModelAllFunctions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PerfModelAllFunctions, LatencyAlwaysPositive) {
  const FunctionSpec& spec = builtin_specs()[GetParam()];
  for (std::uint16_t b : {1, 2, 4, 8, 16}) {
    if (b > spec.max_batch) continue;
    for (std::uint16_t c : {1, 2, 4, 8}) {
      for (std::uint16_t g : {1, 2, 4, 7}) {
        EXPECT_GT(PerfModel::latency_ms(spec, Config{b, c, g}), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, PerfModelAllFunctions,
                         ::testing::Range<std::size_t>(0, kBuiltinFunctionCount));

}  // namespace
}  // namespace esg::profile
