#include "profile/profile_table.hpp"

#include <gtest/gtest.h>

#include "profile/function_spec.hpp"
#include "profile/perf_model.hpp"

namespace esg::profile {
namespace {

const FunctionSpec& sr() {
  return builtin_spec(id_of(Function::kSuperResolution));
}

TEST(FunctionSpecs, TableThreeValues) {
  EXPECT_EQ(builtin_specs().size(), kBuiltinFunctionCount);
  const auto& deblur = builtin_spec(id_of(Function::kDeblur));
  EXPECT_EQ(deblur.name, "deblur");
  EXPECT_DOUBLE_EQ(deblur.base_latency_ms, 319.0);
  EXPECT_DOUBLE_EQ(deblur.cold_start_ms, 22343.0);
  EXPECT_DOUBLE_EQ(deblur.input_mb, 1.1);
  EXPECT_EQ(deblur.model, "DeblurGAN");

  const auto& bg = builtin_spec(id_of(Function::kBackgroundRemoval));
  EXPECT_DOUBLE_EQ(bg.base_latency_ms, 1047.0);
  EXPECT_DOUBLE_EQ(bg.cold_start_ms, 3729.0);
}

TEST(FunctionSpecs, UnknownIdThrows) {
  EXPECT_THROW(builtin_spec(FunctionId(99)), std::out_of_range);
}

TEST(EnumerateConfigs, FiltersDominatedAndOversized) {
  ConfigSpaceOptions opts;
  opts.batches = {1, 2, 64};
  opts.vcpus = {1};
  opts.vgpus = {1, 2, 3};
  const auto configs = enumerate_configs(opts, sr());  // max_batch = 32
  // batch 64 dropped (> max_batch); vgpus > batch dropped.
  for (const auto& c : configs) {
    EXPECT_LE(c.batch, sr().max_batch);
    EXPECT_LE(c.vgpus, c.batch);
  }
  // batch=1: g=1 only; batch=2: g in {1,2} -> 1 + 2 = 3 configs.
  EXPECT_EQ(configs.size(), 3u);
}

TEST(EnumerateConfigs, SkipsZeroOptions) {
  ConfigSpaceOptions opts;
  opts.batches = {0, 1};
  opts.vcpus = {0, 1};
  opts.vgpus = {0, 1};
  EXPECT_EQ(enumerate_configs(opts, sr()).size(), 1u);
}

TEST(ProfileTable, RejectsEmptySpace) {
  EXPECT_THROW(ProfileTable(sr(), {}, PriceModel{}), std::invalid_argument);
}

TEST(ProfileTable, RejectsDuplicateConfig) {
  EXPECT_THROW(
      ProfileTable(sr(), {Config{1, 1, 1}, Config{1, 1, 1}}, PriceModel{}),
      std::invalid_argument);
}

TEST(ProfileTable, EntriesSortedByLatency) {
  const ProfileSet set = ProfileSet::builtin();
  for (const auto& spec : builtin_specs()) {
    const auto entries = set.table(spec.id).entries();
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LE(entries[i - 1].latency_ms, entries[i].latency_ms) << spec.name;
    }
  }
}

TEST(ProfileTable, CostsMatchPriceModel) {
  const PriceModel prices;
  const ProfileSet set = ProfileSet::builtin({}, prices);
  const auto& table = set.table(sr().id);
  for (const auto& e : table.entries()) {
    EXPECT_NEAR(e.task_cost, prices.task_cost(e.config, e.latency_ms), 1e-15);
    EXPECT_NEAR(e.per_job_cost, e.task_cost / e.config.batch, 1e-15);
  }
}

TEST(ProfileTable, LookupByConfig) {
  const ProfileSet set = ProfileSet::builtin();
  const auto& table = set.table(sr().id);
  const Config c{4, 2, 2};
  ASSERT_TRUE(table.contains(c));
  EXPECT_NEAR(table.at(c).latency_ms, PerfModel::latency_ms(sr(), c), 1e-12);
  EXPECT_FALSE(table.contains(Config{3, 3, 3}));
  EXPECT_THROW(table.at(Config{3, 3, 3}), std::out_of_range);
}

TEST(ProfileTable, MinimaAreConsistent) {
  const ProfileSet set = ProfileSet::builtin();
  for (const auto& spec : builtin_specs()) {
    const auto& table = set.table(spec.id);
    EXPECT_DOUBLE_EQ(table.min_latency(), table.entries().front().latency_ms);
    EXPECT_DOUBLE_EQ(table.fastest_per_job_cost(),
                     table.entries().front().per_job_cost);
    Usd min_cost = table.entries().front().per_job_cost;
    for (const auto& e : table.entries()) {
      min_cost = std::min(min_cost, e.per_job_cost);
    }
    EXPECT_DOUBLE_EQ(table.min_per_job_cost(), min_cost);
    EXPECT_GE(table.fastest_per_job_cost(), table.min_per_job_cost());
  }
}

TEST(ProfileTable, BatchFilterKeepsOrderAndBound) {
  const ProfileSet set = ProfileSet::builtin();
  const auto& table = set.table(sr().id);
  const auto filtered = table.entries_with_batch_at_most(2);
  ASSERT_FALSE(filtered.empty());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_LE(filtered[i].config.batch, 2);
    if (i > 0) EXPECT_LE(filtered[i - 1].latency_ms, filtered[i].latency_ms);
  }
}

TEST(ProfileTable, MinConfigEntryIsBaseLatency) {
  const ProfileSet set = ProfileSet::builtin();
  for (const auto& spec : builtin_specs()) {
    EXPECT_DOUBLE_EQ(set.table(spec.id).min_config_entry().latency_ms,
                     spec.base_latency_ms);
  }
}

TEST(ProfileSet, BuiltinCoversAllFunctions) {
  const ProfileSet set = ProfileSet::builtin();
  EXPECT_EQ(set.size(), kBuiltinFunctionCount);
  for (const auto& spec : builtin_specs()) {
    EXPECT_TRUE(set.contains(spec.id));
  }
  EXPECT_FALSE(set.contains(FunctionId(42)));
  EXPECT_THROW(set.table(FunctionId(42)), std::out_of_range);
}

TEST(ProfileSet, DuplicateAddThrows) {
  ProfileSet set = ProfileSet::builtin();
  ProfileTable extra(sr(), enumerate_configs({}, sr()), PriceModel{});
  EXPECT_THROW(set.add(std::move(extra)), std::invalid_argument);
}

TEST(PriceModel, PaperRates) {
  const PriceModel p;
  // 1 vCPU for one hour costs $0.034; 1 vGPU for one hour costs $0.67.
  EXPECT_NEAR(p.cost(1, 0, 3'600'000.0), 0.034, 1e-12);
  EXPECT_NEAR(p.cost(0, 1, 3'600'000.0), 0.67, 1e-12);
  EXPECT_NEAR(p.cost(2, 3, 1'800'000.0), (2 * 0.034 + 3 * 0.67) / 2.0, 1e-12);
}

TEST(ConfigToString, Format) {
  EXPECT_EQ(to_string(Config{4, 2, 1}), "(b=4, c=2, g=1)");
}

}  // namespace
}  // namespace esg::profile
