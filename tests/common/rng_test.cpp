#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace esg {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ProducesVariedOutput) {
  Xoshiro256 g(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.next());
  EXPECT_EQ(seen.size(), 1000u);  // collisions are astronomically unlikely
}

TEST(RngStream, UniformInUnitInterval) {
  RngStream s(99);
  for (int i = 0; i < 10'000; ++i) {
    const double u = s.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformRangeRespectsBounds) {
  RngStream s(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = s.uniform(10.0, 16.8);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 16.8);
  }
}

TEST(RngStream, UniformMeanIsCentred) {
  RngStream s(17);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += s.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, BelowStaysInRange) {
  RngStream s(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(s.below(7), 7u);
  }
}

TEST(RngStream, BelowCoversAllValues) {
  RngStream s(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s.below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngStream, BelowZeroThrows) {
  RngStream s(1);
  EXPECT_THROW(s.below(0), std::invalid_argument);
}

TEST(RngStream, GaussianMomentsMatch) {
  RngStream s(23);
  const int n = 200'000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = s.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngStream, GaussianScaledMoments) {
  RngStream s(29);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += s.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngStream, ChanceExtremes) {
  RngStream s(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.chance(0.0));
    EXPECT_TRUE(s.chance(1.0));
  }
}

TEST(RngFactory, SameLabelSameStream) {
  RngFactory f(77);
  RngStream a = f.stream("noise");
  RngStream b = f.stream("noise");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngFactory, DifferentLabelsDiffer) {
  RngFactory f(77);
  RngStream a = f.stream("noise");
  RngStream b = f.stream("arrivals");
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(RngFactory, IndexSelectsSubStream) {
  RngFactory f(9);
  RngStream a = f.stream("app", 0);
  RngStream b = f.stream("app", 1);
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngFactory, DifferentMasterSeedsDiffer) {
  RngFactory f1(1);
  RngFactory f2(2);
  EXPECT_NE(f1.stream("x").uniform(), f2.stream("x").uniform());
}

TEST(RngFactory, ScopedFactoryIsDeterministic) {
  RngFactory f(77);
  RngStream a = f.scoped("fault").stream("dispatch");
  RngStream b = f.scoped("fault").stream("dispatch");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngFactory, ScopedStreamsAreIndependentOfBaseStreams) {
  // A scope's streams must not collide with the base factory's streams —
  // even for the same label, and even when the scope label doubles as a
  // base-stream label. Optional subsystems (fault injection) rely on this
  // to leave arrival/noise draws untouched when enabled.
  RngFactory f(77);
  RngFactory scope = f.scoped("fault");
  EXPECT_NE(scope.stream("dispatch").uniform(), f.stream("dispatch").uniform());
  EXPECT_NE(scope.stream("dispatch").uniform(), f.stream("fault").uniform());
  EXPECT_NE(scope.master_seed(), f.master_seed());
}

TEST(RngFactory, DifferentScopeLabelsDiffer) {
  RngFactory f(9);
  EXPECT_NE(f.scoped("fault").stream("x").uniform(),
            f.scoped("whatif").stream("x").uniform());
}

}  // namespace
}  // namespace esg
