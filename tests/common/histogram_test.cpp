#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace esg {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.fraction_at(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.fraction_at(0), 0.0);
}

TEST(Histogram, QuantileOfEmptyIsLowerBound) {
  Histogram h(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileOfSingleSampleStaysInItsBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(3.0);  // bin 1 = [2, 4)
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 2.0) << q;
    EXPECT_LT(h.quantile(q), 4.0) << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);  // midpoint of the bin
}

TEST(Histogram, QuantileInterpolatesAndIsMonotone) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 5.0);
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << q;
    prev = cur;
  }
  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, MergeAddsCountsBinwise) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(5.0);
  b.add(5.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_at(0), 1u);
  EXPECT_EQ(a.count_at(2), 2u);
  EXPECT_EQ(a.count_at(4), 1u);
  EXPECT_EQ(b.total(), 2u);  // the source is untouched
}

TEST(Histogram, MergeRejectsIncompatibleShapes) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 4)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(-1.0, 10.0, 5)), std::invalid_argument);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace esg
