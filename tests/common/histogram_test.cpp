#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace esg {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.fraction_at(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.fraction_at(0), 0.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace esg
