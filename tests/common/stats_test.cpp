#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace esg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Percentile, ClampsQuantile) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

}  // namespace
}  // namespace esg
