#include "common/ewma.hpp"

#include <gtest/gtest.h>

namespace esg {
namespace {

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(-0.5), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
  EXPECT_NO_THROW(Ewma(1.0));
  EXPECT_NO_THROW(Ewma(0.001));
}

TEST(Ewma, UninitialisedIsZero) {
  Ewma e(0.3);
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.value(), 0.0);
}

TEST(Ewma, FirstObservationSeedsValue) {
  Ewma e(0.3);
  e.observe(42.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, BlendsObservations) {
  Ewma e(0.5);
  e.observe(10.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(Ewma, AlphaOneTracksLastValue) {
  Ewma e(1.0);
  e.observe(1.0);
  e.observe(99.0);
  EXPECT_DOUBLE_EQ(e.value(), 99.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.3);
  e.observe(100.0);
  for (int i = 0; i < 60; ++i) e.observe(13.0);
  EXPECT_NEAR(e.value(), 13.0, 1e-6);
}

TEST(Ewma, RecentValuesDominate) {
  Ewma slow(0.1);
  Ewma fast(0.9);
  for (auto* e : {&slow, &fast}) {
    e->observe(0.0);
    e->observe(100.0);
  }
  EXPECT_GT(fast.value(), slow.value());
}

}  // namespace
}  // namespace esg
