#include "common/table.hpp"

#include <gtest/gtest.h>

namespace esg {
namespace {

TEST(AsciiTable, RejectsEmptyHeaders) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"scheduler", "hit rate"});
  t.add_row({"ESG", "97.0%"});
  t.add_row({"Orion", "54.5%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("scheduler"), std::string::npos);
  EXPECT_NE(out.find("ESG"), std::string::npos);
  EXPECT_NE(out.find("Orion"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, NumFormatsPrecision) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(AsciiTable, PctFormatsRatio) {
  EXPECT_EQ(AsciiTable::pct(0.613), "61.3%");
  EXPECT_EQ(AsciiTable::pct(1.0, 0), "100%");
}

TEST(AsciiTable, ColumnsAlign) {
  AsciiTable t({"x", "longer-header"});
  t.add_row({"very-long-cell", "y"});
  const std::string out = t.render();
  // Every line has the same length when columns are padded consistently.
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace esg
