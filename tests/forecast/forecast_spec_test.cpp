// --forecast grammar: canonical specs round-trip through to_string, the
// inert spellings stay inert, and every malformed clause is rejected with
// std::invalid_argument (the CLI maps it to exit code 2).
#include "forecast/forecast_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace esg::forecast {
namespace {

TEST(ForecastSpec, EmptyAndNoneAreInert) {
  for (const char* text : {"", "none", "  none  "}) {
    const ForecastSpec spec = parse_forecast_spec(text);
    EXPECT_EQ(spec.kind, ForecastKind::kNone) << text;
    EXPECT_TRUE(spec.inert());
    EXPECT_FALSE(spec.enabled());
  }
}

TEST(ForecastSpec, ParsesEveryPredictorWithDefaults) {
  EXPECT_EQ(parse_forecast_spec("oracle").kind, ForecastKind::kOracle);
  EXPECT_EQ(parse_forecast_spec("last-bin").kind, ForecastKind::kLastBin);
  const ForecastSpec ewma = parse_forecast_spec("ewma");
  EXPECT_EQ(ewma.kind, ForecastKind::kEwma);
  EXPECT_DOUBLE_EQ(ewma.ewma_alpha, 0.3);
  const ForecastSpec seasonal = parse_forecast_spec("seasonal");
  EXPECT_EQ(seasonal.kind, ForecastKind::kSeasonal);
  EXPECT_DOUBLE_EQ(seasonal.seasonal_period_ms, 120'000.0);
  EXPECT_EQ(seasonal.seasonal_bins, 120u);
  EXPECT_DOUBLE_EQ(seasonal.bin_ms, 1'000.0);
  EXPECT_DOUBLE_EQ(seasonal.lead_ms, 2'000.0);
}

TEST(ForecastSpec, ParsesParametersAndSharedTail) {
  const ForecastSpec spec = parse_forecast_spec(
      "seasonal:period-ms=60000,bins=60;lead-ms=1500,bin-ms=500");
  EXPECT_EQ(spec.kind, ForecastKind::kSeasonal);
  EXPECT_DOUBLE_EQ(spec.seasonal_period_ms, 60'000.0);
  EXPECT_EQ(spec.seasonal_bins, 60u);
  EXPECT_DOUBLE_EQ(spec.lead_ms, 1'500.0);
  EXPECT_DOUBLE_EQ(spec.bin_ms, 500.0);
  EXPECT_DOUBLE_EQ(parse_forecast_spec("ewma:alpha=0.75").ewma_alpha, 0.75);
  EXPECT_DOUBLE_EQ(parse_forecast_spec("oracle;lead-ms=0").lead_ms, 0.0);
}

TEST(ForecastSpec, WhitespaceAroundClausesIsIgnored) {
  const ForecastSpec spec =
      parse_forecast_spec("  ewma : alpha = 0.5 ; lead-ms = 250  ");
  EXPECT_EQ(spec.kind, ForecastKind::kEwma);
  EXPECT_DOUBLE_EQ(spec.ewma_alpha, 0.5);
  EXPECT_DOUBLE_EQ(spec.lead_ms, 250.0);
}

TEST(ForecastSpec, ToStringRoundTrips) {
  const char* specs[] = {
      "none",
      "oracle",
      "last-bin",
      "ewma:alpha=0.5;lead-ms=3000,bin-ms=500",
      "seasonal:period-ms=30000,bins=30;lead-ms=1000,bin-ms=250",
  };
  for (const char* text : specs) {
    const ForecastSpec a = parse_forecast_spec(text);
    const ForecastSpec b = parse_forecast_spec(to_string(a));
    EXPECT_EQ(a.kind, b.kind) << text;
    EXPECT_DOUBLE_EQ(a.ewma_alpha, b.ewma_alpha) << text;
    EXPECT_DOUBLE_EQ(a.seasonal_period_ms, b.seasonal_period_ms) << text;
    EXPECT_EQ(a.seasonal_bins, b.seasonal_bins) << text;
    EXPECT_DOUBLE_EQ(a.bin_ms, b.bin_ms) << text;
    EXPECT_DOUBLE_EQ(a.lead_ms, b.lead_ms) << text;
  }
  EXPECT_EQ(to_string(parse_forecast_spec("")), "none");
}

TEST(ForecastSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "arima",                       // unknown predictor
      "ewma:alpha=0",                // alpha out of (0, 1]
      "ewma:alpha=1.5",
      "ewma:alpha=nan",              // from_chars accepts nan; isfinite rejects
      "ewma:alpha=0.5x",             // trailing garbage
      "ewma:alpha=0.3,alpha=0.4",    // duplicate key
      "ewma:period-ms=100",          // seasonal key on the wrong predictor
      "oracle:alpha=0.5",            // parameters the oracle has none of
      "seasonal:bins=0",
      "seasonal:period-ms=-5",
      "seasonal:bins=2.5",           // fractional count
      "last-bin:foo=1",              // unknown key
      "ewma:alpha",                  // not key=value
      "ewma:=0.5",
      "oracle;lead-ms=-1",           // negative lead
      "oracle;bin-ms=0",             // non-positive bin
      "oracle;cadence-ms=5",         // unknown shared key
      "oracle;lead-ms=5,lead-ms=6",  // duplicate shared key
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_forecast_spec(text), std::invalid_argument)
        << text;
  }
}

TEST(ForecastSpec, FileIndirectionFoldsNewlines) {
  const std::string path = ::testing::TempDir() + "/forecast_spec.txt";
  {
    std::ofstream out(path);
    out << "ewma:alpha=0.6\nlead-ms=750\n";
  }
  const ForecastSpec spec = load_forecast_spec("@" + path);
  EXPECT_EQ(spec.kind, ForecastKind::kEwma);
  EXPECT_DOUBLE_EQ(spec.ewma_alpha, 0.6);
  EXPECT_DOUBLE_EQ(spec.lead_ms, 750.0);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_forecast_spec("@" + path), std::invalid_argument);
}

TEST(ForecastSpec, KindNamesRoundTrip) {
  EXPECT_EQ(to_string(ForecastKind::kNone), "none");
  EXPECT_EQ(to_string(ForecastKind::kOracle), "oracle");
  EXPECT_EQ(to_string(ForecastKind::kLastBin), "last-bin");
  EXPECT_EQ(to_string(ForecastKind::kEwma), "ewma");
  EXPECT_EQ(to_string(ForecastKind::kSeasonal), "seasonal");
}

}  // namespace
}  // namespace esg::forecast
