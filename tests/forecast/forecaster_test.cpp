// Predictor math against closed-form expectations (oracle exactness on a
// hand-built trace, EWMA step response, seasonal convergence after two
// periods) and the ForecastService harness contract: lazy bin rolling,
// MAE/sMAPE scoring, counters, and the bin callback.
#include "forecast/forecaster.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "forecast/forecast_spec.hpp"
#include "trace/replay.hpp"
#include "trace/workload_trace.hpp"

namespace esg::forecast {
namespace {

/// Two apps, 1000 ms bins: app 0 sees 5 then 10 arrivals, app 1 sees 2.
std::shared_ptr<const trace::WorkloadTrace> hand_trace() {
  trace::WorkloadTrace t;
  t.bin_ms = 1'000.0;
  t.app_count = 2;
  t.rows = {{0, 0, 5.0, 0}, {0, 1, 2.0, 0}, {1, 0, 10.0, 0}};
  return std::make_shared<const trace::WorkloadTrace>(std::move(t));
}

ForecastSpec spec_of(const char* text) { return parse_forecast_spec(text); }

TEST(Forecaster, OracleReadsTrueBinRatesExactly) {
  const auto oracle =
      make_forecaster(spec_of("oracle"), 2, hand_trace(), trace::ReplayOptions{});
  EXPECT_EQ(oracle->name(), "oracle");
  // Whole bins: 5 arrivals over 1000 ms = 5/s, then 10/s; app 1 only bin 0.
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 0.0, 1'000.0), 5.0);
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 1'000.0, 1'000.0), 10.0);
  EXPECT_DOUBLE_EQ(oracle->forecast(1, 0.0, 1'000.0), 2.0);
  EXPECT_DOUBLE_EQ(oracle->forecast(1, 1'000.0, 1'000.0), 0.0);
  // A window straddling both bins integrates the overlap of each.
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 500.0, 1'000.0), 7.5);
  // Past the trace end the truth is "no arrivals"; bad app ids are 0 too.
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 2'000.0, 1'000.0), 0.0);
  EXPECT_DOUBLE_EQ(oracle->forecast(7, 0.0, 1'000.0), 0.0);
}

TEST(Forecaster, OracleAppliesReplayScaling) {
  trace::ReplayOptions replay;
  replay.rate_scale = 2.0;
  replay.time_scale = 2.0;  // bins stretch to 2000 ms
  const auto oracle = make_forecaster(spec_of("oracle"), 2, hand_trace(), replay);
  // Bin 0 now spans [0, 2000) with 2x5 expected arrivals: 10/2 s = 5/s.
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 0.0, 2'000.0), 5.0);
  EXPECT_DOUBLE_EQ(oracle->forecast(0, 2'000.0, 2'000.0), 10.0);
}

TEST(Forecaster, OracleWithoutTraceIsRejected) {
  EXPECT_THROW(
      make_forecaster(spec_of("oracle"), 2, nullptr, trace::ReplayOptions{}),
      std::invalid_argument);
}

TEST(Forecaster, LastBinPredictsThePreviousBin) {
  const auto f =
      make_forecaster(spec_of("last-bin"), 1, nullptr, trace::ReplayOptions{});
  EXPECT_DOUBLE_EQ(f->forecast(0, 0.0, 500.0), 0.0);  // nothing observed yet
  f->observe_bin(0, 0.0, 500.0, 4.0);
  EXPECT_DOUBLE_EQ(f->forecast(0, 500.0, 500.0), 8.0);  // 4 per 500 ms = 8/s
  f->observe_bin(0, 500.0, 500.0, 0.0);
  EXPECT_DOUBLE_EQ(f->forecast(0, 1'000.0, 500.0), 0.0);
}

TEST(Forecaster, EwmaStepResponseConvergesGeometrically) {
  const auto f = make_forecaster(spec_of("ewma:alpha=0.5"), 1, nullptr,
                                 trace::ReplayOptions{});
  f->observe_bin(0, 0.0, 1'000.0, 0.0);
  // Step to 8/bin: the estimate halves its distance each bin.
  f->observe_bin(0, 1'000.0, 1'000.0, 8.0);
  EXPECT_DOUBLE_EQ(f->forecast(0, 2'000.0, 1'000.0), 4.0);
  f->observe_bin(0, 2'000.0, 1'000.0, 8.0);
  EXPECT_DOUBLE_EQ(f->forecast(0, 3'000.0, 1'000.0), 6.0);
  f->observe_bin(0, 3'000.0, 1'000.0, 8.0);
  EXPECT_DOUBLE_EQ(f->forecast(0, 4'000.0, 1'000.0), 7.0);
}

TEST(Forecaster, SeasonalLearnsThePatternAfterTwoPeriods) {
  // Period of 4 one-second bins carrying the pattern 1, 2, 3, 4.
  const auto f = make_forecaster(spec_of("seasonal:period-ms=4000,bins=4"), 1,
                                 nullptr, trace::ReplayOptions{});
  for (int day = 0; day < 2; ++day) {
    for (int slot = 0; slot < 4; ++slot) {
      const double start = (day * 4 + slot) * 1'000.0;
      f->observe_bin(0, start, 1'000.0, 1.0 + slot);
    }
  }
  // Day 3 queries hit the converged per-slot means exactly.
  for (int slot = 0; slot < 4; ++slot) {
    const double start = (8 + slot) * 1'000.0;
    EXPECT_DOUBLE_EQ(f->forecast(0, start, 1'000.0), 1.0 + slot) << slot;
  }
}

TEST(Forecaster, SeasonalFallsBackToGlobalMeanOnUnvisitedSlots) {
  const auto f = make_forecaster(spec_of("seasonal:period-ms=4000,bins=4"), 1,
                                 nullptr, trace::ReplayOptions{});
  EXPECT_DOUBLE_EQ(f->forecast(0, 0.0, 1'000.0), 0.0);  // no data at all
  f->observe_bin(0, 0.0, 1'000.0, 6.0);  // only slot 0 visited
  // Slot 2 was never seen: predict the global mean rather than zero.
  EXPECT_DOUBLE_EQ(f->forecast(0, 2'000.0, 1'000.0), 6.0);
}

TEST(ForecastService, ScoresClosedBinsWithMaeAndSmape) {
  ForecastService svc(spec_of("last-bin;bin-ms=1000"), 1, nullptr,
                      trace::ReplayOptions{});
  // Bin 0: three arrivals against a cold (0) prediction.
  svc.on_arrival(0, 100.0);
  svc.on_arrival(0, 200.0);
  svc.on_arrival(0, 300.0);
  // Bin 1: one arrival against a last-bin prediction of 3.
  svc.on_arrival(0, 1'500.0);
  // Rolling past bin 1 closes it.
  svc.on_arrival(0, 2'500.0);
  const AppAccuracy acc = svc.accuracy(0);
  EXPECT_EQ(acc.bins, 2u);
  EXPECT_DOUBLE_EQ(acc.mae, (3.0 + 2.0) / 2.0);
  // sMAPE: bin 0 = 2*3/(0+3) = 2 (worst case), bin 1 = 2*2/(3+1) = 1.
  EXPECT_DOUBLE_EQ(acc.smape, (2.0 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(acc.predicted_mean, (0.0 + 3.0) / 2.0);
  EXPECT_DOUBLE_EQ(acc.realized_mean, (3.0 + 1.0) / 2.0);
}

TEST(ForecastService, QuietBinsScoreAsPerfectCalls) {
  ForecastService svc(spec_of("ewma;bin-ms=1000"), 1, nullptr,
                      trace::ReplayOptions{});
  // Advance 5 bins with no arrivals: zero predicted vs zero realized.
  (void)svc.predicted_rate(0, 5'000.0, 0.0);
  const AppAccuracy acc = svc.accuracy(0);
  EXPECT_EQ(acc.bins, 5u);
  EXPECT_DOUBLE_EQ(acc.mae, 0.0);
  EXPECT_DOUBLE_EQ(acc.smape, 0.0);
}

TEST(ForecastService, SkippedBinsAreClosedInOrder) {
  ForecastService svc(spec_of("last-bin;bin-ms=1000"), 1, nullptr,
                      trace::ReplayOptions{});
  std::vector<TimeMs> fired;
  svc.set_bin_callback([&](TimeMs now) { fired.push_back(now); });
  svc.on_arrival(0, 0.0);
  svc.on_arrival(0, 5'500.0);  // the clock jumped over bins 0..4
  EXPECT_EQ(svc.accuracy(0).bins, 5u);
  // One callback per roll (not per closed bin), after predictions refresh.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired.front(), 5'500.0);
}

TEST(ForecastService, PredictedRateQueriesLeadMsAhead) {
  ForecastService svc(spec_of("oracle;bin-ms=1000"), 2, hand_trace(),
                      trace::ReplayOptions{});
  // Lead of one bin: standing at t=0 the oracle reads bin 1's 10/s.
  EXPECT_DOUBLE_EQ(svc.predicted_rate(0, 0.0, 1'000.0), 10.0);
  EXPECT_DOUBLE_EQ(svc.predicted_rate(0, 0.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(svc.predicted_total_rate(0.0, 0.0), 7.0);  // 5 + 2
}

TEST(ForecastService, CountsIssuedAndConsumedForecasts) {
  ForecastService svc(spec_of("last-bin;bin-ms=1000"), 2, nullptr,
                      trace::ReplayOptions{});
  // Construction issues one prediction per app for the open bin.
  EXPECT_EQ(svc.counters().forecasts_issued, 2u);
  EXPECT_EQ(svc.counters().forecasts_consumed, 0u);
  (void)svc.predicted_rate(0, 0.0, 500.0);
  (void)svc.predicted_total_rate(0.0, 500.0);  // one consume, not per-app
  EXPECT_EQ(svc.counters().forecasts_consumed, 2u);
  // Rolling one bin forward refreshes both apps' open-bin predictions.
  (void)svc.predicted_rate(0, 1'000.0, 0.0);
  EXPECT_EQ(svc.counters().forecasts_issued, 4u);
}

TEST(ForecastService, BinCallbackMayQueryWithoutRecursing) {
  ForecastService svc(spec_of("ewma;bin-ms=1000"), 1, nullptr,
                      trace::ReplayOptions{});
  int calls = 0;
  svc.set_bin_callback([&](TimeMs now) {
    ++calls;
    // Re-entrant query at the same instant: served from the fresh
    // predictions without re-rolling (no infinite recursion, no recount).
    (void)svc.predicted_rate(0, now, 500.0);
  });
  svc.on_arrival(0, 100.0);
  svc.on_arrival(0, 1'200.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(svc.accuracy(0).bins, 1u);
}

TEST(ForecastService, InertSpecIsRejected) {
  EXPECT_THROW(
      ForecastService(ForecastSpec{}, 1, nullptr, trace::ReplayOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace esg::forecast
