// End-to-end forecast wiring through exp::run_scenario: enabling a
// predictor keeps runs deterministic (same seed, bit-identical outputs —
// including the proactive prewarm path it drives), the inert spec changes
// nothing, and the accuracy/counters surface is populated exactly when a
// forecaster ran.
#include <gtest/gtest.h>

#include <stdexcept>

#include "elastic/elastic_spec.hpp"
#include "exp/scenario.hpp"
#include "forecast/forecast_spec.hpp"
#include "perf/counters.hpp"

namespace esg::exp {
namespace {

Scenario forecast_scenario(const char* spec) {
  Scenario s;
  s.scheduler = SchedulerKind::kEsg;
  s.load = workload::LoadSetting::kLight;
  s.slo = workload::SloSetting::kRelaxed;
  s.horizon_ms = 4'000.0;
  s.seed = 11;
  s.forecast = forecast::parse_forecast_spec(spec);
  return s;
}

TEST(ForecastRun, EnabledForecasterKeepsRunsDeterministic) {
  const Scenario s = forecast_scenario("ewma:alpha=0.5;lead-ms=1000,bin-ms=500");
  const RunOutput a = run_scenario(s);
  const RunOutput b = run_scenario(s);
  EXPECT_EQ(a.metrics.requests(), b.metrics.requests());
  EXPECT_EQ(a.metrics.total_cost, b.metrics.total_cost);
  EXPECT_EQ(a.metrics.cold_starts, b.metrics.cold_starts);
  for (const perf::CounterField& f : perf::kCounterFields) {
    EXPECT_EQ(a.counters.*f.member, b.counters.*f.member) << f.name;
  }
  // The forecaster actually ran and was consulted by its consumers.
  EXPECT_GT(a.counters.forecasts_issued, 0u);
  EXPECT_GT(a.counters.forecasts_consumed, 0u);
}

TEST(ForecastRun, AccuracyIsReportedPerApp) {
  const RunOutput out =
      run_scenario(forecast_scenario("last-bin;bin-ms=500"));
  ASSERT_FALSE(out.forecast_accuracy.empty());
  bool any_scored = false;
  for (const auto& acc : out.forecast_accuracy) {
    if (acc.bins == 0) continue;
    any_scored = true;
    EXPECT_GE(acc.mae, 0.0);
    EXPECT_GE(acc.smape, 0.0);
    EXPECT_LE(acc.smape, 2.0);  // sMAPE is bounded by construction
    EXPECT_GE(acc.realized_mean, 0.0);
  }
  EXPECT_TRUE(any_scored);  // a 4 s run closes many 500 ms bins
}

TEST(ForecastRun, InertSpecIsInvisible) {
  // "none" must run the exact legacy path: identical metrics and counters
  // to a scenario that never mentions forecasting, and no accuracy rows.
  Scenario off = forecast_scenario("none");
  Scenario unset = off;
  unset.forecast = forecast::ForecastSpec{};
  const RunOutput a = run_scenario(off);
  const RunOutput b = run_scenario(unset);
  EXPECT_EQ(a.metrics.total_cost, b.metrics.total_cost);
  EXPECT_EQ(a.metrics.requests(), b.metrics.requests());
  for (const perf::CounterField& f : perf::kCounterFields) {
    EXPECT_EQ(a.counters.*f.member, b.counters.*f.member) << f.name;
  }
  EXPECT_EQ(a.counters.forecasts_issued, 0u);
  EXPECT_EQ(a.counters.forecasts_consumed, 0u);
  EXPECT_TRUE(a.forecast_accuracy.empty());
}

TEST(ForecastRun, ElasticForecastPolicyNeedsAForecaster) {
  Scenario s = forecast_scenario("none");
  s.elastic = elastic::parse_elastic_spec("forecast");
  EXPECT_THROW(run_scenario(s), std::invalid_argument);
  s.forecast = forecast::parse_forecast_spec("ewma;lead-ms=1000");
  const RunOutput out = run_scenario(s);  // with a forecaster it runs fine
  EXPECT_GT(out.counters.forecasts_consumed, 0u);
}

TEST(ForecastRun, ProactivePrewarmAccountingStaysCoherent) {
  const RunOutput out =
      run_scenario(forecast_scenario("ewma:alpha=0.7;lead-ms=500,bin-ms=250"));
  // Proactive warming flows through the shared issued/skipped accounting;
  // both counters are plumbed into the merged RunOutput view.
  EXPECT_GT(out.counters.prewarms_issued + out.counters.prewarms_skipped, 0u);
}

}  // namespace
}  // namespace esg::exp
