// Property-style invariants over randomised end-to-end runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exp/scenario.hpp"

namespace esg::exp {
namespace {

struct Combo {
  SchedulerKind kind;
  workload::LoadSetting load;
  std::uint64_t seed;
};

class RandomRuns : public ::testing::TestWithParam<Combo> {};

Scenario scenario_of(const Combo& combo) {
  Scenario s;
  s.scheduler = combo.kind;
  s.load = combo.load;
  s.slo = workload::SloSetting::kModerate;
  s.horizon_ms = 3'000.0;
  s.seed = combo.seed;
  s.aquatope.bootstrap_samples = 15;
  s.aquatope.rounds = 4;
  s.aquatope.ei_pool = 32;
  return s;
}

TEST_P(RandomRuns, ConservationAndSanity) {
  const Scenario s = scenario_of(GetParam());
  const RunOutput out = run_scenario(s);
  const auto& m = out.metrics;

  // Every injected request completed exactly once.
  std::set<std::uint32_t> request_ids;
  for (const auto& rec : m.completions) {
    EXPECT_TRUE(request_ids.insert(rec.request.get()).second);
  }

  // Hit flags agree with latencies.
  for (const auto& rec : m.completions) {
    EXPECT_EQ(rec.hit, rec.latency_ms <= rec.slo_ms);
    EXPECT_NEAR(rec.latency_ms, rec.completion_ms - rec.arrival_ms, 1e-9);
  }

  // Cost decomposition: per-app costs sum to the total.
  Usd sum = 0.0;
  for (const auto& [app, cost] : m.cost_by_app) sum += cost;
  EXPECT_NEAR(sum, m.total_cost, 1e-9);

  // Start accounting: every task consumed a warm container; cold starts are
  // container-provisioning events and never exceed the task count by much
  // (one provisioning readies at least one task in practice).
  EXPECT_EQ(m.warm_starts, m.tasks);

  // Input locality accounting: one input record per job-stage. Each request
  // contributes one job per stage of its DAG, so records ≥ 3 per request.
  EXPECT_GE(m.local_inputs + m.remote_inputs, 3 * m.requests());
  EXPECT_EQ(m.local_inputs + m.remote_inputs, m.job_wait_ms.size());

  // Misses never exceed uses.
  EXPECT_LE(m.plan_misses, m.plan_uses);

  // Simulated time advanced beyond the injection horizon.
  EXPECT_GE(out.simulated_end_ms, 0.0);
  EXPECT_GT(m.requests(), 0u);
}

TEST_P(RandomRuns, SloHitRateWithinBounds) {
  const RunOutput out = run_scenario(scenario_of(GetParam()));
  const double rate = out.metrics.slo_hit_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  for (const auto& app : workload::builtin_applications()) {
    const double app_rate = out.metrics.slo_hit_rate(app.id());
    EXPECT_GE(app_rate, 0.0);
    EXPECT_LE(app_rate, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRuns,
    ::testing::Values(
        Combo{SchedulerKind::kEsg, workload::LoadSetting::kLight, 101},
        Combo{SchedulerKind::kEsg, workload::LoadSetting::kHeavy, 102},
        Combo{SchedulerKind::kInfless, workload::LoadSetting::kNormal, 103},
        Combo{SchedulerKind::kFastGshare, workload::LoadSetting::kLight, 104},
        Combo{SchedulerKind::kOrion, workload::LoadSetting::kNormal, 105},
        Combo{SchedulerKind::kAquatope, workload::LoadSetting::kLight, 106}),
    [](const auto& info) {
      std::string name(to_string(info.param.kind));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + std::string(workload::to_string(info.param.load)) +
             std::to_string(info.param.seed);
    });

TEST(Properties, OrionMissRateGrowsWithLoad) {
  // Table 4's qualitative claim: heavier load -> more pre-planned misses.
  auto miss_rate = [](workload::LoadSetting load) {
    Scenario s;
    s.scheduler = SchedulerKind::kOrion;
    s.load = load;
    s.slo = workload::SloSetting::kModerate;
    s.horizon_ms = 5'000.0;
    s.seed = 77;
    return run_scenario(s).metrics.config_miss_rate();
  };
  const double light = miss_rate(workload::LoadSetting::kLight);
  const double heavy = miss_rate(workload::LoadSetting::kHeavy);
  EXPECT_LE(light, heavy + 0.15);  // allow sampling slack, but no inversion
}

TEST(Properties, EsgNeverUsesPreplannedConfigs) {
  Scenario s;
  s.scheduler = SchedulerKind::kEsg;
  s.load = workload::LoadSetting::kLight;
  s.horizon_ms = 3'000.0;
  const RunOutput out = run_scenario(s);
  EXPECT_EQ(out.metrics.plan_uses, 0u);
  EXPECT_EQ(out.metrics.plan_misses, 0u);
}

TEST(Properties, PrewarmReducesColdStarts) {
  auto cold_starts = [](bool prewarm) {
    Scenario s;
    s.scheduler = SchedulerKind::kEsg;
    s.load = workload::LoadSetting::kNormal;
    s.horizon_ms = 5'000.0;
    s.seed = 31;
    s.controller.enable_prewarm = prewarm;
    return run_scenario(s).metrics.cold_starts;
  };
  EXPECT_LE(cold_starts(true), cold_starts(false));
}

TEST(Properties, HeavierLoadCostsMore) {
  auto cost = [](workload::LoadSetting load) {
    Scenario s;
    s.scheduler = SchedulerKind::kEsg;
    s.load = load;
    s.horizon_ms = 4'000.0;
    s.seed = 53;
    return run_scenario(s).metrics.total_cost;
  };
  EXPECT_GT(cost(workload::LoadSetting::kHeavy),
            cost(workload::LoadSetting::kLight));
}

}  // namespace
}  // namespace esg::exp
