#include <gtest/gtest.h>

#include "exp/scenario.hpp"

namespace esg::exp {
namespace {

Scenario small_scenario(SchedulerKind kind) {
  Scenario s;
  s.scheduler = kind;
  s.load = workload::LoadSetting::kLight;
  s.slo = workload::SloSetting::kRelaxed;
  s.horizon_ms = 4'000.0;
  s.seed = 11;
  // Keep Aquatope's offline phase small in tests.
  s.aquatope.bootstrap_samples = 20;
  s.aquatope.rounds = 5;
  s.aquatope.ei_pool = 32;
  return s;
}

class EveryScheduler : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(EveryScheduler, CompletesEveryRequest) {
  const RunOutput out = run_scenario(small_scenario(GetParam()));
  EXPECT_GT(out.metrics.requests(), 30u);  // ~75 arrivals in 4 s light load
  EXPECT_GT(out.metrics.total_cost, 0.0);
  EXPECT_GT(out.metrics.tasks, out.metrics.requests());  // multi-stage apps
  for (const auto& rec : out.metrics.completions) {
    EXPECT_GT(rec.latency_ms, 0.0);
    EXPECT_GE(rec.completion_ms, rec.arrival_ms);
    EXPECT_GT(rec.slo_ms, 0.0);
  }
}

TEST_P(EveryScheduler, DeterministicReplay) {
  const Scenario s = small_scenario(GetParam());
  const RunOutput a = run_scenario(s);
  const RunOutput b = run_scenario(s);
  ASSERT_EQ(a.metrics.requests(), b.metrics.requests());
  EXPECT_EQ(a.metrics.total_cost, b.metrics.total_cost);
  EXPECT_EQ(a.metrics.tasks, b.metrics.tasks);
  EXPECT_EQ(a.metrics.cold_starts, b.metrics.cold_starts);
  for (std::size_t i = 0; i < a.metrics.completions.size(); ++i) {
    EXPECT_EQ(a.metrics.completions[i].latency_ms,
              b.metrics.completions[i].latency_ms);
  }
  EXPECT_EQ(a.simulated_end_ms, b.simulated_end_ms);
}

TEST_P(EveryScheduler, DifferentSeedsDiverge) {
  Scenario s1 = small_scenario(GetParam());
  Scenario s2 = s1;
  s2.seed = 12;
  const RunOutput a = run_scenario(s1);
  const RunOutput b = run_scenario(s2);
  EXPECT_NE(a.metrics.total_cost, b.metrics.total_cost);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, EveryScheduler,
                         ::testing::ValuesIn(std::vector<SchedulerKind>(
                             all_schedulers().begin(), all_schedulers().end())),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "FaST-GShare"
                                      ? std::string("FaSTGShare")
                                      : std::string(to_string(info.param));
                         });

TEST(Harness, ParallelReplicasMatchSequentialRuns) {
  const Scenario base = small_scenario(SchedulerKind::kEsg);
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const auto parallel = run_replicas(base, seeds, 3);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    Scenario s = base;
    s.seed = seeds[i];
    const RunOutput solo = run_scenario(s);
    EXPECT_EQ(parallel[i].metrics.total_cost, solo.metrics.total_cost);
    EXPECT_EQ(parallel[i].metrics.requests(), solo.metrics.requests());
  }
}

TEST(Harness, AggregateAveragesAcrossReplicas) {
  const Scenario base = small_scenario(SchedulerKind::kEsg);
  const std::vector<std::uint64_t> seeds = {5, 6};
  const auto outputs = run_replicas(base, seeds, 2);
  const Aggregate agg = aggregate(outputs);
  EXPECT_NEAR(agg.slo_hit_rate,
              (outputs[0].metrics.slo_hit_rate() +
               outputs[1].metrics.slo_hit_rate()) /
                  2.0,
              1e-12);
  EXPECT_NEAR(agg.total_cost,
              (outputs[0].metrics.total_cost + outputs[1].metrics.total_cost) /
                  2.0,
              1e-12);
  EXPECT_GT(agg.requests, 0u);
}

TEST(Harness, PaperCombosAreThree) {
  ASSERT_EQ(paper_combos().size(), 3u);
  EXPECT_EQ(combo_name(paper_combos()[0]), "strict-light");
  EXPECT_EQ(combo_name(paper_combos()[1]), "moderate-normal");
  EXPECT_EQ(combo_name(paper_combos()[2]), "relaxed-heavy");
}

TEST(Harness, SchedulerNamesRoundTrip) {
  EXPECT_EQ(to_string(SchedulerKind::kEsg), "ESG");
  EXPECT_EQ(to_string(SchedulerKind::kInfless), "INFless");
  EXPECT_EQ(to_string(SchedulerKind::kFastGshare), "FaST-GShare");
  EXPECT_EQ(to_string(SchedulerKind::kOrion), "Orion");
  EXPECT_EQ(to_string(SchedulerKind::kAquatope), "Aquatope");
  EXPECT_EQ(all_schedulers().size(), 5u);
}

}  // namespace
}  // namespace esg::exp
