// Calendar-queue engine tests (DESIGN.md §15): raw CalendarQueue ordering
// and resize behavior, plus Simulator-level heap/calendar equivalence —
// equal-timestamp FIFO stability, cancel-after-fire on bucket boundaries,
// horizon-exclusive firing, and a randomized cross-engine lockstep check.
#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace esg::sim {
namespace {

CalendarItem item(TimeMs when, std::uint64_t seq) {
  return CalendarItem{when, seq, [] {}};
}

TEST(CalendarQueue, PopsInWhenOrder) {
  CalendarQueue q;
  q.push(item(5.0, 1));
  q.push(item(1.0, 2));
  q.push(item(9.0, 3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop_min().when, 1.0);
  EXPECT_EQ(q.pop_min().when, 5.0);
  EXPECT_EQ(q.pop_min().when, 9.0);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EqualTimestampsPopInSeqOrder) {
  CalendarQueue q;
  // Push in scrambled seq order at one timestamp: FIFO must be by seq, not
  // by insertion position inside the bucket.
  q.push(item(3.0, 4));
  q.push(item(3.0, 1));
  q.push(item(3.0, 3));
  q.push(item(3.0, 2));
  for (std::uint64_t expected = 1; expected <= 4; ++expected) {
    EXPECT_EQ(q.pop_min().seq, expected);
  }
}

TEST(CalendarQueue, PeekMatchesPopAndSurvivesLargerPush) {
  CalendarQueue q;
  q.push(item(7.0, 1));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->when, 7.0);
  q.push(item(9.0, 2));  // larger: cached min must stay 7.0
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->when, 7.0);
  q.push(item(2.0, 3));  // smaller: cached min must move
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->when, 2.0);
  EXPECT_EQ(q.pop_min().when, 2.0);
}

TEST(CalendarQueue, GrowsAndShrinksAcrossLoadSwings) {
  CalendarQueue q;
  const std::size_t initial_buckets = q.bucket_count();
  std::uint64_t seq = 1;
  for (int i = 0; i < 4096; ++i) {
    q.push(item(static_cast<TimeMs>(i) * 0.37, seq++));
  }
  EXPECT_GT(q.bucket_count(), initial_buckets);
  TimeMs last = -1.0;
  while (q.size() > 8) {
    const CalendarItem popped = q.pop_min();
    EXPECT_GE(popped.when, last);
    last = popped.when;
  }
  EXPECT_LT(q.bucket_count(), 4096u);
}

TEST(CalendarQueue, OrderSurvivesWidthSkew) {
  // Mix sub-width clusters with far-future outliers so items share buckets
  // across different laps; order must still be exact.
  CalendarQueue q;
  std::vector<TimeMs> whens = {0.001, 1000.0, 0.002, 5'000'000.0,
                               17.0,  17.0,   16.99, 250'000.0};
  for (std::size_t i = 0; i < whens.size(); ++i) {
    q.push(item(whens[i], i + 1));
  }
  std::vector<TimeMs> sorted = whens;
  std::sort(sorted.begin(), sorted.end());
  for (const TimeMs expected : sorted) {
    EXPECT_EQ(q.pop_min().when, expected);
  }
}

// -- Simulator-level cross-engine behavior ---------------------------------

TEST(CalendarEngine, EngineNamesRoundTrip) {
  EXPECT_STREQ(engine_name(EngineKind::kHeap), "heap");
  EXPECT_STREQ(engine_name(EngineKind::kCalendar), "calendar");
  EXPECT_EQ(parse_engine("heap"), EngineKind::kHeap);
  EXPECT_EQ(parse_engine("calendar"), EngineKind::kCalendar);
  EXPECT_FALSE(parse_engine("splay").has_value());
  EXPECT_EQ(Simulator{}.engine(), EngineKind::kCalendar);
}

TEST(CalendarEngine, EqualTimestampFifoStability) {
  Simulator sim(EngineKind::kCalendar);
  std::vector<int> order;
  // Many ties at one instant, interleaved with other instants, scheduled in
  // shuffled time order: ties must fire in scheduling order.
  sim.schedule_in(2.0, [&] { order.push_back(20); });
  sim.schedule_in(1.0, [&] { order.push_back(10); });
  sim.schedule_in(2.0, [&] { order.push_back(21); });
  sim.schedule_in(1.0, [&] { order.push_back(11); });
  sim.schedule_in(2.0, [&] { order.push_back(22); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(CalendarEngine, CancelAfterFireOnBucketBoundary) {
  // The cancelled event sits exactly on a day boundary (width starts at
  // 1 ms, so integer times are boundaries); cancelling it after an earlier
  // same-bucket event fired must not disturb later firing or counters.
  Simulator sim(EngineKind::kCalendar);
  std::vector<int> order;
  EventHandle doomed = sim.schedule_at(4.0, [&] { order.push_back(99); });
  sim.schedule_at(3.0, [&] {
    order.push_back(1);
    sim.cancel(doomed);
  });
  sim.schedule_at(4.0, [&] { order.push_back(2); });
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  const std::size_t fired = sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(sim.counters().events_cancelled, 1u);
  // Cancelling again after the queue drained stays a no-op.
  sim.cancel(doomed);
  EXPECT_EQ(sim.counters().events_cancelled, 1u);
  EXPECT_TRUE(sim.empty());
}

TEST(CalendarEngine, RunUntilIsHorizonExclusiveForLaterEvents) {
  Simulator sim(EngineKind::kCalendar);
  std::vector<TimeMs> fired;
  sim.schedule_at(10.0, [&] { fired.push_back(10.0); });
  sim.schedule_at(20.0, [&] { fired.push_back(20.0); });
  sim.schedule_at(20.5, [&] { fired.push_back(20.5); });
  sim.run_until(20.0);
  // Events at exactly the deadline fire; strictly later ones stay queued.
  EXPECT_EQ(fired, (std::vector<TimeMs>{10.0, 20.0}));
  EXPECT_EQ(sim.now(), 20.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired.back(), 20.5);
}

TEST(CalendarEngine, ScheduleEarlierAfterCancelledDeadlineDrop) {
  // run_until may drop a cancelled entry that lies past the deadline; a
  // later schedule below that dropped time must still fire first (the
  // cur_day_ lower-bound invariant).
  Simulator sim(EngineKind::kCalendar);
  std::vector<int> order;
  EventHandle doomed = sim.schedule_at(100.0, [&] { order.push_back(99); });
  sim.cancel(doomed);
  sim.run_until(50.0);  // drops the cancelled 100.0 entry past the deadline
  sim.schedule_at(60.0, [&] { order.push_back(1); });
  sim.schedule_at(70.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 70.0);
}

/// Drives both engines in lockstep through a randomized schedule/cancel/
/// run_until workload and asserts identical firing logs, clocks, and
/// counters. The workload self-schedules from handlers so ties, cancels of
/// fired events, and bucket-boundary times all occur organically.
TEST(CalendarEngine, RandomizedHeapEquivalence) {
  for (std::uint64_t round = 0; round < 20; ++round) {
    std::mt19937_64 heap_rng(900 + round);
    std::mt19937_64 cal_rng(900 + round);

    const auto drive = [](Simulator& sim, std::mt19937_64& rng) {
      std::vector<std::string> log;
      std::vector<EventHandle> handles;
      std::uniform_real_distribution<double> delay(0.0, 8.0);
      std::uniform_int_distribution<int> action(0, 9);
      // Quantize half the delays to integers so bucket boundaries and exact
      // ties are common rather than measure-zero.
      const auto next_delay = [&] {
        const double d = delay(rng);
        return (action(rng) < 5) ? static_cast<TimeMs>(static_cast<int>(d))
                                 : static_cast<TimeMs>(d);
      };
      std::function<void(int)> spawn = [&](int depth) {
        if (depth > 64) return;
        const int what = action(rng);
        const TimeMs d = next_delay();
        if (what < 6) {
          handles.push_back(sim.schedule_in(d, [&log, &sim, &spawn, depth] {
            log.push_back("fire@" + std::to_string(sim.now()));
            spawn(depth + 1);
          }));
        } else if (what < 8 && !handles.empty()) {
          std::uniform_int_distribution<std::size_t> pick(0,
                                                          handles.size() - 1);
          sim.cancel(handles[pick(rng)]);
          log.push_back("cancel");
        } else {
          handles.push_back(sim.schedule_in(d, [&log, &sim] {
            log.push_back("leaf@" + std::to_string(sim.now()));
          }));
        }
      };
      for (int i = 0; i < 40; ++i) spawn(0);
      sim.run_until(10.0);
      for (int i = 0; i < 10; ++i) spawn(0);
      sim.run();
      return log;
    };

    Simulator heap_sim(EngineKind::kHeap);
    Simulator cal_sim(EngineKind::kCalendar);
    const auto heap_log = drive(heap_sim, heap_rng);
    const auto cal_log = drive(cal_sim, cal_rng);

    ASSERT_EQ(heap_log, cal_log) << "round " << round;
    EXPECT_EQ(heap_sim.now(), cal_sim.now());
    EXPECT_EQ(heap_sim.counters().events_fired,
              cal_sim.counters().events_fired);
    EXPECT_EQ(heap_sim.counters().events_scheduled,
              cal_sim.counters().events_scheduled);
    EXPECT_EQ(heap_sim.counters().events_cancelled,
              cal_sim.counters().events_cancelled);
    EXPECT_EQ(heap_sim.counters().heap_pushes, cal_sim.counters().heap_pushes);
    EXPECT_EQ(heap_sim.counters().heap_pops, cal_sim.counters().heap_pops);
    EXPECT_EQ(heap_sim.pending(), cal_sim.pending());
  }
}

}  // namespace
}  // namespace esg::sim
