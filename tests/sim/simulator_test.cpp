#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace esg::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(5.0, [&] { order.push_back(2); });
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(9.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 9.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(3.0, [&] { order.push_back(1); });
  sim.schedule_in(3.0, [&] { order.push_back(2); });
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<TimeMs> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeMs>{1.0, 3.0}));
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsPastAbsoluteTime) {
  Simulator sim;
  sim.schedule_in(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsEmptyAction) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(1.0, Simulator::Action{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_in(1.0, [&] { fired = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringIsNoop) {
  Simulator sim;
  int count = 0;
  const EventHandle h = sim.schedule_in(1.0, [&] { ++count; });
  sim.run();
  sim.cancel(h);  // already fired
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DoubleCancelIsNoop) {
  Simulator sim;
  const EventHandle h = sim.schedule_in(1.0, [] {});
  sim.cancel(h);
  sim.cancel(h);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, InvalidHandleCancelIsNoop) {
  Simulator sim;
  sim.cancel(EventHandle{});
  sim.schedule_in(1.0, [] {});
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(i, [] {});
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<TimeMs> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_in(t, [&, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<TimeMs>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  const EventHandle h = sim.schedule_in(1.0, [] {});
  bool fired = false;
  sim.schedule_in(2.0, [&] { fired = true; });
  sim.cancel(h);
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_in(1.0, [&] { ++count; });
  sim.schedule_in(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  const EventHandle h = sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelAfterFiringKeepsPendingConsistent) {
  // Regression: cancelling a fired handle used to record a cancellation with
  // no heap entry, so pending() undercounted (and underflowed on empty).
  Simulator sim;
  const EventHandle h = sim.schedule_in(1.0, [] {});
  sim.run();
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
  bool fired = false;
  sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(fired);
}

TEST(Simulator, DoubleCancelKeepsPendingConsistent) {
  Simulator sim;
  const EventHandle h = sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  sim.cancel(h);
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, SameTimestampTieBreakSurvivesCancellations) {
  // Five events at the same instant; cancelling the 2nd and 4th must leave
  // the rest firing in insertion order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 1; i <= 5; ++i) {
    handles.push_back(sim.schedule_in(3.0, [&order, i] { order.push_back(i); }));
  }
  sim.cancel(handles[1]);
  sim.cancel(handles[3]);
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(Simulator, HandlerCancelsLaterSameTimestampEvent) {
  // A handler firing at time t cancels a sibling also scheduled at t: the
  // sibling must not fire, and insertion order holds for the survivors.
  Simulator sim;
  std::vector<int> order;
  EventHandle second;
  sim.schedule_in(3.0, [&] {
    order.push_back(1);
    sim.cancel(second);
  });
  second = sim.schedule_in(3.0, [&] { order.push_back(2); });
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, HandlerCancelsEarlierFiredSibling) {
  // Cancelling a same-timestamp sibling that already fired is a no-op and
  // must not disturb pending() for the remaining events.
  Simulator sim;
  std::vector<int> order;
  EventHandle first = sim.schedule_in(3.0, [&] { order.push_back(1); });
  sim.schedule_in(3.0, [&] {
    order.push_back(2);
    sim.cancel(first);  // already fired this timestamp
  });
  sim.schedule_in(4.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ZeroDelaySelfScheduleTerminates) {
  // A handler scheduling at now() must not starve later events forever when
  // it stops rescheduling.
  Simulator sim;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 10) sim.schedule_in(0.0, recur);
  };
  sim.schedule_in(0.0, recur);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_EQ(sim.now(), 0.0);
}

}  // namespace
}  // namespace esg::sim
