file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/astar_test.cpp.o"
  "CMakeFiles/test_core.dir/core/astar_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dominator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dominator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/esg_1q_test.cpp.o"
  "CMakeFiles/test_core.dir/core/esg_1q_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/esg_scheduler_test.cpp.o"
  "CMakeFiles/test_core.dir/core/esg_scheduler_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/search_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/search_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/slo_distribution_test.cpp.o"
  "CMakeFiles/test_core.dir/core/slo_distribution_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
