
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/aquatope_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/aquatope_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/aquatope_test.cpp.o.d"
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/baselines/gp_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/gp_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/gp_test.cpp.o.d"
  "/root/repo/tests/baselines/orion_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/orion_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/orion_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/esg_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/esg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/esg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/esg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/prewarm/CMakeFiles/esg_prewarm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/esg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/esg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/esg_exp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
