file(REMOVE_RECURSE
  "CMakeFiles/test_prewarm.dir/prewarm/prewarm_test.cpp.o"
  "CMakeFiles/test_prewarm.dir/prewarm/prewarm_test.cpp.o.d"
  "test_prewarm"
  "test_prewarm.pdb"
  "test_prewarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prewarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
