# Empty dependencies file for test_prewarm.
# This may be replaced when dependencies are built.
