
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/astar_reference.cpp" "src/core/CMakeFiles/esg_core.dir/astar_reference.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/astar_reference.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/esg_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/dominator.cpp" "src/core/CMakeFiles/esg_core.dir/dominator.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/dominator.cpp.o.d"
  "/root/repo/src/core/esg_1q.cpp" "src/core/CMakeFiles/esg_core.dir/esg_1q.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/esg_1q.cpp.o.d"
  "/root/repo/src/core/esg_scheduler.cpp" "src/core/CMakeFiles/esg_core.dir/esg_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/esg_scheduler.cpp.o.d"
  "/root/repo/src/core/slo_distribution.cpp" "src/core/CMakeFiles/esg_core.dir/slo_distribution.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/slo_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/esg_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/esg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/esg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/esg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/prewarm/CMakeFiles/esg_prewarm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/esg_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
