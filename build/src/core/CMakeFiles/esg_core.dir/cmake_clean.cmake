file(REMOVE_RECURSE
  "CMakeFiles/esg_core.dir/astar_reference.cpp.o"
  "CMakeFiles/esg_core.dir/astar_reference.cpp.o.d"
  "CMakeFiles/esg_core.dir/brute_force.cpp.o"
  "CMakeFiles/esg_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/esg_core.dir/dominator.cpp.o"
  "CMakeFiles/esg_core.dir/dominator.cpp.o.d"
  "CMakeFiles/esg_core.dir/esg_1q.cpp.o"
  "CMakeFiles/esg_core.dir/esg_1q.cpp.o.d"
  "CMakeFiles/esg_core.dir/esg_scheduler.cpp.o"
  "CMakeFiles/esg_core.dir/esg_scheduler.cpp.o.d"
  "CMakeFiles/esg_core.dir/slo_distribution.cpp.o"
  "CMakeFiles/esg_core.dir/slo_distribution.cpp.o.d"
  "libesg_core.a"
  "libesg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
