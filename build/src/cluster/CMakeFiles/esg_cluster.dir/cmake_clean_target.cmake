file(REMOVE_RECURSE
  "libesg_cluster.a"
)
