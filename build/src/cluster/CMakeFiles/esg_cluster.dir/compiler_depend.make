# Empty compiler generated dependencies file for esg_cluster.
# This may be replaced when dependencies are built.
