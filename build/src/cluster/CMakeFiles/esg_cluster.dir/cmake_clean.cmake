file(REMOVE_RECURSE
  "CMakeFiles/esg_cluster.dir/cluster.cpp.o"
  "CMakeFiles/esg_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/esg_cluster.dir/invoker.cpp.o"
  "CMakeFiles/esg_cluster.dir/invoker.cpp.o.d"
  "libesg_cluster.a"
  "libesg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
