# Empty compiler generated dependencies file for esg_profile.
# This may be replaced when dependencies are built.
