file(REMOVE_RECURSE
  "CMakeFiles/esg_profile.dir/config.cpp.o"
  "CMakeFiles/esg_profile.dir/config.cpp.o.d"
  "CMakeFiles/esg_profile.dir/function_spec.cpp.o"
  "CMakeFiles/esg_profile.dir/function_spec.cpp.o.d"
  "CMakeFiles/esg_profile.dir/perf_model.cpp.o"
  "CMakeFiles/esg_profile.dir/perf_model.cpp.o.d"
  "CMakeFiles/esg_profile.dir/profile_table.cpp.o"
  "CMakeFiles/esg_profile.dir/profile_table.cpp.o.d"
  "libesg_profile.a"
  "libesg_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
