file(REMOVE_RECURSE
  "libesg_profile.a"
)
