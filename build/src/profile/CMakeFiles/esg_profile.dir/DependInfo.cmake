
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/config.cpp" "src/profile/CMakeFiles/esg_profile.dir/config.cpp.o" "gcc" "src/profile/CMakeFiles/esg_profile.dir/config.cpp.o.d"
  "/root/repo/src/profile/function_spec.cpp" "src/profile/CMakeFiles/esg_profile.dir/function_spec.cpp.o" "gcc" "src/profile/CMakeFiles/esg_profile.dir/function_spec.cpp.o.d"
  "/root/repo/src/profile/perf_model.cpp" "src/profile/CMakeFiles/esg_profile.dir/perf_model.cpp.o" "gcc" "src/profile/CMakeFiles/esg_profile.dir/perf_model.cpp.o.d"
  "/root/repo/src/profile/profile_table.cpp" "src/profile/CMakeFiles/esg_profile.dir/profile_table.cpp.o" "gcc" "src/profile/CMakeFiles/esg_profile.dir/profile_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
