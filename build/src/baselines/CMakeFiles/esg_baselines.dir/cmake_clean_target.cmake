file(REMOVE_RECURSE
  "libesg_baselines.a"
)
