
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aquatope.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/aquatope.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/aquatope.cpp.o.d"
  "/root/repo/src/baselines/bo/gaussian_process.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/bo/gaussian_process.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/bo/gaussian_process.cpp.o.d"
  "/root/repo/src/baselines/fast_gshare.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/fast_gshare.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/fast_gshare.cpp.o.d"
  "/root/repo/src/baselines/infless.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/infless.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/infless.cpp.o.d"
  "/root/repo/src/baselines/orion.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/orion.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/orion.cpp.o.d"
  "/root/repo/src/baselines/service_time_split.cpp" "src/baselines/CMakeFiles/esg_baselines.dir/service_time_split.cpp.o" "gcc" "src/baselines/CMakeFiles/esg_baselines.dir/service_time_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/esg_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/esg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/esg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/esg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/prewarm/CMakeFiles/esg_prewarm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/esg_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
