# Empty dependencies file for esg_baselines.
# This may be replaced when dependencies are built.
