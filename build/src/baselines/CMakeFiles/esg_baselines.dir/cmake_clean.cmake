file(REMOVE_RECURSE
  "CMakeFiles/esg_baselines.dir/aquatope.cpp.o"
  "CMakeFiles/esg_baselines.dir/aquatope.cpp.o.d"
  "CMakeFiles/esg_baselines.dir/bo/gaussian_process.cpp.o"
  "CMakeFiles/esg_baselines.dir/bo/gaussian_process.cpp.o.d"
  "CMakeFiles/esg_baselines.dir/fast_gshare.cpp.o"
  "CMakeFiles/esg_baselines.dir/fast_gshare.cpp.o.d"
  "CMakeFiles/esg_baselines.dir/infless.cpp.o"
  "CMakeFiles/esg_baselines.dir/infless.cpp.o.d"
  "CMakeFiles/esg_baselines.dir/orion.cpp.o"
  "CMakeFiles/esg_baselines.dir/orion.cpp.o.d"
  "CMakeFiles/esg_baselines.dir/service_time_split.cpp.o"
  "CMakeFiles/esg_baselines.dir/service_time_split.cpp.o.d"
  "libesg_baselines.a"
  "libesg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
