file(REMOVE_RECURSE
  "CMakeFiles/esg_platform.dir/controller.cpp.o"
  "CMakeFiles/esg_platform.dir/controller.cpp.o.d"
  "CMakeFiles/esg_platform.dir/scheduler.cpp.o"
  "CMakeFiles/esg_platform.dir/scheduler.cpp.o.d"
  "libesg_platform.a"
  "libesg_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
