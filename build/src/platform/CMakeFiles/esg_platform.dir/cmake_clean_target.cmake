file(REMOVE_RECURSE
  "libesg_platform.a"
)
