# Empty dependencies file for esg_platform.
# This may be replaced when dependencies are built.
