file(REMOVE_RECURSE
  "libesg_exp.a"
)
