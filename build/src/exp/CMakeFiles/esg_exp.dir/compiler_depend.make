# Empty compiler generated dependencies file for esg_exp.
# This may be replaced when dependencies are built.
