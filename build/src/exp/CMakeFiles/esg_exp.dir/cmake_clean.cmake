file(REMOVE_RECURSE
  "CMakeFiles/esg_exp.dir/cli.cpp.o"
  "CMakeFiles/esg_exp.dir/cli.cpp.o.d"
  "CMakeFiles/esg_exp.dir/scenario.cpp.o"
  "CMakeFiles/esg_exp.dir/scenario.cpp.o.d"
  "libesg_exp.a"
  "libesg_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
