file(REMOVE_RECURSE
  "CMakeFiles/esg_sim.dir/simulator.cpp.o"
  "CMakeFiles/esg_sim.dir/simulator.cpp.o.d"
  "libesg_sim.a"
  "libesg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
