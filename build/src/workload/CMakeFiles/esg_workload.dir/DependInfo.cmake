
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/applications.cpp" "src/workload/CMakeFiles/esg_workload.dir/applications.cpp.o" "gcc" "src/workload/CMakeFiles/esg_workload.dir/applications.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/esg_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/esg_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/bursty_arrivals.cpp" "src/workload/CMakeFiles/esg_workload.dir/bursty_arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/esg_workload.dir/bursty_arrivals.cpp.o.d"
  "/root/repo/src/workload/dag.cpp" "src/workload/CMakeFiles/esg_workload.dir/dag.cpp.o" "gcc" "src/workload/CMakeFiles/esg_workload.dir/dag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/esg_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
