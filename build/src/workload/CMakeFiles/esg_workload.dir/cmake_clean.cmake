file(REMOVE_RECURSE
  "CMakeFiles/esg_workload.dir/applications.cpp.o"
  "CMakeFiles/esg_workload.dir/applications.cpp.o.d"
  "CMakeFiles/esg_workload.dir/arrivals.cpp.o"
  "CMakeFiles/esg_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/esg_workload.dir/bursty_arrivals.cpp.o"
  "CMakeFiles/esg_workload.dir/bursty_arrivals.cpp.o.d"
  "CMakeFiles/esg_workload.dir/dag.cpp.o"
  "CMakeFiles/esg_workload.dir/dag.cpp.o.d"
  "libesg_workload.a"
  "libesg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
