file(REMOVE_RECURSE
  "libesg_workload.a"
)
