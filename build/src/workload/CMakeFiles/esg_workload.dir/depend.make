# Empty dependencies file for esg_workload.
# This may be replaced when dependencies are built.
