file(REMOVE_RECURSE
  "CMakeFiles/esg_metrics.dir/export.cpp.o"
  "CMakeFiles/esg_metrics.dir/export.cpp.o.d"
  "CMakeFiles/esg_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/esg_metrics.dir/run_metrics.cpp.o.d"
  "libesg_metrics.a"
  "libesg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
