file(REMOVE_RECURSE
  "libesg_metrics.a"
)
