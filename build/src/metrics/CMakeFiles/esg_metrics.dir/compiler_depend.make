# Empty compiler generated dependencies file for esg_metrics.
# This may be replaced when dependencies are built.
