file(REMOVE_RECURSE
  "libesg_prewarm.a"
)
