file(REMOVE_RECURSE
  "CMakeFiles/esg_prewarm.dir/prewarm_manager.cpp.o"
  "CMakeFiles/esg_prewarm.dir/prewarm_manager.cpp.o.d"
  "libesg_prewarm.a"
  "libesg_prewarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_prewarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
