# Empty compiler generated dependencies file for esg_prewarm.
# This may be replaced when dependencies are built.
