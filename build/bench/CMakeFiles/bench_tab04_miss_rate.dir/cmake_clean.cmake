file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_miss_rate.dir/bench_util.cpp.o"
  "CMakeFiles/bench_tab04_miss_rate.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_tab04_miss_rate.dir/tab04_miss_rate.cpp.o"
  "CMakeFiles/bench_tab04_miss_rate.dir/tab04_miss_rate.cpp.o.d"
  "bench_tab04_miss_rate"
  "bench_tab04_miss_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_miss_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
