# Empty dependencies file for bench_tab04_miss_rate.
# This may be replaced when dependencies are built.
