file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_group_size.dir/bench_util.cpp.o"
  "CMakeFiles/bench_sec54_group_size.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_sec54_group_size.dir/sec54_group_size.cpp.o"
  "CMakeFiles/bench_sec54_group_size.dir/sec54_group_size.cpp.o.d"
  "bench_sec54_group_size"
  "bench_sec54_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
