# Empty compiler generated dependencies file for bench_sec54_group_size.
# This may be replaced when dependencies are built.
