file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_arrivals.dir/fig05_arrivals.cpp.o"
  "CMakeFiles/bench_fig05_arrivals.dir/fig05_arrivals.cpp.o.d"
  "bench_fig05_arrivals"
  "bench_fig05_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
