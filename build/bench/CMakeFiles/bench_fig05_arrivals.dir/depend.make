# Empty dependencies file for bench_fig05_arrivals.
# This may be replaced when dependencies are built.
