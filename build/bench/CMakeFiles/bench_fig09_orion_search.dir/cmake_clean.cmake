file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_orion_search.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig09_orion_search.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig09_orion_search.dir/fig09_orion_search.cpp.o"
  "CMakeFiles/bench_fig09_orion_search.dir/fig09_orion_search.cpp.o.d"
  "bench_fig09_orion_search"
  "bench_fig09_orion_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_orion_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
