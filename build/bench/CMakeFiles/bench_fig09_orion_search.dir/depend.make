# Empty dependencies file for bench_fig09_orion_search.
# This may be replaced when dependencies are built.
