file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_k_sensitivity.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig11_k_sensitivity.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig11_k_sensitivity.dir/fig11_k_sensitivity.cpp.o"
  "CMakeFiles/bench_fig11_k_sensitivity.dir/fig11_k_sensitivity.cpp.o.d"
  "bench_fig11_k_sensitivity"
  "bench_fig11_k_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_k_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
