# Empty dependencies file for bench_fig11_k_sensitivity.
# This may be replaced when dependencies are built.
