file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_per_app.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig08_per_app.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig08_per_app.dir/fig08_per_app.cpp.o"
  "CMakeFiles/bench_fig08_per_app.dir/fig08_per_app.cpp.o.d"
  "bench_fig08_per_app"
  "bench_fig08_per_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_per_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
