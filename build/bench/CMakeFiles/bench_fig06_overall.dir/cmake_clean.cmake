file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_overall.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig06_overall.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig06_overall.dir/fig06_overall.cpp.o"
  "CMakeFiles/bench_fig06_overall.dir/fig06_overall.cpp.o.d"
  "bench_fig06_overall"
  "bench_fig06_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
