# Empty compiler generated dependencies file for bursty_workload.
# This may be replaced when dependencies are built.
