file(REMOVE_RECURSE
  "CMakeFiles/bursty_workload.dir/bursty_workload.cpp.o"
  "CMakeFiles/bursty_workload.dir/bursty_workload.cpp.o.d"
  "bursty_workload"
  "bursty_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
