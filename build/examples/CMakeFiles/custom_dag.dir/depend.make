# Empty dependencies file for custom_dag.
# This may be replaced when dependencies are built.
