# Empty dependencies file for pipeline_comparison.
# This may be replaced when dependencies are built.
