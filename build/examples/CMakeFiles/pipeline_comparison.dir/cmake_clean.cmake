file(REMOVE_RECURSE
  "CMakeFiles/pipeline_comparison.dir/pipeline_comparison.cpp.o"
  "CMakeFiles/pipeline_comparison.dir/pipeline_comparison.cpp.o.d"
  "pipeline_comparison"
  "pipeline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
