# Empty compiler generated dependencies file for esg_sim_cli.
# This may be replaced when dependencies are built.
