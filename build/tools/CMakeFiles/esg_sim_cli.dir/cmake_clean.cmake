file(REMOVE_RECURSE
  "CMakeFiles/esg_sim_cli.dir/esg_sim.cpp.o"
  "CMakeFiles/esg_sim_cli.dir/esg_sim.cpp.o.d"
  "esg_sim"
  "esg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
