// Minimal Gaussian-process regression with an RBF kernel, enough to drive
// the Bayesian-optimisation scheduler (Aquatope). Dense Cholesky-based
// implementation; training sets in this repo stay in the hundreds of points.
#pragma once

#include <cstddef>
#include <vector>

namespace esg::baselines::bo {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix
/// (row-major, n x n). Throws std::invalid_argument if not SPD.
[[nodiscard]] std::vector<double> cholesky(const std::vector<double>& a,
                                           std::size_t n);

/// Solves L y = b (forward) then L^T x = y (backward); returns x.
[[nodiscard]] std::vector<double> cholesky_solve(const std::vector<double>& l,
                                                 std::size_t n,
                                                 const std::vector<double>& b);

struct GpHyperparams {
  double length_scale = 0.3;   ///< RBF length scale (inputs normalised to [0,1])
  double signal_variance = 1.0;
  double noise_variance = 0.01;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpHyperparams hp = {}) : hp_(hp) {}

  /// Fits on inputs X (row-major, n x d) and targets y (internally
  /// standardised). Replaces any previous fit.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;  ///< predictive variance (>= 0)
  };

  [[nodiscard]] Prediction predict(const std::vector<double>& x) const;

  /// Expected improvement of minimising below `best_y` at `x`.
  [[nodiscard]] double expected_improvement(const std::vector<double>& x,
                                            double best_y) const;

  [[nodiscard]] bool fitted() const { return !x_.empty(); }

 private:
  GpHyperparams hp_;
  std::vector<std::vector<double>> x_;
  std::vector<double> alpha_;  // K^{-1} (y - mean)
  std::vector<double> chol_;   // Cholesky factor of K
  double y_mean_ = 0.0;
  double y_std_ = 1.0;

  [[nodiscard]] double kernel(const std::vector<double>& a,
                              const std::vector<double>& b) const;
};

}  // namespace esg::baselines::bo
