#include "baselines/bo/gaussian_process.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace esg::baselines::bo {

std::vector<double> cholesky(const std::vector<double>& a, std::size_t n) {
  if (a.size() != n * n) throw std::invalid_argument("cholesky: bad dimensions");
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0.0) {
          throw std::invalid_argument("cholesky: matrix not positive definite");
        }
        l[i * n + j] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                   const std::vector<double>& b) {
  if (l.size() != n * n || b.size() != n) {
    throw std::invalid_argument("cholesky_solve: bad dimensions");
  }
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * y[k];
    y[i] = sum / l[i * n + i];
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
  return x;
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return hp_.signal_variance *
         std::exp(-sq / (2.0 * hp_.length_scale * hp_.length_scale));
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("GaussianProcess::fit: bad training data");
  }
  const std::size_t n = x.size();
  x_ = x;

  // Standardise the targets for numerical stability.
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 1.0;
  if (y_std_ <= 1e-12) y_std_ = 1.0;

  std::vector<double> k(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(x_[i], x_[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += hp_.noise_variance;
  }
  chol_ = cholesky(k, n);

  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) target[i] = (y[i] - y_mean_) / y_std_;
  alpha_ = cholesky_solve(chol_, n, target);
}

GaussianProcess::Prediction GaussianProcess::predict(
    const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("GaussianProcess::predict before fit");
  const std::size_t n = x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, x_[i]);

  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];

  // Predictive variance: k(x,x) - k*^T K^{-1} k*.
  const std::vector<double> v = cholesky_solve(chol_, n, kstar);
  double reduction = 0.0;
  for (std::size_t i = 0; i < n; ++i) reduction += kstar[i] * v[i];
  const double variance =
      std::max(0.0, kernel(x, x) + hp_.noise_variance - reduction);

  return Prediction{y_mean_ + y_std_ * mean, y_std_ * y_std_ * variance};
}

double GaussianProcess::expected_improvement(const std::vector<double>& x,
                                             double best_y) const {
  const Prediction p = predict(x);
  const double sigma = std::sqrt(p.variance);
  if (sigma < 1e-12) return std::max(0.0, best_y - p.mean);
  const double z = (best_y - p.mean) / sigma;
  const double phi =
      std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
  const double cdf = 0.5 * std::erfc(-z / std::numbers::sqrt2);
  return (best_y - p.mean) * cdf + sigma * phi;
}

}  // namespace esg::baselines::bo
