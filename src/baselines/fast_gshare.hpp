// FaST-GShare baseline (Gu et al. 2023) as characterised in Section 4.2:
// enumeration-based configuration selection driven by throughput-per-
// resource metrics over the statically split SLO, with node selection that
// minimises GPU fragmentation. It spends as little GPU as the static slice
// allows — which is why the paper observes it "always yields the largest
// latency" with frequent SLO strikes when early stages are delayed.
#pragma once

#include <unordered_map>

#include "baselines/service_time_split.hpp"
#include "platform/scheduler.hpp"

namespace esg::baselines {

class FastGshareScheduler : public platform::Scheduler {
 public:
  struct Options {
    std::size_t candidates = 3;
    double defer_safety = 0.5;
  };

  FastGshareScheduler(const std::vector<workload::AppDag>& apps,
                      const profile::ProfileSet& profiles, Options options);
  FastGshareScheduler(const std::vector<workload::AppDag>& apps,
                      const profile::ProfileSet& profiles)
      : FastGshareScheduler(apps, profiles, Options{}) {}

  [[nodiscard]] std::string_view name() const override { return "FaST-GShare"; }

  platform::PlanResult plan(const platform::QueueView& view) override;

  /// Minimises GPU fragmentation: tightest vGPU fit wins, vCPUs break ties.
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  [[nodiscard]] bool prefers_locality() const override { return false; }

 private:
  Options options_;
  std::unordered_map<AppId, ServiceTimeSplit> splits_;
};

}  // namespace esg::baselines
