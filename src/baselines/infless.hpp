// INFless baseline (Yang et al., ASPLOS'22) as characterised in Section 4.2:
// per-function configuration enumeration with no inter-function awareness —
// the end-to-end SLO is split statically by average service time — and a
// resource-efficiency node-selection metric that packs work to minimise
// fragmentation and maximise throughput. The enumeration picks the
// highest-throughput configuration that fits the static per-stage slice,
// which yields the paper's observed behaviour: low per-stage latencies at
// the highest resource cost.
#pragma once

#include <unordered_map>

#include "baselines/service_time_split.hpp"
#include "platform/scheduler.hpp"

namespace esg::baselines {

class InflessScheduler : public platform::Scheduler {
 public:
  struct Options {
    std::size_t candidates = 3;  ///< configurations offered per plan
    double defer_safety = 0.5;   ///< batching wait, same policy as ESG's
  };

  InflessScheduler(const std::vector<workload::AppDag>& apps,
                   const profile::ProfileSet& profiles, Options options);
  InflessScheduler(const std::vector<workload::AppDag>& apps,
                   const profile::ProfileSet& profiles)
      : InflessScheduler(apps, profiles, Options{}) {}

  [[nodiscard]] std::string_view name() const override { return "INFless"; }

  platform::PlanResult plan(const platform::QueueView& view) override;

  /// Best-fit: the invoker with the least free capacity that still fits —
  /// INFless's anti-fragmentation packing.
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  [[nodiscard]] bool prefers_locality() const override { return false; }

 private:
  Options options_;
  std::unordered_map<AppId, ServiceTimeSplit> splits_;
};

}  // namespace esg::baselines
