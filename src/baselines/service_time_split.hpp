// Static SLO distribution by average service time, following GrandSLAm [36]:
// each function receives a share of the end-to-end SLO proportional to its
// mean profiled latency. The paper applies this split to INFless and
// FaST-GShare, which "provide no method for distributing an application's
// SLO to its functions" (Section 4.2). Unlike ESG's distribution it is never
// re-normalised at runtime — late stages do not learn about early delays.
#pragma once

#include <vector>

#include "profile/profile_table.hpp"
#include "workload/dag.hpp"

namespace esg::baselines {

class ServiceTimeSplit {
 public:
  ServiceTimeSplit(const workload::AppDag& dag,
                   const profile::ProfileSet& profiles);

  /// Share of the end-to-end SLO owned by `node` (mean-latency weighted;
  /// shares along any root-to-sink path sum to <= 1, parallel branches
  /// weighted by their own latency).
  [[nodiscard]] double node_fraction(workload::NodeIndex node) const {
    return fraction_.at(node);
  }

 private:
  std::vector<double> fraction_;
};

}  // namespace esg::baselines
