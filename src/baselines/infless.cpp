#include "baselines/infless.hpp"

#include <algorithm>
#include <limits>

namespace esg::baselines {

InflessScheduler::InflessScheduler(const std::vector<workload::AppDag>& apps,
                                   const profile::ProfileSet& profiles,
                                   Options options)
    : options_(options) {
  for (const auto& app : apps) {
    splits_.emplace(app.id(), ServiceTimeSplit(app, profiles));
  }
}

platform::PlanResult InflessScheduler::plan(const platform::QueueView& view) {
  platform::PlanResult plan;
  const auto& split = splits_.at(view.app);
  // Static slice: no renormalisation against the elapsed time (the defining
  // limitation the paper calls out). Only the local queueing delay is
  // subtracted — the stage knows how long its own jobs waited.
  const TimeMs slice = std::max(
      1.0, view.slo_ms * split.node_fraction(view.stage) - view.head_wait_ms);

  const auto& table = view.profiles->table(view.function);

  // Enumerate: among configurations meeting the slice, rank by throughput
  // (jobs per second) — INFless's efficiency metric favours big batches on
  // many vGPU slices.
  std::vector<const profile::ProfileEntry*> fitting;
  for (const auto& e : table.entries()) {
    if (e.latency_ms <= slice) fitting.push_back(&e);
  }
  auto by_throughput = [](const profile::ProfileEntry* a,
                          const profile::ProfileEntry* b) {
    const double ta = static_cast<double>(a->config.batch) / a->latency_ms;
    const double tb = static_cast<double>(b->config.batch) / b->latency_ms;
    if (ta != tb) return ta > tb;
    return a->latency_ms < b->latency_ms;
  };
  std::sort(fitting.begin(), fitting.end(), by_throughput);

  if (fitting.empty()) {
    // Nothing meets the slice: fall back to INFless's own metric without
    // the latency constraint — the highest-throughput configuration that
    // the queue can fill (racing the absolute fastest config would hog
    // vCPUs for a job that misses its slice regardless).
    std::vector<const profile::ProfileEntry*> all;
    for (const auto& e : table.entries()) {
      if (e.config.batch <= view.queue_length) all.push_back(&e);
    }
    std::sort(all.begin(), all.end(), by_throughput);
    for (const auto* e : all) {
      plan.candidates.push_back(e->config);
      if (plan.candidates.size() >= options_.candidates) break;
    }
    if (plan.candidates.empty()) plan.candidates.push_back(profile::kMinConfig);
    return plan;
  }

  const std::uint16_t desired = fitting.front()->config.batch;
  if (desired > view.queue_length) {
    const TimeMs slack = std::max(0.0, slice - fitting.front()->latency_ms);
    if (view.head_wait_ms < options_.defer_safety * slack) {
      plan.defer = true;
      return plan;
    }
  }

  for (const auto* e : fitting) {
    if (e->config.batch > view.queue_length) continue;
    if (std::find(plan.candidates.begin(), plan.candidates.end(), e->config) ==
        plan.candidates.end()) {
      plan.candidates.push_back(e->config);
      if (plan.candidates.size() >= options_.candidates) break;
    }
  }
  return plan;
}

std::optional<InvokerId> InflessScheduler::place(
    const platform::PlacementContext& ctx, const cluster::Cluster& cluster) {
  // Best-fit packing: tightest node that still fits, minimising leftover
  // fragments (vGPUs weighted as the scarce resource).
  std::optional<InvokerId> best;
  int best_score = std::numeric_limits<int>::max();
  for (const auto& inv : cluster.invokers()) {
    if (!inv.can_fit(ctx.config.vcpus, ctx.config.vgpus)) continue;
    const int leftover = (inv.free_vgpus() - ctx.config.vgpus) * 64 +
                         (inv.free_vcpus() - ctx.config.vcpus);
    if (leftover < best_score) {
      best_score = leftover;
      best = inv.id();
    }
  }
  return best;
}

}  // namespace esg::baselines
