// Aquatope baseline (Zhou et al., ASPLOS'23) as characterised in Section 4.2:
// Bayesian-optimisation scheduling trained offline. The training profiles the
// application in noisy sample executions — 100 bootstrap samples then 50
// rounds of 5 GP/expected-improvement-selected configurations — and learns
// one statically deployed configuration vector per application. Deployment
// never adapts: the configuration misses of Table 4 follow directly.
#pragma once

#include <unordered_map>

#include "common/rng.hpp"
#include "platform/scheduler.hpp"
#include "workload/applications.hpp"

namespace esg::baselines {

class AquatopeScheduler : public platform::Scheduler {
 public:
  struct Options {
    std::size_t bootstrap_samples = 100;  ///< initial random profilings
    std::size_t rounds = 50;              ///< BO rounds
    std::size_t samples_per_round = 5;    ///< configurations per round
    std::size_t ei_pool = 128;            ///< EI candidates scored per round
    double penalty = 10.0;                ///< SLO-violation penalty weight
    double train_noise_cv = 0.06;         ///< profiling-run noise
  };

  /// Trains in the constructor (the offline phase). The SLO setting is part
  /// of the deployment contract, exactly as the paper trains per scenario.
  AquatopeScheduler(const std::vector<workload::AppDag>& apps,
                    const profile::ProfileSet& profiles,
                    workload::SloSetting slo_setting, const RngFactory& rng,
                    Options options);
  AquatopeScheduler(const std::vector<workload::AppDag>& apps,
                    const profile::ProfileSet& profiles,
                    workload::SloSetting slo_setting, const RngFactory& rng)
      : AquatopeScheduler(apps, profiles, slo_setting, rng, Options{}) {}

  [[nodiscard]] std::string_view name() const override { return "Aquatope"; }

  platform::PlanResult plan(const platform::QueueView& view) override;
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  /// The learned configuration vector (tests / reporting).
  [[nodiscard]] const std::vector<profile::Config>& learned(AppId app) const;

 private:
  Options options_;
  std::unordered_map<AppId, std::vector<profile::Config>> learned_;
  double defer_safety_ = 0.5;
  std::unordered_map<AppId, TimeMs> planned_latency_;

  void train(const workload::AppDag& app, const profile::ProfileSet& profiles,
             TimeMs slo_ms, RngStream rng);
};

}  // namespace esg::baselines
