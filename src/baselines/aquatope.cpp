#include "baselines/aquatope.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "baselines/bo/gaussian_process.hpp"
#include "common/check.hpp"

namespace esg::baselines {

namespace {

/// One candidate: a profile entry per stage, plus its normalised encoding.
struct Candidate {
  std::vector<const profile::ProfileEntry*> entries;
  std::vector<double> x;  ///< 3 dims per stage, each in [0, 1]
};

struct EncodingScale {
  double max_batch = 1.0;
  double max_vcpus = 1.0;
  double max_vgpus = 1.0;
};

std::vector<double> encode(const std::vector<const profile::ProfileEntry*>& es,
                           const EncodingScale& scale) {
  std::vector<double> x;
  x.reserve(es.size() * 3);
  for (const auto* e : es) {
    x.push_back(e->config.batch / scale.max_batch);
    x.push_back(e->config.vcpus / scale.max_vcpus);
    x.push_back(e->config.vgpus / scale.max_vgpus);
  }
  return x;
}

}  // namespace

AquatopeScheduler::AquatopeScheduler(const std::vector<workload::AppDag>& apps,
                                     const profile::ProfileSet& profiles,
                                     workload::SloSetting slo_setting,
                                     const RngFactory& rng, Options options)
    : options_(options) {
  for (const auto& app : apps) {
    const TimeMs slo = workload::slo_latency_ms(app, profiles, slo_setting);
    train(app, profiles, slo, rng.stream("aquatope-train", app.id().get()));
  }
}

void AquatopeScheduler::train(const workload::AppDag& app,
                              const profile::ProfileSet& profiles,
                              TimeMs slo_ms, RngStream rng) {
  const std::size_t stages = app.size();
  std::vector<const profile::ProfileTable*> tables;
  tables.reserve(stages);
  EncodingScale scale;
  Usd cost_scale = 0.0;
  for (workload::NodeIndex s = 0; s < stages; ++s) {
    const auto& t = profiles.table(app.node(s).function);
    tables.push_back(&t);
    for (const auto& e : t.entries()) {
      scale.max_batch = std::max<double>(scale.max_batch, e.config.batch);
      scale.max_vcpus = std::max<double>(scale.max_vcpus, e.config.vcpus);
      scale.max_vgpus = std::max<double>(scale.max_vgpus, e.config.vgpus);
    }
    cost_scale += t.min_per_job_cost();
  }
  check(cost_scale > 0.0, "Aquatope: zero cost scale");

  auto random_candidate = [&]() {
    Candidate c;
    c.entries.reserve(stages);
    for (const auto* t : tables) {
      const auto entries = t->entries();
      c.entries.push_back(&entries[rng.below(entries.size())]);
    }
    c.x = encode(c.entries, scale);
    return c;
  };

  // One noisy profiling run of a candidate (the offline sample execution).
  auto profile_once = [&](const Candidate& c) {
    TimeMs e2e = 0.0;
    Usd cost = 0.0;
    for (const auto* e : c.entries) {
      const double noise =
          std::max(0.3, rng.gaussian(1.0, options_.train_noise_cv));
      e2e += e->latency_ms * noise;
      cost += e->per_job_cost;
    }
    const double violation = std::max(0.0, (e2e - slo_ms) / slo_ms);
    return cost / cost_scale + options_.penalty * violation;
  };

  std::vector<Candidate> observed;
  std::vector<double> y;

  for (std::size_t i = 0; i < options_.bootstrap_samples; ++i) {
    observed.push_back(random_candidate());
    y.push_back(profile_once(observed.back()));
  }

  bo::GaussianProcess gp;
  for (std::size_t round = 0; round < options_.rounds; ++round) {
    std::vector<std::vector<double>> xs;
    xs.reserve(observed.size());
    for (const auto& c : observed) xs.push_back(c.x);
    gp.fit(xs, y);

    const double best_y = *std::min_element(y.begin(), y.end());

    // Score a random pool by expected improvement; evaluate the best few.
    std::vector<Candidate> pool;
    std::vector<double> ei;
    pool.reserve(options_.ei_pool);
    for (std::size_t i = 0; i < options_.ei_pool; ++i) {
      pool.push_back(random_candidate());
      ei.push_back(gp.expected_improvement(pool.back().x, best_y));
    }
    std::vector<std::size_t> order(pool.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ei[a] > ei[b]; });
    const std::size_t take = std::min(options_.samples_per_round, pool.size());
    for (std::size_t i = 0; i < take; ++i) {
      observed.push_back(std::move(pool[order[i]]));
      y.push_back(profile_once(observed.back()));
    }
  }

  // Deploy the best observed configuration.
  const std::size_t best =
      static_cast<std::size_t>(std::min_element(y.begin(), y.end()) - y.begin());
  std::vector<profile::Config> configs;
  TimeMs expected_latency = 0.0;
  configs.reserve(stages);
  for (const auto* e : observed[best].entries) {
    configs.push_back(e->config);
    expected_latency += e->latency_ms;
  }
  learned_[app.id()] = std::move(configs);
  planned_latency_[app.id()] = expected_latency;
}

const std::vector<profile::Config>& AquatopeScheduler::learned(AppId app) const {
  auto it = learned_.find(app);
  if (it == learned_.end()) {
    throw std::out_of_range("AquatopeScheduler: unknown app");
  }
  return it->second;
}

platform::PlanResult AquatopeScheduler::plan(const platform::QueueView& view) {
  platform::PlanResult result;
  const auto& configs = learned(view.app);
  const profile::Config planned = configs.at(view.stage);

  if (view.stage == view.dag->entry()) {
    if (planned.batch > view.queue_length) {
      const TimeMs slack =
          std::max(0.0, view.slo_ms - planned_latency_.at(view.app));
      if (view.head_wait_ms < defer_safety_ * slack) {
        result.defer = true;
        return result;
      }
    }
    result.candidates.push_back(planned);
    return result;  // negligible runtime overhead: the model is pre-trained
  }

  result.used_preplanned = true;
  result.preplanned_miss = planned.batch > view.queue_length;
  result.candidates.push_back(planned);  // controller clamps the batch
  return result;
}

std::optional<InvokerId> AquatopeScheduler::place(
    const platform::PlacementContext& ctx, const cluster::Cluster& cluster) {
  // Section 4.2: all schedulers share the data-locality placement; only the
  // configuration algorithm differs.
  return platform::locality_first_place(ctx, cluster);
}

}  // namespace esg::baselines
