#include "baselines/orion.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "common/check.hpp"

namespace esg::baselines {

namespace {

/// Per-stage option axes: the distinct batch/vCPU/vGPU values present in the
/// stage's profile, ascending. A lattice point maps back to a Config.
struct StageAxes {
  std::vector<std::uint16_t> batches;
  std::vector<std::uint16_t> vcpus;
  std::vector<std::uint16_t> vgpus;
  const profile::ProfileTable* table = nullptr;
};

StageAxes make_axes(const profile::ProfileTable& table) {
  StageAxes axes;
  axes.table = &table;
  std::set<std::uint16_t> b, c, g;
  for (const auto& e : table.entries()) {
    b.insert(e.config.batch);
    c.insert(e.config.vcpus);
    g.insert(e.config.vgpus);
  }
  axes.batches.assign(b.begin(), b.end());
  axes.vcpus.assign(c.begin(), c.end());
  axes.vgpus.assign(g.begin(), g.end());
  return axes;
}

struct LatticeState {
  // Per stage: indices into (batches, vcpus, vgpus).
  std::vector<std::array<std::uint8_t, 3>> idx;

  /// Packs the whole state into 4 bits per index (every axis in this repo
  /// has < 16 options and workflows have <= 5 stages: 60 bits).
  [[nodiscard]] std::uint64_t key() const {
    std::uint64_t k = 0;
    for (const auto& stage : idx) {
      for (int d = 0; d < 3; ++d) k = (k << 4) | (stage[d] & 0xf);
    }
    return k;
  }
};

}  // namespace

OrionScheduler::OrionScheduler(const std::vector<workload::AppDag>& apps,
                               const profile::ProfileSet& profiles,
                               Options options)
    : options_(options) {
  (void)profiles;
  for (const auto& app : apps) plans_.emplace(app.id(), AppPlan{});
}

void OrionScheduler::search(const platform::QueueView& view, AppPlan& plan) {
  // Orion re-plans per cohort, but its search is oblivious to the dynamic
  // system state (that rigidity is exactly what Table 4 measures), so the
  // result is identical every time: replay the memoised plan and charge the
  // same overhead rather than recomputing.
  if (plan.have_plan) {
    plan.needs_refresh = false;
    total_expansions_ += plan.search_expansions;
    return;
  }

  const auto& dag = *view.dag;
  const std::size_t stages = dag.size();

  std::vector<StageAxes> axes;
  axes.reserve(stages);
  for (workload::NodeIndex s = 0; s < stages; ++s) {
    axes.push_back(make_axes(view.profiles->table(dag.node(s).function)));
  }

  // Evaluates a lattice state; invalid states (config filtered from the
  // profile, e.g. more vGPUs than batch) return no value.
  auto evaluate = [&](const LatticeState& st)
      -> std::optional<std::pair<TimeMs, Usd>> {
    TimeMs latency = 0.0;
    Usd cost = 0.0;
    for (std::size_t s = 0; s < stages; ++s) {
      const profile::Config c{axes[s].batches[st.idx[s][0]],
                              axes[s].vcpus[st.idx[s][1]],
                              axes[s].vgpus[st.idx[s][2]]};
      if (!axes[s].table->contains(c)) return std::nullopt;
      const auto& e = axes[s].table->at(c);
      latency += e.latency_ms;
      cost += e.per_job_cost;
    }
    return std::make_pair(latency * options_.p95_factor, cost);
  };

  struct QueueEntry {
    double f;  ///< latency-gap + cost-weighted priority
    Usd cost;
    TimeMs p95;
    LatticeState state;
    bool operator>(const QueueEntry& other) const { return f > other.f; }
  };

  // Best-first priority: close the P95 gap to the SLO first, cheaper states
  // tie-break ($1e-4 of per-job cost weighs like ~30 ms). With vGPUs and
  // batching in the lattice, pure cost ordering would drift into cheap
  // huge-batch states and away from the latency goal.
  const auto priority = [&](TimeMs p95, Usd cost) {
    return std::max(0.0, p95 - view.slo_ms) + cost * 3.0e5;
  };

  LatticeState start;
  start.idx.assign(stages, {0, 0, 0});

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;
  std::unordered_set<std::uint64_t> seen;
  {
    const auto eval = evaluate(start);
    check(eval.has_value(), "Orion: minimum state must be valid");
    open.push(QueueEntry{priority(eval->first, eval->second), eval->second,
                         eval->first, start});
    seen.insert(start.key());
  }

  std::size_t expanded = 0;
  LatticeState best_state = start;
  TimeMs best_gap = std::numeric_limits<TimeMs>::infinity();
  Usd best_feasible_cost = std::numeric_limits<Usd>::infinity();
  bool goal_found = false;

  while (!open.empty() && expanded < options_.max_expansions) {
    const QueueEntry cur = open.top();
    open.pop();
    ++expanded;

    if (cur.p95 <= view.slo_ms) {
      // Feasible: keep searching within the budget for a cheaper feasible
      // state (Orion minimises cost subject to the P95 goal — batching and
      // resource trimming pay off here, and those batched plans are what
      // later miss when queues run short, Table 4).
      if (cur.cost < best_feasible_cost) {
        best_feasible_cost = cur.cost;
        best_state = cur.state;
        goal_found = true;
      }
    } else if (!goal_found) {
      const TimeMs gap = cur.p95 - view.slo_ms;
      if (gap < best_gap) {
        best_gap = gap;
        best_state = cur.state;
      }
    }

    for (std::size_t s = 0; s < stages; ++s) {
      const std::array<std::size_t, 3> limits = {axes[s].batches.size(),
                                                 axes[s].vcpus.size(),
                                                 axes[s].vgpus.size()};
      for (int d = 0; d < 3; ++d) {
        if (cur.state.idx[s][d] + 1u >= limits[d]) continue;
        LatticeState next = cur.state;
        ++next.idx[s][d];
        if (!seen.insert(next.key()).second) continue;
        const auto eval = evaluate(next);
        if (!eval.has_value()) continue;
        open.push(QueueEntry{priority(eval->first, eval->second), eval->second,
                             eval->first, next});
      }
    }
  }
  // On cut-off without any feasible state, the closest-latency state is
  // used, as in the paper ("the configuration with the closest latency to
  // the SLO is returned").

  plan.configs.clear();
  plan.configs.reserve(stages);
  for (std::size_t s = 0; s < stages; ++s) {
    plan.configs.push_back(profile::Config{
        axes[s].batches[best_state.idx[s][0]],
        axes[s].vcpus[best_state.idx[s][1]],
        axes[s].vgpus[best_state.idx[s][2]]});
  }
  plan.have_plan = true;
  plan.needs_refresh = false;
  plan.search_expansions = expanded;
  plan.search_overhead_ms =
      options_.charge_search_time ? options_.overhead.overhead_ms(expanded) : 0.0;
  total_expansions_ += expanded;
}

platform::PlanResult OrionScheduler::plan(const platform::QueueView& view) {
  platform::PlanResult result;
  AppPlan& app_plan = plans_.at(view.app);

  if (view.stage == view.dag->entry()) {
    if (!app_plan.have_plan || app_plan.needs_refresh) {
      search(view, app_plan);
    }
    const profile::Config planned = app_plan.configs.at(view.stage);
    if (planned.batch > view.queue_length) {
      // Wait for the planned batch to form while slack allows.
      TimeMs planned_latency = 0.0;
      for (std::size_t s = 0; s < app_plan.configs.size(); ++s) {
        const auto& tbl = view.profiles->table(view.dag->node(s).function);
        if (tbl.contains(app_plan.configs[s])) {
          planned_latency += tbl.at(app_plan.configs[s]).latency_ms;
        }
      }
      const TimeMs slack = std::max(0.0, view.slo_ms - planned_latency);
      if (view.head_wait_ms < options_.defer_safety * slack) {
        result.defer = true;
        result.overhead_ms = app_plan.search_overhead_ms;
        return result;
      }
    }
    result.candidates.push_back(planned);
    result.overhead_ms = app_plan.search_overhead_ms;
    return result;
  }

  // Later stages: rigidly reuse the pre-planned configuration.
  if (app_plan.have_plan && view.stage < app_plan.configs.size()) {
    const profile::Config planned = app_plan.configs[view.stage];
    result.used_preplanned = true;
    result.preplanned_miss = planned.batch > view.queue_length;
    result.candidates.push_back(planned);  // controller clamps the batch
  } else {
    result.candidates.push_back(profile::kMinConfig);
  }
  return result;
}

std::optional<InvokerId> OrionScheduler::place(
    const platform::PlacementContext& ctx, const cluster::Cluster& cluster) {
  // Section 4.2: the comparison gives every scheduler the same data-locality
  // and pre-warming policy; only the configuration algorithm differs.
  const auto chosen = platform::locality_first_place(ctx, cluster);
  if (chosen.has_value() && ctx.stage == 0) {
    // The cohort is being dispatched: the next first-stage plan re-searches.
    plans_.at(ctx.app).needs_refresh = true;
  }
  return chosen;
}

}  // namespace esg::baselines
