#include "baselines/service_time_split.hpp"

namespace esg::baselines {

ServiceTimeSplit::ServiceTimeSplit(const workload::AppDag& dag,
                                   const profile::ProfileSet& profiles) {
  const std::size_t n = dag.size();
  std::vector<double> mean(n, 0.0);
  double total = 0.0;
  for (workload::NodeIndex i = 0; i < n; ++i) {
    const auto entries = profiles.table(dag.node(i).function).entries();
    double sum = 0.0;
    for (const auto& e : entries) sum += e.latency_ms;
    mean[i] = sum / static_cast<double>(entries.size());
    total += mean[i];
  }
  fraction_.resize(n);
  for (workload::NodeIndex i = 0; i < n; ++i) fraction_[i] = mean[i] / total;
}

}  // namespace esg::baselines
