#include "baselines/fast_gshare.hpp"

#include <algorithm>
#include <limits>

namespace esg::baselines {

FastGshareScheduler::FastGshareScheduler(
    const std::vector<workload::AppDag>& apps,
    const profile::ProfileSet& profiles, Options options)
    : options_(options) {
  for (const auto& app : apps) {
    splits_.emplace(app.id(), ServiceTimeSplit(app, profiles));
  }
}

platform::PlanResult FastGshareScheduler::plan(const platform::QueueView& view) {
  platform::PlanResult plan;
  const auto& split = splits_.at(view.app);
  const TimeMs slice = std::max(
      1.0, view.slo_ms * split.node_fraction(view.stage) - view.head_wait_ms);

  const auto& table = view.profiles->table(view.function);

  // Among configurations meeting the static slice, prefer the highest
  // throughput per resource dollar — FaST-GShare's spatio-temporal GPU
  // efficiency metric. This lands on frugal configurations that barely make
  // the slice.
  std::vector<const profile::ProfileEntry*> fitting;
  for (const auto& e : table.entries()) {
    if (e.latency_ms <= slice) fitting.push_back(&e);
  }
  std::sort(fitting.begin(), fitting.end(),
            [](const profile::ProfileEntry* a, const profile::ProfileEntry* b) {
              if (a->per_job_cost != b->per_job_cost) {
                return a->per_job_cost < b->per_job_cost;
              }
              return a->latency_ms < b->latency_ms;
            });

  if (fitting.empty()) {
    // Nothing meets the slice: stay true to the frugal metric and drain
    // with the cheapest per-job configurations the queue can fill.
    std::vector<const profile::ProfileEntry*> all;
    for (const auto& e : table.entries()) {
      if (e.config.batch <= view.queue_length) all.push_back(&e);
    }
    std::sort(all.begin(), all.end(),
              [](const profile::ProfileEntry* a, const profile::ProfileEntry* b) {
                if (a->per_job_cost != b->per_job_cost) {
                  return a->per_job_cost < b->per_job_cost;
                }
                return a->latency_ms < b->latency_ms;
              });
    for (const auto* e : all) {
      plan.candidates.push_back(e->config);
      if (plan.candidates.size() >= options_.candidates) break;
    }
    if (plan.candidates.empty()) plan.candidates.push_back(profile::kMinConfig);
    return plan;
  }

  const std::uint16_t desired = fitting.front()->config.batch;
  if (desired > view.queue_length) {
    const TimeMs slack = std::max(0.0, slice - fitting.front()->latency_ms);
    if (view.head_wait_ms < options_.defer_safety * slack) {
      plan.defer = true;
      return plan;
    }
  }

  for (const auto* e : fitting) {
    if (e->config.batch > view.queue_length) continue;
    if (std::find(plan.candidates.begin(), plan.candidates.end(), e->config) ==
        plan.candidates.end()) {
      plan.candidates.push_back(e->config);
      if (plan.candidates.size() >= options_.candidates) break;
    }
  }
  return plan;
}

std::optional<InvokerId> FastGshareScheduler::place(
    const platform::PlacementContext& ctx, const cluster::Cluster& cluster) {
  // GPU-fragmentation-minimising: choose the node whose free vGPU count,
  // after placement, is smallest (pack slices tightly); ignore locality.
  std::optional<InvokerId> best;
  int best_score = std::numeric_limits<int>::max();
  for (const auto& inv : cluster.invokers()) {
    if (!inv.can_fit(ctx.config.vcpus, ctx.config.vgpus)) continue;
    const int leftover_gpu = inv.free_vgpus() - ctx.config.vgpus;
    const int score = leftover_gpu * 64 + (inv.free_vcpus() - ctx.config.vcpus);
    if (score < best_score) {
      best_score = score;
      best = inv.id();
    }
  }
  return best;
}

}  // namespace esg::baselines
