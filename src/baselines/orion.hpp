// Orion baseline (Mahgoub et al., OSDI'22) extended with vGPUs as described
// in Section 4.2: best-first search over the joint per-stage configuration
// vector (batch, #vCPU, #vGPU per stage). The start state holds the minimum
// values for every stage; each expansion increments one dimension of one
// stage. The goal is a predicted P95 end-to-end latency within the SLO; the
// search returns the configuration with the closest latency when it exceeds
// its cut-off budget. The whole application is planned at the invocation of
// its first stage and never adapted afterwards — the source of the
// configuration misses in Table 4.
#pragma once

#include <unordered_map>

#include "core/esg_1q.hpp"  // OverheadModel
#include "platform/scheduler.hpp"

namespace esg::baselines {

class OrionScheduler : public platform::Scheduler {
 public:
  struct Options {
    /// Search cut-off in expanded states (~65 ms charged under the
    /// deterministic overhead model of 0.2 ms + 0.43 us/state, of the same
    /// order as the paper's 100 ms cut-off ~= 232k states; Figure 9 sweeps
    /// the full range).
    std::size_t max_expansions = 150'000;
    /// Whether the search latency is charged to the dispatched tasks
    /// (the "search time counted" curve of Figure 9).
    bool charge_search_time = true;
    /// Multiplier turning an expected latency into a predicted P95 (the
    /// paper's search goal) under the platform's Gaussian noise.
    double p95_factor = 1.12;
    core::OverheadModel overhead;
    double defer_safety = 0.5;
  };

  OrionScheduler(const std::vector<workload::AppDag>& apps,
                 const profile::ProfileSet& profiles, Options options);
  OrionScheduler(const std::vector<workload::AppDag>& apps,
                 const profile::ProfileSet& profiles)
      : OrionScheduler(apps, profiles, Options{}) {}

  [[nodiscard]] std::string_view name() const override { return "Orion"; }

  platform::PlanResult plan(const platform::QueueView& view) override;
  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  /// Cumulative states expanded across all searches (overhead analyses).
  [[nodiscard]] std::size_t total_expansions() const { return total_expansions_; }

 private:
  struct AppPlan {
    std::vector<profile::Config> configs;  // one per stage
    bool have_plan = false;
    bool needs_refresh = true;  ///< re-search at the next first-stage plan
    TimeMs search_overhead_ms = 0.0;
    std::size_t search_expansions = 0;
  };

  Options options_;
  std::unordered_map<AppId, AppPlan> plans_;
  std::size_t total_expansions_ = 0;

  /// Runs the best-first search for `view`'s whole application.
  void search(const platform::QueueView& view, AppPlan& plan);
};

}  // namespace esg::baselines
