// The scheduling-strategy interface. ESG and the four baselines implement
// this; the controller (and thus GPU sharing, batching, data locality and
// pre-warming) is identical for all of them, so experiments isolate the
// scheduling algorithm exactly as the paper does ("the only difference is
// the scheduling algorithm", Section 4.2).
//
// A strategy answers two questions:
//   plan():  which (batch, #vCPU, #vGPU) configurations should the jobs of
//            this AFW queue run with, in priority order (the configuration
//            priority queue of Section 3.1)?
//   place(): which invoker should host the chosen configuration?
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "profile/config.hpp"
#include "profile/profile_table.hpp"
#include "workload/dag.hpp"

namespace esg::platform {

/// Everything a strategy may inspect when planning one AFW queue.
struct QueueView {
  AppId app;
  workload::NodeIndex stage = 0;
  FunctionId function;
  const workload::AppDag* dag = nullptr;
  const profile::ProfileSet* profiles = nullptr;

  std::size_t queue_length = 0;     ///< jobs currently in the queue
  TimeMs head_wait_ms = 0.0;        ///< longest current queueing delay (w)
  TimeMs oldest_elapsed_ms = 0.0;   ///< max(now - request arrival) over queue
  TimeMs slo_ms = 0.0;              ///< end-to-end SLO latency of the app
  TimeMs now_ms = 0.0;
  /// Owning tenant of this queue (always 0 on single-tenant runs; only the
  /// fair-queueing strategies look at it).
  std::uint32_t tenant = 0;
  /// Forecast arrival rate of this queue's app (arrivals/second) over the
  /// next forecast window. Negative when no forecaster is attached —
  /// strategies must then behave exactly as before the forecast subsystem
  /// existed; 0 is a real prediction ("nothing is coming").
  double forecast_rate_per_s = -1.0;
};

struct PlanResult {
  /// Candidate configurations in decreasing priority; every batch must be
  /// <= queue_length. Empty + !defer means "nothing feasible" (the
  /// controller then falls back to the minimum configuration).
  std::vector<profile::Config> candidates;
  /// True to wait for more jobs to accumulate before dispatching.
  bool defer = false;
  /// Scheduling latency charged to the dispatch (deterministic model).
  TimeMs overhead_ms = 0.0;
  /// True when this dispatch consumed a configuration planned earlier
  /// (Orion/Aquatope); drives the Table 4 accounting.
  bool used_preplanned = false;
  /// True when the pre-planned configuration did not apply (batch larger
  /// than the queue) and had to be clamped.
  bool preplanned_miss = false;
  /// Renormalised latency budget this plan targeted for the remaining group
  /// stages (ESG's adaptive g_slo). 0 means the strategy plans no explicit
  /// budget; the controller traces non-zero values as kBudgetReplan instants
  /// for the SLO-attribution passes.
  TimeMs planned_budget_ms = 0.0;
};

/// Context for invoker selection.
struct PlacementContext {
  AppId app;
  workload::NodeIndex stage = 0;
  FunctionId function;
  profile::Config config;
  /// Invoker that produced most of this batch's inputs (invalid for entry).
  InvokerId predecessor_invoker;
  InvokerId home_invoker;
  /// Invoker a retried job must avoid (the one its last attempt failed on);
  /// invalid when the batch carries no retry. Strategies must not place
  /// here — the recovery policy assumes the node may still be unhealthy.
  InvokerId excluded_invoker;
  TimeMs now_ms = 0.0;
  /// Owning tenant of the dispatching queue (0 on single-tenant runs).
  std::uint32_t tenant = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Chooses configurations for the queue described by `view`.
  virtual PlanResult plan(const QueueView& view) = 0;

  /// Chooses an invoker able to fit ctx.config; std::nullopt if none fits.
  virtual std::optional<InvokerId> place(const PlacementContext& ctx,
                                         const cluster::Cluster& cluster) = 0;

  /// Notification of a new end-to-end request (plan-ahead schedulers hook
  /// this to fix per-stage configurations up front).
  virtual void on_request(RequestId request, AppId app, TimeMs now_ms) {
    (void)request;
    (void)app;
    (void)now_ms;
  }

  /// Notification that a task of (app, stage) failed and its jobs were
  /// re-enqueued. Strategies that adapt their noise margin or budgets under
  /// faults hook this; the default ignores it.
  virtual void on_stage_retry(AppId app, workload::NodeIndex stage,
                              TimeMs now_ms) {
    (void)app;
    (void)stage;
    (void)now_ms;
  }

  /// Per-DAG-node share of the end-to-end SLO this strategy plans with
  /// (index = NodeIndex; shares along any root-to-sink path sum to ~1).
  /// Empty means the strategy distributes no per-stage budgets — the
  /// attribution passes then fall back to a uniform split. ESG returns its
  /// dominator-based distribution (Section 3.3).
  [[nodiscard]] virtual std::vector<double> planned_stage_fractions(
      AppId app) const {
    (void)app;
    return {};
  }

  /// Whether warm-container selection should break ties towards the
  /// predecessor/home invoker (the paper's data-locality policy). INFless
  /// and FaST-GShare "do not follow the data locality policy but their
  /// resource fragmentation minimization policy" (Section 4.2).
  [[nodiscard]] virtual bool prefers_locality() const { return true; }
};

/// Shared fallback placement used by several strategies and by the
/// controller's forced-minimum dispatch: home/predecessor first, then any
/// warm invoker, then the cold invoker with the most free resources
/// (Section 3.4).
[[nodiscard]] std::optional<InvokerId> locality_first_place(
    const PlacementContext& ctx, const cluster::Cluster& cluster);

/// Simplest feasible placement: first invoker that fits (OpenWhisk-style
/// deterministic search from the home invoker).
[[nodiscard]] std::optional<InvokerId> first_fit_from_home(
    const PlacementContext& ctx, const cluster::Cluster& cluster);

}  // namespace esg::platform
