// The serverless controller: owns the AFW job queues, scans them round-robin,
// invokes the pluggable scheduling strategy, dispatches tasks to invokers and
// drives their lifecycle (cold start, input staging, execution, keep-alive),
// advances request DAGs, and collects metrics.
//
// This mirrors the OpenWhisk controller the paper builds on (Section 2) plus
// the paper's platform-level mechanisms shared by all schedulers
// (Section 4.2): GPU sharing, batching, data locality and pre-warming.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "elastic/elastic_manager.hpp"
#include "forecast/forecaster.hpp"
#include "fault/fault_engine.hpp"
#include "metrics/run_metrics.hpp"
#include "obs/recorder.hpp"
#include "perf/counters.hpp"
#include "platform/job.hpp"
#include "platform/scheduler.hpp"
#include "prewarm/prewarm_manager.hpp"
#include "profile/profile_table.hpp"
#include "sim/simulator.hpp"
#include "tenant/fair_queue.hpp"
#include "workload/applications.hpp"
#include "workload/arrivals.hpp"
#include "workload/dag.hpp"

namespace esg::platform {

struct ControllerOptions {
  TimeMs scan_interval_ms = 1.0;  ///< queue-scan cadence
  /// Coefficient of variation of the multiplicative Gaussian execution noise
  /// (Section 4: "the emulations add Gaussian noises to the performance").
  double noise_cv = 0.06;
  /// Rounds a queue may fail placement before the forced minimum-config
  /// dispatch (Section 3.1: "if a queue stays in the recheck list too long
  /// (e.g., 3 rounds), it will be dispatched with the minimum configuration").
  int recheck_rounds_before_min = 3;
  bool enable_prewarm = true;
  /// Ablation switches (Figure 12). With GPU sharing disabled every task
  /// occupies (and is billed for) the node's entire GPU; with batching
  /// disabled every task carries exactly one job.
  bool enable_gpu_sharing = true;
  bool enable_batching = true;
  TimeMs keep_alive_ms = cluster::kKeepAliveMs;
  /// Re-plan a queue whose length has not changed at most this often; in
  /// between, cached candidates are retried against the (changed) worker
  /// states, which is exactly the recheck-list behaviour of Section 3.1.
  TimeMs replan_interval_ms = 5.0;
  /// Safety valve: a queue deferring longer than this is dispatched anyway.
  TimeMs defer_cap_ms = 30'000.0;
  /// Measurement warm-up: requests arriving before this time are simulated
  /// normally but excluded from the completion/cost/start metrics, so
  /// experiments report steady-state behaviour rather than the initial
  /// cold-start wave (every scheduler shares the same warm-up).
  TimeMs metrics_warmup_ms = 0.0;
  /// Cold-start patience: if the chosen invoker has no warm container but
  /// the function is active somewhere (a container will free up soon), the
  /// dispatch waits up to `factor x cold_start` of queueing delay before
  /// paying the cold start. Spinning up a container that loads a model for
  /// tens of seconds to serve a sub-second job while an identical container
  /// is about to become idle is how keep-alive platforms melt down; real
  /// controllers queue on the warm fleet instead.
  double cold_patience_factor = 0.15;
  /// Structured-tracing handle (non-owning; nullptr or a recorder with no
  /// sinks disables all instrumentation at a single-branch cost). Spans and
  /// instants follow the metrics warm-up window so trace counts line up
  /// with the exported CSVs.
  obs::TraceRecorder* recorder = nullptr;
  /// Fault-injection engine (non-owning; nullptr = fault-free run, which
  /// keeps every legacy code path untouched — traces stay byte-identical).
  /// When set, the controller registers the crash/rejoin handlers, installs
  /// the engine on the simulator, and tracks every task in flight so it can
  /// fail, time out, and retry them.
  fault::FaultEngine* fault = nullptr;
  /// Recovery policy (only consulted when `fault` is set). A failed task's
  /// jobs are re-enqueued with capped exponential backoff, excluding the
  /// invoker that failed, at most `max_task_retries` times per job; after
  /// that the request is aborted and counted as an SLO miss.
  int max_task_retries = 3;
  TimeMs retry_backoff_base_ms = 8.0;
  TimeMs retry_backoff_cap_ms = 512.0;
  /// Watchdog: a dispatched task that has not completed within
  /// `task_timeout_factor` x its noise-free expected latency (with a floor
  /// for very short stages) is declared failed — how the controller detects
  /// crashes and fault-injected stragglers without an oracle.
  double task_timeout_factor = 4.0;
  TimeMs task_timeout_floor_ms = 50.0;
  /// Elastic fleet manager (non-owning; nullptr = static fleet). When set,
  /// the controller wires the manager's hooks (queue depth, activation
  /// re-scan, drain-time provisioning cancellation), notifies it of
  /// arrivals, and — when the spec enables shedding — applies admission
  /// control: requests whose projected latency cannot meet the SLO on the
  /// current fleet are rejected up front and counted as `shed@admission`.
  elastic::ElasticManager* elastic = nullptr;
  /// Arrival forecaster (non-owning; nullptr = reactive run on the exact
  /// legacy code path — outputs stay byte-identical). When set, the
  /// controller feeds it every arrival, surfaces its per-app predictions in
  /// QueueView::forecast_rate_per_s (the ESG planner's look-ahead), and
  /// drives the prewarm manager's proactive mode from its bin callback.
  forecast::ForecastService* forecast = nullptr;
  /// Multi-tenant fair queueing (non-owning; nullptr = single-tenant run on
  /// the exact legacy code path — outputs stay byte-identical). When set, the
  /// controller keeps one AFW queue per (tenant, app, stage), scans tenants
  /// in ascending virtual-time order (skipping throttled flows when the fair
  /// queue gates), books every dispatch's charge against its tenant's flow,
  /// and stamps completion records and request spans with the tenant.
  tenant::FairQueue* fair_queue = nullptr;
};

class Controller {
 public:
  /// All references must outlive the controller.
  Controller(sim::Simulator& sim, cluster::Cluster& cluster,
             const profile::ProfileSet& profiles,
             const std::vector<workload::AppDag>& apps,
             workload::SloSetting slo_setting, Scheduler& scheduler,
             const RngFactory& rng, ControllerOptions options = {});

  /// Schedules the given arrivals as future request events.
  void inject(const std::vector<workload::Arrival>& arrivals);

  /// Injects one request immediately (at sim.now()). Returns its id. The
  /// single-argument form maps the app through the tenant spec's static
  /// app→tenant assignment (tenant 0 on single-tenant runs).
  RequestId inject_request(AppId app);
  RequestId inject_request(AppId app, std::uint32_t tenant);

  /// Runs the simulation until all injected requests complete (or the event
  /// queue drains).
  void run_to_completion();

  [[nodiscard]] const metrics::RunMetrics& metrics() const { return metrics_; }
  [[nodiscard]] metrics::RunMetrics& metrics() { return metrics_; }
  [[nodiscard]] TimeMs slo_of(AppId app) const;
  [[nodiscard]] const workload::AppDag& dag_of(AppId app) const;
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] std::size_t inflight_requests() const { return requests_.size(); }
  /// Jobs currently waiting across all AFW queues (stats-sampler gauge).
  [[nodiscard]] std::size_t total_queued_jobs() const;
  /// Always-on hot-path counters (DESIGN.md §13), with the prewarm
  /// subsystem's issue/skip tallies folded in.
  [[nodiscard]] perf::Counters perf_counters() const;

 private:
  struct AfwQueue {
    AppId app;
    workload::NodeIndex stage = 0;
    FunctionId function;
    std::uint32_t tenant = 0;  ///< owning flow (always 0 without fair queueing)
    std::deque<Job> jobs;
    int placement_failures = 0;  ///< consecutive recheck rounds

    // Incremental min-trackers over the queued jobs (DESIGN.md §15): multiset
    // mirrors of the enqueue/arrival stamps make make_view O(1) instead of
    // rescanning the deque per plan. The deque is not sorted by either stamp
    // once fault retries push_front at interleaved backoffs, hence explicit
    // tracking. Every jobs mutation must go through the helpers below.
    std::multiset<TimeMs> enqueue_times;
    std::multiset<TimeMs> arrival_times;

    void push_back_job(Job job);
    void push_front_job(Job job);
    Job pop_front_job();
    /// Removes every job of `request`; returns how many were dropped.
    std::size_t erase_request_jobs(RequestId request);

    // Cached plan (cleared on dispatch or when the queue length changes).
    std::vector<profile::Config> pending_candidates;
    TimeMs pending_overhead_ms = 0.0;
    bool pending_defer = false;
    std::size_t planned_length = kNoPlan;
    TimeMs replan_at_ms = 0.0;

    static constexpr std::size_t kNoPlan = static_cast<std::size_t>(-1);
  };

  struct RequestState {
    TimeMs arrival_ms = 0.0;
    AppId app;
    std::uint32_t tenant = 0;
    TimeMs slo_ms = 0.0;
    std::vector<std::uint8_t> remaining_preds;  ///< per DAG node
    std::vector<InvokerId> input_location;      ///< per DAG node (merged)
    std::size_t remaining_sinks = 0;
  };

  /// Why a dispatched task failed (fault-injection runs only).
  enum class FailureCause : std::uint8_t {
    kTransient,  ///< fault-injected mid-run dispatch failure
    kTimeout,    ///< watchdog fired before the task completed
    kCrash,      ///< the hosting invoker crashed
    kReclaimed,  ///< the hosting invoker was spot-reclaimed mid-task
  };
  [[nodiscard]] static std::string_view cause_name(FailureCause cause);

  /// A dispatched task awaiting its outcome (fault-injection runs only: the
  /// fault-free path schedules completion directly and never books here).
  struct InFlightTask {
    Task task;
    TimeMs overhead_ms = 0.0;
    sim::EventHandle outcome;  ///< completion or injected failure
    sim::EventHandle timeout;  ///< the watchdog
  };

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const profile::ProfileSet& profiles_;
  std::vector<const workload::AppDag*> apps_;  // indexed by AppId value
  std::vector<TimeMs> slo_ms_;                 // indexed by AppId value
  Scheduler& scheduler_;
  ControllerOptions options_;
  profile::PriceModel prices_;

  std::vector<AfwQueue> queues_;  // one per (app, stage), in app-major order;
                                  // tenant>0 queues appended on first use
  std::unordered_map<std::uint64_t, std::size_t> queue_index_;  // (tenant,app,stage)
  std::size_t rr_cursor_ = 0;
  bool scan_scheduled_ = false;
  /// Queue indices per tenant, in creation order (fair-queue runs only;
  /// tenant 0 holds the base queues built at construction).
  std::vector<std::vector<std::size_t>> tenant_queues_;

  std::unordered_map<RequestId, RequestState> requests_;
  std::uint32_t next_request_ = 0;
  std::uint32_t next_job_ = 0;
  std::uint32_t next_task_ = 0;

  RngStream noise_rng_;
  metrics::RunMetrics metrics_;
  /// mutable: make_view() is const but afw_peeks must tally its calls.
  mutable perf::Counters counters_;
  std::unique_ptr<prewarm::PrewarmManager> prewarm_;
  obs::TraceRecorder* rec_ = nullptr;     ///< = options_.recorder
  obs::LaneAllocator trace_gpu_lanes_;    ///< vGPU-slice rows for the trace
  /// Running tasks per function (any app) — drives the cold-start patience.
  std::unordered_map<FunctionId, std::size_t> active_by_function_;
  /// (invoker, function) pairs with a container currently being provisioned,
  /// mapped to the landing event so a crash can cancel it.
  std::unordered_map<std::uint64_t, sim::EventHandle> provisioning_;

  fault::FaultEngine* fault_ = nullptr;  ///< = options_.fault
  elastic::ElasticManager* elastic_ = nullptr;  ///< = options_.elastic
  forecast::ForecastService* forecast_ = nullptr;  ///< = options_.forecast
  tenant::FairQueue* fq_ = nullptr;      ///< = options_.fair_queue
  /// Tasks in flight, by TaskId value (fault-injection runs only).
  std::unordered_map<std::uint32_t, InFlightTask> inflight_;
  /// Requests aborted after exhausting their retry budget; sibling in-flight
  /// jobs of these requests complete into the void.
  std::unordered_set<std::uint32_t> aborted_requests_;

  /// Tracing is live and the current time is inside the measured window.
  [[nodiscard]] bool traced_now() const {
    return rec_ != nullptr && rec_->is_enabled() &&
           sim_.now() >= options_.metrics_warmup_ms;
  }
  /// Names the controller/request/invoker tracks once at construction.
  void announce_trace_tracks();

  [[nodiscard]] bool function_active_anywhere(FunctionId function) const;
  /// Starts provisioning a container (container create + model load) on
  /// `invoker`; it joins the warm pool after the cold-start time. No-op if
  /// one is already being provisioned there.
  void provision_container(InvokerId invoker, FunctionId function);

  void ensure_scan_scheduled();
  void scan();
  /// Attempts to plan + dispatch one task from queue `qi`.
  void process_queue(std::size_t qi);
  void dispatch(AfwQueue& queue, const profile::Config& config,
                InvokerId invoker, TimeMs overhead_ms);
  void complete_task(const Task& task);
  void advance_job(const Job& job, InvokerId ran_on, TimeMs completion_ms);
  void enqueue_job(RequestId request, AppId app, workload::NodeIndex stage,
                   InvokerId input_location, TimeMs now);
  void finish_request(RequestId request, TimeMs completion_ms);

  /// Emits the per-job wait/run spans and the invoker staging/exec/slice
  /// spans of a task ending (successfully or not) at `done`. Shared by the
  /// fault-free dispatch path and the deferred fault-run outcome paths.
  void emit_task_spans(const Task& task, TimeMs overhead_ms, TimeMs done,
                       bool failed, std::string_view cause);
  /// Outcome of a tracked task: success (cancel the watchdog, account, and
  /// complete) or failure (release everything, bill the partial occupancy,
  /// and retry or abort each job).
  void finish_inflight(std::uint32_t task_id);
  void fail_inflight(std::uint32_t task_id, FailureCause cause);
  void retry_or_abort(const Task& task, FailureCause cause);
  void requeue_job(const Job& job);
  void abort_request(RequestId request, workload::NodeIndex stage, TimeMs now);
  void on_invoker_crash(InvokerId invoker, TimeMs rejoin_at_ms);
  void on_invoker_rejoin(InvokerId invoker);

  /// Cancels every container still being provisioned on `invoker` (shared
  /// by the crash, drain, and reclamation paths).
  void cancel_provisioning_on(InvokerId invoker);
  /// Spot warning: picks the `count` highest-id in-fleet nodes, drains
  /// them, and schedules their reclamation at `reclaim_at_ms`.
  void on_spot_warning(std::size_t count, TimeMs reclaim_at_ms);
  /// Reclamation deadline: kills what is still running on the node
  /// (FailureCause::kReclaimed, retried elsewhere) and retires it.
  void reclaim_invoker(InvokerId invoker);
  /// Admission control (shedding enabled only): true when the projected
  /// latency of a new `app` request exceeds shed-margin x SLO on the
  /// current fleet. Deterministic: a capacity floor from the performance
  /// model plus a backlog penalty; no randomness.
  [[nodiscard]] bool should_shed(AppId app) const;
  /// Records a shed request: completion record (miss), kShed instant.
  void shed_request(RequestId request, AppId app, std::uint32_t tenant,
                    TimeMs now);

  [[nodiscard]] QueueView make_view(const AfwQueue& queue) const;
  [[nodiscard]] profile::Config clamp_for_ablation(profile::Config c) const;
  [[nodiscard]] InvokerId majority_input_location(const AfwQueue& queue,
                                                  std::uint16_t batch) const;
  [[nodiscard]] std::uint64_t queue_key(AppId app, workload::NodeIndex stage,
                                        std::uint32_t tenant) const;
  /// Index of the (tenant, app, stage) queue, creating the per-tenant queue
  /// on first use (tenant>0 queues exist only once their tenant sends work).
  [[nodiscard]] std::size_t queue_of(AppId app, workload::NodeIndex stage,
                                     std::uint32_t tenant);
  [[nodiscard]] bool any_queue_nonempty() const;
};

}  // namespace esg::platform
