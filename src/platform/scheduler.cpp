#include "platform/scheduler.hpp"

namespace esg::platform {

std::optional<InvokerId> locality_first_place(const PlacementContext& ctx,
                                              const cluster::Cluster& cluster) {
  const auto fits = [&](InvokerId id) {
    if (ctx.excluded_invoker.valid() && id == ctx.excluded_invoker) {
      return false;
    }
    return cluster.invoker(id).can_fit(ctx.config.vcpus, ctx.config.vgpus);
  };
  const auto warm = [&](InvokerId id) {
    return cluster.invoker(id).has_warm(ctx.function, ctx.now_ms);
  };

  // 1. Warm + local: the predecessor's invoker (data locality) for
  //    non-entry stages, the home invoker for entry stages.
  if (ctx.predecessor_invoker.valid() && fits(ctx.predecessor_invoker) &&
      warm(ctx.predecessor_invoker)) {
    return ctx.predecessor_invoker;
  }
  if (ctx.home_invoker.valid() && fits(ctx.home_invoker) &&
      warm(ctx.home_invoker)) {
    return ctx.home_invoker;
  }

  // 2. Any other invoker with a warm container for this function.
  for (const auto& inv : cluster.invokers()) {
    if (fits(inv.id()) && warm(inv.id())) return inv.id();
  }

  // 3. Cold, but local.
  if (ctx.predecessor_invoker.valid() && fits(ctx.predecessor_invoker)) {
    return ctx.predecessor_invoker;
  }
  if (ctx.home_invoker.valid() && fits(ctx.home_invoker)) {
    return ctx.home_invoker;
  }

  // 4. The cold invoker with the most available resources (vGPUs are the
  //    scarce dimension; vCPUs break ties).
  std::optional<InvokerId> best;
  int best_score = -1;
  for (const auto& inv : cluster.invokers()) {
    if (!fits(inv.id())) continue;
    const int score = inv.free_vgpus() * 64 + inv.free_vcpus();
    if (score > best_score) {
      best_score = score;
      best = inv.id();
    }
  }
  return best;
}

std::optional<InvokerId> first_fit_from_home(const PlacementContext& ctx,
                                             const cluster::Cluster& cluster) {
  const std::size_t n = cluster.size();
  const std::size_t start = ctx.home_invoker.valid() ? ctx.home_invoker.get() : 0;
  for (std::size_t step = 0; step < n; ++step) {
    const InvokerId id(static_cast<std::uint32_t>((start + step) % n));
    if (ctx.excluded_invoker.valid() && id == ctx.excluded_invoker) continue;
    if (cluster.invoker(id).can_fit(ctx.config.vcpus, ctx.config.vgpus)) {
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace esg::platform
