#include "platform/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "common/check.hpp"
#include "perf/profiler.hpp"
#include "profile/perf_model.hpp"

namespace esg::platform {

namespace {

/// Floor on the multiplicative execution-noise factor so a pathological
/// Gaussian draw can never produce a non-positive latency.
constexpr double kNoiseFloor = 0.3;

}  // namespace

Controller::Controller(sim::Simulator& sim, cluster::Cluster& cluster,
                       const profile::ProfileSet& profiles,
                       const std::vector<workload::AppDag>& apps,
                       workload::SloSetting slo_setting, Scheduler& scheduler,
                       const RngFactory& rng, ControllerOptions options)
    : sim_(sim),
      cluster_(cluster),
      profiles_(profiles),
      scheduler_(scheduler),
      options_(options),
      noise_rng_(rng.stream("controller-noise")),
      rec_(options.recorder),
      fault_(options.fault),
      elastic_(options.elastic),
      forecast_(options.forecast),
      fq_(options.fair_queue) {
  if (apps.empty()) throw std::invalid_argument("Controller: no applications");

  // Apps are indexed by AppId value; ids must be dense starting at 0.
  std::size_t max_id = 0;
  for (const auto& app : apps) max_id = std::max<std::size_t>(max_id, app.id().get());
  apps_.assign(max_id + 1, nullptr);
  slo_ms_.assign(max_id + 1, 0.0);
  for (const auto& app : apps) {
    app.validate();
    if (apps_[app.id().get()] != nullptr) {
      throw std::invalid_argument("Controller: duplicate AppId");
    }
    apps_[app.id().get()] = &app;
    slo_ms_[app.id().get()] = workload::slo_latency_ms(app, profiles_, slo_setting);
  }
  for (const auto* app : apps_) {
    if (app == nullptr) throw std::invalid_argument("Controller: AppIds not dense");
  }

  // One AFW queue per (application, stage) — Section 3.1. Fair-queue runs
  // key these to tenant 0; other tenants get their queues lazily, the first
  // time they send work, so the base layout (and warm-pool seeding below)
  // is identical to a single-tenant run.
  for (const auto* app : apps_) {
    for (workload::NodeIndex stage = 0; stage < app->size(); ++stage) {
      queue_index_.emplace(queue_key(app->id(), stage, 0), queues_.size());
      AfwQueue queue;
      queue.app = app->id();
      queue.stage = stage;
      queue.function = app->node(stage).function;
      queues_.push_back(std::move(queue));
    }
  }
  if (fq_ != nullptr) {
    tenant_queues_.assign(fq_->tenant_count(), {});
    for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
      tenant_queues_[0].push_back(qi);
    }
  }

  if (rec_ != nullptr && rec_->is_enabled()) announce_trace_tracks();

  if (options_.enable_prewarm) {
    prewarm_ = std::make_unique<prewarm::PrewarmManager>(sim_, cluster_, profiles_);
    prewarm_->set_trace(rec_);
    // The system is assumed to have been serving for a while already: one
    // warm container per AFW function on its home invoker (a single node
    // cannot host a whole application's steady-state load — roughly six of
    // its seven slices — so chains necessarily spread over the fleet).
    // Without this, short experiments measure nothing but the initial
    // cold-start storm.
    for (const AfwQueue& queue : queues_) {
      InvokerId home = cluster_.home_invoker(queue.app, queue.function);
      if (!cluster_.invoker(home).accepts_placements()) {
        // The hash spans the whole cluster; when an elastic fleet starts
        // below its ceiling the home node may be retired, so the seed
        // migrates to the next accepting node (wrapping). Static fleets
        // never take this branch.
        for (std::size_t off = 1; off < cluster_.size(); ++off) {
          const InvokerId cand(static_cast<std::uint32_t>(
              (home.get() + off) % cluster_.size()));
          if (cluster_.invoker(cand).accepts_placements()) {
            home = cand;
            break;
          }
        }
      }
      cluster_.invoker(home).add_warm(queue.function, 0.0,
                                      options_.keep_alive_ms);
    }
  }

  if (forecast_ != nullptr && prewarm_ != nullptr) {
    // Proactive prewarm: every closed forecast bin re-derives per-stream
    // warm targets from the predicted rates lead-ms ahead.
    prewarm_->enable_proactive(forecast_);
    forecast_->set_bin_callback(
        [this](TimeMs now) { prewarm_->on_forecast_bin(now); });
  }

  if (elastic_ != nullptr) {
    elastic_->set_queue_depth_provider([this] { return total_queued_jobs(); });
    elastic_->set_on_activate(
        [this](InvokerId) { ensure_scan_scheduled(); });
    elastic_->set_on_drain(
        [this](InvokerId id) { cancel_provisioning_on(id); });
    elastic_->set_observability(rec_, &metrics_, options_.metrics_warmup_ms);
  }

  if (fault_ != nullptr) {
    fault_->set_crash_handler([this](InvokerId id, TimeMs rejoin_at) {
      on_invoker_crash(id, rejoin_at);
    });
    fault_->set_rejoin_handler([this](InvokerId id) { on_invoker_rejoin(id); });
    fault_->set_spot_handler([this](std::size_t count, TimeMs reclaim_at) {
      on_spot_warning(count, reclaim_at);
    });
    fault_->install(sim_);
  }
}

std::string_view Controller::cause_name(FailureCause cause) {
  switch (cause) {
    case FailureCause::kTransient:
      return "transient";
    case FailureCause::kTimeout:
      return "timeout";
    case FailureCause::kCrash:
      return "crash";
    case FailureCause::kReclaimed:
      return "reclaimed";
  }
  return "unknown";
}

void Controller::announce_trace_tracks() {
  rec_->name_process(obs::kControllerPid, "controller");
  rec_->name_process(obs::kRequestsPid, "requests");
  rec_->name_thread(obs::controller_track(), "scheduler decisions");
  for (const auto& inv : cluster_.invokers()) {
    const std::uint32_t pid = obs::kInvokerPidBase + inv.id().get();
    rec_->name_process(pid, "invoker " + std::to_string(inv.id().get()));
    for (std::uint32_t lane = 0; lane < inv.capacity().vgpus; ++lane) {
      rec_->name_thread({pid, lane}, "gpu slice " + std::to_string(lane));
    }
    rec_->name_thread({pid, obs::kProvisionLane}, "provisioning");
    rec_->name_thread({pid, obs::kWarmPoolLane}, "warm pool");
    trace_gpu_lanes_.configure(inv.id().get(), inv.capacity().vgpus);
  }
}

std::size_t Controller::total_queued_jobs() const {
  std::size_t total = 0;
  for (const AfwQueue& queue : queues_) total += queue.jobs.size();
  return total;
}

std::uint64_t Controller::queue_key(AppId app, workload::NodeIndex stage,
                                    std::uint32_t tenant) const {
  // tenant : bits 44-63, app : bits 12-43, stage : bits 0-11. DAGs are a
  // handful of stages and the trace format caps tenants at 2^10.
  check(stage < (1u << 12), "queue_key: stage out of range");
  return (std::uint64_t{tenant} << 44) | (std::uint64_t{app.get()} << 12) |
         static_cast<std::uint64_t>(stage);
}

std::size_t Controller::queue_of(AppId app, workload::NodeIndex stage,
                                 std::uint32_t tenant) {
  const std::uint64_t key = queue_key(app, stage, tenant);
  const auto it = queue_index_.find(key);
  if (it != queue_index_.end()) return it->second;
  check(fq_ != nullptr && tenant > 0 && tenant < fq_->tenant_count(),
        "queue_of: unknown queue");
  AfwQueue queue;
  queue.app = app;
  queue.stage = stage;
  queue.function = dag_of(app).node(stage).function;
  queue.tenant = tenant;
  const std::size_t qi = queues_.size();
  queue_index_.emplace(key, qi);
  queues_.push_back(std::move(queue));
  tenant_queues_[tenant].push_back(qi);
  return qi;
}

TimeMs Controller::slo_of(AppId app) const { return slo_ms_.at(app.get()); }

const workload::AppDag& Controller::dag_of(AppId app) const {
  return *apps_.at(app.get());
}

void Controller::inject(const std::vector<workload::Arrival>& arrivals) {
  for (const auto& arrival : arrivals) {
    // The trace's tenant column only matters on fair-queue runs; a nonzero
    // tenant carried by the arrival overrides the spec's static app→tenant
    // mapping (synthetic/bursty arrivals always carry 0 and fall through to
    // the mapping).
    const std::uint32_t tenant =
        fq_ != nullptr
            ? (arrival.tenant != 0 ? arrival.tenant
                                   : fq_->spec().tenant_of(arrival.app.get()))
            : 0;
    sim_.schedule_at(arrival.time_ms, [this, app = arrival.app, tenant] {
      inject_request(app, tenant);
    });
  }
}

RequestId Controller::inject_request(AppId app) {
  return inject_request(
      app, fq_ != nullptr ? fq_->spec().tenant_of(app.get()) : 0);
}

RequestId Controller::inject_request(AppId app, std::uint32_t tenant) {
  if (forecast_ != nullptr) {
    // Observed before admission control: shed requests are still offered
    // load, and the predictors must see the demand that caused the shed.
    forecast_->on_arrival(app.get(), sim_.now());
  }
  if (elastic_ != nullptr) {
    elastic_->on_arrival(sim_.now());
    if (elastic_->spec().shed && should_shed(app)) {
      const RequestId shed_id(next_request_++);
      shed_request(shed_id, app, tenant, sim_.now());
      return shed_id;
    }
  }
  const workload::AppDag& dag = dag_of(app);
  const RequestId id(next_request_++);

  RequestState state;
  state.arrival_ms = sim_.now();
  state.app = app;
  state.tenant = tenant;
  state.slo_ms = slo_of(app);
  state.remaining_preds.resize(dag.size());
  state.input_location.assign(dag.size(), InvokerId{});
  for (workload::NodeIndex i = 0; i < dag.size(); ++i) {
    state.remaining_preds[i] =
        static_cast<std::uint8_t>(dag.node(i).predecessors.size());
  }
  state.remaining_sinks = dag.sinks().size();
  requests_.emplace(id, std::move(state));

  if (traced_now()) {
    rec_->name_thread(obs::request_track(id),
                      "req " + std::to_string(id.get()) + " (app " +
                          std::to_string(app.get()) + ")");
    // Fix the per-stage SLO budgets the strategy plans with at arrival —
    // the baseline the attribution passes measure drift against. Strategies
    // without an explicit distribution emit nothing (uniform fallback).
    const std::vector<double> fractions =
        scheduler_.planned_stage_fractions(app);
    if (!fractions.empty()) {
      obs::ArgList args{{"app", std::to_string(app.get())},
                        {"slo_ms", std::to_string(slo_of(app))}};
      for (std::size_t stage = 0; stage < fractions.size(); ++stage) {
        args.emplace_back("b" + std::to_string(stage),
                          std::to_string(slo_of(app) * fractions[stage]));
      }
      rec_->instant(obs::InstantKind::kBudgetPlan, "budget plan",
                    obs::request_track(id), sim_.now(), std::move(args));
    }
  }

  scheduler_.on_request(id, app, sim_.now());
  enqueue_job(id, app, dag.entry(), InvokerId{}, sim_.now());
  return id;
}

void Controller::enqueue_job(RequestId request, AppId app,
                             workload::NodeIndex stage,
                             InvokerId input_location, TimeMs now) {
  const auto& dag = dag_of(app);
  const RequestState& req = requests_.at(request);
  AfwQueue& queue = queues_[queue_of(app, stage, req.tenant)];
  if (fq_ != nullptr) fq_->on_enqueue(queue.tenant);

  Job job;
  job.id = JobId(next_job_++);
  job.request = request;
  job.app = app;
  job.stage = stage;
  job.function = dag.node(stage).function;
  job.request_arrival_ms = requests_.at(request).arrival_ms;
  job.enqueue_ms = now;
  job.input_location = input_location;
  queue.push_back_job(std::move(job));

  ensure_scan_scheduled();
}

void Controller::AfwQueue::push_back_job(Job job) {
  enqueue_times.insert(job.enqueue_ms);
  arrival_times.insert(job.request_arrival_ms);
  jobs.push_back(std::move(job));
}

void Controller::AfwQueue::push_front_job(Job job) {
  enqueue_times.insert(job.enqueue_ms);
  arrival_times.insert(job.request_arrival_ms);
  jobs.push_front(std::move(job));
}

Job Controller::AfwQueue::pop_front_job() {
  Job job = std::move(jobs.front());
  jobs.pop_front();
  enqueue_times.erase(enqueue_times.find(job.enqueue_ms));
  arrival_times.erase(arrival_times.find(job.request_arrival_ms));
  return job;
}

std::size_t Controller::AfwQueue::erase_request_jobs(RequestId request) {
  std::size_t removed = 0;
  for (const Job& job : jobs) {
    if (job.request != request) continue;
    enqueue_times.erase(enqueue_times.find(job.enqueue_ms));
    arrival_times.erase(arrival_times.find(job.request_arrival_ms));
    ++removed;
  }
  if (removed > 0) {
    std::erase_if(jobs,
                  [request](const Job& j) { return j.request == request; });
  }
  return removed;
}

void Controller::ensure_scan_scheduled() {
  if (scan_scheduled_) return;
  scan_scheduled_ = true;
  sim_.schedule_in(0.0, [this] { scan(); });
}

bool Controller::any_queue_nonempty() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const AfwQueue& q) { return !q.jobs.empty(); });
}

perf::Counters Controller::perf_counters() const {
  perf::Counters c = counters_;
  if (prewarm_) {
    c.prewarms_issued = prewarm_->prewarms_issued();
    c.prewarms_skipped = prewarm_->prewarms_skipped();
  }
  return c;
}

void Controller::scan() {
  ESG_PROF_SCOPE("controller/scan");
  scan_scheduled_ = false;
  ++counters_.scan_rounds;
  if (fq_ == nullptr) {
    const std::size_t q_count = queues_.size();
    // Round-robin over the AFW queues; queues whose placement failed are
    // naturally rechecked on the next scan (Section 3.1's recheck list).
    for (std::size_t k = 0; k < q_count; ++k) {
      process_queue((rr_cursor_ + k) % q_count);
    }
    rr_cursor_ = (rr_cursor_ + 1) % q_count;
  } else {
    // Fair-queue scan: tenants in ascending virtual-time order (the flow
    // that has received the least weighted service goes first), round-robin
    // inside each tenant's queues. A flow more than T ahead of the slowest
    // active one is skipped this round when gating is on (MQFQ throttle);
    // any_queue_nonempty() below still re-arms the scan, so the flow resumes
    // as soon as the laggard catches up.
    for (const std::uint32_t t : fq_->ordered_tenants()) {
      if (fq_->gating() && fq_->throttled(t)) continue;
      const std::vector<std::size_t>& qs = tenant_queues_[t];
      if (qs.empty()) continue;
      const std::size_t n = qs.size();
      for (std::size_t k = 0; k < n; ++k) {
        process_queue(qs[(rr_cursor_ + k) % n]);
      }
    }
    rr_cursor_ = (rr_cursor_ + 1) % queues_.size();
  }

  if (any_queue_nonempty()) {
    scan_scheduled_ = true;
    sim_.schedule_in(options_.scan_interval_ms, [this] { scan(); });
  }
}

QueueView Controller::make_view(const AfwQueue& queue) const {
  ++counters_.afw_peeks;
  QueueView view;
  view.app = queue.app;
  view.stage = queue.stage;
  view.function = queue.function;
  view.tenant = queue.tenant;
  view.dag = apps_.at(queue.app.get());
  view.profiles = &profiles_;
  view.queue_length = queue.jobs.size();
  view.slo_ms = slo_of(queue.app);
  view.now_ms = sim_.now();
  view.head_wait_ms = 0.0;
  view.oldest_elapsed_ms = 0.0;
  if (!queue.jobs.empty()) {
    // max(now - stamp) over the queue == now - min(stamp); both stamps are
    // <= now, so the O(1) multiset minimum reproduces the old full rescan.
    view.head_wait_ms = sim_.now() - *queue.enqueue_times.begin();
    view.oldest_elapsed_ms = sim_.now() - *queue.arrival_times.begin();
  }
  if (forecast_ != nullptr) {
    view.forecast_rate_per_s = forecast_->predicted_rate(
        queue.app.get(), sim_.now(), forecast_->spec().lead_ms);
  }
  return view;
}

profile::Config Controller::clamp_for_ablation(profile::Config c) const {
  if (!options_.enable_batching) c.batch = 1;
  if (!options_.enable_gpu_sharing) {
    // Exclusive GPU: the task takes (and is billed for) the whole GPU.
    c.vgpus = cluster_.invokers().front().capacity().vgpus;
  }
  return c;
}

InvokerId Controller::majority_input_location(const AfwQueue& queue,
                                              std::uint16_t batch) const {
  std::unordered_map<std::uint32_t, std::size_t> votes;
  std::size_t counted = 0;
  for (const Job& job : queue.jobs) {
    if (counted++ == batch) break;
    if (job.input_location.valid()) ++votes[job.input_location.get()];
  }
  InvokerId best;
  std::size_t best_votes = 0;
  for (const auto& [id, n] : votes) {
    if (n > best_votes || (n == best_votes && best.valid() && id < best.get())) {
      best = InvokerId(id);
      best_votes = n;
    }
  }
  return best;
}

void Controller::process_queue(std::size_t qi) {
  ESG_PROF_SCOPE("controller/process_queue");
  ++counters_.queue_visits;
  AfwQueue& queue = queues_[qi];
  if (queue.jobs.empty()) {
    queue.planned_length = AfwQueue::kNoPlan;
    return;
  }

  // Re-plan when the queue has changed or the cached plan has aged out;
  // otherwise reuse the cached candidates — the recheck-list retry against
  // the (meanwhile changed) worker states.
  const bool need_plan = queue.jobs.size() != queue.planned_length ||
                         sim_.now() >= queue.replan_at_ms;
  if (need_plan) {
    ++counters_.plans;
    if (queue.planned_length != AfwQueue::kNoPlan) ++counters_.replans;
    const QueueView view = make_view(queue);
    const auto wall_start = std::chrono::steady_clock::now();
    PlanResult plan = [&] {
      ESG_PROF_SCOPE("controller/plan");
      return scheduler_.plan(view);
    }();
    const auto wall_end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    if (sim_.now() >= options_.metrics_warmup_ms) {
      metrics_.plan_overhead_ms.push_back(plan.overhead_ms);
      metrics_.plan_wall_clock_ms.push_back(wall_ms);
      if (plan.used_preplanned) {
        ++metrics_.plan_uses;
        if (plan.preplanned_miss) ++metrics_.plan_misses;
      }
    }
    queue.pending_candidates = std::move(plan.candidates);
    queue.pending_overhead_ms = plan.overhead_ms;
    queue.pending_defer = plan.defer;
    queue.planned_length = queue.jobs.size();
    queue.replan_at_ms = sim_.now() + options_.replan_interval_ms;

    if (queue.pending_defer && traced_now()) {
      rec_->instant(obs::InstantKind::kDefer, "defer", obs::controller_track(),
                    sim_.now(),
                    {{"app", std::to_string(queue.app.get())},
                     {"stage", std::to_string(queue.stage)},
                     {"queue_len", std::to_string(queue.jobs.size())}});
    }
    if (plan.planned_budget_ms > 0.0 && traced_now()) {
      rec_->instant(obs::InstantKind::kBudgetReplan, "budget replan",
                    obs::controller_track(), sim_.now(),
                    {{"app", std::to_string(queue.app.get())},
                     {"stage", std::to_string(queue.stage)},
                     {"budget_ms", std::to_string(plan.planned_budget_ms)},
                     {"queue_len", std::to_string(queue.jobs.size())}});
    }
  }

  const TimeMs head_wait = sim_.now() - queue.jobs.front().enqueue_ms;
  const bool forced =
      queue.placement_failures >= options_.recheck_rounds_before_min ||
      head_wait > options_.defer_cap_ms;
  if (queue.pending_defer && !forced) return;

  std::vector<profile::Config> candidates;
  if (forced) {
    // Escape hatch: dispatch with the minimum resource configuration
    // (1 vCPU, 1 vGPU) to guarantee progress, regardless of what the
    // strategy proposes. The whole backlog goes as one batch — paying one
    // container start per queued job would melt the cluster in cold starts.
    const auto& spec = profiles_.table(queue.function).spec();
    profile::Config min_config = profile::kMinConfig;
    min_config.batch = static_cast<std::uint16_t>(std::min<std::size_t>(
        {queue.jobs.size(), spec.max_batch, std::size_t{8}}));
    candidates.push_back(clamp_for_ablation(min_config));
    ++metrics_.forced_min_dispatches;
    if (traced_now()) {
      rec_->instant(
          obs::InstantKind::kForcedMinDispatch, "forced min dispatch",
          obs::controller_track(), sim_.now(),
          {{"app", std::to_string(queue.app.get())},
           {"stage", std::to_string(queue.stage)},
           {"queue_len", std::to_string(queue.jobs.size())},
           {"failed_rounds", std::to_string(queue.placement_failures)},
           {"head_wait_ms", std::to_string(head_wait)}});
    }
  } else {
    candidates.reserve(queue.pending_candidates.size());
    for (profile::Config c : queue.pending_candidates) {
      c.batch = static_cast<std::uint16_t>(
          std::min<std::size_t>(c.batch, queue.jobs.size()));
      if (c.batch == 0) continue;
      candidates.push_back(clamp_for_ablation(c));
    }
    if (candidates.empty()) {
      candidates.push_back(clamp_for_ablation(profile::kMinConfig));
    }
  }

  PlacementContext ctx;
  ctx.app = queue.app;
  ctx.stage = queue.stage;
  ctx.function = queue.function;
  ctx.tenant = queue.tenant;
  ctx.home_invoker = cluster_.home_invoker(queue.app, queue.function);
  ctx.now_ms = sim_.now();

  for (const profile::Config& config : candidates) {
    ctx.config = config;
    ctx.predecessor_invoker = majority_input_location(queue, config.batch);

    // Retried jobs must avoid the invoker their last attempt failed on.
    // Escape hatches: a single-node cluster has nowhere else to go, and a
    // forced dispatch prioritises progress over placement hygiene.
    ctx.excluded_invoker = InvokerId{};
    if (!forced && cluster_.size() > 1) {
      std::uint16_t scanned = 0;
      for (const Job& job : queue.jobs) {
        if (scanned++ == config.batch) break;
        if (job.exclude_invoker.valid()) {
          ctx.excluded_invoker = job.exclude_invoker;
          break;
        }
      }
    }

    // Phase A — reuse: any fitting invoker that already holds a warm
    // container serves the task (that is what keep-alive instances are
    // for, on every platform); locality breaks ties.
    const std::optional<InvokerId> warm_fit = [&]() -> std::optional<InvokerId> {
      const auto fits_warm = [&](InvokerId id) {
        if (ctx.excluded_invoker.valid() && id == ctx.excluded_invoker) {
          return false;
        }
        const auto& inv = cluster_.invoker(id);
        return inv.can_fit(config.vcpus, config.vgpus) &&
               inv.has_warm(queue.function, sim_.now());
      };
      if (scheduler_.prefers_locality()) {
        if (ctx.predecessor_invoker.valid() &&
            fits_warm(ctx.predecessor_invoker)) {
          return ctx.predecessor_invoker;
        }
        if (fits_warm(ctx.home_invoker)) return ctx.home_invoker;
      }
      // Fleet scan through the warm-pool index: candidates come back in
      // ascending id order, reproducing the historical whole-fleet first
      // fit without visiting nodes that never parked a container. Stale
      // candidates (keep-alive expired, crashed, drained) are dropped as
      // they are observed — they can only re-enter via add_warm.
      const std::set<InvokerId>& warm_ids =
          cluster_.warm_candidates(queue.function);
      for (auto it = warm_ids.begin(); it != warm_ids.end();) {
        const InvokerId id = *it;
        ++it;  // advance before the erase below invalidates `id`'s position
        if (!cluster_.invoker(id).has_warm(queue.function, sim_.now())) {
          cluster_.drop_warm_candidate(queue.function, id);
          continue;
        }
        if (ctx.excluded_invoker.valid() && id == ctx.excluded_invoker) {
          continue;
        }
        if (cluster_.invoker(id).can_fit(config.vcpus, config.vgpus)) {
          return id;
        }
      }
      return std::nullopt;
    }();
    if (warm_fit.has_value()) {
      ++counters_.warm_hits;
      queue.placement_failures = 0;
      const TimeMs overhead = queue.pending_overhead_ms;
      queue.planned_length = AfwQueue::kNoPlan;  // plan consumed
      queue.pending_candidates.clear();
      dispatch(queue, config, *warm_fit, overhead);
      return;
    }

    // Phase B — no warm container fits. Start provisioning a new container
    // right away (create + model load, off the execution resources; the
    // per-invoker in-flight guard stops runaway growth) while the jobs keep
    // queueing: they dispatch on whichever comes first — a running
    // container turning idle or the new one becoming warm. The provisioning
    // target follows the strategy's instance-placement policy (locality for
    // ESG/Orion/Aquatope, packing for INFless and FaST-GShare). Either way
    // the cold start surfaces as queueing delay.
    const std::optional<InvokerId> target =
        forced ? locality_first_place(ctx, cluster_)
               : scheduler_.place(ctx, cluster_);
    if (target.has_value()) {
      provision_container(*target, queue.function);
      queue.placement_failures = 0;
      return;
    }
    if (function_active_anywhere(queue.function)) {
      // Nothing fits right now, but containers of this function are busy
      // elsewhere: wait for one instead of counting a placement failure.
      queue.placement_failures = 0;
      return;
    }
  }
  if (std::getenv("ESG_DEBUG") != nullptr && queue.placement_failures == 0) {
    std::fprintf(stderr,
                 "[%.0f] NOPLACE app=%u stage=%zu cands=%zu first=%s "
                 "free=(%zu,%zu) qlen=%zu\n",
                 sim_.now(), queue.app.get(), queue.stage, candidates.size(),
                 candidates.empty() ? "-" : to_string(candidates.front()).c_str(),
                 cluster_.total_free_vcpus(), cluster_.total_free_vgpus(),
                 queue.jobs.size());
  }
  if (traced_now()) {
    rec_->instant(obs::InstantKind::kNoPlacement, "no placement",
                  obs::controller_track(), sim_.now(),
                  {{"app", std::to_string(queue.app.get())},
                   {"stage", std::to_string(queue.stage)},
                   {"candidates", std::to_string(candidates.size())},
                   {"free_vcpus", std::to_string(cluster_.total_free_vcpus())},
                   {"free_vgpus", std::to_string(cluster_.total_free_vgpus())},
                   {"queue_len", std::to_string(queue.jobs.size())}});
  }
  ++queue.placement_failures;
}

void Controller::dispatch(AfwQueue& queue, const profile::Config& config,
                          InvokerId invoker_id, TimeMs overhead_ms) {
  ESG_PROF_SCOPE("controller/dispatch");
  ++counters_.dispatches;
  check(config.batch > 0 && config.batch <= queue.jobs.size(),
        "dispatch: batch exceeds queue length");

  auto& invoker = cluster_.invoker(invoker_id);
  check(invoker.can_fit(config.vcpus, config.vgpus),
        "dispatch: placement chose an overloaded invoker");
  invoker.allocate(config.vcpus, config.vgpus);

  Task task;
  task.id = TaskId(next_task_++);
  task.app = queue.app;
  task.stage = queue.stage;
  task.tenant = queue.tenant;
  task.function = queue.function;
  task.config = config;
  task.invoker = invoker_id;
  task.dispatch_ms = sim_.now();
  for (std::uint16_t i = 0; i < config.batch; ++i) {
    task.jobs.push_back(queue.pop_front_job());
  }
  if (fq_ != nullptr) fq_->on_dequeue(queue.tenant, task.jobs.size());

  const auto& table = profiles_.table(task.function);
  const auto& spec = table.spec();

  const bool measured = sim_.now() >= options_.metrics_warmup_ms;

  // Tasks always consume a warm container: cold starts run as container
  // provisioning in process_queue, off the execution resources, and show up
  // as queueing delay for the affected jobs.
  task.warm_start = invoker.acquire_warm(task.function, sim_.now());
  check(task.warm_start, "dispatch: no warm container on the chosen invoker");
  task.cold_ms = 0.0;
  if (measured) ++metrics_.warm_starts;

  // Input staging: per-job inputs are fetched in parallel; the batch waits
  // for the slowest. Entry-stage inputs always come from the ingress store.
  TimeMs transfer = 0.0;
  for (const Job& job : task.jobs) {
    const bool local =
        job.input_location.valid() && job.input_location == invoker_id;
    if (measured) {
      if (local) {
        ++metrics_.local_inputs;
      } else {
        ++metrics_.remote_inputs;
      }
      metrics_.job_wait_ms.push_back(sim_.now() - job.enqueue_ms);
    }
    transfer = std::max(
        transfer, cluster_.transfer_model().transfer_ms(spec.input_mb, local));
  }
  task.transfer_ms = transfer;

  // Execution with multiplicative Gaussian noise. The latency comes from
  // the analytical model directly (not the table): batch clamping and the
  // ablation overrides can produce configurations outside the enumerated
  // space (e.g. more vGPU slices than jobs), which still execute fine.
  const TimeMs nominal_ms = profile::PerfModel::latency_ms(spec, config);
  const double noise =
      std::max(kNoiseFloor, noise_rng_.gaussian(1.0, options_.noise_cv));
  task.exec_ms = nominal_ms * noise;

  // Fault injection: stretch the execution by any slowdown window covering
  // this invoker, then draw whether this task dies mid-run. Both are absent
  // (no branch, no draw) on fault-free runs.
  bool will_fail = false;
  if (fault_ != nullptr) {
    task.exec_ms = profile::PerfModel::degraded_ms(
        task.exec_ms, fault_->slowdown_factor(invoker_id, sim_.now()));
    will_fail = fault_->dispatch_fails(task.function);
  }

  ++active_by_function_[task.function];

  // The tenant's flow is charged at dispatch, for the full occupancy the
  // task was billed (a fault-run failure does not refund virtual time: the
  // service was reserved on the flow's behalf either way).
  if (fq_ != nullptr) {
    fq_->on_charge(task.tenant, task.occupancy_ms(), config.vcpus,
                   config.vgpus);
  }

  task.cost = prices_.cost(config.vcpus, config.vgpus, task.occupancy_ms());
  // Fault runs account the task when its outcome is known: a completed task
  // books here retroactively from finish_inflight(); a failed one bills only
  // the occupancy it actually held, in fail_inflight().
  if (measured && fault_ == nullptr) {
    metrics_.total_cost += task.cost;
    metrics_.cost_by_app[task.app] += task.cost;
    ++metrics_.tasks;
    metrics_.task_trace.push_back(metrics::TaskRecord{
        task.id, task.app, task.stage, task.function, task.invoker,
        task.config.batch, task.config.vcpus, task.config.vgpus,
        task.dispatch_ms, task.transfer_ms, task.exec_ms, task.cost});
  }

  const TimeMs start = sim_.now() + overhead_ms;  // work begins post-overhead
  const TimeMs done = start + task.occupancy_ms();
  if (traced_now()) {
    task.trace_lanes = trace_gpu_lanes_.acquire(invoker_id.get(), config.vgpus);
  }
  // Fault runs emit the task spans when the outcome is known, so the spans
  // show what actually happened (a failure cuts them short).
  if (fault_ == nullptr) {
    emit_task_spans(task, overhead_ms, done, false, {});
  }
  if (traced_now()) {
    std::string stage_tag = "a";
    stage_tag += std::to_string(task.app.get());
    stage_tag += "/s";
    stage_tag += std::to_string(task.stage);
    rec_->instant(obs::InstantKind::kDispatch, "dispatch " + stage_tag,
                  obs::controller_track(), sim_.now(),
                  {{"app", std::to_string(task.app.get())},
                   {"stage", std::to_string(task.stage)},
                   {"batch", std::to_string(config.batch)},
                   {"vcpus", std::to_string(config.vcpus)},
                   {"vgpus", std::to_string(config.vgpus)},
                   {"invoker", std::to_string(invoker_id.get())},
                   {"overhead_ms", std::to_string(overhead_ms)}});
  }

  if (prewarm_) {
    prewarm_->on_invocation(task.app, task.function, invoker_id, sim_.now(),
                            task.occupancy_ms());
  }

  if (std::getenv("ESG_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[%.0f] DISPATCH app=%u stage=%zu b=%u c=%u g=%u cold=%.0f "
                 "xfer=%.0f exec=%.0f occ=%.0f inv=%u\n",
                 sim_.now(), task.app.get(), task.stage, config.batch,
                 config.vcpus, config.vgpus, task.cold_ms, task.transfer_ms,
                 task.exec_ms, task.occupancy_ms(), invoker_id.get());
  }

  // The scheduling overhead delays the start of the work; the resources are
  // reserved now (the controller has committed them) but the occupancy bill
  // covers only the task itself.
  if (fault_ == nullptr) {
    const TimeMs completion = sim_.now() + overhead_ms + task.occupancy_ms();
    sim_.schedule_at(completion, [this, task = std::move(task)] {
      complete_task(task);
    });
    return;
  }

  // Fault run: book the task in flight and race its outcome against the
  // watchdog. The outcome is scheduled first, so an exact tie (completion on
  // the watchdog deadline) resolves as the outcome.
  InFlightTask entry;
  entry.overhead_ms = overhead_ms;
  const std::uint32_t tid = task.id.get();
  if (will_fail) {
    // An injected failure surfaces halfway through the execution.
    const TimeMs fail_at = start + task.transfer_ms + 0.5 * task.exec_ms;
    entry.outcome = sim_.schedule_at(fail_at, [this, tid] {
      fail_inflight(tid, FailureCause::kTransient);
    });
  } else {
    entry.outcome = sim_.schedule_at(done, [this, tid] { finish_inflight(tid); });
  }
  // The watchdog runs off the noise-free expectation: a straggler stretched
  // past `factor` x nominal is killed and retried even though it would have
  // finished eventually.
  const TimeMs watchdog_ms =
      std::max(options_.task_timeout_floor_ms,
               options_.task_timeout_factor * (task.transfer_ms + nominal_ms));
  entry.timeout = sim_.schedule_at(start + watchdog_ms, [this, tid] {
    fail_inflight(tid, FailureCause::kTimeout);
  });
  entry.task = std::move(task);
  inflight_.emplace(tid, std::move(entry));
}

void Controller::emit_task_spans(const Task& task, TimeMs overhead_ms,
                                 TimeMs done, bool failed,
                                 std::string_view cause) {
  if (rec_ == nullptr || !rec_->is_enabled() ||
      task.dispatch_ms < options_.metrics_warmup_ms) {
    return;
  }
  const TimeMs start = task.dispatch_ms + overhead_ms;
  std::string stage_tag = "a";
  stage_tag += std::to_string(task.app.get());
  stage_tag += "/s";
  stage_tag += std::to_string(task.stage);

  for (const Job& job : task.jobs) {
    const obs::Track req_track = obs::request_track(job.request);
    rec_->span(obs::SpanKind::kQueueWait, "wait " + stage_tag, req_track,
               job.enqueue_ms, task.dispatch_ms,
               {{"job", std::to_string(job.id.get())},
                {"stage", std::to_string(task.stage)},
                {"task", std::to_string(task.id.get())}});
    obs::ArgList run_args{{"task", std::to_string(task.id.get())},
                          {"stage", std::to_string(task.stage)},
                          {"invoker", std::to_string(task.invoker.get())},
                          {"batch", std::to_string(task.config.batch)},
                          {"overhead_ms", std::to_string(overhead_ms)}};
    if (failed) {
      run_args.emplace_back("failed", "true");
      run_args.emplace_back("cause", std::string(cause));
      run_args.emplace_back("attempt", std::to_string(job.attempts));
    }
    rec_->span(obs::SpanKind::kStage, "run " + stage_tag, req_track,
               task.dispatch_ms, done, std::move(run_args));
  }

  const std::uint32_t primary =
      task.trace_lanes.empty() ? 0u : task.trace_lanes.front();
  const obs::Track exec_track = obs::invoker_track(task.invoker, primary);
  if (task.transfer_ms > 0.0) {
    rec_->span(obs::SpanKind::kStaging, "staging " + stage_tag, exec_track,
               start, std::min(start + task.transfer_ms, done),
               {{"task", std::to_string(task.id.get())}});
  }
  if (done > start + task.transfer_ms) {
    obs::ArgList exec_args{{"task", std::to_string(task.id.get())},
                           {"function", std::to_string(task.function.get())},
                           {"batch", std::to_string(task.config.batch)},
                           {"vcpus", std::to_string(task.config.vcpus)},
                           {"vgpus", std::to_string(task.config.vgpus)},
                           {"cost_usd", std::to_string(task.cost)}};
    if (failed) {
      exec_args.emplace_back("failed", "true");
      exec_args.emplace_back("cause", std::string(cause));
    }
    rec_->span(obs::SpanKind::kExec, "exec " + stage_tag, exec_track,
               start + task.transfer_ms, done, std::move(exec_args));
  }
  for (std::size_t i = 1; i < task.trace_lanes.size(); ++i) {
    rec_->span(obs::SpanKind::kSliceOccupied, "slice " + stage_tag,
               obs::invoker_track(task.invoker, task.trace_lanes[i]), start,
               done, {{"task", std::to_string(task.id.get())}});
  }
}

void Controller::finish_inflight(std::uint32_t task_id) {
  auto it = inflight_.find(task_id);
  check(it != inflight_.end(), "finish_inflight: task not in flight");
  InFlightTask entry = std::move(it->second);
  inflight_.erase(it);
  sim_.cancel(entry.timeout);
  const Task& task = entry.task;

  if (task.dispatch_ms >= options_.metrics_warmup_ms) {
    metrics_.total_cost += task.cost;
    metrics_.cost_by_app[task.app] += task.cost;
    ++metrics_.tasks;
    metrics_.task_trace.push_back(metrics::TaskRecord{
        task.id, task.app, task.stage, task.function, task.invoker,
        task.config.batch, task.config.vcpus, task.config.vgpus,
        task.dispatch_ms, task.transfer_ms, task.exec_ms, task.cost});
  }
  emit_task_spans(task, entry.overhead_ms, sim_.now(), false, {});
  complete_task(task);
}

void Controller::fail_inflight(std::uint32_t task_id, FailureCause cause) {
  auto it = inflight_.find(task_id);
  if (it == inflight_.end()) return;  // raced with a crash that killed it
  InFlightTask entry = std::move(it->second);
  inflight_.erase(it);
  sim_.cancel(entry.outcome);
  sim_.cancel(entry.timeout);
  Task& task = entry.task;

  // Release everything the task held. The container itself is lost — no
  // warm entry returns to the pool, unlike a completion.
  auto& invoker = cluster_.invoker(task.invoker);
  invoker.release(task.config.vcpus, task.config.vgpus);
  if (!task.trace_lanes.empty()) {
    trace_gpu_lanes_.release(task.invoker.get(), task.trace_lanes);
  }
  auto active = active_by_function_.find(task.function);
  check(active != active_by_function_.end() && active->second > 0,
        "fail_inflight: active-task accounting underflow");
  --active->second;

  // Bill the occupancy actually held (post-overhead up to the failure).
  const TimeMs start = task.dispatch_ms + entry.overhead_ms;
  const TimeMs held_ms = std::max(0.0, sim_.now() - start);
  task.cost = prices_.cost(task.config.vcpus, task.config.vgpus, held_ms);
  if (task.dispatch_ms >= options_.metrics_warmup_ms) {
    metrics_.total_cost += task.cost;
    metrics_.cost_by_app[task.app] += task.cost;
    ++metrics_.task_failures;
    if (cause == FailureCause::kTimeout) ++metrics_.task_timeouts;
  }

  emit_task_spans(task, entry.overhead_ms, sim_.now(), true, cause_name(cause));
  retry_or_abort(task, cause);
  ensure_scan_scheduled();
}

void Controller::retry_or_abort(const Task& task, FailureCause cause) {
  const TimeMs now = sim_.now();
  const auto& dag = dag_of(task.app);
  const std::vector<double> fractions =
      scheduler_.planned_stage_fractions(task.app);
  const double fraction = (task.stage < fractions.size())
                              ? fractions[task.stage]
                              : 1.0 / static_cast<double>(dag.size());
  const TimeMs stage_budget_ms = slo_of(task.app) * fraction;

  bool budget_eaten = false;
  for (const Job& job : task.jobs) {
    if (now - job.enqueue_ms > stage_budget_ms) budget_eaten = true;
    if (aborted_requests_.count(job.request.get()) > 0) continue;

    Job retry = job;
    ++retry.attempts;
    retry.exclude_invoker = task.invoker;

    if (traced_now()) {
      rec_->instant(obs::InstantKind::kFault, "fault",
                    obs::request_track(job.request), now,
                    {{"stage", std::to_string(task.stage)},
                     {"cause", std::string(cause_name(cause))},
                     {"attempt", std::to_string(retry.attempts)},
                     {"invoker", std::to_string(task.invoker.get())},
                     {"task", std::to_string(task.id.get())}});
    }

    if (static_cast<int>(retry.attempts) > options_.max_task_retries) {
      if (traced_now()) {
        rec_->instant(obs::InstantKind::kRetryExhausted, "retry exhausted",
                      obs::request_track(job.request), now,
                      {{"stage", std::to_string(task.stage)},
                       {"attempts", std::to_string(retry.attempts)}});
      }
      abort_request(job.request, task.stage, now);
      continue;
    }

    if (now >= options_.metrics_warmup_ms) ++metrics_.retries;
    const TimeMs backoff_ms =
        std::min(options_.retry_backoff_cap_ms,
                 options_.retry_backoff_base_ms *
                     std::exp2(static_cast<double>(retry.attempts - 1)));
    if (traced_now()) {
      rec_->instant(obs::InstantKind::kRetry, "retry",
                    obs::controller_track(), now,
                    {{"app", std::to_string(task.app.get())},
                     {"stage", std::to_string(task.stage)},
                     {"attempt", std::to_string(retry.attempts)},
                     {"backoff_ms", std::to_string(backoff_ms)},
                     {"exclude", std::to_string(task.invoker.get())}});
    }
    sim_.schedule_in(backoff_ms, [this, retry] { requeue_job(retry); });
  }

  scheduler_.on_stage_retry(task.app, task.stage, now);

  if (budget_eaten) {
    // The failed attempt consumed the stage's SLO share: force the next scan
    // to re-plan this queue (ESG renormalises the remaining budget against
    // the elapsed time — its natural re-plan path).
    auto qit = queue_index_.find(queue_key(task.app, task.stage, task.tenant));
    if (qit != queue_index_.end()) {
      AfwQueue& queue = queues_[qit->second];
      queue.planned_length = AfwQueue::kNoPlan;
      queue.replan_at_ms = now;
    }
  }
}

void Controller::requeue_job(const Job& job) {
  if (aborted_requests_.count(job.request.get()) > 0) return;
  const RequestState& req = requests_.at(job.request);
  AfwQueue& queue = queues_[queue_of(job.app, job.stage, req.tenant)];
  if (fq_ != nullptr) fq_->on_enqueue(queue.tenant);
  // Front of the queue: the retried job is the oldest work this stage has.
  queue.push_front_job(job);
  queue.planned_length = AfwQueue::kNoPlan;
  ensure_scan_scheduled();
}

void Controller::abort_request(RequestId request, workload::NodeIndex stage,
                               TimeMs now) {
  auto it = requests_.find(request);
  if (it == requests_.end()) return;
  aborted_requests_.insert(request.get());

  // Drop the request's queued jobs everywhere (parallel DAG branches may
  // have siblings waiting at other stages).
  for (AfwQueue& queue : queues_) {
    const std::size_t removed = queue.erase_request_jobs(request);
    if (removed > 0) {
      queue.planned_length = AfwQueue::kNoPlan;
      if (fq_ != nullptr) fq_->on_dequeue(queue.tenant, removed);
    }
  }

  const RequestState req = it->second;
  requests_.erase(it);

  if (req.arrival_ms < options_.metrics_warmup_ms) return;

  ++metrics_.retries_exhausted;
  metrics::CompletionRecord record;
  record.request = request;
  record.app = req.app;
  record.tenant = req.tenant;
  record.arrival_ms = req.arrival_ms;
  record.completion_ms = now;
  record.latency_ms = now - req.arrival_ms;
  record.slo_ms = req.slo_ms;
  record.hit = false;
  record.failed = true;
  metrics_.completions.push_back(record);

  if (rec_ != nullptr && rec_->is_enabled()) {
    obs::ArgList args{{"app", std::to_string(req.app.get())},
                      {"latency_ms", std::to_string(record.latency_ms)},
                      {"slo_ms", std::to_string(req.slo_ms)},
                      {"hit", "false"},
                      {"aborted", "true"},
                      {"abort_stage", std::to_string(stage)}};
    if (fq_ != nullptr) {
      args.emplace_back("tenant", fq_->spec().tenant_name(req.tenant));
    }
    rec_->span(obs::SpanKind::kRequest,
               "request " + std::to_string(request.get()),
               obs::request_track(request), req.arrival_ms, now,
               std::move(args));
  }
}

void Controller::on_invoker_crash(InvokerId invoker, TimeMs rejoin_at_ms) {
  const TimeMs now = sim_.now();
  if (now >= options_.metrics_warmup_ms) ++metrics_.invoker_crashes;

  if (traced_now()) {
    rec_->instant(obs::InstantKind::kInvokerCrash, "invoker crash",
                  obs::controller_track(), now,
                  {{"invoker", std::to_string(invoker.get())},
                   {"rejoin_at_ms", std::to_string(rejoin_at_ms)}});
    rec_->span(obs::SpanKind::kInvokerDown,
               "down invoker " + std::to_string(invoker.get()),
               obs::invoker_track(invoker, obs::kProvisionLane), now,
               rejoin_at_ms, {{"invoker", std::to_string(invoker.get())}});
  }

  // Fail every task running here. Sorted ids: inflight_ is an unordered_map
  // and the failure path feeds the trace, which must stay byte-reproducible.
  std::vector<std::uint32_t> victims;
  for (const auto& [tid, entry] : inflight_) {
    if (entry.task.invoker == invoker) victims.push_back(tid);
  }
  std::sort(victims.begin(), victims.end());
  for (const std::uint32_t tid : victims) {
    fail_inflight(tid, FailureCause::kCrash);
  }

  // Cancel in-flight container provisioning targeting the dead node.
  cancel_provisioning_on(invoker);

  // Finally drop the warm pool and mark the node dead.
  cluster_.invoker(invoker).crash(now);
}

void Controller::cancel_provisioning_on(InvokerId invoker) {
  for (auto pit = provisioning_.begin(); pit != provisioning_.end();) {
    if (static_cast<std::uint32_t>(pit->first >> 32) == invoker.get()) {
      sim_.cancel(pit->second);
      pit = provisioning_.erase(pit);
    } else {
      ++pit;
    }
  }
}

void Controller::on_spot_warning(std::size_t count, TimeMs reclaim_at_ms) {
  const TimeMs now = sim_.now();
  // Victims: the highest-id in-fleet (Active or Warming) nodes — the most
  // recently acquired capacity, which is what spot markets take back first.
  // Deterministic, so two replays of the same spec pick the same nodes.
  std::vector<InvokerId> victims;
  for (std::size_t i = cluster_.size(); i-- > 0 && victims.size() < count;) {
    const auto& inv = cluster_.invokers()[i];
    if (inv.state() == cluster::NodeState::kActive ||
        inv.state() == cluster::NodeState::kWarming) {
      victims.push_back(inv.id());
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](InvokerId a, InvokerId b) { return a.get() < b.get(); });
  for (const InvokerId id : victims) {
    if (now >= options_.metrics_warmup_ms) ++metrics_.spot_reclaims;
    if (traced_now()) {
      rec_->instant(obs::InstantKind::kSpotWarning, "spot warning",
                    obs::controller_track(), now,
                    {{"invoker", std::to_string(id.get())},
                     {"reclaim_at_ms", std::to_string(reclaim_at_ms)}});
    }
    // Drain: nothing new lands here; in-flight tasks get the warning lead
    // time to finish before the deadline kills the stragglers.
    cluster_.invoker(id).begin_drain();
    cancel_provisioning_on(id);
    sim_.schedule_at(reclaim_at_ms, [this, id] { reclaim_invoker(id); });
  }
}

void Controller::reclaim_invoker(InvokerId invoker) {
  auto& node = cluster_.invoker(invoker);
  // Already retired: every task finished inside the warning window and the
  // elastic manager released the node early.
  if (node.state() == cluster::NodeState::kRetired) return;
  const TimeMs now = sim_.now();
  if (traced_now()) {
    rec_->instant(obs::InstantKind::kSpotReclaim, "spot reclaim",
                  obs::controller_track(), now,
                  {{"invoker", std::to_string(invoker.get())}});
  }
  // Kill what is still running here; the jobs retry on surviving nodes with
  // this invoker excluded. Sorted ids for byte-reproducible traces.
  std::vector<std::uint32_t> victims;
  for (const auto& [tid, entry] : inflight_) {
    if (entry.task.invoker == invoker) victims.push_back(tid);
  }
  std::sort(victims.begin(), victims.end());
  for (const std::uint32_t tid : victims) {
    fail_inflight(tid, FailureCause::kReclaimed);
  }
  cancel_provisioning_on(invoker);
  // retire() drops the warm pool (WarmEnd::kDrained) and asserts no
  // vCPU/vGPU is still held — the no-leak invariant of every reclaim.
  node.retire(now);
  if (traced_now()) {
    rec_->instant(obs::InstantKind::kNodeRetired, "node_retired",
                  obs::controller_track(), now,
                  {{"invoker", std::to_string(invoker.get())}});
  }
}

bool Controller::should_shed(AppId app) const {
  // Serving capacity, counting nodes already warming (they arrive within a
  // provisioning lead time, well inside any DNN workflow SLO).
  std::size_t slices = 0;
  for (const auto& inv : cluster_.invokers()) {
    const auto state = inv.state();
    if (state == cluster::NodeState::kActive ||
        state == cluster::NodeState::kWarming) {
      slices += inv.capacity().vgpus;
    }
  }
  if (slices == 0) return true;  // no capacity and none on the way

  // Best-case critical path: every stage at its fastest profiled config.
  const auto& dag = dag_of(app);
  std::vector<TimeMs> longest(dag.size(), -1.0);
  std::function<TimeMs(workload::NodeIndex)> path_to =
      [&](workload::NodeIndex i) -> TimeMs {
    if (longest[i] >= 0.0) return longest[i];
    TimeMs best_pred = 0.0;
    for (workload::NodeIndex p : dag.node(i).predecessors) {
      best_pred = std::max(best_pred, path_to(p));
    }
    longest[i] =
        best_pred + profiles_.table(dag.node(i).function).min_latency();
    return longest[i];
  };
  TimeMs floor_ms = 0.0;
  for (workload::NodeIndex sink : dag.sinks()) {
    floor_ms = std::max(floor_ms, path_to(sink));
  }

  // Backlog penalty: the queued tasks ahead of this request, each at a
  // best-case mean stage latency, spread over the fleet's slices.
  const TimeMs mean_stage_ms = floor_ms / static_cast<double>(dag.size());
  const TimeMs penalty_ms =
      static_cast<double>(total_queued_jobs()) * mean_stage_ms /
      static_cast<double>(slices);
  return floor_ms + penalty_ms >
         elastic_->spec().shed_margin * slo_of(app);
}

void Controller::shed_request(RequestId request, AppId app,
                              std::uint32_t tenant, TimeMs now) {
  if (now >= options_.metrics_warmup_ms) {
    ++metrics_.shed_requests;
    metrics::CompletionRecord record;
    record.request = request;
    record.app = app;
    record.tenant = tenant;
    record.arrival_ms = now;
    record.completion_ms = now;
    record.latency_ms = 0.0;
    record.slo_ms = slo_of(app);
    record.hit = false;
    record.failed = false;
    record.shed = true;
    metrics_.completions.push_back(record);
  }
  if (traced_now()) {
    rec_->name_thread(obs::request_track(request),
                      "req " + std::to_string(request.get()) + " (app " +
                          std::to_string(app.get()) + ")");
    obs::ArgList args{{"app", std::to_string(app.get())},
                      {"slo_ms", std::to_string(slo_of(app))},
                      {"queued", std::to_string(total_queued_jobs())}};
    if (fq_ != nullptr) {
      args.emplace_back("tenant", fq_->spec().tenant_name(tenant));
    }
    rec_->instant(obs::InstantKind::kShed, "shed",
                  obs::request_track(request), now, std::move(args));
  }
}

void Controller::on_invoker_rejoin(InvokerId invoker) {
  cluster_.invoker(invoker).rejoin();
  if (traced_now()) {
    rec_->instant(obs::InstantKind::kInvokerRejoin, "invoker rejoin",
                  obs::controller_track(), sim_.now(),
                  {{"invoker", std::to_string(invoker.get())}});
  }
  ensure_scan_scheduled();
}

void Controller::provision_container(InvokerId invoker, FunctionId function) {
  const std::uint64_t key = (std::uint64_t{invoker.get()} << 32) | function.get();
  auto [slot, inserted] = provisioning_.emplace(key, sim::EventHandle{});
  if (!inserted) return;  // already underway
  ++counters_.warm_misses;
  if (sim_.now() >= options_.metrics_warmup_ms) ++metrics_.cold_starts;
  const TimeMs cold = profiles_.table(function).spec().cold_start_ms;
  // Fault injection: the provisioning burns the full cold-start time and
  // then fails — no warm container joins the pool. Drawn up front so the
  // trace can flag the doomed span.
  const bool fails = fault_ != nullptr && fault_->cold_start_fails(function);
  if (traced_now()) {
    obs::ArgList args{{"function", std::to_string(function.get())},
                      {"cold_ms", std::to_string(cold)}};
    if (fails) args.emplace_back("failed", "true");
    rec_->span(obs::SpanKind::kColdStart,
               "cold start f" + std::to_string(function.get()),
               obs::invoker_track(invoker, obs::kProvisionLane), sim_.now(),
               sim_.now() + cold, std::move(args));
  }
  slot->second = sim_.schedule_in(cold, [this, key, invoker, function, fails] {
    provisioning_.erase(key);
    if (fails) {
      if (sim_.now() >= options_.metrics_warmup_ms) {
        ++metrics_.cold_start_failures;
      }
      if (traced_now()) {
        rec_->instant(obs::InstantKind::kColdStartFailure, "cold start failure",
                      obs::invoker_track(invoker, obs::kProvisionLane),
                      sim_.now(),
                      {{"function", std::to_string(function.get())}});
      }
    } else {
      cluster_.invoker(invoker).add_warm(function, sim_.now(),
                                         options_.keep_alive_ms);
    }
    ensure_scan_scheduled();
  });
}

bool Controller::function_active_anywhere(FunctionId function) const {
  auto it = active_by_function_.find(function);
  if (it != active_by_function_.end() && it->second > 0) return true;
  // Warm-pool index instead of a fleet scan; stale candidates are dropped
  // as observed (same lazy contract as the placement path).
  const std::set<InvokerId>& warm_ids = cluster_.warm_candidates(function);
  for (auto cit = warm_ids.begin(); cit != warm_ids.end();) {
    const InvokerId id = *cit;
    ++cit;
    if (cluster_.invoker(id).has_warm(function, sim_.now())) return true;
    cluster_.drop_warm_candidate(function, id);
  }
  return false;
}

void Controller::complete_task(const Task& task) {
  auto& invoker = cluster_.invoker(task.invoker);
  invoker.release(task.config.vcpus, task.config.vgpus);
  if (!task.trace_lanes.empty()) {
    trace_gpu_lanes_.release(task.invoker.get(), task.trace_lanes);
  }
  invoker.add_warm(task.function, sim_.now(), options_.keep_alive_ms);
  auto it = active_by_function_.find(task.function);
  check(it != active_by_function_.end() && it->second > 0,
        "complete_task: active-task accounting underflow");
  --it->second;

  for (const Job& job : task.jobs) {
    advance_job(job, task.invoker, sim_.now());
  }
  ensure_scan_scheduled();
}

void Controller::advance_job(const Job& job, InvokerId ran_on,
                             TimeMs completion_ms) {
  auto req_it = requests_.find(job.request);
  if (req_it == requests_.end()) {
    // The request was aborted (retries exhausted) while this sibling task
    // was still in flight; its result has nowhere to go.
    check(aborted_requests_.count(job.request.get()) > 0,
          "advance_job: unknown request");
    return;
  }
  RequestState& req = req_it->second;
  const auto& dag = dag_of(job.app);
  const auto& node = dag.node(job.stage);

  for (workload::NodeIndex succ : node.successors) {
    // Merge the input location: a join stage whose inputs live on different
    // invokers has no single local source, so it degrades to remote.
    InvokerId& loc = req.input_location[succ];
    if (!loc.valid()) {
      loc = ran_on;
    } else if (loc != ran_on) {
      loc = InvokerId{};  // mixed sources -> remote
    }
    check(req.remaining_preds[succ] > 0, "advance_job: predecessor underflow");
    if (--req.remaining_preds[succ] == 0) {
      enqueue_job(job.request, job.app, succ, req.input_location[succ],
                  completion_ms);
    }
  }

  if (node.successors.empty()) {
    check(req.remaining_sinks > 0, "advance_job: sink underflow");
    if (--req.remaining_sinks == 0) {
      finish_request(job.request, completion_ms);
    }
  }
}

void Controller::finish_request(RequestId request, TimeMs completion_ms) {
  auto it = requests_.find(request);
  check(it != requests_.end(), "finish_request: unknown request");
  const RequestState& req = it->second;

  if (req.arrival_ms < options_.metrics_warmup_ms) {
    requests_.erase(it);  // simulated, but outside the measurement window
    return;
  }

  metrics::CompletionRecord record;
  record.request = request;
  record.app = req.app;
  record.tenant = req.tenant;
  record.arrival_ms = req.arrival_ms;
  record.completion_ms = completion_ms;
  record.latency_ms = completion_ms - req.arrival_ms;
  record.slo_ms = req.slo_ms;
  record.hit = record.latency_ms <= req.slo_ms;
  metrics_.completions.push_back(record);

  if (rec_ != nullptr && rec_->is_enabled()) {
    obs::ArgList args{{"app", std::to_string(req.app.get())},
                      {"latency_ms", std::to_string(record.latency_ms)},
                      {"slo_ms", std::to_string(req.slo_ms)},
                      {"hit", record.hit ? "true" : "false"}};
    if (fq_ != nullptr) {
      args.emplace_back("tenant", fq_->spec().tenant_name(req.tenant));
    }
    rec_->span(obs::SpanKind::kRequest,
               "request " + std::to_string(request.get()),
               obs::request_track(request), req.arrival_ms, completion_ms,
               std::move(args));
  }

  requests_.erase(it);
}

void Controller::run_to_completion() { sim_.run(); }

}  // namespace esg::platform
