// Job and task records flowing through the platform. A *job* is one request's
// inference at one DAG stage; a *task* is a batch of jobs dispatched as a
// single function invocation (Section 3.2, task model).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "profile/config.hpp"
#include "workload/dag.hpp"

namespace esg::platform {

struct Job {
  JobId id;
  RequestId request;
  AppId app;
  workload::NodeIndex stage = 0;
  FunctionId function;
  TimeMs request_arrival_ms = 0.0;  ///< when the end-to-end request arrived
  TimeMs enqueue_ms = 0.0;          ///< when this job entered its AFW queue
  /// Where this job's input currently lives: the invoker that ran the
  /// predecessor stage, or invalid for entry-stage jobs (input at ingress).
  InvokerId input_location;
  /// Dispatch attempts already made for this stage (0 = first try). Bumped
  /// by the recovery path; caps the retry loop.
  std::uint8_t attempts = 0;
  /// Invoker the previous attempt failed on (invalid on the first attempt);
  /// placement must avoid it.
  InvokerId exclude_invoker;
};

struct Task {
  TaskId id;
  AppId app;
  workload::NodeIndex stage = 0;
  std::uint32_t tenant = 0;  ///< owning flow (0 on single-tenant runs)
  FunctionId function;
  profile::Config config;
  InvokerId invoker;
  std::vector<Job> jobs;

  TimeMs dispatch_ms = 0.0;  ///< when resources were allocated
  TimeMs cold_ms = 0.0;      ///< cold-start component (0 on warm start)
  TimeMs transfer_ms = 0.0;  ///< input staging component
  TimeMs exec_ms = 0.0;      ///< noisy execution latency
  bool warm_start = false;
  Usd cost = 0.0;
  /// vGPU-slice rows this task occupies in the trace (empty when tracing is
  /// off); released when the task completes.
  std::vector<std::uint32_t> trace_lanes;

  /// Full node-occupancy duration.
  [[nodiscard]] TimeMs occupancy_ms() const {
    return cold_ms + transfer_ms + exec_ms;
  }
};

}  // namespace esg::platform
