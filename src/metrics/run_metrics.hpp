// Metrics collected during one simulated run: SLO hits, cost, latencies,
// scheduling overheads, cold/warm starts, data locality, and the
// pre-planned-configuration miss counters the paper reports in Table 4.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace esg::metrics {

/// One dispatched task (a batch of jobs executed as a single invocation).
struct TaskRecord {
  TaskId task;
  AppId app;
  std::size_t stage = 0;
  FunctionId function;
  InvokerId invoker;
  std::uint16_t batch = 0;
  std::uint16_t vcpus = 0;
  std::uint16_t vgpus = 0;
  TimeMs dispatch_ms = 0.0;
  TimeMs transfer_ms = 0.0;
  TimeMs exec_ms = 0.0;
  Usd cost = 0.0;
};

/// One completed end-to-end application request.
struct CompletionRecord {
  RequestId request;
  AppId app;
  std::uint32_t tenant = 0;  ///< owning flow (0 on single-tenant runs)
  TimeMs arrival_ms = 0.0;
  TimeMs completion_ms = 0.0;
  TimeMs latency_ms = 0.0;
  TimeMs slo_ms = 0.0;
  bool hit = false;     ///< latency <= SLO
  bool failed = false;  ///< aborted after exhausting its retry budget
  bool shed = false;    ///< rejected at admission (load shedding); counts as
                        ///< a miss, excluded from latency statistics
};

struct RunMetrics {
  std::vector<CompletionRecord> completions;
  /// Per-task trace (measured window only); drives CSV export and the
  /// latency time-series analyses.
  std::vector<TaskRecord> task_trace;

  Usd total_cost = 0.0;
  std::unordered_map<AppId, Usd> cost_by_app;

  std::vector<double> plan_overhead_ms;    ///< charged per plan() call
  std::vector<double> plan_wall_clock_ms;  ///< measured per plan() call
  std::vector<double> job_wait_ms;         ///< enqueue -> dispatch, per job

  std::size_t tasks = 0;
  std::size_t cold_starts = 0;
  std::size_t warm_starts = 0;
  std::size_t local_inputs = 0;   ///< batch inputs read from the local FS
  std::size_t remote_inputs = 0;  ///< batch inputs fetched from remote store

  /// Pre-planned configuration applicability (Table 4): a "use" is every
  /// stage dispatch driven by a previously planned configuration; a "miss"
  /// is a use whose planned batch exceeded the jobs actually queued.
  std::size_t plan_uses = 0;
  std::size_t plan_misses = 0;

  std::size_t forced_min_dispatches = 0;  ///< recheck-list escape hatch fired

  // Fault-injection & recovery counters (all zero without a fault spec).
  std::size_t task_failures = 0;        ///< tasks that did not complete
  std::size_t task_timeouts = 0;        ///< failures detected by the watchdog
  std::size_t retries = 0;              ///< jobs re-enqueued after a failure
  std::size_t retries_exhausted = 0;    ///< requests aborted out of retries
  std::size_t cold_start_failures = 0;  ///< provisioning attempts that failed
  std::size_t invoker_crashes = 0;      ///< crash windows that opened

  // Elasticity & degradation counters (all zero on a static fleet).
  std::size_t shed_requests = 0;  ///< rejected at admission (load shedding)
  std::size_t spot_reclaims = 0;  ///< nodes taken by spot reclamation
  std::size_t scale_outs = 0;     ///< nodes acquired by the elastic policy
  std::size_t scale_ins = 0;      ///< idle nodes released by the policy

  [[nodiscard]] std::size_t requests() const { return completions.size(); }
  /// Requests of `app`, shed included (the latencies() vectors exclude shed).
  [[nodiscard]] std::size_t requests_of(AppId app) const;
  [[nodiscard]] double slo_hit_rate() const;
  [[nodiscard]] double slo_hit_rate(AppId app) const;
  [[nodiscard]] Usd cost_of(AppId app) const;
  [[nodiscard]] std::vector<double> latencies() const;
  [[nodiscard]] std::vector<double> latencies(AppId app) const;
  [[nodiscard]] double config_miss_rate() const;
  [[nodiscard]] double mean_job_wait_ms() const;
};

}  // namespace esg::metrics
