#include "metrics/run_metrics.hpp"

namespace esg::metrics {

double RunMetrics::slo_hit_rate() const {
  if (completions.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& c : completions) hits += c.hit ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(completions.size());
}

double RunMetrics::slo_hit_rate(AppId app) const {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (const auto& c : completions) {
    if (c.app != app) continue;
    ++total;
    hits += c.hit ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

Usd RunMetrics::cost_of(AppId app) const {
  auto it = cost_by_app.find(app);
  return it == cost_by_app.end() ? 0.0 : it->second;
}

std::vector<double> RunMetrics::latencies() const {
  std::vector<double> out;
  out.reserve(completions.size());
  for (const auto& c : completions) {
    if (c.shed) continue;  // shed requests never ran; no latency to report
    out.push_back(c.latency_ms);
  }
  return out;
}

std::vector<double> RunMetrics::latencies(AppId app) const {
  std::vector<double> out;
  for (const auto& c : completions) {
    if (c.app == app && !c.shed) out.push_back(c.latency_ms);
  }
  return out;
}

std::size_t RunMetrics::requests_of(AppId app) const {
  std::size_t total = 0;
  for (const auto& c : completions) total += c.app == app ? 1 : 0;
  return total;
}

double RunMetrics::config_miss_rate() const {
  if (plan_uses == 0) return 0.0;
  return static_cast<double>(plan_misses) / static_cast<double>(plan_uses);
}

double RunMetrics::mean_job_wait_ms() const {
  if (job_wait_ms.empty()) return 0.0;
  double sum = 0.0;
  for (double w : job_wait_ms) sum += w;
  return sum / static_cast<double>(job_wait_ms.size());
}

}  // namespace esg::metrics
