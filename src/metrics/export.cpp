#include "metrics/export.hpp"

#include <algorithm>
#include <iomanip>

#include "common/stats.hpp"

namespace esg::metrics {

void write_completions_csv(const RunMetrics& metrics, std::ostream& out) {
  out << "request,app,arrival_ms,completion_ms,latency_ms,slo_ms,hit,shed\n";
  for (const auto& c : metrics.completions) {
    out << c.request.get() << ',' << c.app.get() << ',' << c.arrival_ms << ','
        << c.completion_ms << ',' << c.latency_ms << ',' << c.slo_ms << ','
        << (c.hit ? 1 : 0) << ',' << (c.shed ? 1 : 0) << '\n';
  }
}

void write_task_trace_csv(const RunMetrics& metrics, std::ostream& out) {
  out << "task,app,stage,function,invoker,batch,vcpus,vgpus,dispatch_ms,"
         "transfer_ms,exec_ms,cost\n";
  for (const auto& t : metrics.task_trace) {
    out << t.task.get() << ',' << t.app.get() << ',' << t.stage << ','
        << t.function.get() << ',' << t.invoker.get() << ',' << t.batch << ','
        << t.vcpus << ',' << t.vgpus << ',' << t.dispatch_ms << ','
        << t.transfer_ms << ',' << t.exec_ms << ',' << std::setprecision(10)
        << t.cost << '\n';
  }
}

void write_summary_csv(const RunMetrics& metrics, const std::string& label,
                       std::ostream& out, bool include_header) {
  if (include_header) {
    out << "label,requests,slo_hit_rate,total_cost,tasks,cold_starts,"
           "warm_starts,local_inputs,remote_inputs,plan_uses,plan_misses,"
           "mean_job_wait_ms,latency_p50_ms,latency_p95_ms,latency_p99_ms\n";
  }
  const std::vector<double> latencies = metrics.latencies();
  out << label << ',' << metrics.requests() << ',' << metrics.slo_hit_rate()
      << ',' << std::setprecision(10) << metrics.total_cost << ','
      << metrics.tasks << ',' << metrics.cold_starts << ','
      << metrics.warm_starts << ',' << metrics.local_inputs << ','
      << metrics.remote_inputs << ',' << metrics.plan_uses << ','
      << metrics.plan_misses << ',' << metrics.mean_job_wait_ms() << ','
      << percentile(latencies, 0.50) << ',' << percentile(latencies, 0.95)
      << ',' << percentile(latencies, 0.99) << '\n';
}

void write_per_tenant_summary_csv(const RunMetrics& metrics,
                                  const std::vector<std::string>& tenant_names,
                                  const std::string& label, std::ostream& out,
                                  bool include_header) {
  if (include_header) {
    out << "label,tenant,name,requests,slo_hit_rate,latency_p50_ms,"
           "latency_p95_ms,latency_p99_ms\n";
  }
  std::uint32_t max_tenant = 0;
  for (const auto& c : metrics.completions) {
    max_tenant = std::max(max_tenant, c.tenant);
  }
  for (std::uint32_t t = 0; t <= max_tenant; ++t) {
    std::size_t requests = 0;
    std::size_t hits = 0;
    std::vector<double> latencies;
    for (const auto& c : metrics.completions) {
      if (c.tenant != t) continue;
      ++requests;
      if (c.hit) ++hits;
      if (!c.shed) latencies.push_back(c.latency_ms);
    }
    if (requests == 0) continue;
    std::sort(latencies.begin(), latencies.end());
    const std::string name = t < tenant_names.size()
                                 ? tenant_names[t]
                                 : "t" + std::to_string(t);
    out << label << ',' << t << ',' << name << ',' << requests << ','
        << (static_cast<double>(hits) / static_cast<double>(requests)) << ','
        << percentile(latencies, 0.50) << ',' << percentile(latencies, 0.95)
        << ',' << percentile(latencies, 0.99) << '\n';
  }
}

void write_per_app_summary_csv(const RunMetrics& metrics,
                               const std::string& label, std::ostream& out,
                               bool include_header) {
  if (include_header) {
    out << "label,app,requests,slo_hit_rate,latency_p50_ms,latency_p95_ms,"
           "latency_p99_ms,cost\n";
  }
  std::vector<AppId> apps;
  for (const auto& c : metrics.completions) {
    if (std::find(apps.begin(), apps.end(), c.app) == apps.end()) {
      apps.push_back(c.app);
    }
  }
  std::sort(apps.begin(), apps.end(),
            [](AppId a, AppId b) { return a.get() < b.get(); });
  for (const AppId app : apps) {
    // latencies(app) excludes shed requests, so request counts come from the
    // completion records directly.
    const std::vector<double> latencies = metrics.latencies(app);
    out << label << ',' << app.get() << ',' << metrics.requests_of(app) << ','
        << metrics.slo_hit_rate(app) << ',' << percentile(latencies, 0.50)
        << ',' << percentile(latencies, 0.95) << ','
        << percentile(latencies, 0.99) << ',' << std::setprecision(10)
        << metrics.cost_of(app) << '\n';
  }
}

}  // namespace esg::metrics
