// CSV export of run metrics — completions, the task trace, and aggregate
// summaries — so bench results can be post-processed with any plotting
// toolchain (every row the paper's figures plot is reconstructible from
// these two files).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"

namespace esg::metrics {

/// One row per completed request:
/// request,app,arrival_ms,completion_ms,latency_ms,slo_ms,hit
void write_completions_csv(const RunMetrics& metrics, std::ostream& out);

/// One row per dispatched task:
/// task,app,stage,function,invoker,batch,vcpus,vgpus,dispatch_ms,transfer_ms,exec_ms,cost
void write_task_trace_csv(const RunMetrics& metrics, std::ostream& out);

/// Single-row aggregate summary with a header, labelled with `label`.
void write_summary_csv(const RunMetrics& metrics, const std::string& label,
                       std::ostream& out, bool include_header = true);

/// One row per application (sorted by app id), labelled with `label`:
/// label,app,requests,slo_hit_rate,latency_p50_ms,latency_p95_ms,
/// latency_p99_ms,cost
void write_per_app_summary_csv(const RunMetrics& metrics,
                               const std::string& label, std::ostream& out,
                               bool include_header = true);

/// One row per tenant (sorted by tenant id), labelled with `label`:
/// label,tenant,name,requests,slo_hit_rate,latency_p50_ms,latency_p95_ms,
/// latency_p99_ms. `tenant_names[t]` labels tenant t (falls back to "t<N>").
/// Shed requests count toward attainment but are excluded from latencies,
/// mirroring the per-app summary.
void write_per_tenant_summary_csv(const RunMetrics& metrics,
                                  const std::vector<std::string>& tenant_names,
                                  const std::string& label, std::ostream& out,
                                  bool include_header = true);

}  // namespace esg::metrics
