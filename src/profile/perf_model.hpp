// Analytical performance model (DESIGN.md §4): the noise-free expected
// latency of one invocation of a function under a given configuration,
// calibrated to the Table 3 base latencies at the minimum configuration.
//
// The model is what the paper's emulator gets from its measured profiles: an
// expected latency per (function, batch, vCPU, vGPU) triple. Schedulers read
// these expectations through ProfileTable; the platform perturbs them with
// Gaussian noise at execution time (Section 4: "the emulations add Gaussian
// noises to the performance").
#pragma once

#include "common/types.hpp"
#include "profile/config.hpp"
#include "profile/function_spec.hpp"

namespace esg::profile {

class PerfModel {
 public:
  /// Expected execution latency of one *task* (whole batch) of `spec`
  /// under `config`. Pure; deterministic.
  [[nodiscard]] static TimeMs latency_ms(const FunctionSpec& spec, const Config& config);

  /// Amdahl speed-up for `vcpus` CPUs with parallel fraction `p`.
  [[nodiscard]] static double amdahl(double p, unsigned vcpus);

  /// GPU-side batching multiplier: time for a per-slice batch of n relative
  /// to a batch of 1, i.e. 1 + (n-1)*eta.
  [[nodiscard]] static double batch_multiplier(double eta, unsigned per_slice_batch);

  /// Latency on a degraded GPU slice (fault-injected straggler): the nominal
  /// latency stretched by `factor` (>= 1; values below 1 are clamped to no
  /// slowdown). Routed through the model so the fault engine and any future
  /// degradation curves share a single definition.
  [[nodiscard]] static TimeMs degraded_ms(TimeMs nominal_ms, double factor);
};

}  // namespace esg::profile
