// Performance-profile tables: for each function, the list of valid
// configurations with their expected latencies and costs, sorted by
// increasing latency — exactly the `ConfigLists[j]` input of Algorithm 1
// ("the profiles of function j sorted in increasing latency").
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "profile/config.hpp"
#include "profile/function_spec.hpp"
#include "profile/price_model.hpp"

namespace esg::profile {

/// One profiled configuration of one function.
struct ProfileEntry {
  Config config;
  TimeMs latency_ms = 0.0;  ///< expected task (whole-batch) latency
  Usd task_cost = 0.0;      ///< resources held for the task duration
  Usd per_job_cost = 0.0;   ///< task_cost / batch — the search's cost metric
};

/// The configuration options to enumerate. Dominated configurations
/// (more vGPU slices than jobs in the batch) are dropped: they cost more at
/// identical latency.
struct ConfigSpaceOptions {
  std::vector<std::uint16_t> batches{1, 2, 4, 8, 16, 32};
  std::vector<std::uint16_t> vcpus{1, 2, 4, 8};
  std::vector<std::uint16_t> vgpus{1, 2, 3, 4, 5, 6, 7};
};

/// Enumerates the valid configurations for `spec` (filters batch > max_batch
/// and vgpus > batch).
[[nodiscard]] std::vector<Config> enumerate_configs(const ConfigSpaceOptions& options,
                                                    const FunctionSpec& spec);

/// Profile of a single function over its configuration space.
class ProfileTable {
 public:
  ProfileTable(const FunctionSpec& spec, std::vector<Config> configs,
               const PriceModel& prices);

  [[nodiscard]] const FunctionSpec& spec() const { return spec_; }

  /// Entries sorted by increasing latency (ties: cheaper first).
  [[nodiscard]] std::span<const ProfileEntry> entries() const { return entries_; }

  /// Entries restricted to batch <= max_batch, still latency-sorted.
  /// Used by schedulers that can only batch the jobs currently queued.
  [[nodiscard]] std::vector<ProfileEntry> entries_with_batch_at_most(
      std::uint16_t max_batch) const;

  /// Expected latency for an exact config; throws if not in the table.
  [[nodiscard]] const ProfileEntry& at(const Config& config) const;
  [[nodiscard]] bool contains(const Config& config) const;

  /// Minimum expected latency over all configurations (for tLow).
  [[nodiscard]] TimeMs min_latency() const { return min_latency_; }
  /// Minimum per-job cost over all configurations (for rscLow).
  [[nodiscard]] Usd min_per_job_cost() const { return min_per_job_cost_; }
  /// Per-job cost of the fastest configuration (for rscFastest).
  [[nodiscard]] Usd fastest_per_job_cost() const { return fastest_per_job_cost_; }
  /// The fastest entry itself.
  [[nodiscard]] const ProfileEntry& fastest() const { return entries_.front(); }
  /// The entry of the paper's minimum configuration (1,1,1).
  [[nodiscard]] const ProfileEntry& min_config_entry() const;

 private:
  FunctionSpec spec_;
  std::vector<ProfileEntry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // config key -> entry
  TimeMs min_latency_ = 0.0;
  Usd min_per_job_cost_ = 0.0;
  Usd fastest_per_job_cost_ = 0.0;

  static std::uint64_t key(const Config& c);
};

/// Profiles for a set of functions, keyed by FunctionId.
class ProfileSet {
 public:
  ProfileSet() = default;

  void add(ProfileTable table);

  [[nodiscard]] const ProfileTable& table(FunctionId id) const;
  [[nodiscard]] bool contains(FunctionId id) const;
  [[nodiscard]] std::size_t size() const { return tables_.size(); }

  /// Builds profiles for all built-in (Table 3) functions.
  [[nodiscard]] static ProfileSet builtin(const ConfigSpaceOptions& options = {},
                                          const PriceModel& prices = {});

 private:
  std::unordered_map<FunctionId, ProfileTable> tables_;
};

}  // namespace esg::profile
