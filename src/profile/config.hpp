// A serverless-function configuration: the triple the ESG paper schedules
// over — (batch size, #vCPUs, #vGPUs) (Section 3.1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace esg::profile {

struct Config {
  std::uint16_t batch = 1;   ///< jobs grouped into one task
  std::uint16_t vcpus = 1;   ///< CPU resource units
  std::uint16_t vgpus = 1;   ///< GPU resource units (MIG slices)

  constexpr auto operator<=>(const Config&) const = default;
};

/// Renders e.g. "(b=4, c=2, g=1)".
[[nodiscard]] std::string to_string(const Config& c);

/// The minimum configuration the paper uses as the latency baseline L.
inline constexpr Config kMinConfig{1, 1, 1};

}  // namespace esg::profile
