// Resource pricing (Section 4.1): vCPU $0.034/hour following AWS EC2, vGPU
// $0.67/hour (an A100's hourly price divided by its 7 MIG slices).
#pragma once

#include "common/types.hpp"
#include "profile/config.hpp"

namespace esg::profile {

struct PriceModel {
  Usd usd_per_vcpu_hour = 0.034;
  Usd usd_per_vgpu_hour = 0.67;

  /// Dollar cost of holding `vcpus` + `vgpus` for `duration_ms`.
  [[nodiscard]] Usd cost(unsigned vcpus, unsigned vgpus, TimeMs duration_ms) const {
    const double hours = duration_ms / 3'600'000.0;
    return (usd_per_vcpu_hour * vcpus + usd_per_vgpu_hour * vgpus) * hours;
  }

  /// Cost of one task: the configured resources held for the task latency.
  [[nodiscard]] Usd task_cost(const Config& c, TimeMs latency_ms) const {
    return cost(c.vcpus, c.vgpus, latency_ms);
  }
};

}  // namespace esg::profile
