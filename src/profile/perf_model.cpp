#include "profile/perf_model.hpp"

#include <cmath>
#include <stdexcept>

namespace esg::profile {

double PerfModel::amdahl(double p, unsigned vcpus) {
  if (vcpus == 0) throw std::invalid_argument("amdahl: vcpus must be > 0");
  return 1.0 / ((1.0 - p) + p / static_cast<double>(vcpus));
}

double PerfModel::batch_multiplier(double eta, unsigned per_slice_batch) {
  if (per_slice_batch == 0) {
    throw std::invalid_argument("batch_multiplier: batch must be > 0");
  }
  return 1.0 + (static_cast<double>(per_slice_batch) - 1.0) * eta;
}

TimeMs PerfModel::latency_ms(const FunctionSpec& spec, const Config& config) {
  if (config.batch == 0 || config.vcpus == 0 || config.vgpus == 0) {
    throw std::invalid_argument("latency_ms: config fields must be > 0");
  }
  const double b = config.batch;

  // CPU part: pre/post-processing is per-job (linear in batch) and enjoys an
  // Amdahl speed-up across vCPUs.
  const double t_cpu = spec.cpu_share * spec.base_latency_ms * b /
                       amdahl(spec.cpu_parallel_fraction, config.vcpus);

  // GPU part: the batch is split evenly over the vGPU slices (data-parallel
  // kernels, one per MIG slice; Section 3.2), and each slice processes its
  // share with sub-linear batching gain.
  const auto per_slice =
      static_cast<unsigned>(std::ceil(b / static_cast<double>(config.vgpus)));
  const double t_gpu = (1.0 - spec.cpu_share) * spec.base_latency_ms *
                       batch_multiplier(spec.batch_efficiency, per_slice);

  return t_cpu + t_gpu;
}

TimeMs PerfModel::degraded_ms(TimeMs nominal_ms, double factor) {
  return factor <= 1.0 ? nominal_ms : nominal_ms * factor;
}

}  // namespace esg::profile
