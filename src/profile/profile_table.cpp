#include "profile/profile_table.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "profile/perf_model.hpp"

namespace esg::profile {

std::vector<Config> enumerate_configs(const ConfigSpaceOptions& options,
                                      const FunctionSpec& spec) {
  std::vector<Config> configs;
  configs.reserve(options.batches.size() * options.vcpus.size() *
                  options.vgpus.size());
  for (std::uint16_t b : options.batches) {
    if (b == 0 || b > spec.max_batch) continue;
    for (std::uint16_t c : options.vcpus) {
      if (c == 0) continue;
      for (std::uint16_t g : options.vgpus) {
        if (g == 0) continue;
        if (g > b) continue;  // dominated: extra slices would sit idle
        configs.push_back(Config{b, c, g});
      }
    }
  }
  return configs;
}

std::uint64_t ProfileTable::key(const Config& c) {
  return (std::uint64_t{c.batch} << 32) | (std::uint64_t{c.vcpus} << 16) |
         std::uint64_t{c.vgpus};
}

ProfileTable::ProfileTable(const FunctionSpec& spec, std::vector<Config> configs,
                           const PriceModel& prices)
    : spec_(spec) {
  if (configs.empty()) {
    throw std::invalid_argument("ProfileTable: empty configuration space");
  }
  entries_.reserve(configs.size());
  for (const Config& c : configs) {
    ProfileEntry e;
    e.config = c;
    e.latency_ms = PerfModel::latency_ms(spec, c);
    e.task_cost = prices.task_cost(c, e.latency_ms);
    e.per_job_cost = e.task_cost / static_cast<double>(c.batch);
    entries_.push_back(e);
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.latency_ms != b.latency_ms) return a.latency_ms < b.latency_ms;
              if (a.per_job_cost != b.per_job_cost) {
                return a.per_job_cost < b.per_job_cost;
              }
              return a.config < b.config;
            });

  min_latency_ = entries_.front().latency_ms;
  fastest_per_job_cost_ = entries_.front().per_job_cost;
  min_per_job_cost_ = std::numeric_limits<Usd>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    min_per_job_cost_ = std::min(min_per_job_cost_, entries_[i].per_job_cost);
    const auto [it, inserted] = index_.emplace(key(entries_[i].config), i);
    if (!inserted) {
      throw std::invalid_argument("ProfileTable: duplicate configuration");
    }
  }
}

std::vector<ProfileEntry> ProfileTable::entries_with_batch_at_most(
    std::uint16_t max_batch) const {
  std::vector<ProfileEntry> out;
  out.reserve(entries_.size());
  for (const ProfileEntry& e : entries_) {
    if (e.config.batch <= max_batch) out.push_back(e);
  }
  return out;
}

const ProfileEntry& ProfileTable::at(const Config& config) const {
  auto it = index_.find(key(config));
  if (it == index_.end()) {
    throw std::out_of_range("ProfileTable::at: unknown configuration " +
                            to_string(config));
  }
  return entries_[it->second];
}

bool ProfileTable::contains(const Config& config) const {
  return index_.contains(key(config));
}

const ProfileEntry& ProfileTable::min_config_entry() const {
  return at(kMinConfig);
}

void ProfileSet::add(ProfileTable table) {
  const FunctionId id = table.spec().id;
  const auto [it, inserted] = tables_.emplace(id, std::move(table));
  if (!inserted) {
    throw std::invalid_argument("ProfileSet: duplicate function profile");
  }
}

const ProfileTable& ProfileSet::table(FunctionId id) const {
  auto it = tables_.find(id);
  if (it == tables_.end()) {
    throw std::out_of_range("ProfileSet::table: no profile for function");
  }
  return it->second;
}

bool ProfileSet::contains(FunctionId id) const { return tables_.contains(id); }

ProfileSet ProfileSet::builtin(const ConfigSpaceOptions& options,
                               const PriceModel& prices) {
  ProfileSet set;
  for (const FunctionSpec& spec : builtin_specs()) {
    set.add(ProfileTable(spec, enumerate_configs(options, spec), prices));
  }
  return set;
}

}  // namespace esg::profile
