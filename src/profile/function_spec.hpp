// Specifications of the six DNN serverless functions from Table 3 of the
// paper, plus the per-function constants of the analytical performance model
// (DESIGN.md §4). Base latencies, cold-start times, input sizes and model
// names are the paper's measured values; the scaling constants (cpu_share,
// cpu_parallel_fraction, batch_efficiency) are calibrated so the model keeps
// the qualitative behaviour MIG-sliced GPU inference shows: sub-linear
// batching gain, diminishing vCPU returns, near-linear multi-vGPU data
// parallelism.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/types.hpp"
#include "profile/config.hpp"

namespace esg::profile {

struct FunctionSpec {
  FunctionId id;
  std::string name;
  std::string model;          ///< DNN model name (Table 3)
  TimeMs base_latency_ms;     ///< exec time at (batch=1, 1 vCPU, 1 vGPU)
  TimeMs cold_start_ms;       ///< container + model load time
  double input_mb;            ///< per-job input size
  double cpu_share;           ///< α: fraction of base latency spent on CPU
  double cpu_parallel_fraction;  ///< p in Amdahl's law for the CPU part
  double batch_efficiency;    ///< η: marginal GPU cost of one extra job
  std::uint16_t max_batch;    ///< largest batch the function accepts
};

/// The six functions of Table 3, in the paper's row order. Index with
/// Function enum below; FunctionId values equal the enum values.
[[nodiscard]] std::span<const FunctionSpec> builtin_specs();

/// Stable indices of the built-in functions.
enum class Function : std::uint32_t {
  kSuperResolution = 0,
  kSegmentation = 1,
  kDeblur = 2,
  kClassification = 3,
  kBackgroundRemoval = 4,
  kDepthRecognition = 5,
};

inline constexpr std::size_t kBuiltinFunctionCount = 6;

[[nodiscard]] inline FunctionId id_of(Function f) {
  return FunctionId(static_cast<std::uint32_t>(f));
}

/// Spec lookup by id; throws std::out_of_range for unknown ids.
[[nodiscard]] const FunctionSpec& builtin_spec(FunctionId id);

}  // namespace esg::profile
