#include "profile/config.hpp"

#include <cstdio>

namespace esg::profile {

std::string to_string(const Config& c) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "(b=%u, c=%u, g=%u)", c.batch, c.vcpus, c.vgpus);
  return buf;
}

}  // namespace esg::profile
