#include "profile/function_spec.hpp"

#include <array>
#include <stdexcept>

namespace esg::profile {

namespace {

// Table 3 measured values: base execution time (ms) at the minimum
// configuration, cold start time (ms), input size (MB), model name.
// Scaling constants per DESIGN.md §4:
//  - cpu_share: the fraction of the 1-vCPU base latency spent on the CPU
//    side (JPEG decode, resize, normalisation, tensor marshalling). At the
//    *minimum* configuration a single weak vCPU is the bottleneck for the
//    image-in functions, while the A100 kernel itself is fast — which is
//    what makes faster-than-base configurations (and thus the paper's
//    strict 0.8xL SLO) reachable at all. Small-input functions
//    (classification) decode little but marshal per-image tensors.
//  - cpu_parallel_fraction: image decode/resize parallelises well; tensor
//    marshalling does not.
//  - batch_efficiency: marginal per-extra-image GPU time as a fraction of
//    the first image; heavier models amortise weight reads better (lower η).
const std::array<FunctionSpec, kBuiltinFunctionCount> kSpecs = {{
    {id_of(Function::kSuperResolution), "super_resolution", "SRGAN",
     /*base=*/86.0, /*cold=*/3503.0, /*input_mb=*/2.7,
     /*cpu_share=*/0.45, /*cpu_parallel=*/0.92, /*batch_eff=*/0.25,
     /*max_batch=*/32},
    {id_of(Function::kSegmentation), "segmentation", "deeplabv3_resnet50",
     /*base=*/293.0, /*cold=*/16510.0, /*input_mb=*/2.5,
     /*cpu_share=*/0.40, /*cpu_parallel=*/0.92, /*batch_eff=*/0.20,
     /*max_batch=*/32},
    {id_of(Function::kDeblur), "deblur", "DeblurGAN",
     /*base=*/319.0, /*cold=*/22343.0, /*input_mb=*/1.1,
     /*cpu_share=*/0.35, /*cpu_parallel=*/0.90, /*batch_eff=*/0.20,
     /*max_batch=*/32},
    {id_of(Function::kClassification), "classification", "ResNet50",
     /*base=*/147.0, /*cold=*/18299.0, /*input_mb=*/0.147,
     /*cpu_share=*/0.50, /*cpu_parallel=*/0.92, /*batch_eff=*/0.12,
     /*max_batch=*/64},
    {id_of(Function::kBackgroundRemoval), "background_removal", "U2Net",
     /*base=*/1047.0, /*cold=*/3729.0, /*input_mb=*/2.5,
     /*cpu_share=*/0.30, /*cpu_parallel=*/0.90, /*batch_eff=*/0.18,
     /*max_batch=*/16},
    {id_of(Function::kDepthRecognition), "depth_recognition", "MiDaS",
     /*base=*/828.0, /*cold=*/16479.0, /*input_mb=*/0.648,
     /*cpu_share=*/0.35, /*cpu_parallel=*/0.90, /*batch_eff=*/0.18,
     /*max_batch=*/16},
}};

}  // namespace

std::span<const FunctionSpec> builtin_specs() { return kSpecs; }

const FunctionSpec& builtin_spec(FunctionId id) {
  if (id.get() >= kSpecs.size()) {
    throw std::out_of_range("builtin_spec: unknown function id");
  }
  return kSpecs[id.get()];
}

}  // namespace esg::profile
