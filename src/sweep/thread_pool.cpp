#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace esg::sweep {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads != 0
                         ? threads
                         : std::max(1u, std::thread::hardware_concurrency());
  queues_.resize(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[submit_cursor_ % queues_.size()].push_back(std::move(task));
    ++submit_cursor_;
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::uint64_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

void ThreadPool::worker_loop(unsigned self) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Task task;
    if (!queues_[self].empty()) {
      // Own work LIFO: the most recently dealt task is the cache-warmest.
      task = std::move(queues_[self].back());
      queues_[self].pop_back();
    } else {
      // Steal FIFO from the first non-empty sibling: taking the oldest task
      // leaves the victim its recent (cache-warm) work.
      for (std::size_t k = 1; k < queues_.size(); ++k) {
        std::deque<Task>& victim = queues_[(self + k) % queues_.size()];
        if (victim.empty()) continue;
        task = std::move(victim.front());
        victim.pop_front();
        ++steals_;
        break;
      }
    }
    if (task) {
      lock.unlock();
      task();
      lock.lock();
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (shutdown_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace esg::sweep
