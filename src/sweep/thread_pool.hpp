// Work-stealing thread pool for independent simulation replicas
// (DESIGN.md §15).
//
// Each worker owns a deque: it pops its own work LIFO (back) and steals the
// oldest task (front) from a sibling when its deque runs dry. Submissions are
// dealt round-robin across the deques. One mutex guards all queue state —
// replicas are whole simulation runs (seconds each), so queue operations are
// noise; the plain lock keeps the pool trivially ThreadSanitizer-clean.
//
// Tasks must not throw (a throwing task terminates the process); wrap
// fallible work in a catch-all closure.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace esg::sweep {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts `threads` workers (0 = hardware concurrency, minimum 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Runs every queued task to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across the worker deques).
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(queues_.size());
  }

  /// Tasks a worker took from a sibling's deque (observability/tests).
  [[nodiscard]] std::uint64_t steals() const;

 private:
  void worker_loop(unsigned self);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signalled on submit/shutdown
  std::condition_variable idle_cv_;   ///< signalled when in_flight_ hits 0
  std::vector<std::deque<Task>> queues_;
  std::vector<std::thread> workers_;
  std::size_t submit_cursor_ = 0;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::uint64_t steals_ = 0;
  bool shutdown_ = false;
};

}  // namespace esg::sweep
