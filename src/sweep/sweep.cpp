#include "sweep/sweep.hpp"

#include <exception>
#include <utility>

#include "sweep/thread_pool.hpp"

namespace esg::sweep {

std::vector<SweepCellResult> run_sweep(std::vector<SweepTask> tasks,
                                       const SweepOptions& options) {
  std::vector<SweepCellResult> results(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    results[i].label = tasks[i].label;
  }
  ThreadPool pool(options.jobs);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    // Each closure owns its scenario and writes only its own result slot;
    // the pool's wait_idle() is the only cross-thread synchronisation.
    pool.submit([&tasks, &results, i] {
      try {
        results[i].output = exp::run_scenario(tasks[i].scenario);
      } catch (const std::exception& e) {
        results[i].failed = true;
        results[i].error = e.what();
      }
    });
  }
  pool.wait_idle();
  return results;
}

std::vector<SweepTask> cross_product(
    const exp::Scenario& base, std::span<const exp::SchedulerKind> schedulers,
    std::span<const std::uint64_t> seeds) {
  std::vector<SweepTask> tasks;
  tasks.reserve(schedulers.size() * seeds.size());
  for (const exp::SchedulerKind scheduler : schedulers) {
    for (const std::uint64_t seed : seeds) {
      SweepTask task;
      task.scenario = base;
      task.scenario.scheduler = scheduler;
      task.scenario.seed = seed;
      task.scenario.trace = exp::TraceConfig{};
      task.label = std::string(exp::to_string(scheduler)) + "/seed" +
                   std::to_string(seed);
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

}  // namespace esg::sweep
