// Parallel sweep runner (DESIGN.md §15): executes independent
// (seed × scheduler × config) simulation replicas on the work-stealing
// thread pool and merges results in deterministic task order.
//
// Determinism contract: each replica builds its own RngFactory from its
// scenario's seed inside run_scenario, shares no mutable state with its
// siblings, and lands in the result slot of its submission index — so the
// merged output is byte-identical for any --jobs count (CI cmp-asserts
// jobs=4 against jobs=1 under ThreadSanitizer). Per-replica wall_seconds is
// the one nondeterministic field; artefact writers must exclude it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace esg::sweep {

/// One fully-resolved replica: a scenario (scheduler, config knobs, and seed
/// already applied) plus a stable display label.
struct SweepTask {
  exp::Scenario scenario;
  std::string label;
};

struct SweepOptions {
  unsigned jobs = 0;  ///< worker threads; 0 = hardware concurrency
};

struct SweepCellResult {
  std::string label;
  exp::RunOutput output;  ///< zeroed when failed
  bool failed = false;    ///< the replica threw; `error` holds the message
  std::string error;
};

/// Runs every task on the pool; results come back in task order regardless
/// of execution interleaving. A replica that throws is reported (not fatal).
[[nodiscard]] std::vector<SweepCellResult> run_sweep(
    std::vector<SweepTask> tasks, const SweepOptions& options = {});

/// Builds the (scheduler × seed) cross product from a base scenario —
/// scheduler-major, seeds in the given order — labelled
/// "<scheduler>/seed<seed>". File-backed tracing is stripped from every
/// replica (parallel replicas would race on the output files).
[[nodiscard]] std::vector<SweepTask> cross_product(
    const exp::Scenario& base, std::span<const exp::SchedulerKind> schedulers,
    std::span<const std::uint64_t> seeds);

}  // namespace esg::sweep
