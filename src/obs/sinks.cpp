#include "obs/sinks.hpp"

#include <algorithm>
#include <cstdio>

namespace esg::obs {

namespace {

/// Fixed-precision microsecond timestamp (Chrome traces use µs).
std::string format_us(TimeMs ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms * 1000.0);
  return buf;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string render_args(const ArgList& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(args[i].first);
    out += "\":\"";
    out += json_escape(args[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::size_t MemorySink::count(SpanKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [kind](const Span& s) { return s.kind == kind; }));
}

std::size_t MemorySink::count(InstantKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(instants_.begin(), instants_.end(),
                    [kind](const Instant& e) { return e.kind == kind; }));
}

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "[\n";
}

ChromeTraceSink::ChromeTraceSink(std::unique_ptr<std::ostream> out)
    : owned_(std::move(out)), out_(*owned_) {
  out_ << "[\n";
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::emit(const std::string& json) {
  if (closed_) return;
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << json;
}

void ChromeTraceSink::on_span(const Span& span) {
  std::string line = "{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
                     std::string(to_string(span.kind)) +
                     "\",\"ph\":\"X\",\"ts\":" + format_us(span.start_ms) +
                     ",\"dur\":" + format_us(span.end_ms - span.start_ms) +
                     ",\"pid\":" + std::to_string(span.track.pid) +
                     ",\"tid\":" + std::to_string(span.track.tid) +
                     ",\"args\":" + render_args(span.args) + "}";
  emit(line);
}

void ChromeTraceSink::on_instant(const Instant& instant) {
  std::string line =
      "{\"name\":\"" + json_escape(instant.name) + "\",\"cat\":\"" +
      std::string(to_string(instant.kind)) +
      "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + format_us(instant.at_ms) +
      ",\"pid\":" + std::to_string(instant.track.pid) +
      ",\"tid\":" + std::to_string(instant.track.tid) +
      ",\"args\":" + render_args(instant.args) + "}";
  emit(line);
}

void ChromeTraceSink::on_counter(const CounterSample& sample) {
  std::string line = "{\"name\":\"" + json_escape(sample.name) +
                     "\",\"ph\":\"C\",\"ts\":" + format_us(sample.at_ms) +
                     ",\"pid\":" + std::to_string(sample.track.pid) +
                     ",\"tid\":0,\"args\":{\"value\":" +
                     format_value(sample.value) + "}}";
  emit(line);
}

void ChromeTraceSink::on_process_name(std::uint32_t pid,
                                      std::string_view name) {
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(pid) + ",\"args\":{\"name\":\"" + json_escape(name) +
       "\"}}");
}

void ChromeTraceSink::on_thread_name(Track track, std::string_view name) {
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(track.pid) + ",\"tid\":" + std::to_string(track.tid) +
       ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
}

void ChromeTraceSink::flush() {
  if (closed_) return;
  closed_ = true;
  out_ << "\n]\n";
  out_.flush();
}

JsonlStatsSink::JsonlStatsSink(std::ostream& out) : out_(out) {}

JsonlStatsSink::JsonlStatsSink(std::unique_ptr<std::ostream> out)
    : owned_(std::move(out)), out_(*owned_) {}

void JsonlStatsSink::on_counter(const CounterSample& sample) {
  char ts[64];
  std::snprintf(ts, sizeof(ts), "%.3f", sample.at_ms);
  char value[64];
  std::snprintf(value, sizeof(value), "%.6g", sample.value);
  out_ << "{\"ts_ms\":" << ts << ",\"pid\":" << sample.track.pid
       << ",\"name\":\"" << json_escape(sample.name) << "\",\"value\":" << value
       << "}\n";
}

}  // namespace esg::obs
