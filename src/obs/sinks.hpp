// The built-in sinks:
//  - MemorySink: buffers everything for tests and in-process analysis.
//  - ChromeTraceSink: streams Chrome-trace-event JSON ("trace.json") that
//    loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//  - JsonlStatsSink: one JSON object per line for counter time series,
//    trivially ingestible by pandas/jq.
//
// All output is formatted with fixed-precision snprintf, so two identical
// runs produce byte-identical files (the determinism tests rely on this).
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace esg::obs {

class MemorySink final : public TraceSink {
 public:
  void on_span(const Span& span) override { spans_.push_back(span); }
  void on_instant(const Instant& instant) override {
    instants_.push_back(instant);
  }
  void on_counter(const CounterSample& sample) override {
    counters_.push_back(sample);
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] const std::vector<CounterSample>& counters() const {
    return counters_;
  }

  [[nodiscard]] std::size_t count(SpanKind kind) const;
  [[nodiscard]] std::size_t count(InstantKind kind) const;

 private:
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counters_;
};

/// Streaming writer of the Chrome trace-event JSON-array format. Spans map
/// to complete ("X") events, instants to thread-scoped instant ("i") events,
/// counters to counter ("C") events and track names to metadata ("M")
/// events. Times are converted from simulated ms to trace µs.
class ChromeTraceSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (kept alive past the last event).
  explicit ChromeTraceSink(std::ostream& out);
  /// Takes ownership of the stream (e.g. an std::ofstream).
  explicit ChromeTraceSink(std::unique_ptr<std::ostream> out);
  ~ChromeTraceSink() override;

  void on_span(const Span& span) override;
  void on_instant(const Instant& instant) override;
  void on_counter(const CounterSample& sample) override;
  void on_process_name(std::uint32_t pid, std::string_view name) override;
  void on_thread_name(Track track, std::string_view name) override;
  void flush() override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream& out_;
  bool first_ = true;
  bool closed_ = false;

  void emit(const std::string& json);
};

/// Counter samples as JSON Lines: {"ts_ms":..,"pid":..,"name":"..","value":..}
class JsonlStatsSink final : public TraceSink {
 public:
  explicit JsonlStatsSink(std::ostream& out);
  explicit JsonlStatsSink(std::unique_ptr<std::ostream> out);

  void on_span(const Span&) override {}
  void on_instant(const Instant&) override {}
  void on_counter(const CounterSample& sample) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream& out_;
};

/// Escapes a string for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace esg::obs
