// Periodic gauge sampler: snapshots cluster state (per-invoker vCPU/vGPU
// occupancy and warm-container counts, cluster-wide free resources) plus an
// optional caller-supplied queue-depth gauge, on a configurable interval.
//
// The sampler self-schedules on the simulator and stops as soon as no other
// events are pending, so it never keeps a finished run alive.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace esg::obs {

class StatsSampler {
 public:
  /// All references must outlive the sampler.
  StatsSampler(sim::Simulator& sim, const cluster::Cluster& cluster,
               TraceRecorder& recorder, TimeMs interval_ms);

  /// Extra gauge sampled on the controller track (e.g. total queued jobs).
  void set_queue_depth_provider(std::function<std::size_t()> provider) {
    queue_depth_ = std::move(provider);
  }

  /// Registers a named gauge sampled on the controller track after the
  /// built-in counters, in registration order (e.g. the per-tenant
  /// virtual-time/backlog/throttle series). Runs that register no gauges
  /// emit exactly the legacy counter set.
  void add_gauge(std::string name, std::function<double()> provider) {
    gauges_.emplace_back(std::move(name), std::move(provider));
  }

  /// Schedules the first sample at the current simulated time. No-op when
  /// the recorder is disabled.
  void start();

  [[nodiscard]] std::size_t samples_taken() const { return samples_; }

 private:
  void tick();
  void sample();

  sim::Simulator& sim_;
  const cluster::Cluster& cluster_;
  TraceRecorder& recorder_;
  TimeMs interval_ms_;
  std::function<std::size_t()> queue_depth_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  std::size_t samples_ = 0;
};

}  // namespace esg::obs
