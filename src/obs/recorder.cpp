#include "obs/recorder.hpp"

#include <algorithm>

namespace esg::obs {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kStaging:
      return "staging";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kSliceOccupied:
      return "slice_occupied";
    case SpanKind::kColdStart:
      return "cold_start";
    case SpanKind::kKeepAlive:
      return "keep_alive";
    case SpanKind::kPrewarm:
      return "prewarm";
    case SpanKind::kInvokerDown:
      return "invoker_down";
  }
  return "unknown";
}

std::string_view to_string(InstantKind kind) {
  switch (kind) {
    case InstantKind::kDispatch:
      return "dispatch";
    case InstantKind::kNoPlacement:
      return "no_placement";
    case InstantKind::kDefer:
      return "defer";
    case InstantKind::kForcedMinDispatch:
      return "forced_min_dispatch";
    case InstantKind::kPrewarmIssued:
      return "prewarm_issued";
    case InstantKind::kPrewarmSkipped:
      return "prewarm_skipped";
    case InstantKind::kBudgetPlan:
      return "budget_plan";
    case InstantKind::kBudgetReplan:
      return "budget_replan";
    case InstantKind::kFault:
      return "fault";
    case InstantKind::kRetry:
      return "retry";
    case InstantKind::kRetryExhausted:
      return "retry_exhausted";
    case InstantKind::kInvokerCrash:
      return "invoker_crash";
    case InstantKind::kInvokerRejoin:
      return "invoker_rejoin";
    case InstantKind::kColdStartFailure:
      return "cold_start_failure";
    case InstantKind::kScaleOut:
      return "scale_out";
    case InstantKind::kScaleIn:
      return "scale_in";
    case InstantKind::kNodeActivated:
      return "node_activated";
    case InstantKind::kNodeRetired:
      return "node_retired";
    case InstantKind::kSpotWarning:
      return "spot_warning";
    case InstantKind::kSpotReclaim:
      return "spot_reclaim";
    case InstantKind::kShed:
      return "shed";
    case InstantKind::kForecastBin:
      return "forecast_bin";
    case InstantKind::kForecastPrewarm:
      return "forecast_prewarm";
  }
  return "unknown";
}

std::optional<SpanKind> span_kind_from_string(std::string_view s) {
  static constexpr SpanKind kAll[] = {
      SpanKind::kRequest,   SpanKind::kQueueWait, SpanKind::kStage,
      SpanKind::kStaging,   SpanKind::kExec,      SpanKind::kSliceOccupied,
      SpanKind::kColdStart, SpanKind::kKeepAlive, SpanKind::kPrewarm,
      SpanKind::kInvokerDown};
  for (const SpanKind kind : kAll) {
    if (to_string(kind) == s) return kind;
  }
  return std::nullopt;
}

std::optional<InstantKind> instant_kind_from_string(std::string_view s) {
  static constexpr InstantKind kAll[] = {
      InstantKind::kDispatch,       InstantKind::kNoPlacement,
      InstantKind::kDefer,          InstantKind::kForcedMinDispatch,
      InstantKind::kPrewarmIssued,  InstantKind::kPrewarmSkipped,
      InstantKind::kBudgetPlan,     InstantKind::kBudgetReplan,
      InstantKind::kFault,          InstantKind::kRetry,
      InstantKind::kRetryExhausted, InstantKind::kInvokerCrash,
      InstantKind::kInvokerRejoin,  InstantKind::kColdStartFailure,
      InstantKind::kScaleOut,       InstantKind::kScaleIn,
      InstantKind::kNodeActivated,  InstantKind::kNodeRetired,
      InstantKind::kSpotWarning,    InstantKind::kSpotReclaim,
      InstantKind::kShed,           InstantKind::kForecastBin,
      InstantKind::kForecastPrewarm};
  for (const InstantKind kind : kAll) {
    if (to_string(kind) == s) return kind;
  }
  return std::nullopt;
}

void TraceRecorder::add_sink(std::unique_ptr<TraceSink> sink) {
  if (!sink) return;
  sinks_.push_back(std::move(sink));
  enabled_ = true;
}

void TraceRecorder::span(SpanKind kind, std::string name, Track track,
                         TimeMs start_ms, TimeMs end_ms, ArgList args) {
  if (!enabled_) return;
  const Span event{kind, std::move(name), track, start_ms, end_ms,
                   std::move(args)};
  for (auto& sink : sinks_) sink->on_span(event);
  ++spans_;
}

void TraceRecorder::instant(InstantKind kind, std::string name, Track track,
                            TimeMs at_ms, ArgList args) {
  if (!enabled_) return;
  const Instant event{kind, std::move(name), track, at_ms, std::move(args)};
  for (auto& sink : sinks_) sink->on_instant(event);
  ++instants_;
}

void TraceRecorder::counter(std::string name, Track track, TimeMs at_ms,
                            double value) {
  if (!enabled_) return;
  const CounterSample sample{std::move(name), track, at_ms, value};
  for (auto& sink : sinks_) sink->on_counter(sample);
  ++counters_;
}

void TraceRecorder::name_process(std::uint32_t pid, std::string name) {
  if (!enabled_) return;
  for (auto& sink : sinks_) sink->on_process_name(pid, name);
}

void TraceRecorder::name_thread(Track track, std::string name) {
  if (!enabled_) return;
  for (auto& sink : sinks_) sink->on_thread_name(track, name);
}

void TraceRecorder::flush() {
  for (auto& sink : sinks_) sink->flush();
}

void LaneAllocator::configure(std::uint32_t group, std::uint32_t lanes) {
  busy_[group].assign(lanes, false);
}

std::vector<std::uint32_t> LaneAllocator::acquire(std::uint32_t group,
                                                  std::uint32_t count) {
  std::vector<std::uint32_t> claimed;
  auto it = busy_.find(group);
  if (it == busy_.end()) return claimed;
  auto& lanes = it->second;
  for (std::uint32_t lane = 0; lane < lanes.size() && claimed.size() < count;
       ++lane) {
    if (!lanes[lane]) {
      lanes[lane] = true;
      claimed.push_back(lane);
    }
  }
  return claimed;
}

void LaneAllocator::release(std::uint32_t group,
                            const std::vector<std::uint32_t>& lanes) {
  auto it = busy_.find(group);
  if (it == busy_.end()) return;
  for (const std::uint32_t lane : lanes) {
    if (lane < it->second.size()) it->second[lane] = false;
  }
}

std::size_t LaneAllocator::busy_lanes(std::uint32_t group) const {
  auto it = busy_.find(group);
  if (it == busy_.end()) return 0;
  return static_cast<std::size_t>(
      std::count(it->second.begin(), it->second.end(), true));
}

}  // namespace esg::obs
