// Typed trace vocabulary of the observability subsystem.
//
// A *span* is a phase with duration (request lifetime, queue wait, cold
// start, input staging, execution, keep-alive window); an *instant* is a
// point decision (dispatch, rejection, forced minimum-config dispatch); a
// *counter sample* is one point of a gauge time series (vGPU occupancy,
// queue depth). All timestamps are simulated milliseconds taken from
// Simulator::now() by the call sites — this layer never reads a clock, which
// keeps traces bit-reproducible.
//
// Tracks use Chrome-trace coordinates: `pid` groups lanes into a named
// process (the controller, the request pool, one process per invoker) and
// `tid` is one lane inside it (a GPU slice, the provisioning lane, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace esg::obs {

enum class SpanKind : std::uint8_t {
  kRequest,        ///< end-to-end request (arrival -> last sink completion)
  kQueueWait,      ///< one job sitting in its AFW queue (enqueue -> dispatch)
  kStage,          ///< one job's task as seen from the request timeline
  kStaging,        ///< input staging on the invoker (batch waits for slowest)
  kExec,           ///< model execution (exactly one per dispatched task)
  kSliceOccupied,  ///< extra vGPU slices held by a multi-slice task
  kColdStart,      ///< container provisioning (create + model load)
  kKeepAlive,      ///< idle warm container parked in the keep-alive pool
  kPrewarm,        ///< proactive warm-up issued by the prewarm manager
  kInvokerDown,    ///< fault-injected crash window (crash -> rejoin)
};

enum class InstantKind : std::uint8_t {
  kDispatch,           ///< controller committed a (batch, vCPU, vGPU) config
  kNoPlacement,        ///< no invoker fits any candidate (recheck round)
  kDefer,              ///< strategy chose to wait for more jobs
  kForcedMinDispatch,  ///< recheck-list escape hatch fired
  kPrewarmIssued,
  kPrewarmSkipped,
  kBudgetPlan,    ///< per-stage SLO budgets fixed at request arrival
  kBudgetReplan,  ///< renormalised group budget from a mid-workflow re-plan
  kFault,             ///< a job's task failed (transient/timeout/crash)
  kRetry,             ///< failed jobs re-enqueued after backoff
  kRetryExhausted,    ///< retry budget spent; the request was aborted
  kInvokerCrash,      ///< fault-injected node loss observed by the controller
  kInvokerRejoin,     ///< crashed node returned to service
  kColdStartFailure,  ///< container provisioning burned its time and failed
  kScaleOut,          ///< elastic policy acquired a node (Retired -> Warming)
  kScaleIn,           ///< elastic policy released an idle node
  kNodeActivated,     ///< a warming node finished provisioning (joins fleet)
  kNodeRetired,       ///< a node left the fleet (drain finished)
  kSpotWarning,       ///< spot reclamation notice; the node starts draining
  kSpotReclaim,       ///< reclamation deadline hit; in-flight work was killed
  kShed,              ///< request rejected at admission (load shedding)
  kForecastBin,       ///< one closed forecast bin: predicted vs realized
  kForecastPrewarm,   ///< proactive warm target raised from a forecast
};

[[nodiscard]] std::string_view to_string(SpanKind kind);
[[nodiscard]] std::string_view to_string(InstantKind kind);

/// Inverse of to_string, for reading serialized traces back (the offline
/// analysis path). Returns nullopt for categories this build does not know.
[[nodiscard]] std::optional<SpanKind> span_kind_from_string(std::string_view s);
[[nodiscard]] std::optional<InstantKind> instant_kind_from_string(
    std::string_view s);

struct Track {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;

  constexpr auto operator<=>(const Track&) const = default;
};

// Reserved pid layout. Invoker i maps to pid kInvokerPidBase + i, so traces
// from fleets of any size keep stable, collision-free coordinates.
inline constexpr std::uint32_t kControllerPid = 1;
inline constexpr std::uint32_t kRequestsPid = 2;
inline constexpr std::uint32_t kInvokerPidBase = 100;

// Invoker lanes 0..vgpus-1 render per-slice occupancy; these sit above them.
inline constexpr std::uint32_t kProvisionLane = 900;
inline constexpr std::uint32_t kWarmPoolLane = 901;

[[nodiscard]] constexpr Track controller_track() { return {kControllerPid, 0}; }
[[nodiscard]] constexpr Track request_track(RequestId id) {
  return {kRequestsPid, id.get()};
}
[[nodiscard]] constexpr Track invoker_track(InvokerId id, std::uint32_t lane) {
  return {kInvokerPidBase + id.get(), lane};
}

/// Key/value payload rendered into the trace "args" object. Values are
/// pre-rendered strings; build one only behind TraceRecorder::is_enabled().
using ArgList = std::vector<std::pair<std::string, std::string>>;

struct Span {
  SpanKind kind{};
  std::string name;
  Track track;
  TimeMs start_ms = 0.0;
  TimeMs end_ms = 0.0;
  ArgList args;
};

struct Instant {
  InstantKind kind{};
  std::string name;
  Track track;
  TimeMs at_ms = 0.0;
  ArgList args;
};

struct CounterSample {
  std::string name;
  Track track;  ///< tid is ignored; counters attach to the process
  TimeMs at_ms = 0.0;
  double value = 0.0;
};

}  // namespace esg::obs
