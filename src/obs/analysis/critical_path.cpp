#include "obs/analysis/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <unordered_map>

namespace esg::obs::analysis {

namespace {

/// Chain-link matching tolerance. Pre-quantisation the endpoints are equal
/// doubles; quantisation moves each endpoint by at most 5e-7 ms, so 1e-4 ms
/// is far above any rounding wobble and far below the simulator's event
/// granularity.
constexpr TimeMs kLinkEps = 1e-4;

std::uint64_t arg_u64(const ArgList& args, std::string_view key) {
  return static_cast<std::uint64_t>(arg_double(args, key, 0.0));
}

struct StageSpans {
  const Span* wait = nullptr;
  const Span* run = nullptr;
};

struct TaskSpans {
  const Span* exec = nullptr;
  const Span* staging = nullptr;
  /// Latest queue-wait start among the task's batch (the enqueue time of the
  /// job the batch waited for).
  TimeMs max_enqueue_ms = -std::numeric_limits<TimeMs>::infinity();
};

}  // namespace

CriticalPathResult reconstruct_critical_paths(const TraceDataset& dataset) {
  // Per-request stage spans, task-level joins, and provisioning intervals.
  std::map<std::uint32_t, const Span*> request_spans;
  std::map<std::uint32_t, std::map<std::size_t, StageSpans>> stage_spans;
  std::unordered_map<std::uint64_t, TaskSpans> task_spans;
  // (invoker pid, function) -> provisioning intervals.
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::vector<std::pair<TimeMs, TimeMs>>>
      cold_spans;

  for (const Span& span : dataset.spans) {
    switch (span.kind) {
      case SpanKind::kRequest:
        request_spans[span.track.tid] = &span;
        break;
      case SpanKind::kQueueWait: {
        const auto stage = static_cast<std::size_t>(arg_u64(span.args, "stage"));
        stage_spans[span.track.tid][stage].wait = &span;
        TaskSpans& task = task_spans[arg_u64(span.args, "task")];
        task.max_enqueue_ms = std::max(task.max_enqueue_ms, span.start_ms);
        break;
      }
      case SpanKind::kStage: {
        const auto stage = static_cast<std::size_t>(arg_u64(span.args, "stage"));
        stage_spans[span.track.tid][stage].run = &span;
        break;
      }
      case SpanKind::kExec:
        task_spans[arg_u64(span.args, "task")].exec = &span;
        break;
      case SpanKind::kStaging:
        task_spans[arg_u64(span.args, "task")].staging = &span;
        break;
      case SpanKind::kColdStart:
        cold_spans[{span.track.pid, arg_u64(span.args, "function")}]
            .emplace_back(span.start_ms, span.end_ms);
        break;
      default:
        break;  // slice occupancy / keep-alive / prewarm are not lifecycle
    }
  }

  CriticalPathResult result;
  for (const auto& [request_id, request_span] : request_spans) {
    const auto stages_it = stage_spans.find(request_id);
    if (stages_it == stage_spans.end() || stages_it->second.empty()) {
      ++result.unreconstructed;
      continue;
    }
    const auto& stages = stages_it->second;

    // Usable stages need both halves of the (wait, run) pair.
    bool complete = true;
    for (const auto& [stage, spans] : stages) {
      if (spans.wait == nullptr || spans.run == nullptr) complete = false;
    }
    if (!complete) {
      ++result.unreconstructed;
      continue;
    }

    // Terminal stage: latest run end (the completion that finished the
    // request); ties break to the lowest stage index for determinism.
    std::size_t terminal = stages.begin()->first;
    for (const auto& [stage, spans] : stages) {
      if (spans.run->end_ms > stages.at(terminal).run->end_ms) terminal = stage;
    }

    // Backward chain: each stage's wait started when its critical
    // predecessor's run ended; the entry stage's wait started at arrival.
    const TimeMs arrival = request_span->start_ms;
    std::vector<std::size_t> chain{terminal};
    bool stitched = true;
    while (true) {
      const TimeMs boundary = stages.at(chain.back()).wait->start_ms;
      if (std::abs(boundary - arrival) <= kLinkEps) break;
      std::size_t pred = stages.size();  // sentinel
      bool found = false;
      for (const auto& [stage, spans] : stages) {
        if (std::find(chain.begin(), chain.end(), stage) != chain.end()) {
          continue;
        }
        if (std::abs(spans.run->end_ms - boundary) <= kLinkEps &&
            (!found || stage < pred)) {
          pred = stage;
          found = true;
        }
      }
      if (!found) {
        stitched = false;
        break;
      }
      chain.push_back(pred);
    }
    if (!stitched) {
      ++result.unreconstructed;
      continue;
    }
    std::reverse(chain.begin(), chain.end());

    RequestBreakdown breakdown;
    breakdown.request = request_id;
    breakdown.app = static_cast<std::uint32_t>(
        arg_double(request_span->args, "app", 0.0));
    breakdown.arrival_ms = arrival;
    breakdown.slo_ms = arg_double(request_span->args, "slo_ms", 0.0);
    breakdown.hit = arg_value(request_span->args, "hit") == "true";

    // Forward pass: charge each stage from the previous link's end so the
    // component sums telescope to the end-to-end latency exactly.
    TimeMs cursor = arrival;
    for (const std::size_t stage : chain) {
      const StageSpans& spans = stages.at(stage);
      StageBreakdown sb;
      sb.stage = stage;
      sb.task = arg_u64(spans.run->args, "task");
      sb.start_ms = cursor;
      sb.dispatch_ms = spans.run->start_ms;
      sb.end_ms = spans.run->end_ms;

      const TimeMs wait = sb.dispatch_ms - sb.start_ms;
      const TimeMs wait_floor = std::max(wait, 0.0);
      const auto task_it = task_spans.find(sb.task);
      const TaskSpans* task =
          task_it == task_spans.end() ? nullptr : &task_it->second;

      // Batch wait: the slice of the queue wait spent waiting for the last
      // batch-mate to arrive.
      if (task != nullptr && task->max_enqueue_ms > sb.start_ms) {
        sb.batch_wait_ms =
            std::min(task->max_enqueue_ms - sb.start_ms, wait_floor);
      }

      // Cold start: overlap of this function's provisioning on the invoker
      // that ran the task with the remaining wait window.
      if (task != nullptr && task->exec != nullptr) {
        const std::uint32_t invoker_pid = task->exec->track.pid;
        const std::uint64_t function = arg_u64(task->exec->args, "function");
        const auto cold_it = cold_spans.find({invoker_pid, function});
        if (cold_it != cold_spans.end()) {
          const TimeMs lo = sb.start_ms + sb.batch_wait_ms;
          const TimeMs hi = sb.dispatch_ms;
          TimeMs overlap = 0.0;
          for (const auto& [cs, ce] : cold_it->second) {
            overlap += std::max(0.0, std::min(ce, hi) - std::max(cs, lo));
          }
          sb.cold_start_ms =
              std::min(overlap, wait_floor - sb.batch_wait_ms);
        }
      }
      sb.queueing_ms = wait - sb.batch_wait_ms - sb.cold_start_ms;

      // Run split: [dispatch .. work start] is scheduling overhead, then the
      // staging span, then execution; exec is the residual so the three sum
      // to the run duration exactly.
      const TimeMs run = sb.end_ms - sb.dispatch_ms;
      if (task != nullptr && task->exec != nullptr) {
        const TimeMs work_start = task->staging != nullptr
                                      ? task->staging->start_ms
                                      : task->exec->start_ms;
        sb.sched_overhead_ms =
            std::clamp(work_start - sb.dispatch_ms, 0.0, run);
        if (task->staging != nullptr) {
          sb.transfer_ms =
              std::clamp(task->staging->end_ms - task->staging->start_ms, 0.0,
                         run - sb.sched_overhead_ms);
        }
      }
      sb.exec_ms = run - sb.sched_overhead_ms - sb.transfer_ms;

      cursor = sb.end_ms;
      breakdown.path.push_back(sb);
    }
    breakdown.completion_ms = cursor;
    result.requests.push_back(std::move(breakdown));
  }
  return result;
}

}  // namespace esg::obs::analysis
