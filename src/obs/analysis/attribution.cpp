#include "obs/analysis/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/trace_event.hpp"

namespace esg::obs::analysis {

namespace {

struct BudgetPlan {
  // Per-DAG-node planned budget in ms, keyed by stage index ("b<i>" args).
  std::map<std::size_t, double> per_stage;
};

std::map<std::uint32_t, BudgetPlan> collect_budget_plans(
    const TraceDataset& dataset) {
  std::map<std::uint32_t, BudgetPlan> plans;
  for (const Instant& instant : dataset.instants) {
    if (instant.kind != InstantKind::kBudgetPlan) continue;
    BudgetPlan& plan = plans[instant.track.tid];
    for (const auto& [key, value] : instant.args) {
      if (key.size() < 2 || key[0] != 'b') continue;
      char* end = nullptr;
      const unsigned long stage = std::strtoul(key.c_str() + 1, &end, 10);
      if (end == key.c_str() + 1 || *end != '\0') continue;
      plan.per_stage[static_cast<std::size_t>(stage)] =
          arg_double(instant.args, key, 0.0);
    }
  }
  return plans;
}

/// Fault/abort markers a request's track carried (fault-injection runs).
struct FaultMarks {
  std::map<std::size_t, std::size_t> faults_by_stage;
  std::set<std::size_t> reclaimed_stages;  ///< stages killed by spot reclaim
  bool aborted = false;
  std::size_t abort_stage = 0;
};

std::map<std::uint32_t, FaultMarks> collect_fault_marks(
    const TraceDataset& dataset) {
  std::map<std::uint32_t, FaultMarks> marks;
  for (const Instant& instant : dataset.instants) {
    if (instant.track.pid != kRequestsPid) continue;
    if (instant.kind == InstantKind::kFault) {
      const auto stage =
          static_cast<std::size_t>(arg_double(instant.args, "stage", 0.0));
      FaultMarks& mark = marks[instant.track.tid];
      ++mark.faults_by_stage[stage];
      for (const auto& [key, value] : instant.args) {
        if (key == "cause" && value == "reclaimed") {
          mark.reclaimed_stages.insert(stage);
        }
      }
    } else if (instant.kind == InstantKind::kRetryExhausted) {
      FaultMarks& mark = marks[instant.track.tid];
      mark.aborted = true;
      mark.abort_stage =
          static_cast<std::size_t>(arg_double(instant.args, "stage", 0.0));
    }
  }
  return marks;
}

std::string classify_miss(const RequestBreakdown& request) {
  // Blame the stage with the worst signed drift; ties go to the earliest
  // stage so the classification is deterministic.
  const StageBreakdown* blame = &request.path.front();
  for (const StageBreakdown& stage : request.path) {
    if (stage.drift_ms() > blame->drift_ms()) blame = &stage;
  }

  // Within the blamed stage, the dominant contributor wins. Execution only
  // counts by its *excess* over the planned budget: exec within plan is the
  // planner's expectation, exec beyond it means the budget was undersized.
  struct Candidate {
    const char* label;
    double value;
  };
  const double exec_excess = std::max(0.0, blame->exec_ms - blame->planned_ms);
  const Candidate candidates[] = {
      {"queueing", blame->queueing_ms},
      {"cold_start", blame->cold_start_ms},
      {"batch_wait", blame->batch_wait_ms},
      {"transfer", blame->transfer_ms},
      {"sched_overhead", blame->sched_overhead_ms},
      {"budget_undersized", exec_excess},
  };
  const Candidate* best = &candidates[5];  // degenerate all-zero default
  for (const Candidate& c : candidates) {
    if (c.value > best->value) best = &c;
  }
  return std::string(best->label) + "@stage" + std::to_string(blame->stage);
}

void accumulate_components(ComponentMeans& sums, const StageBreakdown& stage) {
  sums.batch_wait += stage.batch_wait_ms;
  sums.cold_start += stage.cold_start_ms;
  sums.queueing += stage.queueing_ms;
  sums.sched_overhead += stage.sched_overhead_ms;
  sums.transfer += stage.transfer_ms;
  sums.exec += stage.exec_ms;
}

void divide_components(ComponentMeans& sums, std::size_t n) {
  if (n == 0) return;
  const auto d = static_cast<double>(n);
  sums.batch_wait /= d;
  sums.cold_start /= d;
  sums.queueing /= d;
  sums.sched_overhead /= d;
  sums.transfer /= d;
  sums.exec /= d;
}

LatencyQuantiles latency_quantiles(std::vector<double> values) {
  LatencyQuantiles q;
  q.p50 = percentile(values, 0.50);
  q.p95 = percentile(values, 0.95);
  q.p99 = percentile(std::move(values), 0.99);
  return q;
}

// --- deterministic JSON rendering -----------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void write_quantiles(const LatencyQuantiles& q, std::ostream& out) {
  out << "{\"p50\":" << fmt(q.p50) << ",\"p95\":" << fmt(q.p95)
      << ",\"p99\":" << fmt(q.p99) << "}";
}

void write_components(const ComponentMeans& c, std::ostream& out) {
  out << "{\"batch_wait\":" << fmt(c.batch_wait)
      << ",\"cold_start\":" << fmt(c.cold_start)
      << ",\"queueing\":" << fmt(c.queueing)
      << ",\"sched_overhead\":" << fmt(c.sched_overhead)
      << ",\"transfer\":" << fmt(c.transfer) << ",\"exec\":" << fmt(c.exec)
      << "}";
}

void write_causes(const std::map<std::string, std::size_t>& causes,
                  std::ostream& out) {
  out << "{";
  bool first = true;
  for (const auto& [cause, count] : causes) {
    if (!first) out << ",";
    first = false;
    out << "\"" << cause << "\":" << count;
  }
  out << "}";
}

void write_histogram(const Histogram& hist, std::ostream& out) {
  out << "{\"lo\":" << fmt(hist.bin_lo(0)) << ",\"hi\":"
      << fmt(hist.bin_hi(hist.bin_count() - 1)) << ",\"samples\":"
      << hist.total() << ",\"p50\":" << fmt(hist.quantile(0.50))
      << ",\"p90\":" << fmt(hist.quantile(0.90)) << ",\"bins\":[";
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    if (b > 0) out << ",";
    out << hist.count_at(b);
  }
  out << "]}";
}

}  // namespace

Histogram make_drift_histogram() { return Histogram(-1.0, 1.0, 16); }

void attribute_slo_budgets(CriticalPathResult& paths,
                           const TraceDataset& dataset) {
  const auto plans = collect_budget_plans(dataset);
  const auto fault_marks = collect_fault_marks(dataset);
  for (RequestBreakdown& request : paths.requests) {
    const auto plan_it = plans.find(request.request);
    const BudgetPlan* plan =
        plan_it == plans.end() ? nullptr : &plan_it->second;
    const double uniform =
        request.path.empty()
            ? 0.0
            : request.slo_ms / static_cast<double>(request.path.size());
    request.uniform_budget = plan == nullptr;
    for (StageBreakdown& stage : request.path) {
      if (plan != nullptr) {
        const auto b = plan->per_stage.find(stage.stage);
        stage.planned_ms = b == plan->per_stage.end() ? uniform : b->second;
      } else {
        stage.planned_ms = uniform;
      }
    }
    if (!request.hit && !request.path.empty()) {
      // Fault causes take precedence: a fault explains the miss better than
      // the drift it left behind.
      const auto mark_it = fault_marks.find(request.request);
      if (mark_it != fault_marks.end() && mark_it->second.aborted) {
        request.miss_cause =
            "retry_exhausted@stage" + std::to_string(mark_it->second.abort_stage);
      } else {
        const StageBreakdown* faulted = nullptr;
        if (mark_it != fault_marks.end()) {
          for (const StageBreakdown& stage : request.path) {
            if (mark_it->second.faults_by_stage.count(stage.stage) == 0) continue;
            if (faulted == nullptr || stage.drift_ms() > faulted->drift_ms()) {
              faulted = &stage;
            }
          }
        }
        if (faulted != nullptr) {
          // Spot reclamations get their own cause label so degradation under
          // churn is attributable separately from injected faults.
          const bool reclaimed =
              mark_it->second.reclaimed_stages.count(faulted->stage) > 0;
          request.miss_cause = (reclaimed ? "reclaimed@stage" : "fault@stage") +
                               std::to_string(faulted->stage);
        } else {
          request.miss_cause = classify_miss(request);
        }
      }
    }
  }
}

AttributionReport build_report(const TraceDataset& dataset) {
  CriticalPathResult paths = reconstruct_critical_paths(dataset);
  attribute_slo_budgets(paths, dataset);

  AttributionReport report;
  report.unreconstructed = paths.unreconstructed;

  struct StageAccumulator {
    std::size_t samples = 0;
    double planned_sum = 0.0;
    double actual_sum = 0.0;
    std::vector<double> drifts;
    ComponentMeans component_sums;
  };
  struct AppAccumulator {
    AppReport report;
    std::vector<double> latencies;
    std::map<std::size_t, StageAccumulator> stages;
  };
  std::map<std::uint32_t, AppAccumulator> apps;
  std::vector<double> all_latencies;
  ComponentMeans all_component_sums;

  for (const RequestBreakdown& request : paths.requests) {
    AppAccumulator& app = apps[request.app];
    app.report.app = request.app;
    app.report.slo_ms = request.slo_ms;
    ++app.report.requests;
    ++report.requests;
    if (request.uniform_budget) ++app.report.uniform_budget_requests;
    app.latencies.push_back(request.latency_ms());
    all_latencies.push_back(request.latency_ms());
    if (!request.hit) {
      ++report.misses;
      ++app.report.misses;
      ++report.miss_causes[request.miss_cause];
      ++app.report.miss_causes[request.miss_cause];
    }
    for (const StageBreakdown& stage : request.path) {
      StageAccumulator& acc = app.stages[stage.stage];
      ++acc.samples;
      acc.planned_sum += stage.planned_ms;
      acc.actual_sum += stage.actual_ms();
      acc.drifts.push_back(stage.drift_ms());
      accumulate_components(acc.component_sums, stage);
      accumulate_components(app.report.components_mean_ms, stage);
      accumulate_components(all_component_sums, stage);
      if (stage.planned_ms > 0.0) {
        app.report.drift_histogram.add(stage.drift_ms() / stage.planned_ms);
      }
    }
  }

  // Shed requests never ran, so critical-path reconstruction has nothing to
  // rebuild; they are synthesised here from their admission-control instants
  // instead. Each counts as a request and a miss ("shed@admission") but is
  // excluded from the latency quantiles — a 0 ms rejection is not a latency.
  for (const Instant& instant : dataset.instants) {
    if (instant.kind != InstantKind::kShed) continue;
    if (instant.track.pid != kRequestsPid) continue;
    const auto app_id =
        static_cast<std::uint32_t>(arg_double(instant.args, "app", 0.0));
    AppAccumulator& app = apps[app_id];
    if (app.report.requests == 0) {
      app.report.app = app_id;
      app.report.slo_ms = arg_double(instant.args, "slo_ms", 0.0);
    }
    ++app.report.requests;
    ++report.requests;
    ++report.misses;
    ++app.report.misses;
    ++report.miss_causes["shed@admission"];
    ++app.report.miss_causes["shed@admission"];
  }

  report.latency_ms = latency_quantiles(std::move(all_latencies));
  report.components_mean_ms = all_component_sums;
  divide_components(report.components_mean_ms, report.requests);

  for (auto& [app_id, app] : apps) {
    app.report.latency_ms = latency_quantiles(std::move(app.latencies));
    divide_components(app.report.components_mean_ms, app.report.requests);
    for (auto& [stage_id, acc] : app.stages) {
      StageReport stage;
      stage.stage = stage_id;
      stage.samples = acc.samples;
      const auto n = static_cast<double>(acc.samples);
      stage.planned_ms_mean = acc.planned_sum / n;
      stage.actual_ms_mean = acc.actual_sum / n;
      double drift_sum = 0.0;
      for (const double d : acc.drifts) drift_sum += d;
      stage.drift_ms_mean = drift_sum / n;
      stage.drift_ms_p95 = percentile(std::move(acc.drifts), 0.95);
      stage.components_mean_ms = acc.component_sums;
      divide_components(stage.components_mean_ms, acc.samples);
      app.report.stages.push_back(stage);
    }
    report.drift_histogram.merge(app.report.drift_histogram);
    report.apps.push_back(std::move(app.report));
  }

  // Re-plan budget series: renormalised group targets per (app, stage).
  std::map<std::pair<std::uint32_t, std::size_t>, ReplanReport> replans;
  for (const Instant& instant : dataset.instants) {
    if (instant.kind != InstantKind::kBudgetReplan) continue;
    const auto app =
        static_cast<std::uint32_t>(arg_double(instant.args, "app", 0.0));
    const auto stage =
        static_cast<std::size_t>(arg_double(instant.args, "stage", 0.0));
    const double budget = arg_double(instant.args, "budget_ms", 0.0);
    ReplanReport& r = replans[{app, stage}];
    if (r.count == 0) {
      r.app = app;
      r.stage = stage;
      r.budget_ms_min = budget;
      r.budget_ms_max = budget;
    }
    ++r.count;
    r.budget_ms_mean += budget;  // sum for now, divided below
    r.budget_ms_min = std::min(r.budget_ms_min, budget);
    r.budget_ms_max = std::max(r.budget_ms_max, budget);
  }
  for (auto& [key, r] : replans) {
    r.budget_ms_mean /= static_cast<double>(r.count);
    report.replans.push_back(r);
  }

  // Per-tenant rollup, joined through the `tenant` attribute on request
  // spans. Tenant-free traces produce no entries here, so the report (and
  // its JSON) is unchanged from pre-tenant builds.
  std::map<std::uint32_t, std::string> tenant_of_request;
  for (const Span& span : dataset.spans) {
    if (span.kind != SpanKind::kRequest) continue;
    const std::string_view name = arg_value(span.args, "tenant");
    if (!name.empty()) {
      tenant_of_request[span.track.tid] = std::string(name);
    }
  }
  struct TenantAccumulator {
    TenantReport report;
    std::vector<double> latencies;
  };
  std::map<std::string, TenantAccumulator> tenant_accs;
  for (const RequestBreakdown& request : paths.requests) {
    const auto it = tenant_of_request.find(request.request);
    if (it == tenant_of_request.end()) continue;
    TenantAccumulator& acc = tenant_accs[it->second];
    ++acc.report.requests;
    if (!request.hit) ++acc.report.misses;
    acc.latencies.push_back(request.latency_ms());
  }
  for (const Instant& instant : dataset.instants) {
    if (instant.kind != InstantKind::kShed) continue;
    if (instant.track.pid != kRequestsPid) continue;
    const std::string_view name = arg_value(instant.args, "tenant");
    if (name.empty()) continue;
    TenantAccumulator& acc = tenant_accs[std::string(name)];
    ++acc.report.requests;
    ++acc.report.misses;
  }
  for (auto& [name, acc] : tenant_accs) {
    acc.report.tenant = name;
    acc.report.latency_ms = latency_quantiles(std::move(acc.latencies));
    report.tenants.push_back(std::move(acc.report));
  }

  // Forecast accuracy: one kForecastBin instant per (app, closed bin) with
  // the prediction standing at the bin's start and the realized count.
  // Reactive traces carry none, leaving the section empty.
  std::map<std::uint32_t, ForecastReport> forecast_accs;
  for (const Instant& instant : dataset.instants) {
    if (instant.kind != InstantKind::kForecastBin) continue;
    const auto app =
        static_cast<std::uint32_t>(arg_double(instant.args, "app", 0.0));
    const double predicted = arg_double(instant.args, "predicted", 0.0);
    const double realized = arg_double(instant.args, "realized", 0.0);
    ForecastReport& f = forecast_accs[app];
    f.app = app;
    ++f.bins;
    const double err = std::abs(predicted - realized);
    f.mae += err;  // sums for now, divided below
    const double denom = std::abs(predicted) + std::abs(realized);
    if (denom > 0.0) f.smape += 2.0 * err / denom;
    f.predicted_mean += predicted;
    f.realized_mean += realized;
  }
  for (auto& [app_id, f] : forecast_accs) {
    const auto n = static_cast<double>(f.bins);
    f.mae /= n;
    f.smape /= n;
    f.predicted_mean /= n;
    f.realized_mean /= n;
    report.forecast.push_back(f);
  }
  return report;
}

void write_report_json(const AttributionReport& report, std::ostream& out) {
  out << "{\"schema\":\"esg.attribution.v1\"";
  out << ",\"requests\":" << report.requests;
  out << ",\"misses\":" << report.misses;
  out << ",\"hit_rate\":" << fmt(report.hit_rate());
  out << ",\"unreconstructed\":" << report.unreconstructed;
  out << ",\"latency_ms\":";
  write_quantiles(report.latency_ms, out);
  out << ",\"components_mean_ms\":";
  write_components(report.components_mean_ms, out);
  out << ",\"miss_causes\":";
  write_causes(report.miss_causes, out);
  out << ",\"drift\":";
  write_histogram(report.drift_histogram, out);
  out << ",\"apps\":[";
  for (std::size_t i = 0; i < report.apps.size(); ++i) {
    const AppReport& app = report.apps[i];
    if (i > 0) out << ",";
    out << "{\"app\":" << app.app;
    out << ",\"requests\":" << app.requests;
    out << ",\"misses\":" << app.misses;
    out << ",\"hit_rate\":" << fmt(app.hit_rate());
    out << ",\"slo_ms\":" << fmt(app.slo_ms);
    out << ",\"uniform_budget_requests\":" << app.uniform_budget_requests;
    out << ",\"latency_ms\":";
    write_quantiles(app.latency_ms, out);
    out << ",\"components_mean_ms\":";
    write_components(app.components_mean_ms, out);
    out << ",\"miss_causes\":";
    write_causes(app.miss_causes, out);
    out << ",\"drift\":";
    write_histogram(app.drift_histogram, out);
    out << ",\"stages\":[";
    for (std::size_t s = 0; s < app.stages.size(); ++s) {
      const StageReport& stage = app.stages[s];
      if (s > 0) out << ",";
      out << "{\"stage\":" << stage.stage;
      out << ",\"samples\":" << stage.samples;
      out << ",\"planned_ms_mean\":" << fmt(stage.planned_ms_mean);
      out << ",\"actual_ms_mean\":" << fmt(stage.actual_ms_mean);
      out << ",\"drift_ms_mean\":" << fmt(stage.drift_ms_mean);
      out << ",\"drift_ms_p95\":" << fmt(stage.drift_ms_p95);
      out << ",\"components_mean_ms\":";
      write_components(stage.components_mean_ms, out);
      out << "}";
    }
    out << "]}";
  }
  out << "],\"replans\":[";
  for (std::size_t i = 0; i < report.replans.size(); ++i) {
    const ReplanReport& r = report.replans[i];
    if (i > 0) out << ",";
    out << "{\"app\":" << r.app << ",\"stage\":" << r.stage
        << ",\"count\":" << r.count
        << ",\"budget_ms_mean\":" << fmt(r.budget_ms_mean)
        << ",\"budget_ms_min\":" << fmt(r.budget_ms_min)
        << ",\"budget_ms_max\":" << fmt(r.budget_ms_max) << "}";
  }
  out << "]";
  // Emitted only on multi-tenant traces: tenant-free reports must stay
  // byte-identical to builds that predate the tenant subsystem.
  if (!report.tenants.empty()) {
    out << ",\"tenants\":[";
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
      const TenantReport& t = report.tenants[i];
      if (i > 0) out << ",";
      out << "{\"tenant\":\"" << t.tenant << "\"";
      out << ",\"requests\":" << t.requests;
      out << ",\"misses\":" << t.misses;
      out << ",\"hit_rate\":" << fmt(t.hit_rate());
      out << ",\"latency_ms\":";
      write_quantiles(t.latency_ms, out);
      out << "}";
    }
    out << "]";
  }
  // Same omission for forecast-free traces: reactive reports stay
  // byte-identical to pre-forecast builds.
  if (!report.forecast.empty()) {
    out << ",\"forecast_accuracy\":[";
    for (std::size_t i = 0; i < report.forecast.size(); ++i) {
      const ForecastReport& f = report.forecast[i];
      if (i > 0) out << ",";
      out << "{\"app\":" << f.app;
      out << ",\"bins\":" << f.bins;
      out << ",\"mae\":" << fmt(f.mae);
      out << ",\"smape\":" << fmt(f.smape);
      out << ",\"predicted_mean\":" << fmt(f.predicted_mean);
      out << ",\"realized_mean\":" << fmt(f.realized_mean);
      out << "}";
    }
    out << "]";
  }
  out << "}\n";
}

std::string render_report_table(const AttributionReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "attribution: %zu requests, %zu misses (hit rate %.1f%%), "
                "%zu unreconstructed\n",
                report.requests, report.misses, 100.0 * report.hit_rate(),
                report.unreconstructed);
  out += line;

  AsciiTable apps({"app", "requests", "hit rate", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "top miss cause"});
  for (const AppReport& app : report.apps) {
    std::string top_cause = "-";
    std::size_t top_count = 0;
    for (const auto& [cause, count] : app.miss_causes) {
      if (count > top_count) {
        top_cause = cause + " x" + std::to_string(count);
        top_count = count;
      }
    }
    apps.add_row({std::to_string(app.app), std::to_string(app.requests),
                  AsciiTable::pct(app.hit_rate()),
                  AsciiTable::num(app.latency_ms.p50, 1),
                  AsciiTable::num(app.latency_ms.p95, 1),
                  AsciiTable::num(app.latency_ms.p99, 1), top_cause});
  }
  out += apps.render();

  AsciiTable stages({"app", "stage", "samples", "planned (ms)", "actual (ms)",
                     "drift (ms)", "queue (ms)", "cold (ms)", "exec (ms)"});
  for (const AppReport& app : report.apps) {
    for (const StageReport& stage : app.stages) {
      stages.add_row({std::to_string(app.app), std::to_string(stage.stage),
                      std::to_string(stage.samples),
                      AsciiTable::num(stage.planned_ms_mean, 1),
                      AsciiTable::num(stage.actual_ms_mean, 1),
                      AsciiTable::num(stage.drift_ms_mean, 1),
                      AsciiTable::num(stage.components_mean_ms.queueing, 1),
                      AsciiTable::num(stage.components_mean_ms.cold_start, 1),
                      AsciiTable::num(stage.components_mean_ms.exec, 1)});
    }
  }
  out += "\n";
  out += stages.render();

  if (!report.tenants.empty()) {
    AsciiTable tenants({"tenant", "requests", "hit rate", "p50 (ms)",
                        "p95 (ms)", "p99 (ms)"});
    for (const TenantReport& t : report.tenants) {
      tenants.add_row({t.tenant, std::to_string(t.requests),
                       AsciiTable::pct(t.hit_rate()),
                       AsciiTable::num(t.latency_ms.p50, 1),
                       AsciiTable::num(t.latency_ms.p95, 1),
                       AsciiTable::num(t.latency_ms.p99, 1)});
    }
    out += "\n";
    out += tenants.render();
  }

  if (!report.forecast.empty()) {
    AsciiTable forecast({"app", "bins", "MAE (req/bin)", "sMAPE",
                         "predicted mean", "realized mean"});
    for (const ForecastReport& f : report.forecast) {
      forecast.add_row({std::to_string(f.app), std::to_string(f.bins),
                        AsciiTable::num(f.mae, 3), AsciiTable::num(f.smape, 3),
                        AsciiTable::num(f.predicted_mean, 2),
                        AsciiTable::num(f.realized_mean, 2)});
    }
    out += "\n";
    out += forecast.render();
  }
  return out;
}

}  // namespace esg::obs::analysis
