// Reads a serialized Chrome-trace-event JSON file (what ChromeTraceSink
// wrote) back into a TraceDataset, so the analysis passes can run offline
// over a saved trace.json exactly as they run in-process during a live run.
//
// Only the event shapes our sink emits are materialised: complete ("X")
// events become spans, instant ("i") events become instants; metadata ("M")
// and counter ("C") events are skipped. Events whose category string is not
// part of this build's vocabulary are skipped too, so newer traces degrade
// gracefully instead of failing.
#pragma once

#include <istream>
#include <string>

#include "obs/analysis/dataset.hpp"

namespace esg::obs::analysis {

/// Parses the trace JSON from a stream. Throws std::runtime_error on
/// malformed JSON or a top-level shape other than an event array.
[[nodiscard]] TraceDataset read_chrome_trace(std::istream& in);

/// Convenience: opens and parses `path`. Throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] TraceDataset read_chrome_trace_file(const std::string& path);

}  // namespace esg::obs::analysis
