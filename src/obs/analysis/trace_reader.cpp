#include "obs/analysis/trace_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>

namespace esg::obs::analysis {

namespace {

// Minimal recursive-descent JSON reader, just enough DOM to walk the event
// array our own sink wrote. Numbers stay as their source text so timestamps
// can be converted with the same strtod the determinism contract assumes.
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // string holds both JSON strings (unescaped) and numbers (raw text);
  // which one it is is tracked by `kind`.
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    // 1-based line number of pos_, so errors in multi-megabyte traces are
    // actionable without a byte-offset calculator.
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw std::invalid_argument("trace_reader: " + what + " at line " +
                                std::to_string(line) + ", byte " +
                                std::to_string(pos_));
  }
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  void expect(char c) {
    if (eof() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return JsonValue{};
      default:
        return number();
    }
  }

  void literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("bad literal");
    }
    pos_ += lit.size();
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (!eof()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  JsonValue string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our sink only \u-escapes control characters, which are all
          // single-byte; anything else is preserved as-is best effort.
          v.text += static_cast<char>(code & 0xff);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array->push_back(value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string();
      skip_ws();
      expect(':');
      skip_ws();
      // map::emplace keeps the first value, which would *silently drop* a
      // duplicated column — corrupt input must be rejected, not smoothed.
      const auto [it, inserted] =
          v.object->emplace(std::move(key.text), value());
      if (!inserted) {
        fail("duplicate object key '" + it->first + "'");
      }
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }
};

const JsonValue* find(const JsonValue& obj, std::string_view key) {
  if (obj.kind != JsonValue::Kind::kObject) return nullptr;
  auto it = obj.object->find(key);
  return it == obj.object->end() ? nullptr : &it->second;
}

std::string_view text_of(const JsonValue* v) {
  return v == nullptr ? std::string_view{} : std::string_view(v->text);
}

double number_of(const JsonValue* v, double fallback = 0.0) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return fallback;
  return std::strtod(v->text.c_str(), nullptr);
}

ArgList args_of(const JsonValue& event) {
  ArgList out;
  const JsonValue* args = find(event, "args");
  if (args == nullptr || args->kind != JsonValue::Kind::kObject) return out;
  for (const auto& [key, val] : *args->object) {
    // Arg values are serialized as strings by our sink; tolerate numbers
    // from hand-edited traces by keeping their source text.
    out.emplace_back(key, val.text);
  }
  return out;
}

Track track_of(const JsonValue& event) {
  return Track{static_cast<std::uint32_t>(number_of(find(event, "pid"))),
               static_cast<std::uint32_t>(number_of(find(event, "tid")))};
}

}  // namespace

TraceDataset read_chrome_trace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Parser parser(text);
  const JsonValue root = parser.parse();
  const JsonArray* events = nullptr;
  if (root.kind == JsonValue::Kind::kArray) {
    events = root.array.get();
  } else if (const JsonValue* te = find(root, "traceEvents");
             te != nullptr && te->kind == JsonValue::Kind::kArray) {
    events = te->array.get();  // the object-wrapped flavour of the format
  } else {
    throw std::invalid_argument("trace_reader: not a trace-event array");
  }

  TraceDataset dataset;
  for (const JsonValue& event : *events) {
    const std::string_view ph = text_of(find(event, "ph"));
    const std::string_view cat = text_of(find(event, "cat"));
    if (ph == "X") {
      const auto kind = span_kind_from_string(cat);
      if (!kind.has_value()) continue;
      Span span;
      span.kind = *kind;
      span.name = std::string(text_of(find(event, "name")));
      span.track = track_of(event);
      span.start_ms = number_of(find(event, "ts")) / 1000.0;
      span.end_ms = span.start_ms + number_of(find(event, "dur")) / 1000.0;
      span.args = args_of(event);
      dataset.spans.push_back(std::move(span));
    } else if (ph == "i") {
      const auto kind = instant_kind_from_string(cat);
      if (!kind.has_value()) continue;
      Instant instant;
      instant.kind = *kind;
      instant.name = std::string(text_of(find(event, "name")));
      instant.track = track_of(event);
      instant.at_ms = number_of(find(event, "ts")) / 1000.0;
      instant.args = args_of(event);
      dataset.instants.push_back(std::move(instant));
    }
    // "M" (metadata) and "C" (counters) carry nothing the passes consume.
  }
  return dataset;
}

TraceDataset read_chrome_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("trace_reader: cannot open '" + path + "'");
  }
  return read_chrome_trace(in);
}

}  // namespace esg::obs::analysis
