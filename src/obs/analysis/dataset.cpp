#include "obs/analysis/dataset.hpp"

#include <cstdio>
#include <cstdlib>

namespace esg::obs::analysis {

TimeMs quantize_ms(TimeMs ms) {
  // Mirror ChromeTraceSink exactly: times serialize as "%.3f"-formatted
  // microseconds, so the reader's double is strtod of that string. Doing the
  // same format/parse round-trip here guarantees bit-equality with the
  // offline path (plain rounding arithmetic would not, in the cases where
  // the decimal string is not exactly representable).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms * 1000.0);
  return std::strtod(buf, nullptr) / 1000.0;
}

std::string_view arg_value(const ArgList& args, std::string_view key) {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return {};
}

double arg_double(const ArgList& args, std::string_view key, double fallback) {
  const std::string_view v = arg_value(args, key);
  if (v.empty()) return fallback;
  // Arg values are NUL-terminated std::strings, so data() is safe for strtod.
  char* end = nullptr;
  const double parsed = std::strtod(v.data(), &end);
  return end == v.data() ? fallback : parsed;
}

void AnalysisSink::on_span(const Span& span) {
  Span q = span;
  q.start_ms = quantize_ms(span.start_ms);
  q.end_ms = q.start_ms + quantize_ms(span.end_ms - span.start_ms);
  dataset_.spans.push_back(std::move(q));
}

void AnalysisSink::on_instant(const Instant& instant) {
  Instant q = instant;
  q.at_ms = quantize_ms(instant.at_ms);
  dataset_.instants.push_back(std::move(q));
}

}  // namespace esg::obs::analysis
