// SloAttribution pass + AttributionReport rollup.
//
// The attribution pass joins each reconstructed request (critical_path.hpp)
// with the planned per-stage SLO budgets the scheduler traced at arrival
// (InstantKind::kBudgetPlan): every critical-path stage gets a signed budget
// drift (actual - planned), and every SLO miss is classified by dominant
// cause — the component that contributed most at the worst-drift stage:
//
//   queueing@stageK         capacity wait / deliberate defer dominated
//   cold_start@stageK       container provisioning dominated
//   batch_wait@stageK       waiting for batch-mates dominated
//   transfer@stageK         input staging dominated
//   sched_overhead@stageK   the scheduler's own planning latency dominated
//   budget_undersized@stageK  execution alone exceeded the planned budget —
//                             the planner under-provisioned the stage
//
// Fault-injection runs add two causes that take precedence over the drift
// classification (a fault explains the miss better than the drift it left
// behind):
//
//   retry_exhausted@stageK  the request was aborted at stage K after its
//                           retry budget ran out (InstantKind::kRetryExhausted)
//   fault@stageK            a critical-path stage suffered fault-injected
//                           failures (InstantKind::kFault) and the request
//                           missed; K is the worst-drift faulted stage
//
// Requests with no traced budget plan (baseline schedulers plan no explicit
// per-stage budgets) fall back to a uniform split of the SLO over the
// critical path and are flagged `uniform_budget`.
//
// The report aggregates per app and overall: latency quantiles, component
// means, miss-cause histograms, per-stage plan-vs-actual drift, relative
// drift histograms (Histogram::merge folds apps into the overall view), and
// the re-plan budget series (InstantKind::kBudgetReplan). Serialization is
// deterministic — fixed key order, fixed float formatting — so the same
// dataset always renders to byte-identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "obs/analysis/critical_path.hpp"

namespace esg::obs::analysis {

/// Relative drift histogram shape: (actual - planned) / planned, clamped
/// into [-1, 1) over 16 bins (Histogram clamps outliers into the edge bins).
[[nodiscard]] Histogram make_drift_histogram();

struct ComponentMeans {
  double batch_wait = 0.0;
  double cold_start = 0.0;
  double queueing = 0.0;
  double sched_overhead = 0.0;
  double transfer = 0.0;
  double exec = 0.0;
};

struct LatencyQuantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct StageReport {
  std::size_t stage = 0;
  std::size_t samples = 0;  ///< requests whose critical path included it
  double planned_ms_mean = 0.0;
  double actual_ms_mean = 0.0;
  double drift_ms_mean = 0.0;
  double drift_ms_p95 = 0.0;
  ComponentMeans components_mean_ms;
};

struct AppReport {
  std::uint32_t app = 0;
  std::size_t requests = 0;
  std::size_t misses = 0;
  std::size_t uniform_budget_requests = 0;
  double slo_ms = 0.0;
  LatencyQuantiles latency_ms;
  ComponentMeans components_mean_ms;  ///< per-request critical-path totals
  std::map<std::string, std::size_t> miss_causes;
  std::vector<StageReport> stages;  ///< sorted by stage index
  Histogram drift_histogram = make_drift_histogram();

  [[nodiscard]] double hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(requests - misses) /
                     static_cast<double>(requests);
  }
};

struct ReplanReport {
  std::uint32_t app = 0;
  std::size_t stage = 0;
  std::size_t count = 0;
  double budget_ms_mean = 0.0;
  double budget_ms_min = 0.0;
  double budget_ms_max = 0.0;
};

/// Per-tenant rollup, grouped by the `tenant` attribute the controller adds
/// to request spans (and shed instants) on fair-queue runs. Single-tenant
/// traces carry no such attribute, so the section is empty — and omitted
/// from the JSON, keeping tenant-free reports byte-identical to pre-tenant
/// builds. Shed requests count toward attainment but not the quantiles.
struct TenantReport {
  std::string tenant;  ///< tenant name (spec name or "t<N>")
  std::size_t requests = 0;
  std::size_t misses = 0;
  LatencyQuantiles latency_ms;

  [[nodiscard]] double hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(requests - misses) /
                     static_cast<double>(requests);
  }
};

/// Per-app forecast accuracy, rebuilt from the kForecastBin instants a
/// forecaster emits at every closed observation bin (predicted vs realized
/// arrivals per bin). Forecast-free traces carry no such instants, so the
/// section is empty — and omitted from the JSON, keeping reactive reports
/// byte-identical to pre-forecast builds.
struct ForecastReport {
  std::uint32_t app = 0;
  std::size_t bins = 0;
  double mae = 0.0;    ///< mean |predicted - realized|, arrivals per bin
  double smape = 0.0;  ///< symmetric MAPE in [0, 2]; zero-zero bins score 0
  double predicted_mean = 0.0;
  double realized_mean = 0.0;
};

struct AttributionReport {
  std::size_t requests = 0;
  std::size_t misses = 0;
  std::size_t unreconstructed = 0;
  LatencyQuantiles latency_ms;
  ComponentMeans components_mean_ms;
  std::map<std::string, std::size_t> miss_causes;
  std::vector<AppReport> apps;  ///< sorted by app id
  std::vector<ReplanReport> replans;  ///< sorted by (app, stage)
  std::vector<TenantReport> tenants;  ///< sorted by name; empty = no tenancy
  std::vector<ForecastReport> forecast;  ///< sorted by app; empty = reactive
  Histogram drift_histogram = make_drift_histogram();

  [[nodiscard]] double hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(requests - misses) /
                     static_cast<double>(requests);
  }
};

/// Attributes budgets and miss causes in place: fills planned_ms per stage,
/// uniform_budget, and miss_cause on every missed request.
void attribute_slo_budgets(CriticalPathResult& paths,
                           const TraceDataset& dataset);

/// Full pipeline: critical path -> attribution -> aggregate report.
[[nodiscard]] AttributionReport build_report(const TraceDataset& dataset);

/// Deterministic JSON serialization (sorted keys, "%.6f" floats).
void write_report_json(const AttributionReport& report, std::ostream& out);

/// Human-readable summary: per-app rollup plus the worst-drift stage table.
[[nodiscard]] std::string render_report_table(const AttributionReport& report);

}  // namespace esg::obs::analysis
