// The event set the analysis passes run over, plus the sink that builds it
// in-process during a traced run.
//
// Determinism contract: every timestamp in a TraceDataset is *quantised to
// trace precision* — the exact double that results from serializing the time
// through ChromeTraceSink's fixed-precision formatter and parsing it back.
// The offline path (trace_reader over a saved trace.json) performs that
// round-trip physically; AnalysisSink performs it arithmetically on the live
// events. Both paths therefore hand the passes bit-identical inputs, which
// is what makes `esg_sim --report-out` and `esg_report trace.json` emit
// byte-identical reports for the same run.
#pragma once

#include <string_view>
#include <vector>

#include "obs/sink.hpp"
#include "obs/trace_event.hpp"

namespace esg::obs::analysis {

/// Rounds a simulated-ms time to trace precision: the value a reader obtains
/// from the "%.3f"-formatted microsecond field of the serialized trace.
[[nodiscard]] TimeMs quantize_ms(TimeMs ms);

struct TraceDataset {
  std::vector<Span> spans;
  std::vector<Instant> instants;
};

/// Finds an arg by key; empty view when absent.
[[nodiscard]] std::string_view arg_value(const ArgList& args,
                                         std::string_view key);
/// Parses an arg as double; `fallback` when absent or malformed.
[[nodiscard]] double arg_double(const ArgList& args, std::string_view key,
                                double fallback = 0.0);

/// TraceSink that captures spans and instants with quantised timestamps.
/// Spans store start = q(start) and end = q(start) + q(duration), mirroring
/// the ts/dur fields of the Chrome trace format. Counters are dropped — the
/// analysis passes only consume spans and instants.
class AnalysisSink final : public TraceSink {
 public:
  void on_span(const Span& span) override;
  void on_instant(const Instant& instant) override;
  void on_counter(const CounterSample&) override {}

  [[nodiscard]] const TraceDataset& dataset() const { return dataset_; }

 private:
  TraceDataset dataset_;
};

}  // namespace esg::obs::analysis
