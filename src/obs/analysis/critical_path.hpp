// CriticalPath pass: reconstructs each traced request's end-to-end timeline
// from its spans and decomposes the latency into named components.
//
// Span chaining exploits an invariant of the controller's instrumentation:
// a stage's queue-wait starts exactly when its last-finishing predecessor
// stage completed (that completion is what enqueued the job), and the entry
// stage's wait starts exactly at the request arrival. The request's critical
// path is therefore the backward chain of (run, wait) spans whose endpoints
// meet, and charging each link from the previous link's end makes the
// component sum telescope to the end-to-end latency *exactly* — the 1e-6 ms
// decomposition invariant the tests enforce.
//
// Per critical-path stage the elapsed time splits into:
//   batch_wait     waiting for later-arriving jobs that joined the batch
//   cold_start     overlap with container provisioning for this function on
//                  the invoker that ran the task
//   queueing       the rest of the queue wait (no capacity / deliberate defer)
//   sched_overhead scheduling latency charged by the strategy
//   transfer       input staging (batch waits for the slowest fetch)
//   exec           model execution
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/dataset.hpp"

namespace esg::obs::analysis {

struct StageBreakdown {
  std::size_t stage = 0;
  std::uint64_t task = 0;
  TimeMs start_ms = 0.0;     ///< previous link's end (arrival for the entry)
  TimeMs dispatch_ms = 0.0;  ///< queue-wait end / run start
  TimeMs end_ms = 0.0;       ///< run end (successor's wait starts here)

  TimeMs batch_wait_ms = 0.0;
  TimeMs cold_start_ms = 0.0;
  TimeMs queueing_ms = 0.0;
  TimeMs sched_overhead_ms = 0.0;
  TimeMs transfer_ms = 0.0;
  TimeMs exec_ms = 0.0;

  /// Planned SLO budget for this stage (filled by the attribution pass).
  TimeMs planned_ms = 0.0;

  [[nodiscard]] TimeMs actual_ms() const { return end_ms - start_ms; }
  [[nodiscard]] TimeMs drift_ms() const { return actual_ms() - planned_ms; }
  [[nodiscard]] TimeMs component_sum_ms() const {
    return batch_wait_ms + cold_start_ms + queueing_ms + sched_overhead_ms +
           transfer_ms + exec_ms;
  }
};

struct RequestBreakdown {
  std::uint32_t request = 0;
  std::uint32_t app = 0;
  TimeMs arrival_ms = 0.0;
  TimeMs completion_ms = 0.0;
  TimeMs slo_ms = 0.0;
  bool hit = true;
  /// True when no planner budget was traced for this request and the
  /// attribution fell back to a uniform split over the critical path.
  bool uniform_budget = false;
  /// Critical-path stages in execution order; component sums telescope to
  /// completion_ms - arrival_ms exactly.
  std::vector<StageBreakdown> path;
  /// Dominant miss cause, e.g. "cold_start@stage2" (empty while hit, filled
  /// by the attribution pass).
  std::string miss_cause;

  [[nodiscard]] TimeMs latency_ms() const { return completion_ms - arrival_ms; }
};

struct CriticalPathResult {
  std::vector<RequestBreakdown> requests;  ///< sorted by request id
  /// Requests whose span chain could not be stitched back together (should
  /// be zero for traces produced by this build; non-zero flags a trace from
  /// an incompatible producer).
  std::size_t unreconstructed = 0;
};

/// Runs the pass over a dataset (from AnalysisSink or read_chrome_trace).
[[nodiscard]] CriticalPathResult reconstruct_critical_paths(
    const TraceDataset& dataset);

}  // namespace esg::obs::analysis
