// TraceRecorder — the single handle the platform threads through its layers
// (controller, invokers, prewarm manager, sampler). Call sites guard all
// event construction behind is_enabled(), so a run without sinks pays one
// predictable branch per potential event and nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/sink.hpp"
#include "obs/trace_event.hpp"

namespace esg::obs {

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Attaching the first sink enables the recorder.
  void add_sink(std::unique_ptr<TraceSink> sink);

  /// Fast path checked by every instrumentation site.
  [[nodiscard]] bool is_enabled() const { return enabled_; }

  void span(SpanKind kind, std::string name, Track track, TimeMs start_ms,
            TimeMs end_ms, ArgList args = {});
  void instant(InstantKind kind, std::string name, Track track, TimeMs at_ms,
               ArgList args = {});
  void counter(std::string name, Track track, TimeMs at_ms, double value);

  void name_process(std::uint32_t pid, std::string name);
  void name_thread(Track track, std::string name);

  /// Finalises all sinks (closes the trace JSON array, flushes streams).
  void flush();

  [[nodiscard]] std::size_t spans_recorded() const { return spans_; }
  [[nodiscard]] std::size_t instants_recorded() const { return instants_; }
  [[nodiscard]] std::size_t counters_recorded() const { return counters_; }

 private:
  std::vector<std::unique_ptr<TraceSink>> sinks_;
  bool enabled_ = false;
  std::size_t spans_ = 0;
  std::size_t instants_ = 0;
  std::size_t counters_ = 0;
};

/// Assigns tasks to free vGPU-slice lanes so per-slice occupancy renders as
/// one Perfetto row per slice. Purely cosmetic bookkeeping for the trace —
/// the invoker's own resource accounting stays authoritative — but it always
/// succeeds for feasible dispatches because traced tasks never hold more
/// slices than the node has.
class LaneAllocator {
 public:
  /// Declares `lanes` slice lanes for track-group `group` (an invoker id).
  void configure(std::uint32_t group, std::uint32_t lanes);

  /// Claims up to `count` free lanes (lowest-numbered first) and returns
  /// them; may return fewer (even none) when the group is saturated, in
  /// which case rendering degrades to overlapping lane 0 instead of failing.
  [[nodiscard]] std::vector<std::uint32_t> acquire(std::uint32_t group,
                                                   std::uint32_t count);
  void release(std::uint32_t group, const std::vector<std::uint32_t>& lanes);

  [[nodiscard]] std::size_t busy_lanes(std::uint32_t group) const;

 private:
  std::unordered_map<std::uint32_t, std::vector<bool>> busy_;
};

}  // namespace esg::obs
