// Pluggable trace consumers. The recorder fans every event out to all
// attached sinks; with no sinks attached it is disabled and the
// instrumentation call sites skip event construction entirely.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/trace_event.hpp"

namespace esg::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_span(const Span& span) = 0;
  virtual void on_instant(const Instant& instant) = 0;
  virtual void on_counter(const CounterSample& sample) = 0;

  /// Track labelling (Perfetto process/thread names). Optional.
  virtual void on_process_name(std::uint32_t pid, std::string_view name) {
    (void)pid;
    (void)name;
  }
  virtual void on_thread_name(Track track, std::string_view name) {
    (void)track;
    (void)name;
  }

  /// Finalises any underlying stream (e.g. closes the JSON array).
  virtual void flush() {}
};

}  // namespace esg::obs
