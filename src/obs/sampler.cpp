#include "obs/sampler.hpp"

#include <stdexcept>

namespace esg::obs {

StatsSampler::StatsSampler(sim::Simulator& sim,
                           const cluster::Cluster& cluster,
                           TraceRecorder& recorder, TimeMs interval_ms)
    : sim_(sim), cluster_(cluster), recorder_(recorder),
      interval_ms_(interval_ms) {
  if (interval_ms_ <= 0.0) {
    throw std::invalid_argument("StatsSampler: interval must be positive");
  }
}

void StatsSampler::start() {
  if (!recorder_.is_enabled()) return;
  sim_.schedule_in(0.0, [this] { tick(); });
}

void StatsSampler::tick() {
  sample();
  // Re-arm only while other work is pending: once the platform drains, the
  // series ends instead of ticking into an empty simulation forever.
  if (!sim_.empty()) {
    sim_.schedule_in(interval_ms_, [this] { tick(); });
  }
}

void StatsSampler::sample() {
  const TimeMs now = sim_.now();
  for (const auto& inv : cluster_.invokers()) {
    const Track track = invoker_track(inv.id(), 0);
    recorder_.counter("used_vcpus", track, now, inv.used_vcpus());
    recorder_.counter("used_vgpus", track, now, inv.used_vgpus());
    recorder_.counter("warm_containers", track, now,
                      static_cast<double>(inv.total_warm(now)));
  }
  const Track controller = controller_track();
  recorder_.counter("free_vcpus", controller, now,
                    static_cast<double>(cluster_.total_free_vcpus()));
  recorder_.counter("free_vgpus", controller, now,
                    static_cast<double>(cluster_.total_free_vgpus()));
  if (queue_depth_) {
    recorder_.counter("queued_jobs", controller, now,
                      static_cast<double>(queue_depth_()));
  }
  // Fleet-size timeline. Emitted unconditionally (a static fleet shows a
  // flat fleet_active line) so a zero-churn elastic run stays byte-identical
  // to the static run at the same seed.
  recorder_.counter("fleet_active", controller, now,
                    static_cast<double>(cluster_.active_count()));
  recorder_.counter("fleet_warming", controller, now,
                    static_cast<double>(cluster_.warming_count()));
  recorder_.counter("fleet_draining", controller, now,
                    static_cast<double>(cluster_.draining_count()));
  for (const auto& [name, provider] : gauges_) {
    recorder_.counter(name, controller, now, provider());
  }
  ++samples_;
}

}  // namespace esg::obs
