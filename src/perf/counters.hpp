// Always-on hot-path counters for the simulator itself (DESIGN.md §13).
//
// Unlike the compile-out ESG_PROF_SCOPE timers, these are plain uint64
// increments embedded in the components they describe (Simulator, Controller,
// PrewarmManager, FairQueue) — branch-free, allocation-free, and fully
// deterministic: two runs with the same seed produce identical values, which
// the test suite asserts. Each component owns a Counters instance; the run
// harness merges them into one RunOutput-level view at the end of the run.
#pragma once

#include <cstdint>

namespace esg::perf {

struct Counters {
  // src/sim event loop.
  std::uint64_t events_scheduled = 0;  ///< schedule_at calls accepted
  std::uint64_t events_fired = 0;      ///< actions actually executed
  std::uint64_t events_cancelled = 0;  ///< cancel() calls that took effect
  std::uint64_t heap_pushes = 0;       ///< priority-queue inserts
  std::uint64_t heap_pops = 0;         ///< priority-queue removals (incl. cancelled drops)

  // src/platform controller scan.
  std::uint64_t scan_rounds = 0;   ///< controller scan() invocations
  std::uint64_t queue_visits = 0;  ///< per-AFW-queue process_queue() visits
  std::uint64_t afw_peeks = 0;     ///< AFW queue head peeks (plan-view builds)
  std::uint64_t plans = 0;         ///< Scheduler::plan() calls
  std::uint64_t replans = 0;       ///< plan() calls that replaced a cached plan
  std::uint64_t dispatches = 0;    ///< stage dispatches to an invoker
  std::uint64_t warm_hits = 0;     ///< dispatches satisfied from the warm pool
  std::uint64_t warm_misses = 0;   ///< dispatches that provisioned a container

  // src/prewarm.
  std::uint64_t prewarms_issued = 0;   ///< proactive warm-ups sent to invokers
  std::uint64_t prewarms_skipped = 0;  ///< prewarm decisions that declined

  // src/tenant fair queueing.
  std::uint64_t vt_updates = 0;  ///< per-flow virtual-time advances

  // src/forecast.
  std::uint64_t forecasts_issued = 0;    ///< per-app per-bin predictions made
  std::uint64_t forecasts_consumed = 0;  ///< consumer queries served

  void merge(const Counters& other);
};

/// Stable name ↔ member mapping used by every reporting surface (perf JSON,
/// stats-JSONL gauges, Perfetto counter tracks, the --perf-summary table).
/// Order here is the canonical emission order; adding a field means adding
/// it exactly once, here.
struct CounterField {
  const char* name;
  std::uint64_t Counters::* member;
};

inline constexpr CounterField kCounterFields[] = {
    {"events_scheduled", &Counters::events_scheduled},
    {"events_fired", &Counters::events_fired},
    {"events_cancelled", &Counters::events_cancelled},
    {"heap_pushes", &Counters::heap_pushes},
    {"heap_pops", &Counters::heap_pops},
    {"scan_rounds", &Counters::scan_rounds},
    {"queue_visits", &Counters::queue_visits},
    {"afw_peeks", &Counters::afw_peeks},
    {"plans", &Counters::plans},
    {"replans", &Counters::replans},
    {"dispatches", &Counters::dispatches},
    {"warm_hits", &Counters::warm_hits},
    {"warm_misses", &Counters::warm_misses},
    {"prewarms_issued", &Counters::prewarms_issued},
    {"prewarms_skipped", &Counters::prewarms_skipped},
    {"vt_updates", &Counters::vt_updates},
    {"forecasts_issued", &Counters::forecasts_issued},
    {"forecasts_consumed", &Counters::forecasts_consumed},
};

inline constexpr std::size_t kCounterFieldCount =
    sizeof(kCounterFields) / sizeof(kCounterFields[0]);

inline void Counters::merge(const Counters& other) {
  for (const CounterField& f : kCounterFields) this->*f.member += other.*f.member;
}

}  // namespace esg::perf
