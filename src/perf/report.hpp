// Reporting surfaces for the self-profiling layer: the esg.perf.v1 JSON
// artefact (--perf-out), and the human-readable --perf-summary table.
// Counter gauges for the stats JSONL / Perfetto tracks are registered in
// exp/scenario.cpp via obs::StatsSampler; this header only fixes their
// naming convention ("perf/<counter>").
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "perf/counters.hpp"
#include "perf/profiler.hpp"

namespace esg::perf {

/// Per-run context stamped into the report next to the counters.
struct RunInfo {
  std::string scheduler;        ///< e.g. "esg"
  std::uint64_t seed = 0;
  double simulated_ms = 0.0;    ///< simulated horizon actually covered
  double wall_seconds = 0.0;    ///< host wall-clock for the run
  std::uint64_t invocations = 0;  ///< completed requests (measured window)
};

/// Gauge-name prefix for counter series in the stats JSONL and the
/// Chrome-trace counter tracks ("perf/events_fired", ...).
inline constexpr const char* kGaugePrefix = "perf/";

/// Writes the esg.perf.v1 JSON document. Schema (key order, field set) is
/// deterministic; counter *values* are deterministic per seed, while
/// wall-clock and profile timings naturally vary run to run. The profile
/// array is empty in ESG_PROFILE=OFF builds (no scopes recorded).
void write_perf_json(std::FILE* out, const RunInfo& run, const Counters& counters,
                     const std::vector<Profiler::ScopeStats>& profile);

/// Human table: throughput line, counter table, and (when non-empty) the
/// indented scope tree with calls / total / self / mean / p99 per scope.
void write_perf_summary(std::FILE* out, const RunInfo& run,
                        const Counters& counters,
                        const std::vector<Profiler::ScopeStats>& profile);

}  // namespace esg::perf
