// Comparison engine behind tools/esg_perfdiff: diff two perf/BENCH JSON
// artefacts (esg.perf.v1 documents or BENCH_*.json baselines) and flag
// throughput regressions past a threshold.
//
// Semantics: both documents are flattened to numeric leaves keyed by a
// stable path ("run.events_per_sec", "rows[scheduler=esg,rate_scale=10]
// .events_per_sec", ...). Array elements are keyed by their string-valued
// members plus rate_scale/seed when present, falling back to the element
// index, so reordered rows still line up. Only *_per_sec metrics (higher is
// better) gate the regression verdict; every other shared numeric leaf —
// counters, wall times — is reported informationally when it moved more
// than the threshold.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace esg::perf {

struct DiffOptions {
  /// Allowed fractional drop on gating metrics before a regression is
  /// declared (0.10 = 10% worse than baseline fails).
  double threshold = 0.10;
  /// Report the comparison but never declare regressions (CI smoke mode on
  /// hosts that differ from the baseline's).
  bool report_only = false;
  /// Metric-path suffixes that gate the verdict. The default gates only
  /// throughput; benches append quality fields (e.g. "attainment") with
  /// --gate-suffix. A suffix is higher-is-better unless prefixed with '-'
  /// (e.g. "-cold_start_rate": a rise past the threshold regresses).
  std::vector<std::string> gate_suffixes = {"_per_sec"};
};

struct DiffLine {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double delta_frac = 0.0;  ///< (current - baseline) / baseline
  bool gating = false;      ///< a *_per_sec metric (counts toward the verdict)
  bool regression = false;  ///< gating and slower than -threshold
};

struct DiffResult {
  std::vector<DiffLine> lines;       ///< shared numeric leaves, baseline order
  std::vector<std::string> notes;    ///< metrics present on only one side
  bool regressed = false;            ///< any line.regression (pre report_only)
};

/// Diffs two parsed-from-text documents. Throws std::invalid_argument on
/// malformed JSON (message includes the offending side and position).
[[nodiscard]] DiffResult diff_json(const std::string& baseline_text,
                                   const std::string& current_text,
                                   const DiffOptions& options);

/// Reads both files and diffs them. Throws std::invalid_argument when a
/// file is unreadable or malformed.
[[nodiscard]] DiffResult diff_files(const std::string& baseline_path,
                                    const std::string& current_path,
                                    const DiffOptions& options);

/// Human-readable report: one line per changed metric, notes, verdict.
void print_diff(std::FILE* out, const DiffResult& result,
                const DiffOptions& options);

}  // namespace esg::perf
