#include "perf/perfdiff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace esg::perf {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The artefacts we diff are machine-written, but the
// parser still rejects malformed input with a position so a truncated or
// hand-edited baseline fails loudly (exit 2) instead of diffing garbage.
// Member order is preserved: it determines the stable flattened-path order.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;
};

class Parser {
 public:
  Parser(const std::string& text, const std::string& label)
      : text_(text), label_(label) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(label_ + ": malformed JSON at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.kind = Json::Kind::kString;
      v.string = string_literal();
      return v;
    }
    if (consume_word("true")) {
      Json v;
      v.kind = Json::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Json v;
      v.kind = Json::Kind::kBool;
      return v;
    }
    if (consume_word("null")) return Json{};
    return number();
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Artefact strings are json_safe'd ASCII; keep the escape verbatim.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      fail("invalid number '" + token + "'");
    }
    Json out;
    out.kind = Json::Kind::kNumber;
    out.number = v;
    return out;
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string_literal();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& text_;
  std::string label_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Flattening
// ---------------------------------------------------------------------------

std::string trim_number(double v) {
  std::string s = std::to_string(v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

/// Stable identity for an array element: its string members plus
/// rate_scale/seed (numbers our artefacts use as identifiers), else the
/// element index.
std::string element_key(const Json& element, std::size_t index) {
  if (element.kind != Json::Kind::kObject) return std::to_string(index);
  std::string key;
  for (const auto& [name, member] : element.object) {
    // "engine" is informational provenance, not identity: both engines
    // produce byte-identical runs by contract, so rows stay comparable
    // against baselines written before the field existed.
    if (name == "engine") continue;
    const bool id_number = member.kind == Json::Kind::kNumber &&
                           (name == "rate_scale" || name == "seed");
    if (member.kind != Json::Kind::kString && !id_number) continue;
    if (!key.empty()) key += ",";
    key += name + "=" +
           (id_number ? trim_number(member.number) : member.string);
  }
  return key.empty() ? std::to_string(index) : key;
}

struct Leaf {
  std::string path;
  double value;
};

void flatten(const Json& v, const std::string& path, std::vector<Leaf>& out) {
  switch (v.kind) {
    case Json::Kind::kNumber:
      out.push_back({path, v.number});
      break;
    case Json::Kind::kObject:
      for (const auto& [name, member] : v.object) {
        flatten(member, path.empty() ? name : path + "." + name, out);
      }
      break;
    case Json::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        flatten(v.array[i], path + "[" + element_key(v.array[i], i) + "]", out);
      }
      break;
    default:
      break;  // strings/bools/null carry no comparable metric
  }
}

/// 0 = not gating; +1 = gating, higher is better; -1 = gating, lower is
/// better (suffix written with a leading '-'). First matching suffix wins.
int gate_direction(const std::string& path, const DiffOptions& options) {
  for (const std::string& raw : options.gate_suffixes) {
    const bool lower_better = !raw.empty() && raw.front() == '-';
    const std::string_view suffix =
        lower_better ? std::string_view(raw).substr(1) : std::string_view(raw);
    if (suffix.empty() || path.size() < suffix.size()) continue;
    if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
        0) {
      return lower_better ? -1 : 1;
    }
  }
  return 0;
}

/// Provenance leaves (meta.cpus and friends) never carry a perf signal.
bool is_meta(const std::string& path) {
  return path.compare(0, 5, "meta.") == 0;
}

}  // namespace

DiffResult diff_json(const std::string& baseline_text,
                     const std::string& current_text,
                     const DiffOptions& options) {
  const Json baseline = Parser(baseline_text, "baseline").parse();
  const Json current = Parser(current_text, "current").parse();

  std::vector<Leaf> base_leaves;
  std::vector<Leaf> cur_leaves;
  flatten(baseline, "", base_leaves);
  flatten(current, "", cur_leaves);

  std::map<std::string, double> cur_by_path;
  for (const Leaf& leaf : cur_leaves) cur_by_path[leaf.path] = leaf.value;
  std::map<std::string, double> base_by_path;
  for (const Leaf& leaf : base_leaves) base_by_path[leaf.path] = leaf.value;

  DiffResult result;
  for (const Leaf& base : base_leaves) {
    if (is_meta(base.path)) continue;
    const auto it = cur_by_path.find(base.path);
    if (it == cur_by_path.end()) {
      result.notes.push_back("missing in current: " + base.path);
      continue;
    }
    DiffLine line;
    line.metric = base.path;
    line.baseline = base.value;
    line.current = it->second;
    line.delta_frac =
        base.value != 0.0
            ? (it->second - base.value) / std::fabs(base.value)
            : (it->second == 0.0 ? 0.0 : 1.0);
    const int direction = gate_direction(base.path, options);
    line.gating = direction != 0;
    line.regression = direction > 0
                          ? line.delta_frac < -options.threshold
                          : direction < 0 &&
                                line.delta_frac > options.threshold;
    if (line.regression) result.regressed = true;
    result.lines.push_back(std::move(line));
  }
  for (const Leaf& cur : cur_leaves) {
    if (is_meta(cur.path)) continue;
    if (base_by_path.find(cur.path) == base_by_path.end()) {
      result.notes.push_back("missing in baseline: " + cur.path);
    }
  }
  return result;
}

DiffResult diff_files(const std::string& baseline_path,
                      const std::string& current_path,
                      const DiffOptions& options) {
  const auto read_all = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      throw std::invalid_argument("cannot read '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  return diff_json(read_all(baseline_path), read_all(current_path), options);
}

void print_diff(std::FILE* out, const DiffResult& result,
                const DiffOptions& options) {
  std::size_t shown = 0;
  for (const DiffLine& line : result.lines) {
    const bool moved = std::fabs(line.delta_frac) > options.threshold;
    if (!line.gating && !moved) continue;
    const char* tag = line.regression ? "REGRESSION"
                      : line.gating    ? "ok"
                                       : "info";
    std::fprintf(out, "%-10s %-60s %14.3f -> %14.3f  (%+.1f%%)\n", tag,
                 line.metric.c_str(), line.baseline, line.current,
                 line.delta_frac * 100.0);
    ++shown;
  }
  if (shown == 0) std::fprintf(out, "no gating or moved metrics\n");
  for (const std::string& note : result.notes) {
    std::fprintf(out, "note: %s\n", note.c_str());
  }
  const std::size_t regressions = static_cast<std::size_t>(
      std::count_if(result.lines.begin(), result.lines.end(),
                    [](const DiffLine& l) { return l.regression; }));
  if (result.regressed) {
    std::fprintf(out, "verdict: %zu regression(s) past %.0f%% threshold%s\n",
                 regressions, options.threshold * 100.0,
                 options.report_only ? " [report-only]" : "");
  } else {
    std::fprintf(out, "verdict: no regressions past %.0f%% threshold\n",
                 options.threshold * 100.0);
  }
}

}  // namespace esg::perf
