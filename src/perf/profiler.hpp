// Scoped hierarchical self-profiler for the simulator (DESIGN.md §13).
//
// Usage on a hot path:
//
//   void Controller::scan() {
//     ESG_PROF_SCOPE("controller/scan");
//     ...
//   }
//
// The macro expands to a stack-allocated RAII timer only when the build is
// configured with -DESG_PROFILE=ON (which defines ESG_PROFILE_BUILD); in the
// default OFF build it expands to a no-op statement, so instrumented
// binaries are byte-identical in behaviour and output to uninstrumented
// ones — CI cmp-enforces this. The idiom follows the compile-out
// CHRONO_START/STOP pattern from nvcache's internal_profile.h and ARDiS's
// chrono_profiler.hpp.
//
// The Profiler class itself is always compiled (tests exercise enter/leave
// directly in OFF builds); only the macro is gated. State is thread_local,
// so parallel seed replicas profile independently; reporting surfaces read
// the calling thread's tree, which is why --perf-out forces sequential seed
// runs in esg_sim.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace esg::perf {

class Profiler {
 public:
  static constexpr int kBucketCount = 64;

  /// One node per distinct scope *path* (the same label under two different
  /// parents is two nodes). Durations land in log2 buckets so p99 is O(1)
  /// memory per scope at ~2x value resolution.
  struct Node {
    std::string name;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ns = 0;
    std::uint64_t buckets[kBucketCount] = {};
  };

  static Profiler& instance() {
    thread_local Profiler profiler;
    return profiler;
  }

  /// Opens scope `name` under the current scope and makes it current.
  /// Returns the node to pass back to leave(). Never fails; reentrancy
  /// (the same label nested under itself) creates a child node as usual.
  Node* enter(const char* name) {
    Node* parent = current_;
    for (const auto& child : parent->children) {
      if (child->name == name) {
        current_ = child.get();
        return current_;
      }
    }
    auto node = std::make_unique<Node>();
    node->name = name;
    node->parent = parent;
    current_ = node.get();
    parent->children.push_back(std::move(node));
    return current_;
  }

  /// Closes `node` with a measured duration and restores its parent as the
  /// current scope. Safe on any unwind path (early return, exception):
  /// the current scope is reset from the node itself, not from a stack.
  void leave(Node* node, std::uint64_t elapsed_ns) {
    ++node->calls;
    node->total_ns += elapsed_ns;
    if (elapsed_ns < node->min_ns) node->min_ns = elapsed_ns;
    if (elapsed_ns > node->max_ns) node->max_ns = elapsed_ns;
    ++node->buckets[bucket_of(elapsed_ns)];
    current_ = node->parent != nullptr ? node->parent : &root_;
  }

  /// Drops all recorded scopes. Called between runs so each run's report
  /// covers exactly that run.
  void reset() {
    root_.children.clear();
    current_ = &root_;
  }

  [[nodiscard]] bool empty() const { return root_.children.empty(); }
  [[nodiscard]] const Node& root() const { return root_; }

  /// Flattened per-scope statistics in depth-first (reporting) order.
  struct ScopeStats {
    std::string path;  ///< "/"-joined labels from the root, e.g. "sim.run/sim.step"
    int depth = 0;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;  ///< total_ns minus direct children's total_ns
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    double mean_ns = 0.0;
    double p99_ns = 0.0;  ///< approximate (log2-bucket upper bound)
  };

  [[nodiscard]] std::vector<ScopeStats> snapshot() const {
    std::vector<ScopeStats> out;
    for (const auto& child : root_.children) collect(*child, "", 0, out);
    return out;
  }

  /// log2 bucket index for a nanosecond duration (0 for 0 ns).
  static int bucket_of(std::uint64_t ns) {
    return ns == 0 ? 0 : std::bit_width(ns) - 1;
  }

  /// Approximate p99 for one node: the upper bound of the first bucket whose
  /// cumulative count reaches 99% of calls.
  static double p99_of(const Node& node) {
    if (node.calls == 0) return 0.0;
    const std::uint64_t target =
        (node.calls * 99 + 99) / 100;  // ceil(0.99 * calls), >= 1
    std::uint64_t seen = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      seen += node.buckets[i];
      if (seen >= target) {
        return i == 0 ? 1.0 : static_cast<double>(std::uint64_t{1} << (i + 1));
      }
    }
    return static_cast<double>(node.max_ns);
  }

 private:
  Profiler() : current_(&root_) {}

  static void collect(const Node& node, const std::string& prefix, int depth,
                      std::vector<ScopeStats>& out) {
    ScopeStats s;
    s.path = prefix.empty() ? node.name : prefix + "/" + node.name;
    s.depth = depth;
    s.calls = node.calls;
    s.total_ns = node.total_ns;
    std::uint64_t child_total = 0;
    for (const auto& child : node.children) child_total += child->total_ns;
    s.self_ns = node.total_ns > child_total ? node.total_ns - child_total : 0;
    s.min_ns = node.calls > 0 ? node.min_ns : 0;
    s.max_ns = node.max_ns;
    s.mean_ns = node.calls > 0
                    ? static_cast<double>(node.total_ns) /
                          static_cast<double>(node.calls)
                    : 0.0;
    s.p99_ns = p99_of(node);
    // Capture the prefix before recursing: out.back() changes as child
    // subtrees append their own entries.
    const std::string path = s.path;
    out.push_back(std::move(s));
    for (const auto& child : node.children) {
      collect(*child, path, depth + 1, out);
    }
  }

  Node root_;
  Node* current_;
};

/// RAII timer bound to one Profiler scope. Exception-safe: the destructor
/// records the elapsed time and unwinds the current scope even when leaving
/// via throw or early return.
class ScopedProfile {
 public:
  explicit ScopedProfile(const char* name)
      : node_(Profiler::instance().enter(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

  ~ScopedProfile() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().leave(
        node_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                       .count()));
  }

 private:
  Profiler::Node* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace esg::perf

#ifdef ESG_PROFILE_BUILD
#define ESG_PROF_CONCAT_IMPL(a, b) a##b
#define ESG_PROF_CONCAT(a, b) ESG_PROF_CONCAT_IMPL(a, b)
#define ESG_PROF_SCOPE(name) \
  ::esg::perf::ScopedProfile ESG_PROF_CONCAT(esg_prof_scope_, __LINE__)(name)
#else
#define ESG_PROF_SCOPE(name) static_cast<void>(0)
#endif
