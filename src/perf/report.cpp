#include "perf/report.hpp"

#include <string>

#include "common/build_info.hpp"
#include "common/table.hpp"

namespace esg::perf {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  return out;
}

double events_per_sec(const RunInfo& run, const Counters& counters) {
  if (run.wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(counters.events_fired) / run.wall_seconds;
}

double invocations_per_sec(const RunInfo& run) {
  if (run.wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(run.invocations) / run.wall_seconds;
}

std::string ns_human(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

}  // namespace

void write_perf_json(std::FILE* out, const RunInfo& run, const Counters& counters,
                     const std::vector<Profiler::ScopeStats>& profile) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"esg.perf.v1\",\n");
  std::fprintf(out, "  \"meta\": %s,\n", common::meta_json_object().c_str());
  std::fprintf(out,
               "  \"run\": {\"scheduler\": \"%s\", \"seed\": %llu, "
               "\"simulated_ms\": %.3f, \"wall_seconds\": %.6f, "
               "\"invocations\": %llu, \"events_per_sec\": %.3f, "
               "\"invocations_per_sec\": %.3f},\n",
               json_escape(run.scheduler).c_str(),
               static_cast<unsigned long long>(run.seed), run.simulated_ms,
               run.wall_seconds,
               static_cast<unsigned long long>(run.invocations),
               events_per_sec(run, counters), invocations_per_sec(run));
  std::fprintf(out, "  \"counters\": {");
  bool first = true;
  for (const CounterField& f : kCounterFields) {
    std::fprintf(out, "%s\"%s\": %llu", first ? "" : ", ", f.name,
                 static_cast<unsigned long long>(counters.*f.member));
    first = false;
  }
  std::fprintf(out, "},\n");
  std::fprintf(out, "  \"profile\": [");
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const Profiler::ScopeStats& s = profile[i];
    std::fprintf(out,
                 "%s\n    {\"path\": \"%s\", \"depth\": %d, \"calls\": %llu, "
                 "\"total_ns\": %llu, \"self_ns\": %llu, \"min_ns\": %llu, "
                 "\"max_ns\": %llu, \"mean_ns\": %.1f, \"p99_ns\": %.1f}",
                 i == 0 ? "" : ",", json_escape(s.path).c_str(), s.depth,
                 static_cast<unsigned long long>(s.calls),
                 static_cast<unsigned long long>(s.total_ns),
                 static_cast<unsigned long long>(s.self_ns),
                 static_cast<unsigned long long>(s.min_ns),
                 static_cast<unsigned long long>(s.max_ns), s.mean_ns, s.p99_ns);
  }
  std::fprintf(out, "%s]\n", profile.empty() ? "" : "\n  ");
  std::fprintf(out, "}\n");
}

void write_perf_summary(std::FILE* out, const RunInfo& run,
                        const Counters& counters,
                        const std::vector<Profiler::ScopeStats>& profile) {
  std::fprintf(out, "perf: scheduler=%s seed=%llu simulated=%.0fms wall=%.3fs\n",
               run.scheduler.c_str(), static_cast<unsigned long long>(run.seed),
               run.simulated_ms, run.wall_seconds);
  std::fprintf(out, "perf: %.0f events/s, %.0f invocations/s\n",
               events_per_sec(run, counters), invocations_per_sec(run));

  AsciiTable counter_table({"counter", "value"});
  for (const CounterField& f : kCounterFields) {
    counter_table.add_row(
        {f.name, std::to_string(counters.*f.member)});
  }
  std::fprintf(out, "%s", counter_table.render().c_str());

  if (profile.empty()) {
    std::fprintf(out,
                 "perf: no scoped timings (build with -DESG_PROFILE=ON to "
                 "enable ESG_PROF_SCOPE)\n");
    return;
  }
  AsciiTable scope_table(
      {"scope", "calls", "total", "self", "mean", "p99"});
  for (const Profiler::ScopeStats& s : profile) {
    std::string label(static_cast<std::size_t>(s.depth) * 2, ' ');
    const auto slash = s.path.rfind('/');
    label += slash == std::string::npos ? s.path : s.path.substr(slash + 1);
    scope_table.add_row({label, std::to_string(s.calls),
                         ns_human(static_cast<double>(s.total_ns)),
                         ns_human(static_cast<double>(s.self_ns)),
                         ns_human(s.mean_ns), ns_human(s.p99_ns)});
  }
  std::fprintf(out, "%s", scope_table.render().c_str());
}

}  // namespace esg::perf
