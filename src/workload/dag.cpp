#include "workload/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace esg::workload {

NodeIndex AppDag::add_node(FunctionId function) {
  nodes_.push_back(DagNode{function, {}, {}});
  return nodes_.size() - 1;
}

void AppDag::add_edge(NodeIndex from, NodeIndex to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::invalid_argument("AppDag::add_edge: node out of range");
  }
  if (from == to) throw std::invalid_argument("AppDag::add_edge: self edge");
  auto& succ = nodes_[from].successors;
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) {
    throw std::invalid_argument("AppDag::add_edge: duplicate edge");
  }
  succ.push_back(to);
  nodes_[to].predecessors.push_back(from);
}

void AppDag::validate() const {
  if (nodes_.empty()) throw std::invalid_argument("AppDag: empty DAG");
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].predecessors.empty()) {
      throw std::invalid_argument("AppDag: node " + std::to_string(i) +
                                  " is an extra source (entry must be unique)");
    }
  }
  if (!nodes_[0].predecessors.empty()) {
    throw std::invalid_argument("AppDag: entry node has predecessors");
  }
  // Kahn's algorithm detects cycles and counts reachability at once.
  const auto order = topo_order();
  if (order.size() != nodes_.size()) {
    throw std::invalid_argument("AppDag: cyclic or partially unreachable DAG");
  }
}

std::vector<NodeIndex> AppDag::sinks() const {
  std::vector<NodeIndex> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].successors.empty()) out.push_back(i);
  }
  return out;
}

bool AppDag::is_linear() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].successors.size() > 1 || nodes_[i].predecessors.size() > 1) {
      return false;
    }
  }
  return true;
}

std::vector<NodeIndex> AppDag::topo_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (NodeIndex s : n.successors) ++indegree[s];
  }
  std::vector<NodeIndex> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::vector<NodeIndex> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    // Pop the smallest index for a deterministic order.
    auto it = std::min_element(frontier.begin(), frontier.end());
    const NodeIndex u = *it;
    frontier.erase(it);
    order.push_back(u);
    for (NodeIndex v : nodes_[u].successors) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  return order;
}

AppDag make_pipeline(AppId id, std::string name,
                     const std::vector<FunctionId>& functions) {
  if (functions.empty()) {
    throw std::invalid_argument("make_pipeline: no functions");
  }
  AppDag dag(id, std::move(name));
  for (FunctionId f : functions) dag.add_node(f);
  for (std::size_t i = 0; i + 1 < functions.size(); ++i) {
    dag.add_edge(i, i + 1);
  }
  dag.validate();
  return dag;
}

}  // namespace esg::workload
