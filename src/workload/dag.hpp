// Application model: a DAG of serverless functions with a single entry node
// (the paper's workflows are pipelines or DAGs with splits/joins; the
// dominator machinery in src/core requires a single source, which every
// serverless workflow has — the node triggered by the user request).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esg::workload {

/// Index of a node inside one AppDag.
using NodeIndex = std::size_t;

struct DagNode {
  FunctionId function;
  std::vector<NodeIndex> successors;
  std::vector<NodeIndex> predecessors;
};

class AppDag {
 public:
  AppDag(AppId id, std::string name) : id_(id), name_(std::move(name)) {}

  /// Adds a node running `function`; returns its index.
  NodeIndex add_node(FunctionId function);

  /// Adds the edge from -> to. Both must exist; self-edges are rejected.
  void add_edge(NodeIndex from, NodeIndex to);

  /// Validates: non-empty, acyclic, node 0 is the unique source, and every
  /// node is reachable from it. Throws std::invalid_argument otherwise.
  void validate() const;

  [[nodiscard]] AppId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const DagNode& node(NodeIndex i) const { return nodes_.at(i); }
  [[nodiscard]] const std::vector<DagNode>& nodes() const { return nodes_; }

  [[nodiscard]] NodeIndex entry() const { return 0; }
  /// Nodes with no successors.
  [[nodiscard]] std::vector<NodeIndex> sinks() const;
  /// True if the DAG is a simple chain f0 -> f1 -> ... -> fn.
  [[nodiscard]] bool is_linear() const;
  /// A topological order starting at the entry (validated DAGs only).
  [[nodiscard]] std::vector<NodeIndex> topo_order() const;

 private:
  AppId id_;
  std::string name_;
  std::vector<DagNode> nodes_;
};

/// Builds a linear pipeline from an ordered list of functions.
[[nodiscard]] AppDag make_pipeline(AppId id, std::string name,
                                   const std::vector<FunctionId>& functions);

}  // namespace esg::workload
