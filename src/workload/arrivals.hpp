// Workload generator (Section 4.1): request inter-arrival intervals sampled
// uniformly from per-setting ranges derived from the Azure Functions traces,
// with one of the applications picked at random per arrival.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/arrival_source.hpp"

namespace esg::workload {

enum class LoadSetting { kHeavy, kNormal, kLight };

[[nodiscard]] std::string_view to_string(LoadSetting s);

/// Inter-arrival interval range in milliseconds for a load setting:
/// heavy [10, 16.8], normal [20, 33.6], light [40, 67.2].
struct IntervalRange {
  TimeMs lo_ms;
  TimeMs hi_ms;
};

[[nodiscard]] IntervalRange interval_range(LoadSetting s);

/// Deterministic arrival-sequence generator (endless).
class ArrivalGenerator final : public ArrivalSource {
 public:
  /// `apps`: the ids to sample from (uniformly). Must be non-empty.
  ArrivalGenerator(LoadSetting setting, std::vector<AppId> apps, RngStream rng);

  /// Next arrival; strictly increasing times.
  Arrival next();

  /// ArrivalSource: same draws as next(); never exhausted.
  [[nodiscard]] std::optional<Arrival> try_next() override { return next(); }

  [[nodiscard]] LoadSetting setting() const { return setting_; }

 private:
  LoadSetting setting_;
  std::vector<AppId> apps_;
  RngStream rng_;
  TimeMs clock_ms_ = 0.0;
};

}  // namespace esg::workload
