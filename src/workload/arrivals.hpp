// Workload generator (Section 4.1): request inter-arrival intervals sampled
// uniformly from per-setting ranges derived from the Azure Functions traces,
// with one of the applications picked at random per arrival.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace esg::workload {

enum class LoadSetting { kHeavy, kNormal, kLight };

[[nodiscard]] std::string_view to_string(LoadSetting s);

/// Inter-arrival interval range in milliseconds for a load setting:
/// heavy [10, 16.8], normal [20, 33.6], light [40, 67.2].
struct IntervalRange {
  TimeMs lo_ms;
  TimeMs hi_ms;
};

[[nodiscard]] IntervalRange interval_range(LoadSetting s);

/// One application invocation entering the system.
struct Arrival {
  TimeMs time_ms;
  AppId app;
};

/// Deterministic arrival-sequence generator.
class ArrivalGenerator {
 public:
  /// `apps`: the ids to sample from (uniformly). Must be non-empty.
  ArrivalGenerator(LoadSetting setting, std::vector<AppId> apps, RngStream rng);

  /// Next arrival; strictly increasing times.
  Arrival next();

  /// All arrivals with time < horizon_ms.
  [[nodiscard]] std::vector<Arrival> generate_until(TimeMs horizon_ms);

  [[nodiscard]] LoadSetting setting() const { return setting_; }

 private:
  LoadSetting setting_;
  std::vector<AppId> apps_;
  RngStream rng_;
  TimeMs clock_ms_ = 0.0;
};

}  // namespace esg::workload
