// The four DNN applications of Section 4.1, and the SLO settings of the
// paper's evaluation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "profile/profile_table.hpp"
#include "workload/dag.hpp"

namespace esg::workload {

/// Stable application indices (AppId values equal the enum values).
enum class App : std::uint32_t {
  kImageClassification = 0,     ///< super_resolution -> segmentation -> classification
  kDepthRecognition = 1,        ///< deblur -> super_resolution -> depth_recognition
  kBackgroundElimination = 2,   ///< super_resolution -> deblur -> background_removal
  kExpandedClassification = 3,  ///< deblur -> sr -> bg_removal -> segmentation -> classification
};

inline constexpr std::size_t kBuiltinAppCount = 4;

[[nodiscard]] inline AppId id_of(App a) {
  return AppId(static_cast<std::uint32_t>(a));
}

/// Builds the four applications in AppId order.
[[nodiscard]] std::vector<AppDag> builtin_applications();

/// SLO tightness relative to L, the run-alone minimum-configuration latency
/// of the whole workflow (Section 4.1).
enum class SloSetting { kStrict, kModerate, kRelaxed };

[[nodiscard]] std::string_view to_string(SloSetting s);

/// The multiplier the paper assigns to each setting (0.8 / 1.0 / 1.2).
[[nodiscard]] double slo_multiplier(SloSetting s);

/// L: the critical-path latency of `dag` when every function runs with the
/// minimum configuration (batch 1, 1 vCPU, 1 vGPU), per the profiles.
[[nodiscard]] TimeMs baseline_latency_ms(const AppDag& dag,
                                         const profile::ProfileSet& profiles);

/// The end-to-end SLO latency for `dag` under `setting`.
[[nodiscard]] TimeMs slo_latency_ms(const AppDag& dag,
                                    const profile::ProfileSet& profiles,
                                    SloSetting setting);

}  // namespace esg::workload
