// Common interface over every arrival process that can drive the platform:
// the paper's stationary per-setting generator, the bursty phase-switching
// generator, and production-trace replay (src/trace). Scenario selects a
// source polymorphically instead of branching on load-setting enums.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace esg::workload {

/// One application invocation entering the system.
struct Arrival {
  TimeMs time_ms;
  AppId app;
  /// Submitting tenant; 0 unless a multi-tenant trace says otherwise (the
  /// static --tenants app mapping is applied downstream by the controller).
  std::uint32_t tenant = 0;
};

/// A deterministic, strictly-increasing stream of arrivals. Synthetic
/// sources are endless; trace replay is exhausted once the trace ends.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Next arrival (strictly increasing times), or nullopt once the source
  /// is exhausted. Exhaustion is permanent.
  [[nodiscard]] virtual std::optional<Arrival> try_next() = 0;

  /// All remaining arrivals with time < horizon_ms. Matches the historical
  /// ArrivalGenerator::generate_until contract: the first arrival at or
  /// beyond the horizon is drawn (advancing the stream) and discarded.
  [[nodiscard]] std::vector<Arrival> generate_until(TimeMs horizon_ms);
};

}  // namespace esg::workload
