#include "workload/arrival_source.hpp"

namespace esg::workload {

std::vector<Arrival> ArrivalSource::generate_until(TimeMs horizon_ms) {
  std::vector<Arrival> out;
  for (;;) {
    const std::optional<Arrival> a = try_next();
    if (!a.has_value() || a->time_ms >= horizon_ms) break;
    out.push_back(*a);
  }
  return out;
}

}  // namespace esg::workload
