#include "workload/arrivals.hpp"

#include <stdexcept>
#include <utility>

namespace esg::workload {

std::string_view to_string(LoadSetting s) {
  switch (s) {
    case LoadSetting::kHeavy:
      return "heavy";
    case LoadSetting::kNormal:
      return "normal";
    case LoadSetting::kLight:
      return "light";
  }
  throw std::invalid_argument("to_string: bad LoadSetting");
}

IntervalRange interval_range(LoadSetting s) {
  switch (s) {
    case LoadSetting::kHeavy:
      return {10.0, 16.8};
    case LoadSetting::kNormal:
      return {20.0, 33.6};
    case LoadSetting::kLight:
      return {40.0, 67.2};
  }
  throw std::invalid_argument("interval_range: bad LoadSetting");
}

ArrivalGenerator::ArrivalGenerator(LoadSetting setting, std::vector<AppId> apps,
                                   RngStream rng)
    : setting_(setting), apps_(std::move(apps)), rng_(std::move(rng)) {
  if (apps_.empty()) {
    throw std::invalid_argument("ArrivalGenerator: need at least one app");
  }
}

Arrival ArrivalGenerator::next() {
  const IntervalRange range = interval_range(setting_);
  clock_ms_ += rng_.uniform(range.lo_ms, range.hi_ms);
  const AppId app = apps_[rng_.below(apps_.size())];
  return Arrival{clock_ms_, app};
}

}  // namespace esg::workload
