// Time-varying arrival generator: alternates calm and burst phases so
// experiments can stress the schedulers' adaptivity beyond the paper's
// stationary per-setting ranges (the Azure traces the paper derives its
// ranges from are bursty at the minute level; this reintroduces that
// dynamism in a controlled, reproducible way).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/arrivals.hpp"

namespace esg::workload {

struct BurstProfile {
  LoadSetting calm = LoadSetting::kLight;   ///< baseline phase
  LoadSetting burst = LoadSetting::kHeavy;  ///< burst phase
  TimeMs mean_calm_ms = 8'000.0;            ///< mean calm-phase length
  TimeMs mean_burst_ms = 2'000.0;           ///< mean burst-phase length
};

/// Generates arrivals whose inter-arrival distribution switches between the
/// calm and burst settings; phase lengths are exponential. Deterministic
/// for a given stream.
class BurstyArrivalGenerator final : public ArrivalSource {
 public:
  BurstyArrivalGenerator(BurstProfile profile, std::vector<AppId> apps,
                         RngStream rng);

  Arrival next();

  /// ArrivalSource: same draws as next(); never exhausted.
  [[nodiscard]] std::optional<Arrival> try_next() override { return next(); }

  /// Whether the generator is currently inside a burst phase.
  [[nodiscard]] bool in_burst() const { return in_burst_; }

 private:
  BurstProfile profile_;
  std::vector<AppId> apps_;
  RngStream rng_;
  TimeMs clock_ms_ = 0.0;
  TimeMs phase_end_ms_ = 0.0;
  bool in_burst_ = false;

  void maybe_switch_phase();
};

}  // namespace esg::workload
