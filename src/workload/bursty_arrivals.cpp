#include "workload/bursty_arrivals.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace esg::workload {

BurstyArrivalGenerator::BurstyArrivalGenerator(BurstProfile profile,
                                               std::vector<AppId> apps,
                                               RngStream rng)
    : profile_(profile), apps_(std::move(apps)), rng_(std::move(rng)) {
  if (apps_.empty()) {
    throw std::invalid_argument("BurstyArrivalGenerator: need at least one app");
  }
  if (profile_.mean_calm_ms <= 0.0 || profile_.mean_burst_ms <= 0.0) {
    throw std::invalid_argument(
        "BurstyArrivalGenerator: phase lengths must be positive");
  }
  maybe_switch_phase();
}

void BurstyArrivalGenerator::maybe_switch_phase() {
  while (clock_ms_ >= phase_end_ms_) {
    in_burst_ = phase_end_ms_ > 0.0 ? !in_burst_ : false;
    const TimeMs mean =
        in_burst_ ? profile_.mean_burst_ms : profile_.mean_calm_ms;
    // Exponential phase length via inverse transform; clamp the uniform away
    // from 0 to keep the log finite.
    const double u = std::max(1e-12, rng_.uniform());
    phase_end_ms_ = clock_ms_ + mean * -std::log(u);
  }
}

Arrival BurstyArrivalGenerator::next() {
  const IntervalRange range =
      interval_range(in_burst_ ? profile_.burst : profile_.calm);
  clock_ms_ += rng_.uniform(range.lo_ms, range.hi_ms);
  maybe_switch_phase();
  const AppId app = apps_[rng_.below(apps_.size())];
  return Arrival{clock_ms_, app};
}

}  // namespace esg::workload
