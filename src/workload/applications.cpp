#include "workload/applications.hpp"

#include <algorithm>
#include <stdexcept>

#include "profile/function_spec.hpp"

namespace esg::workload {

using profile::Function;

std::vector<AppDag> builtin_applications() {
  std::vector<AppDag> apps;
  apps.push_back(make_pipeline(
      id_of(App::kImageClassification), "image_classification",
      {profile::id_of(Function::kSuperResolution),
       profile::id_of(Function::kSegmentation),
       profile::id_of(Function::kClassification)}));
  apps.push_back(make_pipeline(
      id_of(App::kDepthRecognition), "depth_recognition",
      {profile::id_of(Function::kDeblur),
       profile::id_of(Function::kSuperResolution),
       profile::id_of(Function::kDepthRecognition)}));
  apps.push_back(make_pipeline(
      id_of(App::kBackgroundElimination), "background_elimination",
      {profile::id_of(Function::kSuperResolution),
       profile::id_of(Function::kDeblur),
       profile::id_of(Function::kBackgroundRemoval)}));
  apps.push_back(make_pipeline(
      id_of(App::kExpandedClassification), "expanded_image_classification",
      {profile::id_of(Function::kDeblur),
       profile::id_of(Function::kSuperResolution),
       profile::id_of(Function::kBackgroundRemoval),
       profile::id_of(Function::kSegmentation),
       profile::id_of(Function::kClassification)}));
  return apps;
}

std::string_view to_string(SloSetting s) {
  switch (s) {
    case SloSetting::kStrict:
      return "strict";
    case SloSetting::kModerate:
      return "moderate";
    case SloSetting::kRelaxed:
      return "relaxed";
  }
  throw std::invalid_argument("to_string: bad SloSetting");
}

double slo_multiplier(SloSetting s) {
  switch (s) {
    case SloSetting::kStrict:
      return 0.8;
    case SloSetting::kModerate:
      return 1.0;
    case SloSetting::kRelaxed:
      return 1.2;
  }
  throw std::invalid_argument("slo_multiplier: bad SloSetting");
}

TimeMs baseline_latency_ms(const AppDag& dag,
                           const profile::ProfileSet& profiles) {
  // Longest path over min-config latencies (for pipelines: their sum).
  const auto order = dag.topo_order();
  std::vector<TimeMs> finish(dag.size(), 0.0);
  TimeMs best = 0.0;
  for (NodeIndex u : order) {
    TimeMs start = 0.0;
    for (NodeIndex p : dag.node(u).predecessors) {
      start = std::max(start, finish[p]);
    }
    const auto& tbl = profiles.table(dag.node(u).function);
    finish[u] = start + tbl.min_config_entry().latency_ms;
    best = std::max(best, finish[u]);
  }
  return best;
}

TimeMs slo_latency_ms(const AppDag& dag, const profile::ProfileSet& profiles,
                      SloSetting setting) {
  return slo_multiplier(setting) * baseline_latency_ms(dag, profiles);
}

}  // namespace esg::workload
