#include "tenant/fair_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace esg::tenant {

FairQueue::FairQueue(TenantSpec spec, std::size_t device_count,
                     bool gate_throttle)
    : spec_(std::move(spec)),
      devices_(std::max<std::size_t>(device_count, 1)),
      gate_(gate_throttle) {
  if (spec_.tenants.empty()) {
    // Gated single-tenant run (MQFQ-Sticky without --tenants): one implicit
    // flow covering everything.
    TenantDef def;
    def.name = "t0";
    spec_.tenants.push_back(std::move(def));
  }
  flows_.resize(spec_.tenants.size());

  // Sticky ring: contiguous, weight-proportional slices. Every flow gets at
  // least one device; remainders go to the heaviest flows first (ties by id,
  // so the partition is deterministic).
  const double total_weight = std::accumulate(
      spec_.tenants.begin(), spec_.tenants.end(), 0.0,
      [](double acc, const TenantDef& d) { return acc + d.weight; });
  std::vector<std::size_t> lens(flows_.size(), 1);
  if (devices_ >= flows_.size()) {
    std::size_t assigned = 0;
    for (std::size_t t = 0; t < flows_.size(); ++t) {
      const double share =
          static_cast<double>(devices_) * spec_.tenants[t].weight / total_weight;
      lens[t] = std::max<std::size_t>(1, static_cast<std::size_t>(share));
      assigned += lens[t];
    }
    // Distribute leftover devices (from flooring) by descending weight.
    std::vector<std::uint32_t> by_weight(flows_.size());
    std::iota(by_weight.begin(), by_weight.end(), 0u);
    std::stable_sort(by_weight.begin(), by_weight.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return spec_.tenants[a].weight > spec_.tenants[b].weight;
                     });
    std::size_t i = 0;
    while (assigned < devices_) {
      ++lens[by_weight[i % by_weight.size()]];
      ++assigned;
      ++i;
    }
  }
  std::size_t start = 0;
  for (std::size_t t = 0; t < flows_.size(); ++t) {
    flows_[t].ring_start = start % devices_;
    flows_[t].ring_len = std::min(lens[t], devices_);
    start += lens[t];
  }
}

void FairQueue::refresh_global_vt() {
  double min_active = std::numeric_limits<double>::infinity();
  for (const Flow& flow : flows_) {
    if (flow.backlog > 0) min_active = std::min(min_active, flow.vt);
  }
  if (min_active != std::numeric_limits<double>::infinity()) {
    global_vt_ = std::max(global_vt_, min_active);
  }
}

void FairQueue::on_enqueue(std::uint32_t t) {
  assert(t < flows_.size());
  Flow& flow = flows_[t];
  if (flow.backlog == 0) {
    // Start-time catch-up: an idle flow resumes at the global virtual time
    // instead of cashing in the service it never requested.
    flow.vt = std::max(flow.vt, global_vt_);
    ++counters_.vt_updates;
  }
  ++flow.backlog;
  refresh_global_vt();
}

void FairQueue::on_dequeue(std::uint32_t t, std::size_t jobs) {
  assert(t < flows_.size());
  Flow& flow = flows_[t];
  flow.backlog -= std::min(flow.backlog, jobs);
  refresh_global_vt();
}

void FairQueue::on_charge(std::uint32_t t, double occupancy_ms,
                          std::uint32_t vcpus, std::uint32_t vgpus) {
  assert(t < flows_.size());
  Flow& flow = flows_[t];
  const double charge =
      charge_.charge_ms(spec_.tenants[t], occupancy_ms, vcpus, vgpus);
  flow.charged_ms += charge;
  flow.vt += charge / spec_.tenants[t].weight;
  ++counters_.vt_updates;
  refresh_global_vt();
}

bool FairQueue::throttled(std::uint32_t t) const {
  if (!gate_ || flows_.size() < 2) return false;
  double min_other_active = std::numeric_limits<double>::infinity();
  for (std::size_t o = 0; o < flows_.size(); ++o) {
    if (o == t || flows_[o].backlog == 0) continue;
    min_other_active = std::min(min_other_active, flows_[o].vt);
  }
  if (min_other_active == std::numeric_limits<double>::infinity()) return false;
  const bool paused = flows_[t].vt > min_other_active + spec_.throttle_ms;
  if (paused) ++flows_[t].throttle_events;
  return paused;
}

std::vector<std::uint32_t> FairQueue::ordered_tenants() const {
  std::vector<std::uint32_t> order(flows_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return flows_[a].vt < flows_[b].vt;
                   });
  return order;
}

bool FairQueue::sticky(std::uint32_t t, InvokerId invoker) const {
  if (!invoker.valid()) return false;
  const Flow& flow = flows_[t];
  const std::size_t inv = invoker.get() % devices_;
  const std::size_t offset = (inv + devices_ - flow.ring_start) % devices_;
  return offset < flow.ring_len;
}

InvokerId FairQueue::sticky_home(std::uint32_t t) const {
  return InvokerId(static_cast<std::uint32_t>(flows_[t].ring_start));
}

}  // namespace esg::tenant
