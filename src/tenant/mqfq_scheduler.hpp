// The MQFQ-Sticky scheduling strategy (sixth SchedulerKind; DESIGN.md §12).
//
// Planning reuses ESG's pipeline-conscious machinery unchanged — dominator
// SLO distribution, ESG_1Q configuration search, adaptive budgets — because
// MQFQ-Sticky is a *fairness* layer, not a configuration planner. What it
// changes is placement and dispatch order:
//
//   - placement is locality-sticky per flow: each tenant owns a
//     weight-proportional slice of the device ring (FairQueue), and its
//     batches land there first (warm before cold, predecessor-local when the
//     predecessor is inside the slice), spilling to ESG_Dispatch only when
//     the slice is full — so a tenant's working set stays warm on its own
//     devices and a neighbour's burst cannot evict it;
//   - dispatch order and throttling live in the controller, which scans
//     queues in ascending flow virtual time and pauses flows more than T
//     ahead of the slowest active one (FairQueue::throttled).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/esg_scheduler.hpp"
#include "platform/scheduler.hpp"
#include "tenant/fair_queue.hpp"

namespace esg::tenant {

class MqfqStickyScheduler : public platform::Scheduler {
 public:
  /// `fair_queue` must outlive the scheduler (it is owned by the run, shared
  /// with the controller's accounting hooks).
  MqfqStickyScheduler(const std::vector<workload::AppDag>& apps,
                      const profile::ProfileSet& profiles,
                      core::EsgScheduler::Options options,
                      const FairQueue* fair_queue)
      : inner_(apps, profiles, options), fair_queue_(fair_queue) {}

  [[nodiscard]] std::string_view name() const override { return "MQFQ-Sticky"; }

  platform::PlanResult plan(const platform::QueueView& view) override {
    return inner_.plan(view);
  }

  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  void on_request(RequestId request, AppId app, TimeMs now_ms) override {
    inner_.on_request(request, app, now_ms);
  }

  void on_stage_retry(AppId app, workload::NodeIndex stage,
                      TimeMs now_ms) override {
    inner_.on_stage_retry(app, stage, now_ms);
  }

  [[nodiscard]] std::vector<double> planned_stage_fractions(
      AppId app) const override {
    return inner_.planned_stage_fractions(app);
  }

  [[nodiscard]] bool prefers_locality() const override { return true; }

 private:
  core::EsgScheduler inner_;
  const FairQueue* fair_queue_;
};

}  // namespace esg::tenant
