// Multi-tenant declaration grammar (DESIGN.md §12).
//
// A TenantSpec names the principals sharing the cluster, their fair-queueing
// weights, the charge metric each tenant's service is accounted in (time,
// energy, or a hybrid blend — following ETF), and an optional static
// app→tenant mapping. Parsed from `--tenants` (inline or `@file`) with the
// same hardening contract as FaultSpec/ElasticSpec: every malformed clause is
// rejected at parse time with a precise std::invalid_argument.
//
// Grammar (clauses separated by ';'):
//
//   <name>:<weight>[:<mode>][:apps=<id>,<id>,...]   declare one tenant
//   throttle=<ms>                                   MQFQ throttle threshold T
//
//   mode  := time | energy | hybrid=<alpha in [0,1]>
//
// Examples:
//   premium:3;free:1
//   premium:3:energy:apps=0,2;free:1:time:apps=1,3
//   steady:1;bursty:1;throttle=40
//
// Tenant ids are the declaration order (first clause = tenant 0). Apps not
// claimed by any apps= list map to tenant 0; a trace with a tenant column
// overrides the static mapping per arrival. An absent spec — or a single
// declared tenant — is *inert*: the platform runs the exact single-tenant
// code path and its outputs stay byte-identical to pre-tenant builds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace esg::tenant {

/// Which metric a tenant's virtual time advances in (ETF's knob).
enum class ChargeMode : std::uint8_t { kTime, kEnergy, kHybrid };

[[nodiscard]] std::string_view to_string(ChargeMode mode);

struct TenantDef {
  std::string name;
  double weight = 1.0;
  ChargeMode mode = ChargeMode::kTime;
  /// Blend factor for kHybrid: charge = alpha*time + (1-alpha)*energy.
  double hybrid_alpha = 0.5;
  /// Apps statically mapped to this tenant (empty on tenant 0 means
  /// "everything unclaimed").
  std::vector<std::uint32_t> apps;
};

struct TenantSpec {
  std::vector<TenantDef> tenants;
  /// MQFQ-Sticky throttle threshold T: a flow whose virtual time runs more
  /// than this far ahead of the slowest active flow is paused (in weighted
  /// service-ms).
  double throttle_ms = 50.0;

  /// At least one tenant was declared.
  [[nodiscard]] bool enabled() const { return !tenants.empty(); }

  /// Zero or one tenant: fair queueing cannot change any decision, so the
  /// platform must take the exact legacy code path (byte-identity contract).
  [[nodiscard]] bool inert() const { return tenants.size() <= 1; }

  /// Static app→tenant mapping; unclaimed apps belong to tenant 0.
  [[nodiscard]] std::uint32_t tenant_of(std::uint32_t app) const;

  /// Display name for tenant `t` ("t<N>" beyond the declared list, e.g. for
  /// trace-declared tenants on a run without a spec).
  [[nodiscard]] std::string tenant_name(std::uint32_t t) const;

  [[nodiscard]] double weight_of(std::uint32_t t) const {
    return t < tenants.size() ? tenants[t].weight : 1.0;
  }
};

/// Parses the grammar above; "" and "none" yield a disabled spec. Throws
/// std::invalid_argument on any malformed clause.
[[nodiscard]] TenantSpec parse_tenant_spec(std::string_view text);

/// CLI entry point: `@path` loads the spec text from a file (throwing
/// std::invalid_argument when unreadable); anything else parses in place.
[[nodiscard]] TenantSpec load_tenant_spec(std::string_view arg);

/// Round-trippable canonical form ("none" when disabled).
[[nodiscard]] std::string to_string(const TenantSpec& spec);

/// Expands a spec for a run that replays a trace declaring `trace_tenants`
/// tenants: a disabled spec grows implicit equal-weight tenants t0..tN-1;
/// a declared spec must already cover them (throws when the trace names a
/// tenant id >= the declared count).
[[nodiscard]] TenantSpec resolve_for_trace(TenantSpec spec,
                                           std::size_t trace_tenants);

}  // namespace esg::tenant
