#include "tenant/charge.hpp"

#include <algorithm>

namespace esg::tenant {

double ChargeModel::time_charge_ms(double occupancy_ms,
                                   std::uint32_t vgpus) const {
  const double slices = std::max<std::uint32_t>(vgpus, 1);
  return std::max(occupancy_ms, 0.0) * slices;
}

double ChargeModel::joules(double occupancy_ms, std::uint32_t vcpus,
                           std::uint32_t vgpus) const {
  const double watts = power_.base_w + power_.per_vgpu_w * vgpus +
                       power_.per_vcpu_w * vcpus;
  return watts * std::max(occupancy_ms, 0.0) / 1000.0;
}

double ChargeModel::energy_charge_ms(double occupancy_ms, std::uint32_t vcpus,
                                     std::uint32_t vgpus) const {
  // Reference: one busy vGPU slice (so a pure-GPU task charges ≈ its
  // time-fair value and CPU-heavy tasks charge more under energy fairness).
  const double ref_w = power_.base_w + power_.per_vgpu_w;
  return joules(occupancy_ms, vcpus, vgpus) * 1000.0 / ref_w;
}

double ChargeModel::charge_ms(const TenantDef& tenant, double occupancy_ms,
                              std::uint32_t vcpus, std::uint32_t vgpus) const {
  switch (tenant.mode) {
    case ChargeMode::kTime:
      return time_charge_ms(occupancy_ms, vgpus);
    case ChargeMode::kEnergy:
      return energy_charge_ms(occupancy_ms, vcpus, vgpus);
    case ChargeMode::kHybrid:
      return tenant.hybrid_alpha * time_charge_ms(occupancy_ms, vgpus) +
             (1.0 - tenant.hybrid_alpha) *
                 energy_charge_ms(occupancy_ms, vcpus, vgpus);
  }
  return time_charge_ms(occupancy_ms, vgpus);
}

}  // namespace esg::tenant
