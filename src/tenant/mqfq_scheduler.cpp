#include "tenant/mqfq_scheduler.hpp"

namespace esg::tenant {

std::optional<InvokerId> MqfqStickyScheduler::place(
    const platform::PlacementContext& ctx, const cluster::Cluster& cluster) {
  const std::uint32_t t = ctx.tenant;
  const auto fits = [&](InvokerId id) {
    if (ctx.excluded_invoker.valid() && id == ctx.excluded_invoker) {
      return false;
    }
    return cluster.invoker(id).can_fit(ctx.config.vcpus, ctx.config.vgpus);
  };
  const auto warm = [&](InvokerId id) {
    return cluster.invoker(id).has_warm(ctx.function, ctx.now_ms);
  };
  const auto in_slice = [&](InvokerId id) {
    return id.valid() && fair_queue_->sticky(t, id);
  };

  // 1. Data locality inside the slice: the predecessor's invoker when it is
  //    one of ours, warm and fitting.
  if (in_slice(ctx.predecessor_invoker) && fits(ctx.predecessor_invoker) &&
      warm(ctx.predecessor_invoker)) {
    return ctx.predecessor_invoker;
  }

  // 2./3. Scan the slice from its deterministic anchor: warm first, then the
  //       cold slice member with the most free resources.
  const std::size_t n = cluster.size();
  const std::size_t start = fair_queue_->sticky_home(t).get() % n;
  std::optional<InvokerId> cold_best;
  int cold_score = -1;
  for (std::size_t step = 0; step < n; ++step) {
    const InvokerId id(static_cast<std::uint32_t>((start + step) % n));
    if (!in_slice(id) || !fits(id)) continue;
    if (warm(id)) return id;
    const auto& inv = cluster.invoker(id);
    const int score = inv.free_vgpus() * 64 + inv.free_vcpus();
    if (score > cold_score) {
      cold_score = score;
      cold_best = id;
    }
  }
  if (cold_best.has_value()) return cold_best;

  // 4. Slice full: spill through ESG_Dispatch over the whole fleet so the
  //    tenant is not starved by its own affinity.
  return inner_.place(ctx, cluster);
}

}  // namespace esg::tenant
