// MQFQ-Sticky fair-queueing core (PAPERS.md: "Fair Queueing For Serverless
// GPU Functions"; DESIGN.md §12).
//
// One flow per tenant. A flow's *virtual time* (VT) advances by the charge of
// every task dispatched on its behalf (ChargeModel — time, energy, or hybrid
// service) divided by the tenant's weight, so equal-VT flows have received
// weight-proportional service. The three MQFQ mechanisms:
//
//   start-time catch-up   a flow activating after idling resumes at the
//                         global virtual time (max over the min active VT
//                         seen so far), so sleeping tenants bank no credit;
//   throttle threshold T  when gating is enabled (the MQFQ-Sticky scheduler),
//                         a flow whose VT runs more than T ahead of the
//                         slowest active flow is paused until the laggard
//                         catches up — this bounds unfairness to T per pair;
//   locality stickiness   each flow owns a contiguous, weight-proportional
//                         slice of the device ring and prefers dispatching
//                         there, keeping its working set warm on few devices.
//
// The core is pure bookkeeping — deterministic, no clock, no RNG — shared by
// the controller (accounting + scan order + gating) and the MqfqSticky
// scheduler (sticky placement). Weighted-share mode (any other scheduler with
// --tenants) uses the same object with gating off: VT ordering biases the
// round-robin scan, but nothing is ever paused.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "perf/counters.hpp"
#include "tenant/charge.hpp"
#include "tenant/tenant_spec.hpp"

namespace esg::tenant {

class FairQueue {
 public:
  /// `spec` must be non-inert or gating enabled; `device_count` sizes the
  /// sticky device ring (the fleet's invoker count).
  FairQueue(TenantSpec spec, std::size_t device_count, bool gate_throttle);

  [[nodiscard]] std::size_t tenant_count() const { return flows_.size(); }
  [[nodiscard]] const TenantSpec& spec() const { return spec_; }
  [[nodiscard]] const ChargeModel& charge_model() const { return charge_; }
  [[nodiscard]] bool gating() const { return gate_; }

  /// --- flow accounting (controller hooks) -------------------------------
  void on_enqueue(std::uint32_t t);
  void on_dequeue(std::uint32_t t, std::size_t jobs);
  /// Books one dispatched task: VT += charge(mode, occupancy)/weight.
  void on_charge(std::uint32_t t, double occupancy_ms, std::uint32_t vcpus,
                 std::uint32_t vgpus);

  [[nodiscard]] double virtual_time(std::uint32_t t) const {
    return flows_[t].vt;
  }
  [[nodiscard]] std::size_t backlog(std::uint32_t t) const {
    return flows_[t].backlog;
  }
  /// Cumulative charge (service-ms) billed to the tenant.
  [[nodiscard]] double charged_ms(std::uint32_t t) const {
    return flows_[t].charged_ms;
  }

  /// True when gating is on and flow `t` has run more than T ahead of the
  /// slowest *other* active flow. Each positive answer is counted (gauge).
  [[nodiscard]] bool throttled(std::uint32_t t) const;
  [[nodiscard]] std::uint64_t throttle_events(std::uint32_t t) const {
    return flows_[t].throttle_events;
  }

  /// Tenant indices in dispatch-priority order: ascending VT, ties by id.
  [[nodiscard]] std::vector<std::uint32_t> ordered_tenants() const;

  /// --- sticky device affinity -------------------------------------------
  /// True when `invoker` lies in tenant `t`'s slice of the device ring.
  [[nodiscard]] bool sticky(std::uint32_t t, InvokerId invoker) const;
  /// First device of the tenant's slice (deterministic warm anchor).
  [[nodiscard]] InvokerId sticky_home(std::uint32_t t) const;

  /// Always-on hot-path counters (vt_updates; DESIGN.md §13).
  [[nodiscard]] const perf::Counters& counters() const { return counters_; }

 private:
  struct Flow {
    double vt = 0.0;
    double charged_ms = 0.0;
    std::size_t backlog = 0;
    std::size_t ring_start = 0;  ///< sticky slice [start, start+len) mod D
    std::size_t ring_len = 1;
    mutable std::uint64_t throttle_events = 0;
  };

  /// Min VT over active (backlogged) flows folded into the monotone global
  /// virtual time.
  void refresh_global_vt();

  TenantSpec spec_;
  ChargeModel charge_;
  std::vector<Flow> flows_;
  std::size_t devices_ = 1;
  bool gate_ = false;
  double global_vt_ = 0.0;
  perf::Counters counters_;
};

}  // namespace esg::tenant
