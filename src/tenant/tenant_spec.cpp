#include "tenant/tenant_spec.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace esg::tenant {

namespace {

[[noreturn]] void bad_spec(std::string_view clause, const std::string& why) {
  throw std::invalid_argument("tenant spec '" + std::string(clause) +
                              "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

double parse_double(std::string_view clause, std::string_view what,
                    std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    bad_spec(clause, "malformed number for " + std::string(what) + ": '" +
                         std::string(v) + "'");
  }
  return out;
}

std::uint32_t parse_app_id(std::string_view clause, std::string_view v) {
  const double d = parse_double(clause, "apps entry", v);
  if (d < 0.0 || d != std::floor(d) || d >= 4294967295.0) {
    bad_spec(clause, "app ids must be small non-negative integers");
  }
  return static_cast<std::uint32_t>(d);
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void parse_mode(std::string_view clause, std::string_view field,
                TenantDef& def) {
  if (field == "time") {
    def.mode = ChargeMode::kTime;
  } else if (field == "energy") {
    def.mode = ChargeMode::kEnergy;
  } else if (field.rfind("hybrid=", 0) == 0) {
    def.mode = ChargeMode::kHybrid;
    def.hybrid_alpha = parse_double(clause, "hybrid alpha", field.substr(7));
    if (def.hybrid_alpha < 0.0 || def.hybrid_alpha > 1.0) {
      bad_spec(clause, "hybrid alpha must be in [0, 1]");
    }
  } else {
    bad_spec(clause, "unknown charge mode '" + std::string(field) +
                         "' (time|energy|hybrid=<alpha>)");
  }
}

void parse_apps(std::string_view clause, std::string_view list,
                TenantDef& def) {
  if (list.empty()) bad_spec(clause, "apps= needs at least one app id");
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string_view item = trim(list.substr(pos, comma - pos));
    pos = comma + 1;
    if (item.empty()) bad_spec(clause, "empty app id in apps=");
    def.apps.push_back(parse_app_id(clause, item));
  }
}

TenantDef parse_tenant_clause(std::string_view clause) {
  TenantDef def;
  // name : weight [: mode] [: apps=...] — fields split on ':'.
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos <= clause.size()) {
    const std::size_t colon = std::min(clause.find(':', pos), clause.size());
    fields.push_back(trim(clause.substr(pos, colon - pos)));
    pos = colon + 1;
  }
  if (fields.size() < 2) {
    bad_spec(clause, "expected <name>:<weight>[:<mode>][:apps=...]");
  }
  if (!valid_name(fields[0])) {
    bad_spec(clause, "tenant names must be non-empty [A-Za-z0-9_-]");
  }
  def.name = std::string(fields[0]);
  def.weight = parse_double(clause, "weight", fields[1]);
  if (def.weight <= 0.0) bad_spec(clause, "weight must be > 0");

  bool saw_mode = false;
  bool saw_apps = false;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    if (field.rfind("apps=", 0) == 0) {
      if (saw_apps) bad_spec(clause, "duplicate apps= field");
      saw_apps = true;
      parse_apps(clause, field.substr(5), def);
    } else {
      if (saw_mode) bad_spec(clause, "duplicate charge-mode field");
      saw_mode = true;
      parse_mode(clause, field, def);
    }
  }
  return def;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string_view to_string(ChargeMode mode) {
  switch (mode) {
    case ChargeMode::kTime:
      return "time";
    case ChargeMode::kEnergy:
      return "energy";
    case ChargeMode::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::uint32_t TenantSpec::tenant_of(std::uint32_t app) const {
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (const std::uint32_t a : tenants[t].apps) {
      if (a == app) return static_cast<std::uint32_t>(t);
    }
  }
  return 0;
}

std::string TenantSpec::tenant_name(std::uint32_t t) const {
  if (t < tenants.size()) return tenants[t].name;
  return "t" + std::to_string(t);
}

TenantSpec parse_tenant_spec(std::string_view text) {
  TenantSpec spec;
  const std::string_view all = trim(text);
  if (all.empty() || all == "none") return spec;

  std::size_t pos = 0;
  bool saw_throttle = false;
  while (pos <= all.size()) {
    const std::size_t semi = std::min(all.find(';', pos), all.size());
    const std::string_view clause = trim(all.substr(pos, semi - pos));
    pos = semi + 1;
    if (clause.empty()) continue;
    if (clause.rfind("throttle=", 0) == 0) {
      if (saw_throttle) bad_spec(clause, "duplicate throttle= clause");
      saw_throttle = true;
      spec.throttle_ms = parse_double(clause, "throttle", clause.substr(9));
      if (spec.throttle_ms <= 0.0) bad_spec(clause, "throttle must be > 0");
      continue;
    }
    spec.tenants.push_back(parse_tenant_clause(clause));
  }
  if (spec.tenants.empty()) {
    bad_spec(all, "needs at least one tenant clause");
  }

  std::set<std::string_view> names;
  std::set<std::uint32_t> claimed;
  for (const auto& def : spec.tenants) {
    if (!names.insert(def.name).second) {
      bad_spec(all, "duplicate tenant name '" + def.name + "'");
    }
    for (const std::uint32_t app : def.apps) {
      if (!claimed.insert(app).second) {
        bad_spec(all, "app " + std::to_string(app) +
                          " mapped to more than one tenant");
      }
    }
  }
  return spec;
}

TenantSpec load_tenant_spec(std::string_view arg) {
  if (arg.empty() || arg.front() != '@') return parse_tenant_spec(arg);
  const std::string path(arg.substr(1));
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("tenant-spec file '" + path +
                                "' is unreadable");
  }
  std::ostringstream text;
  text << file.rdbuf();
  // File form: newlines are clause separators too, so one clause per line
  // reads naturally.
  std::string body = text.str();
  for (char& c : body) {
    if (c == '\n' || c == '\r') c = ';';
  }
  return parse_tenant_spec(body);
}

std::string to_string(const TenantSpec& spec) {
  if (!spec.enabled()) return "none";
  std::string out;
  for (const auto& def : spec.tenants) {
    if (!out.empty()) out += ";";
    out += def.name + ":" + fmt(def.weight);
    out += ":" + std::string(to_string(def.mode));
    if (def.mode == ChargeMode::kHybrid) out += "=" + fmt(def.hybrid_alpha);
    if (!def.apps.empty()) {
      out += ":apps=";
      for (std::size_t i = 0; i < def.apps.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(def.apps[i]);
      }
    }
  }
  out += ";throttle=" + fmt(spec.throttle_ms);
  return out;
}

TenantSpec resolve_for_trace(TenantSpec spec, std::size_t trace_tenants) {
  if (trace_tenants <= 1 && !spec.enabled()) return spec;
  if (!spec.enabled()) {
    // Trace-declared tenants with no --tenants spec: implicit equal weights.
    for (std::size_t t = 0; t < trace_tenants; ++t) {
      TenantDef def;
      def.name = "t" + std::to_string(t);
      spec.tenants.push_back(std::move(def));
    }
    return spec;
  }
  if (trace_tenants > spec.tenants.size()) {
    throw std::invalid_argument(
        "tenant spec declares " + std::to_string(spec.tenants.size()) +
        " tenant(s) but the trace references tenant id " +
        std::to_string(trace_tenants - 1));
  }
  return spec;
}

}  // namespace esg::tenant
