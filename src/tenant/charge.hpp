// Pluggable per-tenant service charge (ETF's time/energy fairness knob).
//
// MQFQ advances a flow's virtual time by the *service* its dispatches
// consumed, divided by the flow's weight. What counts as service is a policy
// choice (SNIPPETS.md snippet 1, ETF): time-fair charges GPU occupancy,
// energy-fair charges modelled Joules, and hybrid blends the two. So that the
// modes are mutually comparable (and so a throttle threshold in ms means the
// same thing under every mode), the energy charge is normalised back into
// "equivalent single-vGPU milliseconds" via the reference power of one busy
// vGPU slice.
//
// The model is deterministic and closed-form — no randomness, no state — so
// fair-queueing runs replay byte-identically.
#pragma once

#include <cstdint>

#include "tenant/tenant_spec.hpp"

namespace esg::tenant {

/// Simple linear node power model (Watts) for the energy-fair charge.
struct PowerModel {
  double base_w = 50.0;      ///< chassis share attributed to a running task
  double per_vgpu_w = 250.0; ///< one busy vGPU slice
  double per_vcpu_w = 12.5;  ///< one busy vCPU
};

class ChargeModel {
 public:
  explicit ChargeModel(PowerModel power = {}) : power_(power) {}

  /// GPU-time service: occupancy × vGPU slices (a 2-slice task consumes the
  /// shared pool twice as fast). Always ≥ 0.
  [[nodiscard]] double time_charge_ms(double occupancy_ms,
                                      std::uint32_t vgpus) const;

  /// Energy service in equivalent single-vGPU milliseconds: modelled Watts ×
  /// occupancy, divided by the one-vGPU reference power.
  [[nodiscard]] double energy_charge_ms(double occupancy_ms,
                                        std::uint32_t vcpus,
                                        std::uint32_t vgpus) const;

  /// Modelled Joules of one task (for reporting).
  [[nodiscard]] double joules(double occupancy_ms, std::uint32_t vcpus,
                              std::uint32_t vgpus) const;

  /// The charge a tenant's flow is billed under its declared mode.
  [[nodiscard]] double charge_ms(const TenantDef& tenant, double occupancy_ms,
                                 std::uint32_t vcpus,
                                 std::uint32_t vgpus) const;

  [[nodiscard]] const PowerModel& power() const { return power_; }

 private:
  PowerModel power_;
};

}  // namespace esg::tenant
