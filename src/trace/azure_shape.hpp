// Synthetic Azure-Functions-shaped trace generator: the diurnal sinusoid,
// Zipf-skewed per-app popularity, and short multiplicative burst episodes
// that characterise the production traces the paper samples its load
// settings from (Section 4.1). Deterministic for a given RNG stream, so
// benches and CI can regenerate identical traces instead of shipping large
// files.
#pragma once

#include "common/rng.hpp"
#include "trace/workload_trace.hpp"

namespace esg::trace {

struct AzureShapeOptions {
  std::size_t apps = 4;          ///< builtin workload size
  std::size_t bins = 120;        ///< bins per day (trace length = bins*days)
  /// Days to repeat the diurnal pattern over. Each day shares the sinusoid
  /// shape but draws its own burst episodes (clipped to the day), so a
  /// multi-day trace has day-to-day variation a seasonal predictor can
  /// average over. days=1 draws the exact legacy sequence (byte-identical
  /// traces); must be >= 1 and bins*days must fit kMaxTraceBins.
  std::size_t days = 1;
  TimeMs bin_ms = 1'000.0;       ///< bin width
  /// Mean invocations per bin summed over all apps (before bursts).
  double mean_rate_per_bin = 60.0;
  /// Diurnal sinusoid depth in [0, 1): 0 = flat, 0.9 = near-silent troughs.
  double diurnal_amplitude = 0.6;
  /// Bins per diurnal cycle; 0 = one full cycle across the whole trace.
  double diurnal_period_bins = 0.0;
  /// Zipf exponent for app popularity: weight of app a is (a+1)^-s.
  double zipf_s = 1.1;
  std::size_t burst_count = 3;   ///< burst episodes scattered over the trace
  double burst_factor = 4.0;     ///< intensity multiplier inside an episode
  /// Mean episode length as a fraction of the trace (exponential lengths).
  double burst_fraction = 0.05;
  /// Poisson-sample integer counts (realistic recorded trace) instead of
  /// storing the fractional expected counts directly.
  bool integer_counts = true;
  /// Tenants sharing the trace; 1 writes the classic tenant-free format.
  std::size_t tenants = 1;
  /// Zipf exponent for tenant popularity: weight of tenant t is (t+1)^-s
  /// (0 = uniform split across tenants).
  double tenant_zipf_s = 1.0;
};

/// Throws std::invalid_argument on out-of-range options. The returned trace
/// always passes validate().
[[nodiscard]] WorkloadTrace generate_azure_shaped(const AzureShapeOptions& options,
                                                  RngStream rng);

}  // namespace esg::trace
