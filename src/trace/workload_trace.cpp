#include "trace/workload_trace.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace esg::trace {

namespace {

[[noreturn]] void fail_line(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("workload-trace line " + std::to_string(line_no) +
                              ": " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_double(std::size_t line_no, std::string_view what,
                    std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  // from_chars accepts "nan"/"inf"; a trace with either is corrupt, and NaN
  // in particular would defeat every downstream range check.
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    fail_line(line_no, "malformed number for " + std::string(what) + ": '" +
                           std::string(v) + "'");
  }
  return out;
}

std::size_t parse_index(std::size_t line_no, std::string_view what,
                        std::string_view v, std::size_t max_exclusive) {
  const double d = parse_double(line_no, what, v);
  if (d < 0.0 || d != std::floor(d)) {
    fail_line(line_no,
              std::string(what) + " must be a non-negative integer, got '" +
                  std::string(v) + "'");
  }
  if (d >= static_cast<double>(max_exclusive)) {
    fail_line(line_no, std::string(what) + " " + std::string(v) +
                           " out of range (< " +
                           std::to_string(max_exclusive) + ")");
  }
  return static_cast<std::size_t>(d);
}

/// Appends a data row, enforcing (bin, app, tenant) strictly-increasing
/// order (which also rejects duplicates) and count sanity.
void push_row(WorkloadTrace& trace, std::size_t line_no, std::size_t bin,
              std::size_t app, double count, std::size_t tenant) {
  if (app >= trace.app_count) {
    fail_line(line_no, "unknown app " + std::to_string(app) +
                           " (trace declares apps=" +
                           std::to_string(trace.app_count) + ")");
  }
  if (tenant >= trace.tenant_count) {
    fail_line(line_no, "unknown tenant " + std::to_string(tenant) +
                           " (trace declares tenants=" +
                           std::to_string(trace.tenant_count) + ")");
  }
  if (count < 0.0) {
    fail_line(line_no, "negative count");
  }
  if (!trace.rows.empty()) {
    const TraceBinRow& prev = trace.rows.back();
    if (bin < prev.bin ||
        (bin == prev.bin &&
         (app < prev.app || (app == prev.app && tenant <= prev.tenant)))) {
      fail_line(line_no,
                "rows must be sorted by (bin, app, tenant) without duplicates");
    }
  }
  trace.rows.push_back(TraceBinRow{bin, static_cast<std::uint32_t>(app), count,
                                   static_cast<std::uint32_t>(tenant)});
}

/// Splits `line` on commas into at most `max_fields` pieces; returns count.
std::size_t split_csv(std::string_view line, std::string_view* fields,
                      std::size_t max_fields) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (n < max_fields) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields[n++] = trim(line.substr(pos));
      return n;
    }
    fields[n++] = trim(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return max_fields + 1;  // too many fields
}

/// `key=value` field with a required key.
std::string_view keyed(std::size_t line_no, std::string_view field,
                       std::string_view key) {
  const std::size_t eq = field.find('=');
  if (eq == std::string_view::npos || trim(field.substr(0, eq)) != key) {
    fail_line(line_no, "expected '" + std::string(key) + "=<value>', got '" +
                           std::string(field) + "'");
  }
  return trim(field.substr(eq + 1));
}

void parse_csv_header(WorkloadTrace& trace, std::size_t line_no,
                      std::string_view line) {
  std::string_view f[5];
  const std::size_t n = split_csv(line, f, 5);
  if ((n != 4 && n != 5) || f[0] != "esg-trace" || f[1] != "v1") {
    fail_line(line_no,
              "expected header 'esg-trace,v1,bin_ms=<ms>,apps=<n>"
              "[,tenants=<t>]', got '" +
                  std::string(line) + "'");
  }
  trace.bin_ms = parse_double(line_no, "bin_ms", keyed(line_no, f[2], "bin_ms"));
  if (trace.bin_ms <= 0.0) fail_line(line_no, "bin_ms must be positive");
  trace.app_count =
      parse_index(line_no, "apps", keyed(line_no, f[3], "apps"), kMaxTraceApps);
  if (trace.app_count == 0) fail_line(line_no, "apps must be positive");
  if (n == 5) {
    trace.tenant_count = parse_index(
        line_no, "tenants", keyed(line_no, f[4], "tenants"), kMaxTraceTenants);
    if (trace.tenant_count < 2) {
      fail_line(line_no,
                "tenants must be >= 2 (omit the field for a single tenant)");
    }
  }
}

// --- minimal strict flat-JSON-object reader (one object per line) ---------

struct JsonField {
  std::string key;
  std::string value;  ///< raw number text, or unquoted string content
  bool is_string = false;
};

/// Parses `{"k":v,...}` with string keys and number-or-string values; no
/// nesting, no escapes (trace content never needs them), nothing after '}'.
std::vector<JsonField> parse_flat_object(std::size_t line_no,
                                         std::string_view line) {
  std::vector<JsonField> fields;
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
  };
  const auto expect = [&](char c) {
    if (pos >= line.size() || line[pos] != c) {
      fail_line(line_no, std::string("malformed JSON: expected '") + c + "'");
    }
    ++pos;
  };
  const auto quoted = [&]() -> std::string {
    expect('"');
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\') fail_line(line_no, "escapes are not supported");
      ++pos;
    }
    if (pos >= line.size()) fail_line(line_no, "unterminated string");
    return std::string(line.substr(start, pos++ - start));
  };

  skip_ws();
  expect('{');
  skip_ws();
  if (pos < line.size() && line[pos] == '}') {
    fail_line(line_no, "empty JSON object");
  }
  for (;;) {
    skip_ws();
    JsonField field;
    field.key = quoted();
    skip_ws();
    expect(':');
    skip_ws();
    if (pos < line.size() && line[pos] == '"') {
      field.value = quoted();
      field.is_string = true;
    } else {
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
             line[pos] != ' ' && line[pos] != '\t') {
        ++pos;
      }
      field.value = std::string(line.substr(start, pos - start));
      if (field.value.empty()) fail_line(line_no, "missing value");
    }
    for (const JsonField& f : fields) {
      if (f.key == field.key) {
        fail_line(line_no, "duplicate key '" + field.key + "'");
      }
    }
    fields.push_back(std::move(field));
    skip_ws();
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      continue;
    }
    expect('}');
    break;
  }
  skip_ws();
  if (pos != line.size()) fail_line(line_no, "trailing garbage after object");
  return fields;
}

const JsonField& json_get(std::size_t line_no,
                          const std::vector<JsonField>& fields,
                          std::string_view key, bool string_valued) {
  for (const JsonField& f : fields) {
    if (f.key == key) {
      if (f.is_string != string_valued) {
        fail_line(line_no, "key '" + std::string(key) + "' has the wrong type");
      }
      return f;
    }
  }
  fail_line(line_no, "missing key '" + std::string(key) + "'");
}

void reject_unknown_keys(std::size_t line_no,
                         const std::vector<JsonField>& fields,
                         std::initializer_list<std::string_view> known) {
  for (const JsonField& f : fields) {
    bool ok = false;
    for (const std::string_view k : known) ok = ok || f.key == k;
    if (!ok) fail_line(line_no, "unknown key '" + f.key + "'");
  }
}

/// Shortest representation that round-trips through strtod; integral values
/// print as plain integers.
std::string fmt_double(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

std::size_t WorkloadTrace::bin_count() const {
  return rows.empty() ? 0 : rows.back().bin + 1;
}

TimeMs WorkloadTrace::duration_ms() const {
  return static_cast<double>(bin_count()) * bin_ms;
}

double WorkloadTrace::total_count() const {
  double total = 0.0;
  for (const TraceBinRow& row : rows) total += row.count;
  return total;
}

std::vector<double> WorkloadTrace::bin_totals() const {
  std::vector<double> totals(bin_count(), 0.0);
  for (const TraceBinRow& row : rows) totals[row.bin] += row.count;
  return totals;
}

void validate(const WorkloadTrace& trace) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("workload-trace: " + why);
  };
  if (!std::isfinite(trace.bin_ms) || trace.bin_ms <= 0.0) {
    fail("bin_ms must be positive and finite");
  }
  if (trace.app_count == 0 || trace.app_count > kMaxTraceApps) {
    fail("app count out of range");
  }
  if (trace.tenant_count == 0 || trace.tenant_count > kMaxTraceTenants) {
    fail("tenant count out of range");
  }
  const TraceBinRow* prev = nullptr;
  for (const TraceBinRow& row : trace.rows) {
    if (row.bin >= kMaxTraceBins) fail("bin index out of range");
    if (row.app >= trace.app_count) {
      fail("unknown app " + std::to_string(row.app));
    }
    if (row.tenant >= trace.tenant_count) {
      fail("unknown tenant " + std::to_string(row.tenant));
    }
    if (!std::isfinite(row.count) || row.count < 0.0) {
      fail("counts must be finite and non-negative");
    }
    if (prev != nullptr &&
        (row.bin < prev->bin ||
         (row.bin == prev->bin &&
          (row.app < prev->app ||
           (row.app == prev->app && row.tenant <= prev->tenant))))) {
      fail("rows must be sorted by (bin, app, tenant) without duplicates");
    }
    prev = &row;
  }
}

WorkloadTrace parse_trace_csv(std::istream& in) {
  WorkloadTrace trace;
  bool saw_header = false;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      parse_csv_header(trace, line_no, line);
      saw_header = true;
      continue;
    }
    const bool tenanted = trace.tenant_count > 1;
    std::string_view f[4];
    const std::size_t want = tenanted ? 4 : 3;
    if (split_csv(line, f, 4) != want) {
      fail_line(line_no, std::string("expected '") +
                             (tenanted ? "bin,app,count,tenant"
                                       : "bin,app,count") +
                             "', got '" + std::string(line) + "'");
    }
    const std::size_t bin = parse_index(line_no, "bin", f[0], kMaxTraceBins);
    const std::size_t app = parse_index(line_no, "app", f[1], kMaxTraceApps);
    const double count = parse_double(line_no, "count", f[2]);
    const std::size_t tenant =
        tenanted ? parse_index(line_no, "tenant", f[3], kMaxTraceTenants) : 0;
    push_row(trace, line_no, bin, app, count, tenant);
  }
  if (!saw_header) {
    throw std::invalid_argument(
        "workload-trace: missing 'esg-trace,v1,...' header");
  }
  validate(trace);
  return trace;
}

WorkloadTrace parse_trace_jsonl(std::istream& in) {
  WorkloadTrace trace;
  bool saw_header = false;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<JsonField> fields = parse_flat_object(line_no, line);
    if (!saw_header) {
      reject_unknown_keys(line_no, fields,
                          {"schema", "bin_ms", "apps", "tenants"});
      const JsonField& schema = json_get(line_no, fields, "schema", true);
      if (schema.value != kTraceSchemaV1) {
        fail_line(line_no, "unsupported schema '" + schema.value + "'");
      }
      trace.bin_ms = parse_double(
          line_no, "bin_ms", json_get(line_no, fields, "bin_ms", false).value);
      if (trace.bin_ms <= 0.0) fail_line(line_no, "bin_ms must be positive");
      trace.app_count =
          parse_index(line_no, "apps",
                      json_get(line_no, fields, "apps", false).value,
                      kMaxTraceApps);
      if (trace.app_count == 0) fail_line(line_no, "apps must be positive");
      for (const JsonField& f : fields) {
        if (f.key != "tenants") continue;
        if (f.is_string) fail_line(line_no, "key 'tenants' has the wrong type");
        trace.tenant_count =
            parse_index(line_no, "tenants", f.value, kMaxTraceTenants);
        if (trace.tenant_count < 2) {
          fail_line(line_no,
                    "tenants must be >= 2 (omit the key for a single tenant)");
        }
      }
      saw_header = true;
      continue;
    }
    const bool tenanted = trace.tenant_count > 1;
    if (tenanted) {
      reject_unknown_keys(line_no, fields, {"bin", "app", "count", "tenant"});
    } else {
      reject_unknown_keys(line_no, fields, {"bin", "app", "count"});
    }
    const std::size_t bin =
        parse_index(line_no, "bin", json_get(line_no, fields, "bin", false).value,
                    kMaxTraceBins);
    const std::size_t app =
        parse_index(line_no, "app", json_get(line_no, fields, "app", false).value,
                    kMaxTraceApps);
    const double count = parse_double(
        line_no, "count", json_get(line_no, fields, "count", false).value);
    const std::size_t tenant =
        tenanted ? parse_index(line_no, "tenant",
                               json_get(line_no, fields, "tenant", false).value,
                               kMaxTraceTenants)
                 : 0;
    push_row(trace, line_no, bin, app, count, tenant);
  }
  if (!saw_header) {
    throw std::invalid_argument(
        "workload-trace: missing JSONL schema header line");
  }
  validate(trace);
  return trace;
}

WorkloadTrace load_workload_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("workload-trace file '" + path +
                                "' is unreadable");
  }
  // Sniff the encoding: the JSONL header line starts with '{'.
  const int first = file.peek();
  if (first == '{') return parse_trace_jsonl(file);
  return parse_trace_csv(file);
}

void write_trace_csv(const WorkloadTrace& trace, std::ostream& out) {
  validate(trace);
  const bool tenanted = trace.tenant_count > 1;
  out << "# ESG workload trace: per-app invocation counts per time bin.\n";
  out << "esg-trace,v1,bin_ms=" << fmt_double(trace.bin_ms)
      << ",apps=" << trace.app_count;
  if (tenanted) out << ",tenants=" << trace.tenant_count;
  out << "\n";
  for (const TraceBinRow& row : trace.rows) {
    out << row.bin << ',' << row.app << ',' << fmt_double(row.count);
    if (tenanted) out << ',' << row.tenant;
    out << "\n";
  }
}

void write_trace_jsonl(const WorkloadTrace& trace, std::ostream& out) {
  validate(trace);
  const bool tenanted = trace.tenant_count > 1;
  out << "{\"schema\":\"" << kTraceSchemaV1
      << "\",\"bin_ms\":" << fmt_double(trace.bin_ms)
      << ",\"apps\":" << trace.app_count;
  if (tenanted) out << ",\"tenants\":" << trace.tenant_count;
  out << "}\n";
  for (const TraceBinRow& row : trace.rows) {
    out << "{\"bin\":" << row.bin << ",\"app\":" << row.app
        << ",\"count\":" << fmt_double(row.count);
    if (tenanted) out << ",\"tenant\":" << row.tenant;
    out << "}\n";
  }
}

}  // namespace esg::trace
