#include "trace/azure_shape.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace esg::trace {

namespace {

void check_options(const AzureShapeOptions& o) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("azure-shape: " + why);
  };
  if (o.apps == 0 || o.apps > kMaxTraceApps) fail("apps out of range");
  if (o.bins == 0 || o.bins > kMaxTraceBins) fail("bins out of range");
  if (o.days < 1) fail("days must be >= 1");
  if (o.bins > kMaxTraceBins / o.days) {
    fail("bins*days out of range");
  }
  if (!std::isfinite(o.bin_ms) || o.bin_ms <= 0.0) {
    fail("bin_ms must be positive");
  }
  if (!std::isfinite(o.mean_rate_per_bin) || o.mean_rate_per_bin < 0.0) {
    fail("mean-rate must be >= 0");
  }
  if (!std::isfinite(o.diurnal_amplitude) || o.diurnal_amplitude < 0.0 ||
      o.diurnal_amplitude >= 1.0) {
    fail("diurnal-amplitude must be in [0, 1)");
  }
  if (!std::isfinite(o.diurnal_period_bins) || o.diurnal_period_bins < 0.0) {
    fail("diurnal-period must be >= 0");
  }
  if (!std::isfinite(o.zipf_s) || o.zipf_s < 0.0) {
    fail("zipf-s must be >= 0");
  }
  if (!std::isfinite(o.burst_factor) || o.burst_factor < 1.0) {
    fail("burst-factor must be >= 1");
  }
  if (!std::isfinite(o.burst_fraction) || o.burst_fraction < 0.0 ||
      o.burst_fraction > 1.0) {
    fail("burst-fraction must be in [0, 1]");
  }
  if (o.tenants == 0 || o.tenants > kMaxTraceTenants) {
    fail("tenants out of range (need >= 1)");
  }
  if (!std::isfinite(o.tenant_zipf_s) || o.tenant_zipf_s < 0.0) {
    fail("tenant-zipf must be >= 0");
  }
}

/// Deterministic Poisson sample: Knuth's product method for small lambda, a
/// clamped normal approximation once the product would underflow.
double poisson(RngStream& rng, double lambda) {
  if (lambda <= 0.0) return 0.0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = 1.0;
    double k = -1.0;
    do {
      ++k;
      product *= rng.uniform();
    } while (product > limit);
    return k;
  }
  return std::max(0.0, std::round(rng.gaussian(lambda, std::sqrt(lambda))));
}

}  // namespace

WorkloadTrace generate_azure_shaped(const AzureShapeOptions& options,
                                    RngStream rng) {
  check_options(options);

  // Zipf popularity, normalised to sum 1.
  std::vector<double> weight(options.apps, 0.0);
  double weight_sum = 0.0;
  for (std::size_t a = 0; a < options.apps; ++a) {
    weight[a] = std::pow(static_cast<double>(a + 1), -options.zipf_s);
    weight_sum += weight[a];
  }
  for (double& w : weight) w /= weight_sum;

  // Diurnal intensity profile for one day; mean of 1 + A*sin over a full
  // cycle is 1, so mean_rate_per_bin stays the mean offered rate. Every day
  // repeats this shape (the period defaults to one day).
  const double period = options.diurnal_period_bins > 0.0
                            ? options.diurnal_period_bins
                            : static_cast<double>(options.bins);
  std::vector<double> base_intensity(options.bins, 0.0);
  for (std::size_t b = 0; b < options.bins; ++b) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(b) / period;
    base_intensity[b] =
        options.mean_rate_per_bin *
        (1.0 + options.diurnal_amplitude * std::sin(phase));
  }

  // Zipf-skewed tenant popularity. With one tenant this is the single
  // weight 1.0 and the sampling loop below draws exactly the legacy
  // sequence, so tenant-free traces regenerate byte-identically.
  std::vector<double> tenant_weight(options.tenants, 0.0);
  double tenant_sum = 0.0;
  for (std::size_t t = 0; t < options.tenants; ++t) {
    tenant_weight[t] =
        std::pow(static_cast<double>(t + 1), -options.tenant_zipf_s);
    tenant_sum += tenant_weight[t];
  }
  for (double& w : tenant_weight) w /= tenant_sum;

  WorkloadTrace trace;
  trace.bin_ms = options.bin_ms;
  trace.app_count = options.apps;
  trace.tenant_count = options.tenants;
  // Per day: fresh burst draws over the day's bins, then the Poisson pass.
  // With days=1 this interleaving is exactly the legacy draw sequence, so
  // single-day traces regenerate byte-identically.
  for (std::size_t day = 0; day < options.days; ++day) {
    std::vector<double> intensity = base_intensity;

    // Burst episodes: random start, exponential length (clipped to the
    // day), multiplicative lift.
    for (std::size_t e = 0; e < options.burst_count; ++e) {
      const auto start = static_cast<std::size_t>(rng.below(options.bins));
      const double mean_len =
          options.burst_fraction * static_cast<double>(options.bins);
      double u = rng.uniform();
      while (u <= 0.0) u = rng.uniform();
      const auto len = static_cast<std::size_t>(
          std::ceil(std::max(1.0, mean_len * -std::log(u))));
      for (std::size_t b = start; b < std::min(start + len, options.bins);
           ++b) {
        intensity[b] *= options.burst_factor;
      }
    }

    const std::size_t day_offset = day * options.bins;
    for (std::size_t b = 0; b < options.bins; ++b) {
      for (std::size_t a = 0; a < options.apps; ++a) {
        for (std::size_t t = 0; t < options.tenants; ++t) {
          const double expected = intensity[b] * weight[a] * tenant_weight[t];
          const double count =
              options.integer_counts ? poisson(rng, expected) : expected;
          if (count <= 0.0) continue;
          trace.rows.push_back(TraceBinRow{day_offset + b,
                                           static_cast<std::uint32_t>(a),
                                           count,
                                           static_cast<std::uint32_t>(t)});
        }
      }
    }
  }
  validate(trace);
  return trace;
}

}  // namespace esg::trace
