// Versioned production-workload trace schema (esg.trace.v1).
//
// A workload trace is the Azure-Functions-shaped input the paper derives its
// load settings from: per-application invocation counts in fixed time bins.
// Two on-disk encodings are supported, both line-oriented and streamable:
//
//   CSV    header `esg-trace,v1,bin_ms=<ms>,apps=<n>[,tenants=<t>]` then
//          `bin,app,count` rows sorted by (bin, app); `#` comments and blank
//          lines allowed. A header declaring tenants=<t> (t >= 2) switches
//          the row format to `bin,app,count,tenant`, sorted by
//          (bin, app, tenant).
//   JSONL  header `{"schema":"esg.trace.v1","bin_ms":<ms>,"apps":<n>}` then
//          one `{"bin":B,"app":A,"count":C}` object per line; a header with
//          `"tenants":<t>` requires a `"tenant"` key on every row.
//
// The tenant column is optional and defaults to a single tenant: traces
// written before multi-tenancy parse (and replay) exactly as before, and
// single-tenant traces write byte-identical files.
//
// The parsers are hardened with the same rigor as the --fault-spec grammar:
// NaN/inf/negative counts, fractional or out-of-range bin/app indices,
// unsorted or duplicate (bin, app) rows, unknown apps (>= the header's app
// count) and malformed framing all raise std::invalid_argument with a
// message naming the offending line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace esg::trace {

inline constexpr std::string_view kTraceSchemaV1 = "esg.trace.v1";

/// Hard cap on bin indices: a trace is dense in bins at replay time, so an
/// absurd index (typo, corruption) must not allocate gigabytes.
inline constexpr std::size_t kMaxTraceBins = 1u << 20;

/// Hard cap on the header's app count (the builtin workload has 4 apps; the
/// cap only guards against corrupted headers).
inline constexpr std::size_t kMaxTraceApps = 1u << 16;

/// Hard cap on the header's tenant count.
inline constexpr std::size_t kMaxTraceTenants = 1u << 10;

/// Expected invocation count of one app in one time bin. Counts are doubles:
/// integer in recorded traces, fractional once rate-scaled or when a trace
/// stores Poisson intensities directly.
struct TraceBinRow {
  std::size_t bin = 0;
  std::uint32_t app = 0;
  double count = 0.0;
  std::uint32_t tenant = 0;  ///< always 0 on single-tenant traces
};

struct WorkloadTrace {
  TimeMs bin_ms = 0.0;        ///< bin width in trace (unscaled) time
  std::size_t app_count = 0;  ///< apps 0..app_count-1 may appear in rows
  std::size_t tenant_count = 1;   ///< 1 = no tenant column on disk
  std::vector<TraceBinRow> rows;  ///< sorted by (bin, app, tenant), unique

  /// Number of bins spanned: max bin index + 1 (0 for an empty trace).
  [[nodiscard]] std::size_t bin_count() const;
  /// Trace duration in unscaled time: bin_count() * bin_ms.
  [[nodiscard]] TimeMs duration_ms() const;
  /// Sum of all counts.
  [[nodiscard]] double total_count() const;
  /// Dense per-bin count totals (size bin_count()).
  [[nodiscard]] std::vector<double> bin_totals() const;
};

/// Structural validation (also applied by the parsers): positive finite
/// bin_ms, app count within caps, rows sorted/unique/in-range with finite
/// non-negative counts. Throws std::invalid_argument.
void validate(const WorkloadTrace& trace);

[[nodiscard]] WorkloadTrace parse_trace_csv(std::istream& in);
[[nodiscard]] WorkloadTrace parse_trace_jsonl(std::istream& in);

/// Loads a trace file; the encoding is sniffed from the first significant
/// character ('{' = JSONL, anything else = CSV).
[[nodiscard]] WorkloadTrace load_workload_trace(const std::string& path);

void write_trace_csv(const WorkloadTrace& trace, std::ostream& out);
void write_trace_jsonl(const WorkloadTrace& trace, std::ostream& out);

}  // namespace esg::trace
