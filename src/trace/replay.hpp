// Trace replay: turns a WorkloadTrace into an ArrivalSource by treating the
// per-bin counts as the intensity of a non-homogeneous Poisson process and
// sampling it with per-bin thinning. Replay draws from its own scoped RNG
// substream, so switching a run from synthetic to trace arrivals never
// perturbs the noise/fault draws of the rest of the simulation.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/workload_trace.hpp"
#include "workload/arrival_source.hpp"

namespace esg::trace {

struct ReplayOptions {
  /// Multiplies every bin's expected count (offered-load knob). 0 yields an
  /// immediately-exhausted source (no arrivals at all).
  double rate_scale = 1.0;
  /// Stretches the bin duration: 2 replays the trace at half speed over
  /// twice the wall time (same counts, half the intensity); 0.5 compresses.
  double time_scale = 1.0;
};

/// Replays a trace as arrivals with strictly increasing times. Bin b of the
/// trace covers simulated time [b, b+1) * bin_ms * time_scale and receives
/// Poisson(rate_scale * count) arrivals in expectation; within a bin, the
/// app of each arrival is drawn categorically by the bin's per-app counts.
/// The source is exhausted once simulated time passes the last bin.
class TraceArrivalGenerator final : public workload::ArrivalSource {
 public:
  /// `apps`: live application ids; trace app index i maps to apps[i]. The
  /// trace must not declare more apps than the list provides.
  TraceArrivalGenerator(std::shared_ptr<const WorkloadTrace> trace,
                        std::vector<AppId> apps, ReplayOptions options,
                        RngStream rng);

  [[nodiscard]] std::optional<workload::Arrival> try_next() override;

  /// Replay end: trace duration stretched by time_scale.
  [[nodiscard]] TimeMs duration_ms() const { return end_ms_; }
  [[nodiscard]] const ReplayOptions& options() const { return options_; }

 private:
  std::shared_ptr<const WorkloadTrace> trace_;
  std::vector<AppId> apps_;
  ReplayOptions options_;
  RngStream rng_;

  TimeMs scaled_bin_ms_ = 0.0;
  TimeMs end_ms_ = 0.0;
  double lambda_max_ = 0.0;           ///< thinning envelope, arrivals per ms
  std::vector<double> bin_rate_;      ///< accepted rate per bin, per ms
  /// One categorical-draw entry per positive trace row of the bin. Tenant is
  /// carried alongside the app so multi-tenant traces attribute each arrival;
  /// single-tenant traces build the same entries (tenant 0) and the draw
  /// sequence is unchanged.
  struct CdfEntry {
    std::uint32_t app = 0;
    std::uint32_t tenant = 0;
    double cumulative = 0.0;
  };
  std::vector<std::vector<CdfEntry>> bin_app_cdf_;

  TimeMs clock_ms_ = 0.0;
  bool exhausted_ = false;
};

}  // namespace esg::trace
