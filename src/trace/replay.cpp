#include "trace/replay.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace esg::trace {

TraceArrivalGenerator::TraceArrivalGenerator(
    std::shared_ptr<const WorkloadTrace> trace, std::vector<AppId> apps,
    ReplayOptions options, RngStream rng)
    : trace_(std::move(trace)),
      apps_(std::move(apps)),
      options_(options),
      rng_(std::move(rng)) {
  if (trace_ == nullptr) {
    throw std::invalid_argument("TraceArrivalGenerator: null trace");
  }
  validate(*trace_);
  if (apps_.empty()) {
    throw std::invalid_argument("TraceArrivalGenerator: need at least one app");
  }
  if (trace_->app_count > apps_.size()) {
    throw std::invalid_argument(
        "TraceArrivalGenerator: trace declares " +
        std::to_string(trace_->app_count) + " apps but only " +
        std::to_string(apps_.size()) + " are available");
  }
  if (!std::isfinite(options_.rate_scale) || options_.rate_scale < 0.0) {
    throw std::invalid_argument(
        "TraceArrivalGenerator: rate_scale must be finite and >= 0");
  }
  if (!std::isfinite(options_.time_scale) || options_.time_scale <= 0.0) {
    throw std::invalid_argument(
        "TraceArrivalGenerator: time_scale must be finite and positive");
  }

  scaled_bin_ms_ = trace_->bin_ms * options_.time_scale;
  end_ms_ = static_cast<double>(trace_->bin_count()) * scaled_bin_ms_;

  // Expected arrivals in bin b: rate_scale * total_b, spread uniformly over
  // the (time-scaled) bin -> intensity per ms.
  bin_rate_.assign(trace_->bin_count(), 0.0);
  bin_app_cdf_.assign(trace_->bin_count(), {});
  for (const TraceBinRow& row : trace_->rows) {
    if (row.count <= 0.0) continue;  // zero rows never produce arrivals
    auto& cdf = bin_app_cdf_[row.bin];
    const double prev = cdf.empty() ? 0.0 : cdf.back().cumulative;
    cdf.push_back(CdfEntry{row.app, row.tenant, prev + row.count});
  }
  for (std::size_t b = 0; b < bin_rate_.size(); ++b) {
    const double total =
        bin_app_cdf_[b].empty() ? 0.0 : bin_app_cdf_[b].back().cumulative;
    bin_rate_[b] = options_.rate_scale * total / scaled_bin_ms_;
    lambda_max_ = std::max(lambda_max_, bin_rate_[b]);
  }
  if (lambda_max_ <= 0.0) exhausted_ = true;  // empty or zero-scaled trace
}

std::optional<workload::Arrival> TraceArrivalGenerator::try_next() {
  if (exhausted_) return std::nullopt;
  for (;;) {
    // Exponential gap of the homogeneous lambda_max envelope; u is clamped
    // away from 0 so the gap stays positive (strictly increasing times).
    double u = rng_.uniform();
    while (u <= 0.0) u = rng_.uniform();
    clock_ms_ += -std::log(u) / lambda_max_;
    if (clock_ms_ >= end_ms_) {
      exhausted_ = true;
      return std::nullopt;
    }
    const auto bin = static_cast<std::size_t>(clock_ms_ / scaled_bin_ms_);
    const double rate = bin_rate_[std::min(bin, bin_rate_.size() - 1)];
    // Thinning: accept with probability rate / lambda_max. The rejection
    // draw happens even when rate == lambda_max so the draw sequence is
    // identical for every bin (determinism does not depend on which bin
    // happens to be the envelope).
    if (rng_.uniform() * lambda_max_ >= rate) continue;
    const auto& cdf = bin_app_cdf_[std::min(bin, bin_app_cdf_.size() - 1)];
    const double pick = rng_.uniform() * cdf.back().cumulative;
    const CdfEntry* chosen = &cdf.back();
    for (const CdfEntry& entry : cdf) {
      if (pick < entry.cumulative) {
        chosen = &entry;
        break;
      }
    }
    return workload::Arrival{clock_ms_, apps_[chosen->app], chosen->tenant};
  }
}

}  // namespace esg::trace
