// Lightweight pre-warming (Section 4): an EWMA over the inter-invocation
// intervals of each (application, function) stream predicts the next
// invocation, and containers are warmed on the stream's last invoker so they
// are ready right when the prediction fires. The number of containers kept
// warm adapts to the stream's concurrency demand — the ratio of the task
// duration EWMA to the interval EWMA — so bursty streams that need several
// simultaneous containers do not fall back to cold starts. After
// pre-warming, containers follow the ordinary keep-alive policy.
//
// Proactive mode (DESIGN.md §14): with a ForecastService attached, every
// closed forecast bin re-derives each stream's warm target from the app's
// *predicted* arrival rate `lead-ms` ahead (concurrency = rate x duration)
// instead of waiting for per-stream intervals to observe the ramp. Both
// paths share the warm-scheduling machinery and the issued/skipped
// accounting; without a forecaster the reactive behaviour is bit-identical
// to before.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/cluster.hpp"
#include "common/ewma.hpp"
#include "common/types.hpp"
#include "forecast/forecaster.hpp"
#include "obs/recorder.hpp"
#include "profile/profile_table.hpp"
#include "sim/simulator.hpp"

namespace esg::prewarm {

class PrewarmManager {
 public:
  PrewarmManager(sim::Simulator& sim, cluster::Cluster& cluster,
                 const profile::ProfileSet& profiles, double ewma_alpha = 0.3);

  /// Notifies the manager that `function` of `app` was just invoked on
  /// `invoker` with an expected occupancy of `duration_ms`. Updates the
  /// interval/duration estimates and, once ready, schedules warm-ups so
  /// enough containers are live at the predicted next invocations.
  void on_invocation(AppId app, FunctionId function, InvokerId invoker,
                     TimeMs now_ms, TimeMs duration_ms);

  /// Backward-compatible overload without a duration estimate.
  void on_invocation(AppId app, FunctionId function, InvokerId invoker,
                     TimeMs now_ms) {
    on_invocation(app, function, invoker, now_ms, 0.0);
  }

  /// Attaches the forecaster driving proactive mode (non-owning; nullptr
  /// keeps the manager purely reactive).
  void enable_proactive(forecast::ForecastService* service) {
    forecast_ = service;
  }
  /// Forecast-bin hook: re-derives per-stream warm targets from the
  /// predicted per-app rates `lead-ms` ahead and warms the gap.
  void on_forecast_bin(TimeMs now_ms);

  [[nodiscard]] std::size_t prewarms_issued() const { return prewarms_issued_; }
  [[nodiscard]] std::size_t prewarms_skipped() const { return prewarms_skipped_; }

  /// Structured-tracing handle (non-owning; nullptr disables).
  void set_trace(obs::TraceRecorder* recorder) { rec_ = recorder; }

 private:
  struct Stream {
    Ewma interval;
    Ewma duration;
    TimeMs last_invocation_ms = kNoTime;
    std::size_t outstanding = 0;  ///< prewarms scheduled but not yet resolved
    InvokerId last_invoker;       ///< anchor for proactive placement
    std::size_t proactive_target = 0;  ///< forecast-derived floor (0 = none)
    explicit Stream(double alpha) : interval(alpha), duration(alpha) {}
  };

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const profile::ProfileSet& profiles_;
  double alpha_;
  std::unordered_map<std::uint64_t, Stream> streams_;
  std::size_t prewarms_issued_ = 0;
  std::size_t prewarms_skipped_ = 0;
  obs::TraceRecorder* rec_ = nullptr;
  forecast::ForecastService* forecast_ = nullptr;

  /// Warm containers this stream wants available simultaneously: the
  /// reactive (interval/duration EWMA) demand, floored by the proactive
  /// forecast target while one is standing.
  [[nodiscard]] static std::size_t target_pool(const Stream& stream);

  /// Warm containers of `function` live anywhere in the fleet at `now_ms`.
  [[nodiscard]] std::size_t warm_count(FunctionId function, TimeMs now_ms) const;

  /// Schedules `missing` warm-ups of `function` at `fire_at`, spread over
  /// Active invokers starting at `anchor`; shared by both paths. The
  /// fire-time re-check against the then-current target (and the
  /// issued/skipped accounting) lives here.
  void schedule_warms(std::uint64_t k, FunctionId function, InvokerId anchor,
                      std::size_t missing, TimeMs fire_at);

  static std::uint64_t key(AppId app, FunctionId function) {
    return (std::uint64_t{app.get()} << 32) | function.get();
  }
};

}  // namespace esg::prewarm
