// Lightweight pre-warming (Section 4): an EWMA over the inter-invocation
// intervals of each (application, function) stream predicts the next
// invocation, and containers are warmed on the stream's last invoker so they
// are ready right when the prediction fires. The number of containers kept
// warm adapts to the stream's concurrency demand — the ratio of the task
// duration EWMA to the interval EWMA — so bursty streams that need several
// simultaneous containers do not fall back to cold starts. After
// pre-warming, containers follow the ordinary keep-alive policy.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/cluster.hpp"
#include "common/ewma.hpp"
#include "common/types.hpp"
#include "obs/recorder.hpp"
#include "profile/profile_table.hpp"
#include "sim/simulator.hpp"

namespace esg::prewarm {

class PrewarmManager {
 public:
  PrewarmManager(sim::Simulator& sim, cluster::Cluster& cluster,
                 const profile::ProfileSet& profiles, double ewma_alpha = 0.3);

  /// Notifies the manager that `function` of `app` was just invoked on
  /// `invoker` with an expected occupancy of `duration_ms`. Updates the
  /// interval/duration estimates and, once ready, schedules warm-ups so
  /// enough containers are live at the predicted next invocations.
  void on_invocation(AppId app, FunctionId function, InvokerId invoker,
                     TimeMs now_ms, TimeMs duration_ms);

  /// Backward-compatible overload without a duration estimate.
  void on_invocation(AppId app, FunctionId function, InvokerId invoker,
                     TimeMs now_ms) {
    on_invocation(app, function, invoker, now_ms, 0.0);
  }

  [[nodiscard]] std::size_t prewarms_issued() const { return prewarms_issued_; }
  [[nodiscard]] std::size_t prewarms_skipped() const { return prewarms_skipped_; }

  /// Structured-tracing handle (non-owning; nullptr disables).
  void set_trace(obs::TraceRecorder* recorder) { rec_ = recorder; }

 private:
  struct Stream {
    Ewma interval;
    Ewma duration;
    TimeMs last_invocation_ms = kNoTime;
    std::size_t outstanding = 0;  ///< prewarms scheduled but not yet resolved
    explicit Stream(double alpha) : interval(alpha), duration(alpha) {}
  };

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const profile::ProfileSet& profiles_;
  double alpha_;
  std::unordered_map<std::uint64_t, Stream> streams_;
  std::size_t prewarms_issued_ = 0;
  std::size_t prewarms_skipped_ = 0;
  obs::TraceRecorder* rec_ = nullptr;

  /// Warm containers this stream wants available simultaneously.
  [[nodiscard]] static std::size_t target_pool(const Stream& stream);

  static std::uint64_t key(AppId app, FunctionId function) {
    return (std::uint64_t{app.get()} << 32) | function.get();
  }
};

}  // namespace esg::prewarm
