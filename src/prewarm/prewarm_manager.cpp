#include "prewarm/prewarm_manager.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "perf/profiler.hpp"

namespace esg::prewarm {

PrewarmManager::PrewarmManager(sim::Simulator& sim, cluster::Cluster& cluster,
                               const profile::ProfileSet& profiles,
                               double ewma_alpha)
    : sim_(sim), cluster_(cluster), profiles_(profiles), alpha_(ewma_alpha) {}

std::size_t PrewarmManager::target_pool(const Stream& stream) {
  std::size_t reactive = 0;
  if (stream.interval.initialized()) {
    const double interval = std::max(1.0, stream.interval.value());
    // Concurrency demand: tasks arriving every `interval` that each occupy a
    // container for `duration` need ~duration/interval simultaneous
    // containers; always keep at least one ready.
    const double concurrency =
        stream.duration.initialized() ? stream.duration.value() / interval : 0.0;
    reactive = static_cast<std::size_t>(
        std::clamp(std::ceil(concurrency), 1.0, 24.0));
  }
  // proactive_target is 0 unless a forecaster set a standing floor, so the
  // reactive-only result is untouched on forecast-free runs.
  return std::max(reactive, stream.proactive_target);
}

std::size_t PrewarmManager::warm_count(FunctionId function,
                                       TimeMs now_ms) const {
  std::size_t warm = 0;
  for (const auto& inv : cluster_.invokers()) {
    warm += inv.warm_count(function, now_ms);
  }
  return warm;
}

void PrewarmManager::on_invocation(AppId app, FunctionId function,
                                   InvokerId invoker, TimeMs now_ms,
                                   TimeMs duration_ms) {
  ESG_PROF_SCOPE("prewarm/on_invocation");
  auto [it, inserted] = streams_.try_emplace(key(app, function), alpha_);
  Stream& stream = it->second;

  if (stream.last_invocation_ms != kNoTime && now_ms > stream.last_invocation_ms) {
    stream.interval.observe(now_ms - stream.last_invocation_ms);
  }
  stream.last_invocation_ms = now_ms;
  stream.last_invoker = invoker;
  if (duration_ms > 0.0) stream.duration.observe(duration_ms);

  if (!stream.interval.initialized()) return;

  const std::size_t target = target_pool(stream);
  const std::size_t warm = warm_count(function, now_ms);
  if (warm + stream.outstanding >= target) return;
  const std::size_t missing = target - warm - stream.outstanding;

  const TimeMs cold = profiles_.table(function).spec().cold_start_ms;
  const TimeMs predicted_next = now_ms + stream.interval.value();
  // Start warming so the container is ready at the predicted invocation.
  const TimeMs fire_at = std::max(now_ms, predicted_next - cold);
  schedule_warms(key(app, function), function, invoker, missing, fire_at);
}

void PrewarmManager::on_forecast_bin(TimeMs now_ms) {
  if (forecast_ == nullptr) return;
  ESG_PROF_SCOPE("prewarm/on_forecast_bin");
  const TimeMs lead = forecast_->spec().lead_ms;
  // Sorted keys: unordered_map iteration order must not leak into the event
  // schedule (the determinism contract).
  std::vector<std::uint64_t> keys;
  keys.reserve(streams_.size());
  for (const auto& [k, _] : streams_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());

  for (const std::uint64_t k : keys) {
    Stream& stream = streams_.at(k);
    // Without an occupancy estimate a rate cannot be turned into a
    // container count; the reactive path covers the stream's first touches.
    if (!stream.duration.initialized()) continue;
    const auto app = static_cast<std::uint32_t>(k >> 32);
    const FunctionId function(static_cast<std::uint32_t>(k & 0xffffffffu));
    const double rate = forecast_->predicted_rate(app, now_ms, lead);
    const double concurrency = rate * stream.duration.value() / 1000.0;
    stream.proactive_target = static_cast<std::size_t>(
        std::clamp(std::ceil(concurrency), 0.0, 24.0));
    if (stream.proactive_target == 0) continue;

    const std::size_t target = target_pool(stream);
    const std::size_t warm = warm_count(function, now_ms);
    if (warm + stream.outstanding >= target) continue;
    const std::size_t missing = target - warm - stream.outstanding;

    const TimeMs cold = profiles_.table(function).spec().cold_start_ms;
    // Warm so containers are ready when the forecast window opens: the ramp
    // is `lead` ahead, provisioning takes `cold`.
    const TimeMs fire_at = std::max(now_ms, now_ms + lead - cold);
    if (rec_ != nullptr && rec_->is_enabled()) {
      rec_->instant(obs::InstantKind::kForecastPrewarm, "forecast_prewarm",
                    obs::controller_track(), now_ms,
                    {{"app", std::to_string(app)},
                     {"function", std::to_string(function.get())},
                     {"target", std::to_string(target)},
                     {"warm", std::to_string(warm)},
                     {"missing", std::to_string(missing)}});
    }
    schedule_warms(k, function, stream.last_invoker, missing, fire_at);
  }
}

void PrewarmManager::schedule_warms(std::uint64_t k, FunctionId function,
                                    InvokerId anchor, std::size_t missing,
                                    TimeMs fire_at) {
  for (std::size_t i = 0; i < missing; ++i) {
    // Spread extra containers over neighbouring invokers: one node rarely
    // has capacity for a whole stream's peak concurrency. On an elastic
    // fleet the scan walks past draining/retired nodes to the next one
    // still taking placements (a dead-but-active node is NOT skipped: crash
    // windows drop the warm add on landing, same as before). On a static
    // fleet every node is Active, so the first probe always wins and the
    // choice is unchanged.
    InvokerId target(
        static_cast<std::uint32_t>((anchor.get() + i) % cluster_.size()));
    for (std::size_t probe = 0; probe < cluster_.size(); ++probe) {
      const InvokerId cand(static_cast<std::uint32_t>(
          (anchor.get() + i + probe) % cluster_.size()));
      if (cluster_.invoker(cand).state() == cluster::NodeState::kActive) {
        target = cand;
        break;
      }
    }
    auto stream_it = streams_.find(k);
    if (stream_it != streams_.end()) ++stream_it->second.outstanding;
    sim_.schedule_at(fire_at, [this, k, function, invoker = target] {
      auto inner_it = streams_.find(k);
      const std::size_t target_now = inner_it != streams_.end()
                                         ? target_pool(inner_it->second)
                                         : 1;
      const std::size_t warm_now = warm_count(function, sim_.now());
      if (warm_now >= target_now) {
        if (inner_it != streams_.end() && inner_it->second.outstanding > 0) {
          --inner_it->second.outstanding;
        }
        ++prewarms_skipped_;  // keep-alive containers already cover demand
        if (rec_ != nullptr && rec_->is_enabled()) {
          rec_->instant(obs::InstantKind::kPrewarmSkipped, "prewarm skipped",
                        obs::controller_track(), sim_.now(),
                        {{"function", std::to_string(function.get())},
                         {"warm", std::to_string(warm_now)},
                         {"target", std::to_string(target_now)}});
        }
        return;
      }
      const TimeMs ready_cold = profiles_.table(function).spec().cold_start_ms;
      ++prewarms_issued_;
      if (rec_ != nullptr && rec_->is_enabled()) {
        rec_->instant(obs::InstantKind::kPrewarmIssued, "prewarm issued",
                      obs::controller_track(), sim_.now(),
                      {{"function", std::to_string(function.get())},
                       {"invoker", std::to_string(invoker.get())},
                       {"warm", std::to_string(warm_now)},
                       {"target", std::to_string(target_now)}});
        rec_->span(obs::SpanKind::kPrewarm,
                   "prewarm f" + std::to_string(function.get()),
                   obs::invoker_track(invoker, obs::kProvisionLane), sim_.now(),
                   sim_.now() + ready_cold,
                   {{"function", std::to_string(function.get())}});
      }
      // The container becomes warm once the model-load time has elapsed.
      sim_.schedule_in(ready_cold, [this, k, function, invoker] {
        cluster_.invoker(invoker).add_warm(function, sim_.now());
        auto inner = streams_.find(k);
        if (inner != streams_.end() && inner->second.outstanding > 0) {
          --inner->second.outstanding;
        }
      });
    });
  }
}

}  // namespace esg::prewarm
