#include "fault/fault_spec.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace esg::fault {

namespace {

[[noreturn]] void bad_clause(std::string_view clause, const std::string& why) {
  throw std::invalid_argument("fault-spec clause '" + std::string(clause) +
                              "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

double parse_double(std::string_view clause, std::string_view key,
                    std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    bad_clause(clause, "malformed number for '" + std::string(key) + "': '" +
                           std::string(v) + "'");
  }
  return out;
}

/// Key/value map of one clause body; duplicate keys are rejected.
std::map<std::string, std::string, std::less<>> parse_kv(
    std::string_view clause, std::string_view body) {
  std::map<std::string, std::string, std::less<>> kv;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = std::min(body.find(',', pos), body.size());
    const std::string_view pair = trim(body.substr(pos, comma - pos));
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
      bad_clause(clause, "expected key=value, got '" + std::string(pair) + "'");
    }
    const auto [_, inserted] = kv.emplace(trim(pair.substr(0, eq)),
                                          trim(pair.substr(eq + 1)));
    if (!inserted) {
      bad_clause(clause, "duplicate key '" + std::string(trim(pair.substr(0, eq))) + "'");
    }
  }
  return kv;
}

/// Pops `key` from the map as a number; `required` keys must be present.
std::optional<double> take(std::map<std::string, std::string, std::less<>>& kv,
                           std::string_view clause, std::string_view key,
                           bool required) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    if (required) bad_clause(clause, "missing key '" + std::string(key) + "'");
    return std::nullopt;
  }
  const double v = parse_double(clause, key, it->second);
  kv.erase(it);
  return v;
}

void reject_leftovers(
    const std::map<std::string, std::string, std::less<>>& kv,
    std::string_view clause) {
  if (!kv.empty()) {
    bad_clause(clause, "unknown key '" + kv.begin()->first + "'");
  }
}

TimeMs nonneg_time(std::string_view clause, std::string_view key, double v) {
  if (v < 0.0) bad_clause(clause, std::string(key) + " must be >= 0");
  return v;
}

double probability(std::string_view clause, double v) {
  if (v < 0.0 || v > 1.0) bad_clause(clause, "prob must be in [0, 1]");
  return v;
}

std::uint32_t id_value(std::string_view clause, std::string_view key, double v) {
  if (v < 0.0 || v != std::floor(v) || v >= 4294967295.0) {
    bad_clause(clause, std::string(key) + " must be a small non-negative integer");
  }
  return static_cast<std::uint32_t>(v);
}

std::string fmt_ms(TimeMs v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Source line (1-based) of each crash clause, for overlap diagnostics.
struct ParseContext {
  std::vector<std::size_t> crash_lines;
};

void parse_clause(FaultSpec& spec, std::string_view clause,
                  std::size_t line, ParseContext& ctx) {
  const std::size_t colon = clause.find(':');
  if (colon == std::string_view::npos) {
    bad_clause(clause, "expected kind:key=value,...");
  }
  const std::string_view kind = trim(clause.substr(0, colon));
  auto kv = parse_kv(clause, clause.substr(colon + 1));

  if (kind == "crash") {
    CrashWindow c;
    c.invoker = InvokerId(id_value(clause, "invoker", *take(kv, clause, "invoker", true)));
    c.at_ms = nonneg_time(clause, "at", *take(kv, clause, "at", true));
    c.down_ms = nonneg_time(clause, "down", *take(kv, clause, "down", true));
    reject_leftovers(kv, clause);
    spec.crashes.push_back(c);
    ctx.crash_lines.push_back(line);
  } else if (kind == "dispatch" || kind == "coldstart") {
    const double prob = probability(clause, *take(kv, clause, "prob", true));
    std::optional<FunctionId> function;
    if (const auto fn = take(kv, clause, "function", false)) {
      function = FunctionId(id_value(clause, "function", *fn));
    }
    reject_leftovers(kv, clause);
    if (kind == "dispatch") {
      spec.dispatch.push_back(DispatchFault{prob, function});
    } else {
      spec.cold_start.push_back(ColdStartFault{prob, function});
    }
  } else if (kind == "slow") {
    SlowdownWindow w;
    w.invoker = InvokerId(id_value(clause, "invoker", *take(kv, clause, "invoker", true)));
    w.at_ms = nonneg_time(clause, "at", *take(kv, clause, "at", true));
    w.duration_ms = nonneg_time(clause, "for", *take(kv, clause, "for", true));
    w.factor = *take(kv, clause, "factor", true);
    if (w.factor < 1.0) bad_clause(clause, "factor must be >= 1");
    reject_leftovers(kv, clause);
    spec.slowdowns.push_back(w);
  } else if (kind == "spot") {
    SpotReclamation s;
    s.at_ms = nonneg_time(clause, "at", *take(kv, clause, "at", true));
    s.nodes = id_value(clause, "nodes", *take(kv, clause, "nodes", true));
    if (s.nodes == 0) bad_clause(clause, "nodes must be >= 1");
    if (const auto warn = take(kv, clause, "warn", false)) {
      s.warn_ms = nonneg_time(clause, "warn", *warn);
    }
    reject_leftovers(kv, clause);
    spec.spot.push_back(s);
  } else {
    bad_clause(clause, "unknown kind '" + std::string(kind) +
                           "' (crash|dispatch|coldstart|slow|spot)");
  }
}

/// Rejects crash windows on the same invoker whose [at, at+down) intervals
/// overlap: the second crash would fire on an already-dead node and its
/// rejoin would revive the node while the other window is still open.
/// Back-to-back windows (one ending exactly where the next starts) are
/// fine — the rejoin event is scheduled before the next crash.
void reject_overlapping_crashes(const FaultSpec& spec,
                                const ParseContext& ctx) {
  for (std::size_t i = 0; i < spec.crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.crashes.size(); ++j) {
      const CrashWindow& a = spec.crashes[i];
      const CrashWindow& b = spec.crashes[j];
      if (a.invoker != b.invoker) continue;
      if (a.at_ms + a.down_ms > b.at_ms && b.at_ms + b.down_ms > a.at_ms) {
        throw std::invalid_argument(
            "fault-spec line " + std::to_string(ctx.crash_lines[j]) +
            ": crash window on invoker " + std::to_string(b.invoker.get()) +
            " [" + fmt_ms(b.at_ms) + ", " + fmt_ms(b.at_ms + b.down_ms) +
            ") overlaps the window at line " +
            std::to_string(ctx.crash_lines[i]) + " [" + fmt_ms(a.at_ms) +
            ", " + fmt_ms(a.at_ms + a.down_ms) + ")");
      }
    }
  }
}

}  // namespace

bool FaultSpec::inert() const {
  if (!crashes.empty()) return false;
  for (const auto& s : spot) {
    if (s.nodes > 0) return false;
  }
  for (const auto& d : dispatch) {
    if (d.prob > 0.0) return false;
  }
  for (const auto& c : cold_start) {
    if (c.prob > 0.0) return false;
  }
  for (const auto& s : slowdowns) {
    if (s.factor > 1.0) return false;
  }
  return true;
}

FaultSpec parse_fault_spec(std::string_view text) {
  FaultSpec spec;
  ParseContext ctx;
  std::size_t pos = 0;
  std::size_t line = 1;
  while (pos <= text.size()) {
    const std::size_t sep = std::min(text.find_first_of(";\n", pos), text.size());
    const std::string_view clause = trim(text.substr(pos, sep - pos));
    const bool newline = sep < text.size() && text[sep] == '\n';
    pos = sep + 1;
    if (!clause.empty() && clause.front() != '#') {
      parse_clause(spec, clause, line, ctx);
    }
    if (newline) ++line;
  }
  reject_overlapping_crashes(spec, ctx);
  return spec;
}

FaultSpec load_fault_spec(std::string_view arg) {
  if (arg.empty() || arg.front() != '@') return parse_fault_spec(arg);
  const std::string path(arg.substr(1));
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("fault-spec file '" + path + "' is unreadable");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_fault_spec(text.str());
}

std::string to_string(const FaultSpec& spec) {
  std::string out;
  const auto clause = [&out](const std::string& s) {
    if (!out.empty()) out += ';';
    out += s;
  };
  for (const auto& c : spec.crashes) {
    clause("crash:invoker=" + std::to_string(c.invoker.get()) +
           ",at=" + fmt_ms(c.at_ms) + ",down=" + fmt_ms(c.down_ms));
  }
  for (const auto& d : spec.dispatch) {
    std::string s = "dispatch:prob=" + fmt_ms(d.prob);
    if (d.function) s += ",function=" + std::to_string(d.function->get());
    clause(s);
  }
  for (const auto& c : spec.cold_start) {
    std::string s = "coldstart:prob=" + fmt_ms(c.prob);
    if (c.function) s += ",function=" + std::to_string(c.function->get());
    clause(s);
  }
  for (const auto& w : spec.slowdowns) {
    clause("slow:invoker=" + std::to_string(w.invoker.get()) +
           ",at=" + fmt_ms(w.at_ms) + ",for=" + fmt_ms(w.duration_ms) +
           ",factor=" + fmt_ms(w.factor));
  }
  for (const auto& s : spec.spot) {
    std::string str = "spot:at=" + fmt_ms(s.at_ms) +
                      ",nodes=" + std::to_string(s.nodes);
    if (s.warn_ms > 0.0) str += ",warn=" + fmt_ms(s.warn_ms);
    clause(str);
  }
  return out;
}

}  // namespace esg::fault
