// Declarative fault specification (DESIGN.md §9).
//
// A FaultSpec describes every fault a run injects, parsed from the
// `--fault-spec` CLI string (or `@file`). The grammar is a `;`- or
// newline-separated list of clauses, each `kind:key=value,key=value`:
//
//   crash:invoker=3,at=2000,down=1500      node 3 dies at t=2000ms and
//                                          rejoins (empty) 1500ms later
//   dispatch:prob=0.05[,function=2]        each dispatched task of function 2
//                                          (or of any function) fails mid-run
//                                          with probability 0.05
//   coldstart:prob=0.2[,function=1]        container provisioning fails with
//                                          probability 0.2 (no warm container
//                                          joins the pool)
//   slow:invoker=1,at=500,for=4000,factor=3
//                                          node 1's GPU slices run 3x slower
//                                          during [500, 4500)
//   spot:at=2000,nodes=3[,warn=500]        correlated spot reclamation: at
//                                          t=2000ms the provider announces it
//                                          is taking 3 nodes back; they drain
//                                          for the 500ms warning lead time and
//                                          are reclaimed (in-flight work
//                                          killed, node retired) at t=2500ms
//
// Lines starting with '#' are comments (file form). Probabilities must be
// finite in [0, 1], times finite and non-negative, factors finite and >= 1;
// violations throw std::invalid_argument naming the clause. Two crash
// windows on the same invoker must not overlap (a rejoin firing inside
// another open window would corrupt the node's alive state) — overlaps are
// rejected at parse time with an error naming both clause lines. A spec
// whose probabilities are all zero and that carries no crash, no slowing
// window, and no spot reclamation is *inert* — the platform treats it
// exactly like no spec at all, which is what makes zero-rate runs
// byte-identical to fault-free runs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace esg::fault {

/// One invoker outage: the node dies at `at_ms` losing its warm pool and all
/// running tasks, and rejoins (empty, alive) at `at_ms + down_ms`.
struct CrashWindow {
  InvokerId invoker;
  TimeMs at_ms = 0.0;
  TimeMs down_ms = 0.0;
};

/// Transient dispatch failure: each dispatched task of the matching function
/// (all functions when unset) dies mid-execution with probability `prob`.
struct DispatchFault {
  double prob = 0.0;
  std::optional<FunctionId> function;
};

/// Cold-start failure: container provisioning of the matching function burns
/// the full cold-start time and then fails with probability `prob`.
struct ColdStartFault {
  double prob = 0.0;
  std::optional<FunctionId> function;
};

/// GPU-slice degradation: tasks dispatched to `invoker` while
/// [at_ms, at_ms + duration_ms) covers the dispatch run `factor`x slower.
struct SlowdownWindow {
  InvokerId invoker;
  TimeMs at_ms = 0.0;
  TimeMs duration_ms = 0.0;
  double factor = 1.0;
};

/// Correlated spot reclamation: at `at_ms` the provider announces it is
/// taking `nodes` nodes back; after the `warn_ms` lead time (the real-world
/// 30s/2min spot notice, scaled) the victims are reclaimed — in-flight tasks
/// killed, warm pools dropped, nodes retired from the fleet. Victim choice
/// is the controller's (deterministic: highest-id non-retired nodes).
struct SpotReclamation {
  TimeMs at_ms = 0.0;
  std::size_t nodes = 1;
  TimeMs warn_ms = 0.0;
};

struct FaultSpec {
  std::vector<CrashWindow> crashes;
  std::vector<DispatchFault> dispatch;
  std::vector<ColdStartFault> cold_start;
  std::vector<SlowdownWindow> slowdowns;
  std::vector<SpotReclamation> spot;

  /// True when the spec can never produce a fault: no crash, no spot
  /// reclamation, no slowdown with factor > 1, every probability zero.
  /// Inert specs are treated as "no fault injection" end to end.
  [[nodiscard]] bool inert() const;
};

/// Parses the clause grammar above. Throws std::invalid_argument on
/// malformed input, unknown keys/kinds, or out-of-range values.
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view text);

/// CLI entry point: `@path` loads the spec text from a file (throwing
/// std::invalid_argument when unreadable); anything else parses in place.
[[nodiscard]] FaultSpec load_fault_spec(std::string_view arg);

/// Canonical round-trippable rendering (parse(to_string(s)) == s).
[[nodiscard]] std::string to_string(const FaultSpec& spec);

}  // namespace esg::fault
