#include "fault/fault_engine.hpp"

#include "common/check.hpp"

namespace esg::fault {

void FaultEngine::install(sim::Simulator& sim) {
  check(!installed_, "FaultEngine::install called twice");
  installed_ = true;
  for (const CrashWindow& c : spec_.crashes) {
    // The crash is scheduled before its rejoin, so a zero-length down window
    // still fires crash-then-rejoin (the simulator breaks ties by insertion
    // order).
    sim.schedule_at(c.at_ms, [this, c] {
      if (crash_handler_) crash_handler_(c.invoker, c.at_ms + c.down_ms);
    });
    sim.schedule_at(c.at_ms + c.down_ms, [this, c] {
      if (rejoin_handler_) rejoin_handler_(c.invoker);
    });
  }
  for (const SpotReclamation& s : spec_.spot) {
    // Only the warning is scheduled here; the receiver owns the per-victim
    // reclamation events so it can skip nodes that finish draining early.
    sim.schedule_at(s.at_ms, [this, s] {
      if (spot_handler_) spot_handler_(s.nodes, s.at_ms + s.warn_ms);
    });
  }
}

RngStream& FaultEngine::stream_for(
    std::unordered_map<std::uint32_t, RngStream>& streams,
    std::string_view label, FunctionId function) {
  auto it = streams.find(function.get());
  if (it == streams.end()) {
    it = streams.emplace(function.get(), rng_.stream(label, function.get()))
             .first;
  }
  return it->second;
}

bool FaultEngine::dispatch_fails(FunctionId function) {
  double survive = 1.0;
  for (const DispatchFault& f : spec_.dispatch) {
    if (!f.function.has_value() || *f.function == function) {
      survive *= 1.0 - f.prob;
    }
  }
  const double prob = 1.0 - survive;
  if (prob <= 0.0) return false;
  return stream_for(dispatch_streams_, "dispatch", function).chance(prob);
}

bool FaultEngine::cold_start_fails(FunctionId function) {
  double survive = 1.0;
  for (const ColdStartFault& f : spec_.cold_start) {
    if (!f.function.has_value() || *f.function == function) {
      survive *= 1.0 - f.prob;
    }
  }
  const double prob = 1.0 - survive;
  if (prob <= 0.0) return false;
  return stream_for(cold_streams_, "coldstart", function).chance(prob);
}

double FaultEngine::slowdown_factor(InvokerId invoker, TimeMs now) const {
  double factor = 1.0;
  for (const SlowdownWindow& w : spec_.slowdowns) {
    if (w.invoker == invoker && now >= w.at_ms &&
        now < w.at_ms + w.duration_ms) {
      factor *= w.factor;
    }
  }
  return factor;
}

}  // namespace esg::fault
