// Deterministic, seed-isolated fault-injection engine.
//
// The engine turns a FaultSpec into concrete fault decisions:
//
//  - install() schedules the crash/rejoin events of every CrashWindow on the
//    simulator; the platform reacts through the registered handlers.
//  - dispatch_fails()/cold_start_fails() draw Bernoulli outcomes from
//    *per-function* RNG substreams, so the decision sequence of one function
//    is independent of how often any other function dispatches.
//  - slowdown_factor() is a pure window lookup (no randomness).
//
// Determinism contract (DESIGN.md §9): the engine owns an RngFactory scoped
// off the run's master seed (RngFactory::scoped("fault")), so (a) the same
// seed + spec reproduces the exact same fault sequence, and (b) enabling
// faults consumes nothing from the base streams — a zero-rate spec leaves
// the whole run byte-identical to a fault-free one.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_spec.hpp"
#include "sim/simulator.hpp"

namespace esg::fault {

class FaultEngine {
 public:
  /// (invoker, rejoin time) — fired when a CrashWindow begins.
  using CrashHandler = std::function<void(InvokerId, TimeMs)>;
  /// Fired when the invoker's down window ends.
  using RejoinHandler = std::function<void(InvokerId)>;
  /// (node count, reclamation deadline) — fired when a SpotReclamation
  /// warning lands. The receiver picks the victims, drains them, and kills
  /// whatever is still running at the deadline.
  using SpotHandler = std::function<void(std::size_t, TimeMs)>;

  /// `rng` should be the run factory's scoped("fault") derivation.
  FaultEngine(FaultSpec spec, RngFactory rng)
      : spec_(std::move(spec)), rng_(rng) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] bool enabled() const { return !spec_.inert(); }

  void set_crash_handler(CrashHandler handler) {
    crash_handler_ = std::move(handler);
  }
  void set_rejoin_handler(RejoinHandler handler) {
    rejoin_handler_ = std::move(handler);
  }
  void set_spot_handler(SpotHandler handler) {
    spot_handler_ = std::move(handler);
  }

  /// Schedules every crash and rejoin event. Call once, after the handlers
  /// are registered; the controller does this in its constructor.
  void install(sim::Simulator& sim);

  /// Draws whether the next dispatched task of `function` fails mid-run.
  [[nodiscard]] bool dispatch_fails(FunctionId function);
  /// Draws whether the next container provisioning of `function` fails.
  [[nodiscard]] bool cold_start_fails(FunctionId function);

  /// Combined straggler multiplier of the slowdown windows covering
  /// (invoker, now); 1.0 outside every window.
  [[nodiscard]] double slowdown_factor(InvokerId invoker, TimeMs now) const;

 private:
  FaultSpec spec_;
  RngFactory rng_;
  CrashHandler crash_handler_;
  RejoinHandler rejoin_handler_;
  SpotHandler spot_handler_;
  bool installed_ = false;
  // Lazily created per-function substreams. Seeding depends only on
  // (master seed, label, function id), never on creation order.
  std::unordered_map<std::uint32_t, RngStream> dispatch_streams_;
  std::unordered_map<std::uint32_t, RngStream> cold_streams_;

  RngStream& stream_for(std::unordered_map<std::uint32_t, RngStream>& streams,
                        std::string_view label, FunctionId function);
};

}  // namespace esg::fault
