#include "forecast/forecaster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "common/ewma.hpp"

namespace esg::forecast {

namespace {

/// Perfect hindsight: integrates the replayed trace's true per-bin expected
/// counts (rate-scaled, time-stretched exactly like TraceArrivalGenerator)
/// over the queried window. Past the trace end the truth is "no arrivals".
class OracleForecaster final : public ArrivalForecaster {
 public:
  OracleForecaster(std::shared_ptr<const trace::WorkloadTrace> trace,
                   const trace::ReplayOptions& replay)
      : trace_(std::move(trace)),
        scaled_bin_ms_(trace_->bin_ms * replay.time_scale),
        rate_scale_(replay.rate_scale),
        per_app_(trace_->app_count) {
    check(scaled_bin_ms_ > 0.0, "oracle: non-positive scaled bin width");
    // Rows are sorted by (bin, app, tenant); summing per (bin, app) in row
    // order keeps each app's bin list sorted for the binary searches below.
    for (const trace::TraceBinRow& row : trace_->rows) {
      auto& bins = per_app_[row.app];
      if (!bins.empty() && bins.back().first == row.bin) {
        bins.back().second += row.count;
      } else {
        bins.emplace_back(row.bin, row.count);
      }
    }
  }

  [[nodiscard]] std::string_view name() const override { return "oracle"; }

  [[nodiscard]] double forecast(std::uint32_t app, TimeMs start_ms,
                                TimeMs horizon_ms) const override {
    if (app >= per_app_.size() || horizon_ms <= 0.0) return 0.0;
    const TimeMs end_ms = start_ms + horizon_ms;
    const auto first_bin = static_cast<std::size_t>(
        std::max(0.0, std::floor(start_ms / scaled_bin_ms_)));
    const auto& bins = per_app_[app];
    auto it = std::lower_bound(
        bins.begin(), bins.end(), first_bin,
        [](const auto& row, std::size_t bin) { return row.first < bin; });
    double expected = 0.0;
    for (; it != bins.end(); ++it) {
      const TimeMs bin_start = static_cast<double>(it->first) * scaled_bin_ms_;
      if (bin_start >= end_ms) break;
      const TimeMs bin_end = bin_start + scaled_bin_ms_;
      const TimeMs overlap =
          std::min(bin_end, end_ms) - std::max(bin_start, start_ms);
      if (overlap <= 0.0) continue;
      expected += it->second * rate_scale_ * (overlap / scaled_bin_ms_);
    }
    return 1000.0 * expected / horizon_ms;
  }

 private:
  std::shared_ptr<const trace::WorkloadTrace> trace_;
  TimeMs scaled_bin_ms_;
  double rate_scale_;
  /// Per app: (bin index, summed count) sorted by bin.
  std::vector<std::vector<std::pair<std::size_t, double>>> per_app_;
};

class LastBinForecaster final : public ArrivalForecaster {
 public:
  explicit LastBinForecaster(std::size_t app_count) : last_(app_count, -1.0) {}

  [[nodiscard]] std::string_view name() const override { return "last-bin"; }

  [[nodiscard]] double forecast(std::uint32_t app, TimeMs start_ms,
                                TimeMs horizon_ms) const override {
    (void)start_ms;
    (void)horizon_ms;
    if (app >= last_.size() || last_[app] < 0.0) return 0.0;
    return 1000.0 * last_[app] / bin_ms_;
  }

  void observe_bin(std::uint32_t app, TimeMs start_ms, TimeMs bin_ms,
                   double count) override {
    (void)start_ms;
    if (app >= last_.size()) return;
    last_[app] = count;
    bin_ms_ = bin_ms;
  }

 private:
  std::vector<double> last_;  ///< -1 until the first completed bin
  TimeMs bin_ms_ = 1.0;
};

class EwmaForecaster final : public ArrivalForecaster {
 public:
  EwmaForecaster(std::size_t app_count, double alpha)
      : ewmas_(app_count, Ewma(alpha)) {}

  [[nodiscard]] std::string_view name() const override { return "ewma"; }

  [[nodiscard]] double forecast(std::uint32_t app, TimeMs start_ms,
                                TimeMs horizon_ms) const override {
    (void)start_ms;
    (void)horizon_ms;
    if (app >= ewmas_.size() || !ewmas_[app].initialized()) return 0.0;
    return 1000.0 * ewmas_[app].value() / bin_ms_;
  }

  void observe_bin(std::uint32_t app, TimeMs start_ms, TimeMs bin_ms,
                   double count) override {
    (void)start_ms;
    if (app >= ewmas_.size()) return;
    ewmas_[app].observe(count);
    bin_ms_ = bin_ms;
  }

 private:
  std::vector<Ewma> ewmas_;
  TimeMs bin_ms_ = 1.0;
};

/// Per-bin-of-period running means: observation bins are folded into the
/// period (e.g. bin-of-day), so after one full period the predictor knows
/// the diurnal shape and after two it has started averaging noise out.
/// Means stay in arrivals-per-observation-bin units whatever the seasonal
/// bin width, so the rate conversion is uniform. An unvisited bin-of-period
/// falls back to the global mean (better than predicting zero mid-ramp).
class SeasonalForecaster final : public ArrivalForecaster {
 public:
  SeasonalForecaster(std::size_t app_count, TimeMs period_ms, std::size_t bins)
      : period_ms_(period_ms),
        slot_ms_(period_ms / static_cast<double>(bins)),
        sums_(app_count, std::vector<double>(bins, 0.0)),
        counts_(app_count, std::vector<std::size_t>(bins, 0)),
        total_sum_(app_count, 0.0),
        total_count_(app_count, 0) {}

  [[nodiscard]] std::string_view name() const override { return "seasonal"; }

  [[nodiscard]] double forecast(std::uint32_t app, TimeMs start_ms,
                                TimeMs horizon_ms) const override {
    (void)horizon_ms;
    if (app >= sums_.size() || total_count_[app] == 0) return 0.0;
    const std::size_t slot = slot_of(start_ms);
    const double mean =
        counts_[app][slot] > 0
            ? sums_[app][slot] / static_cast<double>(counts_[app][slot])
            : total_sum_[app] / static_cast<double>(total_count_[app]);
    return 1000.0 * mean / bin_ms_;
  }

  void observe_bin(std::uint32_t app, TimeMs start_ms, TimeMs bin_ms,
                   double count) override {
    if (app >= sums_.size()) return;
    const std::size_t slot = slot_of(start_ms);
    sums_[app][slot] += count;
    ++counts_[app][slot];
    total_sum_[app] += count;
    ++total_count_[app];
    bin_ms_ = bin_ms;
  }

 private:
  [[nodiscard]] std::size_t slot_of(TimeMs at_ms) const {
    const double in_period = std::fmod(std::max(0.0, at_ms), period_ms_);
    return std::min(sums_.front().size() - 1,
                    static_cast<std::size_t>(in_period / slot_ms_));
  }

  TimeMs period_ms_;
  TimeMs slot_ms_;
  std::vector<std::vector<double>> sums_;
  std::vector<std::vector<std::size_t>> counts_;
  std::vector<double> total_sum_;
  std::vector<std::size_t> total_count_;
  TimeMs bin_ms_ = 1.0;
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::unique_ptr<ArrivalForecaster> make_forecaster(
    const ForecastSpec& spec, std::size_t app_count,
    std::shared_ptr<const trace::WorkloadTrace> trace,
    const trace::ReplayOptions& replay) {
  switch (spec.kind) {
    case ForecastKind::kNone:
      throw std::invalid_argument("make_forecaster: inert spec");
    case ForecastKind::kOracle:
      if (trace == nullptr) {
        throw std::invalid_argument(
            "--forecast oracle requires trace arrivals "
            "(--arrivals trace:@file)");
      }
      return std::make_unique<OracleForecaster>(std::move(trace), replay);
    case ForecastKind::kLastBin:
      return std::make_unique<LastBinForecaster>(app_count);
    case ForecastKind::kEwma:
      return std::make_unique<EwmaForecaster>(app_count, spec.ewma_alpha);
    case ForecastKind::kSeasonal:
      return std::make_unique<SeasonalForecaster>(
          app_count, spec.seasonal_period_ms, spec.seasonal_bins);
  }
  throw std::invalid_argument("make_forecaster: unknown predictor");
}

ForecastService::ForecastService(
    const ForecastSpec& spec, std::size_t app_count,
    std::shared_ptr<const trace::WorkloadTrace> trace,
    const trace::ReplayOptions& replay)
    : spec_(spec),
      apps_(app_count),
      predictor_(make_forecaster(spec, app_count, std::move(trace), replay)),
      state_(app_count) {
  check(spec_.enabled(), "ForecastService: spec has no predictor");
  check(app_count > 0, "ForecastService: no apps");
  refresh_predictions();
}

void ForecastService::on_arrival(std::uint32_t app, TimeMs now_ms) {
  roll_to(now_ms);
  if (app < apps_) state_[app].realized += 1.0;
}

double ForecastService::predicted_rate(std::uint32_t app, TimeMs now_ms,
                                       TimeMs lead_ms) {
  roll_to(now_ms);
  ++counters_.forecasts_consumed;
  if (app >= apps_) return 0.0;
  return predictor_->forecast(app, now_ms + lead_ms, spec_.bin_ms);
}

double ForecastService::predicted_total_rate(TimeMs now_ms, TimeMs lead_ms) {
  roll_to(now_ms);
  ++counters_.forecasts_consumed;
  double total = 0.0;
  for (std::uint32_t app = 0; app < apps_; ++app) {
    total += predictor_->forecast(app, now_ms + lead_ms, spec_.bin_ms);
  }
  return total;
}

AppAccuracy ForecastService::accuracy(std::uint32_t app) const {
  AppAccuracy acc;
  if (app >= apps_ || bins_closed_ == 0) return acc;
  const AppState& s = state_[app];
  const auto n = static_cast<double>(bins_closed_);
  acc.bins = bins_closed_;
  acc.mae = s.abs_err_sum / n;
  acc.smape = s.smape_sum / n;
  acc.predicted_mean = s.predicted_sum / n;
  acc.realized_mean = s.realized_sum / n;
  return acc;
}

double ForecastService::current_prediction(std::uint32_t app) const {
  if (app >= apps_) return 0.0;
  return 1000.0 * state_[app].predicted / spec_.bin_ms;
}

void ForecastService::roll_to(TimeMs now_ms) {
  if (rolling_) return;  // a bin-callback consumer is querying mid-roll
  const auto target =
      static_cast<std::size_t>(std::max(0.0, now_ms / spec_.bin_ms));
  if (target <= current_bin_) return;
  rolling_ = true;
  bool closed = false;
  while (current_bin_ < target) {
    close_bin(current_bin_);
    ++current_bin_;
    closed = true;
  }
  refresh_predictions();
  rolling_ = false;
  if (closed && on_bin_) on_bin_(now_ms);
}

void ForecastService::close_bin(std::size_t bin) {
  const TimeMs start_ms = static_cast<double>(bin) * spec_.bin_ms;
  ++bins_closed_;
  for (std::uint32_t app = 0; app < apps_; ++app) {
    AppState& s = state_[app];
    const double err = std::abs(s.predicted - s.realized);
    s.abs_err_sum += err;
    const double denom = std::abs(s.predicted) + std::abs(s.realized);
    if (denom > 0.0) s.smape_sum += 2.0 * err / denom;
    s.predicted_sum += s.predicted;
    s.realized_sum += s.realized;
    if (rec_ != nullptr && rec_->is_enabled()) {
      rec_->instant(obs::InstantKind::kForecastBin, "forecast_bin",
                    obs::controller_track(), start_ms + spec_.bin_ms,
                    {{"app", std::to_string(app)},
                     {"predicted", fmt(s.predicted)},
                     {"realized", fmt(s.realized)}});
    }
    predictor_->observe_bin(app, start_ms, spec_.bin_ms, s.realized);
    s.realized = 0.0;
  }
}

void ForecastService::refresh_predictions() {
  const TimeMs start_ms = static_cast<double>(current_bin_) * spec_.bin_ms;
  for (std::uint32_t app = 0; app < apps_; ++app) {
    // Stored in arrivals-per-bin units so close_bin compares like with like.
    state_[app].predicted =
        predictor_->forecast(app, start_ms, spec_.bin_ms) * spec_.bin_ms /
        1000.0;
    ++counters_.forecasts_issued;
  }
}

}  // namespace esg::forecast
