// --forecast spec grammar (DESIGN.md §14).
//
//   --forecast "oracle|last-bin|ewma[:alpha=A]|seasonal[:period-ms=P,bins=B]
//               [;lead-ms=L[,bin-ms=W]]"
//
// The first `;`-separated clause names the predictor (with optional
// `key=value` parameters after a colon); later clauses carry keys shared by
// every predictor: `lead-ms` (how far ahead consumers act on a forecast) and
// `bin-ms` (the width of the observation bins online predictors learn from).
// `none` (or an empty string) is the inert spec: nothing is constructed and
// the run is byte-identical to a build without the flag. Like every other
// spec surface the grammar is hardened: numbers go through std::from_chars,
// NaN/inf/negative values, duplicate keys, parameters on the wrong predictor
// and unknown keys all raise std::invalid_argument with the offending clause
// in the message. `@file` indirection reads the spec from a file (newlines
// become `;`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace esg::forecast {

enum class ForecastKind : std::uint8_t {
  kNone,     ///< inert: no forecaster is constructed
  kOracle,   ///< reads the trace's true per-bin rates (perfect hindsight)
  kLastBin,  ///< next bin = last completed bin
  kEwma,     ///< EWMA over completed bin counts
  kSeasonal, ///< per-bin-of-period running means (captures diurnal ramps)
};

[[nodiscard]] std::string_view to_string(ForecastKind kind);

struct ForecastSpec {
  ForecastKind kind = ForecastKind::kNone;
  /// EWMA weight of the newest bin (ewma predictor only).
  double ewma_alpha = 0.3;
  /// Seasonal period; defaults match one esg_tracegen day (120 x 1000 ms).
  TimeMs seasonal_period_ms = 120'000.0;
  /// Bins the seasonal period is split into.
  std::size_t seasonal_bins = 120;
  /// Observation bin width for the online predictors and accuracy tracking.
  TimeMs bin_ms = 1'000.0;
  /// How far ahead consumers act (prewarm targets, planner look-ahead).
  TimeMs lead_ms = 2'000.0;

  [[nodiscard]] bool enabled() const { return kind != ForecastKind::kNone; }
  /// Inert spec: nothing is constructed, artefacts stay byte-identical.
  [[nodiscard]] bool inert() const { return !enabled(); }
};

/// Parses the inline grammar. Throws std::invalid_argument on malformed
/// input; an empty string or "none" yields the inert spec.
[[nodiscard]] ForecastSpec parse_forecast_spec(std::string_view text);

/// parse_forecast_spec with `@file` indirection: an argument starting with
/// '@' names a file whose contents (newlines folded to ';') are parsed.
[[nodiscard]] ForecastSpec load_forecast_spec(std::string_view arg);

/// Canonical round-trippable rendering (parse(to_string(s)) == s).
[[nodiscard]] std::string to_string(const ForecastSpec& spec);

}  // namespace esg::forecast
