#include "forecast/forecast_spec.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

namespace esg::forecast {

namespace {

[[noreturn]] void bad_spec(std::string_view clause, const std::string& why) {
  throw std::invalid_argument("forecast spec '" + std::string(clause) +
                              "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

double parse_double(std::string_view clause, std::string_view key,
                    std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    bad_spec(clause, "malformed number for '" + std::string(key) + "': '" +
                         std::string(v) + "'");
  }
  return out;
}

std::size_t parse_count(std::string_view clause, std::string_view key,
                        std::string_view v) {
  const double d = parse_double(clause, key, v);
  if (d < 0.0 || d != std::floor(d) || d >= 4294967295.0) {
    bad_spec(clause,
             std::string(key) + " must be a small non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Splits `body` on `sep` into trimmed non-empty key=value pairs, rejecting
/// duplicates. Used for both the predictor parameters and the shared tail.
std::map<std::string, std::string, std::less<>> parse_kv(
    std::string_view clause, std::string_view body, char sep) {
  std::map<std::string, std::string, std::less<>> kv;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t cut = std::min(body.find(sep, pos), body.size());
    const std::string_view pair = trim(body.substr(pos, cut - pos));
    pos = cut + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
      bad_spec(clause, "expected key=value, got '" + std::string(pair) + "'");
    }
    const auto [_, inserted] =
        kv.emplace(trim(pair.substr(0, eq)), trim(pair.substr(eq + 1)));
    if (!inserted) {
      bad_spec(clause,
               "duplicate key '" + std::string(trim(pair.substr(0, eq))) + "'");
    }
  }
  return kv;
}

}  // namespace

std::string_view to_string(ForecastKind kind) {
  switch (kind) {
    case ForecastKind::kNone:
      return "none";
    case ForecastKind::kOracle:
      return "oracle";
    case ForecastKind::kLastBin:
      return "last-bin";
    case ForecastKind::kEwma:
      return "ewma";
    case ForecastKind::kSeasonal:
      return "seasonal";
  }
  return "unknown";
}

ForecastSpec parse_forecast_spec(std::string_view text) {
  const std::string_view full = trim(text);
  ForecastSpec spec;
  if (full.empty() || full == "none") return spec;

  // First `;` clause names the predictor; the rest are shared keys.
  const std::size_t semi = full.find(';');
  const std::string_view head =
      trim(semi == std::string_view::npos ? full : full.substr(0, semi));
  const std::size_t colon = head.find(':');
  const std::string_view name =
      trim(colon == std::string_view::npos ? head : head.substr(0, colon));
  if (name == "oracle") {
    spec.kind = ForecastKind::kOracle;
  } else if (name == "last-bin") {
    spec.kind = ForecastKind::kLastBin;
  } else if (name == "ewma") {
    spec.kind = ForecastKind::kEwma;
  } else if (name == "seasonal") {
    spec.kind = ForecastKind::kSeasonal;
  } else {
    bad_spec(full, "unknown predictor '" + std::string(name) +
                       "' (oracle|last-bin|ewma|seasonal|none)");
  }

  if (colon != std::string_view::npos) {
    for (const auto& [key, value] : parse_kv(full, head.substr(colon + 1), ',')) {
      if (key == "alpha" && spec.kind == ForecastKind::kEwma) {
        spec.ewma_alpha = parse_double(full, key, value);
        if (spec.ewma_alpha <= 0.0 || spec.ewma_alpha > 1.0) {
          bad_spec(full, "alpha must be in (0, 1]");
        }
      } else if (key == "period-ms" && spec.kind == ForecastKind::kSeasonal) {
        spec.seasonal_period_ms = parse_double(full, key, value);
        if (spec.seasonal_period_ms <= 0.0) {
          bad_spec(full, "period-ms must be > 0");
        }
      } else if (key == "bins" && spec.kind == ForecastKind::kSeasonal) {
        spec.seasonal_bins = parse_count(full, key, value);
        if (spec.seasonal_bins == 0 || spec.seasonal_bins > (1u << 20)) {
          bad_spec(full, "bins must be in [1, 2^20]");
        }
      } else {
        bad_spec(full, "unknown key '" + key + "' for predictor '" +
                           std::string(name) + "'");
      }
    }
  }

  if (semi != std::string_view::npos) {
    for (const auto& [key, value] : parse_kv(full, full.substr(semi + 1), ',')) {
      if (key == "lead-ms") {
        spec.lead_ms = parse_double(full, key, value);
        if (spec.lead_ms < 0.0) bad_spec(full, "lead-ms must be >= 0");
      } else if (key == "bin-ms") {
        spec.bin_ms = parse_double(full, key, value);
        if (spec.bin_ms <= 0.0) bad_spec(full, "bin-ms must be > 0");
      } else {
        bad_spec(full, "unknown key '" + key + "'");
      }
    }
  }
  return spec;
}

ForecastSpec load_forecast_spec(std::string_view arg) {
  if (arg.empty() || arg.front() != '@') return parse_forecast_spec(arg);
  const std::string path(arg.substr(1));
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("forecast spec file '" + path +
                                "' is unreadable");
  }
  std::string text, line;
  while (std::getline(in, line)) {
    if (!text.empty()) text += ';';
    text += line;
  }
  return parse_forecast_spec(text);
}

std::string to_string(const ForecastSpec& spec) {
  if (!spec.enabled()) return "none";
  std::string out(to_string(spec.kind));
  if (spec.kind == ForecastKind::kEwma) {
    out += ":alpha=" + fmt(spec.ewma_alpha);
  } else if (spec.kind == ForecastKind::kSeasonal) {
    out += ":period-ms=" + fmt(spec.seasonal_period_ms);
    out += ",bins=" + std::to_string(spec.seasonal_bins);
  }
  out += ";lead-ms=" + fmt(spec.lead_ms);
  out += ",bin-ms=" + fmt(spec.bin_ms);
  return out;
}

}  // namespace esg::forecast
