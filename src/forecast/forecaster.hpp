// Arrival forecasting (DESIGN.md §14): per-app next-bin intensity estimates
// that let the prewarm manager, the elastic autoscaler and the ESG planner
// act *ahead* of ramps and bursts instead of chasing them.
//
// Two layers:
//
//   ArrivalForecaster  a pure per-bin predictor: forecast(app, start,
//                      horizon) -> expected arrivals/second over the window;
//                      observe_bin() feeds one completed observation bin.
//                      Four implementations: oracle (reads the replayed
//                      trace's true per-bin rates — the value-of-information
//                      upper bound), last-bin, EWMA, and seasonal
//                      (per-bin-of-period running means).
//
//   ForecastService    the run-time harness around a predictor. It bins
//                      realized arrivals (spec.bin_ms wide, anchored at 0),
//                      closes bins lazily as time advances, scores the
//                      prediction made at each bin's start against the
//                      realized count (per-app MAE / sMAPE), emits
//                      kForecastBin trace instants, maintains the
//                      forecasts_issued/consumed perf counters, and fires a
//                      bin callback consumers use to re-evaluate targets.
//
// Everything is deterministic and draw-free: the service never touches an
// RNG, so enabling a forecaster perturbs no other subsystem's randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "forecast/forecast_spec.hpp"
#include "obs/recorder.hpp"
#include "perf/counters.hpp"
#include "trace/replay.hpp"
#include "trace/workload_trace.hpp"

namespace esg::forecast {

class ArrivalForecaster {
 public:
  virtual ~ArrivalForecaster() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Expected arrival rate (arrivals/second) of `app` over
  /// [start_ms, start_ms + horizon_ms). `horizon_ms` must be > 0.
  [[nodiscard]] virtual double forecast(std::uint32_t app, TimeMs start_ms,
                                        TimeMs horizon_ms) const = 0;
  /// One completed observation bin: `count` arrivals of `app` in the bin
  /// starting at `start_ms`, `bin_ms` wide. Oracle ignores observations.
  virtual void observe_bin(std::uint32_t app, TimeMs start_ms, TimeMs bin_ms,
                           double count) {
    (void)app;
    (void)start_ms;
    (void)bin_ms;
    (void)count;
  }
};

/// Builds the predictor named by `spec`. The oracle needs the replayed
/// trace (plus its replay scaling) and throws std::invalid_argument when
/// `trace` is null; the online predictors ignore both.
[[nodiscard]] std::unique_ptr<ArrivalForecaster> make_forecaster(
    const ForecastSpec& spec, std::size_t app_count,
    std::shared_ptr<const trace::WorkloadTrace> trace,
    const trace::ReplayOptions& replay);

/// Per-app forecast accuracy over all closed bins (predicted vs realized
/// arrivals per bin). sMAPE is the symmetric mean absolute percentage error
/// in [0, 2]; bins where both sides are zero score 0 (a perfect call).
struct AppAccuracy {
  double mae = 0.0;
  double smape = 0.0;
  std::size_t bins = 0;
  double predicted_mean = 0.0;
  double realized_mean = 0.0;
};

class ForecastService {
 public:
  /// `spec` must be enabled. `trace`/`replay` are only read by the oracle.
  ForecastService(const ForecastSpec& spec, std::size_t app_count,
                  std::shared_ptr<const trace::WorkloadTrace> trace,
                  const trace::ReplayOptions& replay);

  [[nodiscard]] const ForecastSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t app_count() const { return apps_; }
  [[nodiscard]] std::string_view predictor_name() const {
    return predictor_->name();
  }

  /// Structured-tracing handle (non-owning; nullptr disables instants).
  void set_trace(obs::TraceRecorder* recorder) { rec_ = recorder; }
  /// Fired once per roll that closed at least one bin, after predictions
  /// are refreshed; consumers re-evaluate proactive targets here. The
  /// callback may call predicted_rate() freely (the roll is reentrancy-safe).
  void set_bin_callback(std::function<void(TimeMs)> cb) {
    on_bin_ = std::move(cb);
  }

  /// One realized arrival. Rolls the observation window forward first, so
  /// bins the clock skipped are closed (and scored) in order.
  void on_arrival(std::uint32_t app, TimeMs now_ms);

  /// Predicted arrivals/second of `app` over one bin starting `lead_ms`
  /// ahead of `now_ms` — the consumer-facing query (counts as consumed).
  [[nodiscard]] double predicted_rate(std::uint32_t app, TimeMs now_ms,
                                      TimeMs lead_ms);
  /// Sum of predicted_rate over all apps (one consumed count, not one per
  /// app) — the elastic autoscaler's aggregate-demand signal.
  [[nodiscard]] double predicted_total_rate(TimeMs now_ms, TimeMs lead_ms);

  /// Accuracy over the bins closed so far.
  [[nodiscard]] AppAccuracy accuracy(std::uint32_t app) const;
  /// The prediction standing for the current (open) bin, arrivals/second.
  [[nodiscard]] double current_prediction(std::uint32_t app) const;

  [[nodiscard]] const perf::Counters& counters() const { return counters_; }

 private:
  struct AppState {
    double realized = 0.0;   ///< arrivals observed in the open bin
    double predicted = 0.0;  ///< arrivals predicted for the open bin
    double abs_err_sum = 0.0;
    double smape_sum = 0.0;
    double predicted_sum = 0.0;
    double realized_sum = 0.0;
  };

  ForecastSpec spec_;
  std::size_t apps_;
  std::unique_ptr<ArrivalForecaster> predictor_;
  std::vector<AppState> state_;
  std::size_t current_bin_ = 0;
  std::size_t bins_closed_ = 0;
  bool rolling_ = false;  ///< reentrancy guard for the bin callback
  perf::Counters counters_;
  obs::TraceRecorder* rec_ = nullptr;
  std::function<void(TimeMs)> on_bin_;

  /// Closes every bin that ended at or before `now_ms` and refreshes the
  /// open-bin predictions; fires the bin callback if anything closed.
  void roll_to(TimeMs now_ms);
  void close_bin(std::size_t bin);
  void refresh_predictions();
};

}  // namespace esg::forecast
