#include "elastic/elastic_spec.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace esg::elastic {

namespace {

[[noreturn]] void bad_spec(std::string_view clause, const std::string& why) {
  throw std::invalid_argument("elastic spec '" + std::string(clause) +
                              "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

double parse_double(std::string_view clause, std::string_view key,
                    std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    bad_spec(clause, "malformed number for '" + std::string(key) + "': '" +
                         std::string(v) + "'");
  }
  return out;
}

std::size_t parse_count(std::string_view clause, std::string_view key,
                        std::string_view v) {
  const double d = parse_double(clause, key, v);
  if (d < 0.0 || d != std::floor(d) || d >= 4294967295.0) {
    bad_spec(clause,
             std::string(key) + " must be a small non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string_view to_string(ElasticPolicy policy) {
  switch (policy) {
    case ElasticPolicy::kNone:
      return "none";
    case ElasticPolicy::kQueue:
      return "queue";
    case ElasticPolicy::kRate:
      return "rate";
    case ElasticPolicy::kForecast:
      return "forecast";
  }
  return "unknown";
}

ElasticSpec parse_elastic_spec(std::string_view text) {
  const std::string_view clause = trim(text);
  ElasticSpec spec;
  if (clause.empty() || clause == "none") return spec;

  const std::size_t colon = clause.find(':');
  const std::string_view policy =
      trim(colon == std::string_view::npos ? clause : clause.substr(0, colon));
  if (policy == "queue") {
    spec.policy = ElasticPolicy::kQueue;
  } else if (policy == "rate") {
    spec.policy = ElasticPolicy::kRate;
  } else if (policy == "forecast") {
    spec.policy = ElasticPolicy::kForecast;
  } else {
    bad_spec(clause, "unknown policy '" + std::string(policy) +
                         "' (queue|rate|forecast|none)");
  }

  // key=value list after the colon; duplicates rejected.
  std::map<std::string, std::string, std::less<>> kv;
  if (colon != std::string_view::npos) {
    const std::string_view body = clause.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= body.size()) {
      const std::size_t comma = std::min(body.find(',', pos), body.size());
      const std::string_view pair = trim(body.substr(pos, comma - pos));
      pos = comma + 1;
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
        bad_spec(clause, "expected key=value, got '" + std::string(pair) + "'");
      }
      const auto [_, inserted] =
          kv.emplace(trim(pair.substr(0, eq)), trim(pair.substr(eq + 1)));
      if (!inserted) {
        bad_spec(clause, "duplicate key '" +
                             std::string(trim(pair.substr(0, eq))) + "'");
      }
    }
  }

  for (const auto& [key, value] : kv) {
    if (key == "min") {
      spec.min_nodes = parse_count(clause, key, value);
    } else if (key == "max") {
      spec.max_nodes = parse_count(clause, key, value);
    } else if (key == "out") {
      spec.out_threshold = parse_double(clause, key, value);
      if (spec.out_threshold <= 0.0) bad_spec(clause, "out must be > 0");
    } else if (key == "step") {
      spec.out_step = parse_count(clause, key, value);
      if (spec.out_step == 0) bad_spec(clause, "step must be >= 1");
    } else if (key == "idle-ms") {
      spec.idle_ms = parse_double(clause, key, value);
      if (spec.idle_ms < 0.0) bad_spec(clause, "idle-ms must be >= 0");
    } else if (key == "eval-ms") {
      spec.eval_ms = parse_double(clause, key, value);
      if (spec.eval_ms <= 0.0) bad_spec(clause, "eval-ms must be > 0");
    } else if (key == "provision-ms") {
      spec.provision_ms = parse_double(clause, key, value);
      if (spec.provision_ms < 0.0) bad_spec(clause, "provision-ms must be >= 0");
    } else if (key == "alpha") {
      spec.rate_alpha = parse_double(clause, key, value);
      if (spec.rate_alpha <= 0.0 || spec.rate_alpha > 1.0) {
        bad_spec(clause, "alpha must be in (0, 1]");
      }
    } else if (key == "shed") {
      if (value == "on" || value == "true" || value == "1") {
        spec.shed = true;
      } else if (value == "off" || value == "false" || value == "0") {
        spec.shed = false;
      } else {
        bad_spec(clause, "malformed boolean for 'shed': '" + value + "' (on|off)");
      }
    } else if (key == "shed-margin") {
      spec.shed_margin = parse_double(clause, key, value);
      if (spec.shed_margin <= 0.0) bad_spec(clause, "shed-margin must be > 0");
    } else {
      bad_spec(clause, "unknown key '" + key + "'");
    }
  }

  if (spec.max_nodes > 0 && spec.min_nodes > spec.max_nodes) {
    bad_spec(clause, "min must be <= max");
  }
  return spec;
}

std::string to_string(const ElasticSpec& spec) {
  if (!spec.enabled()) return "none";
  std::string out(to_string(spec.policy));
  out += ":min=" + std::to_string(spec.min_nodes);
  out += ",max=" + std::to_string(spec.max_nodes);
  out += ",out=" + fmt(spec.out_threshold);
  out += ",step=" + std::to_string(spec.out_step);
  out += ",idle-ms=" + fmt(spec.idle_ms);
  out += ",eval-ms=" + fmt(spec.eval_ms);
  out += ",provision-ms=" + fmt(spec.provision_ms);
  if (spec.policy == ElasticPolicy::kRate) {
    out += ",alpha=" + fmt(spec.rate_alpha);
  }
  out += ",shed=";
  out += spec.shed ? "on" : "off";
  if (spec.shed) out += ",shed-margin=" + fmt(spec.shed_margin);
  return out;
}

}  // namespace esg::elastic
