// Elastic fleet lifecycle manager (DESIGN.md §11).
//
// Drives Invoker lifecycle transitions (Retired -> Warming -> Active ->
// Draining -> Retired) from the deterministic policy in an ElasticSpec:
//
//  - Scale-out: when the backlog (queue policy) or the EWMA arrival rate
//    (rate policy) per in-fleet node exceeds the threshold, the lowest-id
//    retired nodes are acquired; each pays `provision-ms` of warming before
//    it can take placements. A fleet scaled to zero re-acquires nodes as
//    soon as work queues.
//  - Scale-in: nodes idle for `idle-ms` drain and retire (highest id
//    first, never below `min`). Policy scale-in only picks nodes with no
//    running task, so drain and retire coincide; spot-reclaimed nodes
//    (driven by the controller) drain for the warning lead time instead and
//    are retired here as soon as their last task finishes.
//
// The manager runs on a self-scheduled tick every `eval-ms`, armed only
// while it could still act (work queued, nodes warming/draining, or
// scale-in headroom); when the predicate goes false the tick stops so the
// simulator can drain. An *inert* spec schedules nothing, draws nothing
// from `rng`, and emits nothing — a zero-churn elastic run is byte-identical
// to the static fleet (the determinism contract).
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "elastic/elastic_spec.hpp"
#include "metrics/run_metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace esg::elastic {

class ElasticManager {
 public:
  /// `spec.max_nodes` must be resolved (> 0) and equal `cluster.size()`;
  /// `initial_nodes` of the fleet start Active, the rest Retired.
  /// `rng` should be the run factory's scoped("elastic") derivation.
  ElasticManager(sim::Simulator& sim, cluster::Cluster& cluster,
                 ElasticSpec spec, RngFactory rng, std::size_t initial_nodes);

  [[nodiscard]] const ElasticSpec& spec() const { return spec_; }

  /// Controller backlog, for the queue policy and the tick-liveness check.
  void set_queue_depth_provider(std::function<std::size_t()> provider) {
    queue_depth_ = std::move(provider);
  }
  /// Predicted aggregate arrival rate (arrivals/s) `provision-ms` ahead of
  /// the passed instant; required by the forecast policy (which otherwise
  /// never fires — there is nothing to anticipate without a forecaster).
  void set_forecast_provider(std::function<double(TimeMs)> provider) {
    forecast_rate_ = std::move(provider);
  }
  /// Fired when a warming node activates (the controller re-arms its scan).
  void set_on_activate(std::function<void(InvokerId)> hook) {
    on_activate_ = std::move(hook);
  }
  /// Fired when a node starts draining (the controller cancels in-flight
  /// provisioning targeting it).
  void set_on_drain(std::function<void(InvokerId)> hook) {
    on_drain_ = std::move(hook);
  }
  /// Trace + metrics wiring; events before `warmup_ms` are not recorded.
  void set_observability(obs::TraceRecorder* recorder,
                         metrics::RunMetrics* metrics, TimeMs warmup_ms) {
    recorder_ = recorder;
    metrics_ = metrics;
    warmup_ms_ = warmup_ms;
  }

  /// Request-arrival notification: feeds the rate policy's EWMA and re-arms
  /// the evaluation tick if it had gone dormant.
  void on_arrival(TimeMs now);

  /// One policy evaluation (normally tick-driven; public for tests).
  void evaluate(TimeMs now);

 private:
  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  ElasticSpec spec_;
  RngFactory rng_;  // reserved for stochastic policies; current ones draw nothing
  std::function<std::size_t()> queue_depth_;
  std::function<double(TimeMs)> forecast_rate_;
  std::function<void(InvokerId)> on_activate_;
  std::function<void(InvokerId)> on_drain_;
  obs::TraceRecorder* recorder_ = nullptr;
  metrics::RunMetrics* metrics_ = nullptr;
  TimeMs warmup_ms_ = 0.0;

  std::vector<TimeMs> last_busy_;  ///< per node: last eval that saw it busy
  bool tick_scheduled_ = false;
  TimeMs ewma_gap_ms_ = -1.0;  ///< EWMA inter-arrival gap; < 0 until two arrivals
  TimeMs last_arrival_ms_ = -1.0;

  [[nodiscard]] std::size_t queued_jobs() const {
    return queue_depth_ ? queue_depth_() : 0;
  }
  [[nodiscard]] bool could_still_act() const;
  void ensure_tick(TimeMs now);
  void tick(TimeMs now);
  void retire_empty_draining(TimeMs now);
  void scale_out(TimeMs now, std::size_t in_fleet);
  void scale_in(TimeMs now);
  void activate_node(InvokerId id, TimeMs now);
  [[nodiscard]] obs::TraceRecorder* traced(TimeMs now) const {
    return (recorder_ != nullptr && recorder_->is_enabled() &&
            now >= warmup_ms_)
               ? recorder_
               : nullptr;
  }
  [[nodiscard]] bool measured(TimeMs now) const {
    return metrics_ != nullptr && now >= warmup_ms_;
  }
};

}  // namespace esg::elastic
