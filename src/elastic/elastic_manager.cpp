#include "elastic/elastic_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/check.hpp"

namespace esg::elastic {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

ElasticManager::ElasticManager(sim::Simulator& sim, cluster::Cluster& cluster,
                               ElasticSpec spec, RngFactory rng,
                               std::size_t initial_nodes)
    : sim_(sim), cluster_(cluster), spec_(std::move(spec)), rng_(rng) {
  check(spec_.enabled(), "ElasticManager: spec has no policy");
  check(spec_.max_nodes == cluster_.size(),
        "ElasticManager: cluster size must equal the resolved max_nodes");
  check(initial_nodes >= 1 && initial_nodes <= cluster_.size(),
        "ElasticManager: initial fleet outside [1, max]");
  last_busy_.assign(cluster_.size(), 0.0);
  // Pre-run setup, not a lifecycle event: nodes beyond the initial fleet
  // start outside it (no trace output, nothing scheduled).
  for (std::size_t i = initial_nodes; i < cluster_.size(); ++i) {
    auto& inv = cluster_.invokers()[i];
    inv.begin_drain();
    inv.retire(0.0);
  }
  ensure_tick(0.0);
}

void ElasticManager::on_arrival(TimeMs now) {
  if (spec_.inert()) return;
  if (last_arrival_ms_ >= 0.0) {
    const TimeMs gap = now - last_arrival_ms_;
    ewma_gap_ms_ = ewma_gap_ms_ < 0.0
                       ? gap
                       : spec_.rate_alpha * gap +
                             (1.0 - spec_.rate_alpha) * ewma_gap_ms_;
  }
  last_arrival_ms_ = now;
  ensure_tick(now);
}

bool ElasticManager::could_still_act() const {
  if (cluster_.warming_count() + cluster_.draining_count() > 0) return true;
  if (spec_.idle_ms > 0.0 && cluster_.active_count() > spec_.min_nodes) {
    return true;
  }
  return queued_jobs() > 0;
}

void ElasticManager::ensure_tick(TimeMs now) {
  if (tick_scheduled_ || spec_.inert()) return;
  tick_scheduled_ = true;
  sim_.schedule_at(now + spec_.eval_ms, [this] { tick(sim_.now()); });
}

void ElasticManager::tick(TimeMs now) {
  tick_scheduled_ = false;
  evaluate(now);
  // Re-arm only while a decision is still possible; a permanently-armed
  // tick would keep the simulator (and the stats sampler) alive forever.
  if (could_still_act()) ensure_tick(now);
}

void ElasticManager::evaluate(TimeMs now) {
  if (spec_.inert()) return;
  retire_empty_draining(now);
  for (const auto& inv : cluster_.invokers()) {
    if (inv.used_vcpus() > 0 || inv.used_vgpus() > 0) {
      last_busy_[inv.id().get()] = now;
    }
  }
  scale_in(now);
  scale_out(now, cluster_.active_count() + cluster_.warming_count());
}

void ElasticManager::retire_empty_draining(TimeMs now) {
  for (auto& inv : cluster_.invokers()) {
    if (inv.state() != cluster::NodeState::kDraining) continue;
    if (inv.used_vcpus() > 0 || inv.used_vgpus() > 0) continue;
    inv.retire(now);
    if (auto* rec = traced(now)) {
      rec->instant(obs::InstantKind::kNodeRetired, "node_retired",
                   obs::controller_track(), now,
                   {{"invoker", std::to_string(inv.id().get())}});
    }
  }
}

void ElasticManager::scale_out(TimeMs now, std::size_t in_fleet) {
  if (in_fleet >= spec_.max_nodes) return;
  const std::size_t queued = queued_jobs();
  bool fire = false;
  if (in_fleet == 0) {
    // Scale-from-zero: any backlog must re-acquire capacity, whatever the
    // per-node threshold says (the per-node signal is undefined at zero).
    fire = queued > 0;
  } else if (spec_.policy == ElasticPolicy::kQueue) {
    fire = static_cast<double>(queued) >
           spec_.out_threshold * static_cast<double>(in_fleet);
  } else if (spec_.policy == ElasticPolicy::kForecast) {
    // Anticipatory: provision when the *predicted* demand provision-ms
    // ahead exceeds the per-node threshold, so the node activates right as
    // that demand lands instead of provision-ms after it shows up.
    if (forecast_rate_) {
      fire = forecast_rate_(now) >
             spec_.out_threshold * static_cast<double>(in_fleet);
    }
  } else {
    if (ewma_gap_ms_ > 0.0) {
      const double per_s = 1000.0 / ewma_gap_ms_;
      fire = per_s > spec_.out_threshold * static_cast<double>(in_fleet);
    }
  }
  if (!fire) return;

  std::size_t want = std::min(spec_.out_step, spec_.max_nodes - in_fleet);
  for (auto& inv : cluster_.invokers()) {
    if (want == 0) break;
    if (inv.state() != cluster::NodeState::kRetired) continue;
    inv.begin_warming();
    --want;
    const InvokerId id = inv.id();
    last_busy_[id.get()] = now;  // fresh nodes get a full idle window
    if (measured(now)) ++metrics_->scale_outs;
    if (auto* rec = traced(now)) {
      rec->instant(obs::InstantKind::kScaleOut, "scale_out",
                   obs::controller_track(), now,
                   {{"invoker", std::to_string(id.get())},
                    {"queued", std::to_string(queued)},
                    {"fleet", std::to_string(in_fleet)}});
    }
    sim_.schedule_at(now + spec_.provision_ms,
                     [this, id] { activate_node(id, sim_.now()); });
  }
}

void ElasticManager::activate_node(InvokerId id, TimeMs now) {
  auto& inv = cluster_.invoker(id);
  // A spot reclamation (or anything else) may have drained the node while
  // it was still warming; the stale activation must not resurrect it.
  if (inv.state() != cluster::NodeState::kWarming) return;
  inv.activate();
  last_busy_[id.get()] = now;
  if (auto* rec = traced(now)) {
    rec->instant(obs::InstantKind::kNodeActivated, "node_activated",
                 obs::controller_track(), now,
                 {{"invoker", std::to_string(id.get())}});
  }
  if (on_activate_) on_activate_(id);
}

void ElasticManager::scale_in(TimeMs now) {
  if (spec_.idle_ms <= 0.0) return;
  if (queued_jobs() > 0) return;  // demand exists; keep the fleet
  const std::size_t active = cluster_.active_count();
  std::size_t droppable =
      active > spec_.min_nodes ? active - spec_.min_nodes : 0;
  // Highest id first: the hash-based home invokers of a small fleet
  // concentrate on low ids, so high ids go idle first and come back last.
  for (std::size_t i = cluster_.size(); i-- > 0 && droppable > 0;) {
    auto& inv = cluster_.invokers()[i];
    if (inv.state() != cluster::NodeState::kActive) continue;
    if (!inv.alive()) continue;  // crash windows own dead nodes
    if (inv.used_vcpus() > 0 || inv.used_vgpus() > 0) continue;
    if (now - last_busy_[i] < spec_.idle_ms) continue;
    inv.begin_drain();
    if (on_drain_) on_drain_(inv.id());
    // Policy scale-in only picks idle nodes, so the drain completes
    // immediately; retire() releases the warm pool (WarmEnd::kDrained) and
    // asserts nothing leaked.
    inv.retire(now);
    --droppable;
    if (measured(now)) ++metrics_->scale_ins;
    if (auto* rec = traced(now)) {
      rec->instant(obs::InstantKind::kScaleIn, "scale_in",
                   obs::controller_track(), now,
                   {{"invoker", std::to_string(inv.id().get())},
                    {"idle_ms", fmt(now - last_busy_[i])}});
      rec->instant(obs::InstantKind::kNodeRetired, "node_retired",
                   obs::controller_track(), now,
                   {{"invoker", std::to_string(inv.id().get())}});
    }
  }
}

}  // namespace esg::elastic
