// Declarative elastic-fleet policy (DESIGN.md §11).
//
// An ElasticSpec describes how the fleet grows and shrinks, parsed from the
// `--elastic` CLI string. The grammar is one clause, `policy:key=value,...`:
//
//   queue:min=2,max=16,out=8,step=2,idle-ms=30000
//       scale out `step` nodes whenever the controller's backlog exceeds
//       `out` queued jobs per in-fleet node; scale in nodes idle for
//       `idle-ms` (0 disables scale-in), never below `min` or above `max`
//   rate:min=2,max=16,out=4,alpha=0.3,idle-ms=30000
//       same lifecycle, but the scale-out signal is an EWMA of the request
//       arrival rate (arrivals/s per in-fleet node exceeding `out`)
//   forecast:min=2,max=16,out=4,provision-ms=2000
//       same lifecycle, but the scale-out signal is the *forecast* arrival
//       rate `provision-ms` ahead (arrivals/s per in-fleet node exceeding
//       `out`), so capacity activates as the predicted demand lands; needs
//       a forecaster (--forecast) wired at run assembly
//
// Shared keys (both policies):
//   min=<n>          floor for scale-in; 0 allows scale-to-zero   (default 1)
//   max=<n>          fleet ceiling; 0 = the run's --nodes value   (default 0)
//   out=<f>          scale-out threshold (per-node backlog/rate)  (default 8)
//   step=<n>         nodes acquired per scale-out decision        (default 1)
//   idle-ms=<ms>     idle time before scale-in; 0 disables        (default 30000)
//   eval-ms=<ms>     min spacing between policy evaluations       (default 250)
//   provision-ms=<ms> lead time before an acquired node activates (default 2000)
//   alpha=<f>        EWMA smoothing in (0, 1], rate policy only   (default 0.3)
//   shed=on|off      admission control with load shedding         (default off)
//   shed-margin=<f>  shed when projected latency > margin x SLO   (default 1)
//
// Violations throw std::invalid_argument naming the clause. A spec whose
// policy can never act (min == max and scale-in disabled, shedding off) is
// *inert*: the platform evaluates it to pure no-ops, which is what keeps a
// zero-churn elastic run byte-identical to the static fleet.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace esg::elastic {

enum class ElasticPolicy : std::uint8_t {
  kNone,   ///< no elasticity (static fleet)
  kQueue,  ///< scale out on queued jobs per in-fleet node
  kRate,   ///< scale out on EWMA arrival rate per in-fleet node
  kForecast,  ///< scale out on forecast arrival rate per in-fleet node
};

[[nodiscard]] std::string_view to_string(ElasticPolicy policy);

struct ElasticSpec {
  ElasticPolicy policy = ElasticPolicy::kNone;
  std::size_t min_nodes = 1;
  std::size_t max_nodes = 0;  ///< 0 = resolved to the scenario's node count
  double out_threshold = 8.0;
  std::size_t out_step = 1;
  TimeMs idle_ms = 30'000.0;
  TimeMs eval_ms = 250.0;
  TimeMs provision_ms = 2'000.0;
  double rate_alpha = 0.3;
  bool shed = false;
  double shed_margin = 1.0;

  [[nodiscard]] bool enabled() const { return policy != ElasticPolicy::kNone; }

  /// True when the policy can never change the fleet or reject a request:
  /// min == max (no headroom either way once resolved), scale-in disabled,
  /// shedding off. Inert specs are evaluated to pure no-ops.
  [[nodiscard]] bool inert() const {
    return !enabled() ||
           (min_nodes == max_nodes && idle_ms <= 0.0 && !shed);
  }
};

/// Parses the clause grammar above. Throws std::invalid_argument on
/// malformed input, unknown keys/policies, or out-of-range values.
[[nodiscard]] ElasticSpec parse_elastic_spec(std::string_view text);

/// Canonical round-trippable rendering (parse(to_string(s)) ~ s).
[[nodiscard]] std::string to_string(const ElasticSpec& spec);

}  // namespace esg::elastic
