#include "exp/cli.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "fault/fault_spec.hpp"

namespace esg::exp {

namespace {

SchedulerKind parse_scheduler(std::string_view v) {
  if (v == "esg") return SchedulerKind::kEsg;
  if (v == "infless") return SchedulerKind::kInfless;
  if (v == "fast-gshare" || v == "fastgshare") return SchedulerKind::kFastGshare;
  if (v == "orion") return SchedulerKind::kOrion;
  if (v == "aquatope") return SchedulerKind::kAquatope;
  throw std::invalid_argument("unknown --scheduler '" + std::string(v) +
                              "' (esg|infless|fast-gshare|orion|aquatope)");
}

workload::LoadSetting parse_load(std::string_view v) {
  if (v == "light") return workload::LoadSetting::kLight;
  if (v == "normal") return workload::LoadSetting::kNormal;
  if (v == "heavy") return workload::LoadSetting::kHeavy;
  throw std::invalid_argument("unknown --load '" + std::string(v) +
                              "' (light|normal|heavy)");
}

workload::SloSetting parse_slo(std::string_view v) {
  if (v == "strict") return workload::SloSetting::kStrict;
  if (v == "moderate") return workload::SloSetting::kModerate;
  if (v == "relaxed") return workload::SloSetting::kRelaxed;
  throw std::invalid_argument("unknown --slo '" + std::string(v) +
                              "' (strict|moderate|relaxed)");
}

double parse_number(std::string_view key, std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  // from_chars happily parses "nan" and "inf"; neither is a usable knob
  // value anywhere in the CLI, and NaN in particular slips through every
  // `< 0` range check below.
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    throw std::invalid_argument("malformed value for " + std::string(key) +
                                ": '" + std::string(v) + "'");
  }
  return out;
}

/// For time-like knobs: finite and >= 0 (parse_number already rejects
/// NaN/inf, whose casts to integers would be undefined behaviour anyway).
double parse_nonnegative(std::string_view key, std::string_view v) {
  const double d = parse_number(key, v);
  if (d < 0.0) {
    throw std::invalid_argument(std::string(key) + " must be non-negative");
  }
  return d;
}

std::uint64_t parse_unsigned(std::string_view key, std::string_view v) {
  return static_cast<std::uint64_t>(parse_nonnegative(key, v));
}

bool parse_bool(std::string_view key, std::string_view v) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  throw std::invalid_argument("malformed boolean for " + std::string(key) +
                              ": '" + std::string(v) + "' (on|off)");
}

}  // namespace

std::string cli_usage() {
  return R"(esg_sim — run one simulated serverless scheduling scenario

usage: esg_sim [flags]

  --scheduler  esg|infless|fast-gshare|orion|aquatope   (default esg)
  --load       light|normal|heavy                       (default light)
  --slo        strict|moderate|relaxed                  (default strict)
  --horizon-ms <ms>      arrival window                 (default 30000)
  --warmup-ms  <ms>      steady-state measurement start (default 0)
  --nodes      <n>       invoker count                  (default 16)
  --seeds      <n>       replicas, seeds 42..42+n-1     (default 1)
  --k          <n>       ESG configPQ length            (default 5)
  --group-size <n>       ESG max function-group size    (default 3)
  --gpu-sharing on|off   ablation switch                (default on)
  --batching   on|off    ablation switch                (default on)
  --prewarm    on|off    pre-warming                    (default on)
  --noise-cv   <f>       execution-noise CV             (default 0.06)
  --csv-dir    <path>    write completions/tasks/summary CSVs
  --trace-out  <path>    write a Chrome/Perfetto trace (trace.json); with
                         --seeds n>1 each seed gets a _seed<N> suffix
  --stats-out  <path>    write sampled gauges (occupancy, queue depth) as JSONL
  --stats-interval-ms <ms>  gauge sampling cadence      (default 100)
  --report-out <path>    write the SLO-attribution report (critical-path
                         latency decomposition + per-app miss causes) as JSON;
                         esg_report produces the same file from a saved trace
  --fault-spec <spec>    deterministic fault injection; `@file` reads the
                         spec from a file. Clauses are `;`-separated:
                           crash:invoker=3,at=2000,down=1500
                           dispatch:prob=0.05[,function=2]
                           coldstart:prob=0.2[,function=1]
                           slow:invoker=1,at=500,for=4000,factor=3
                         A zero-rate spec reproduces the fault-free run
                         byte-for-byte.
  --help
)";
}

CliOptions parse_cli(std::span<const char* const> args) {
  CliOptions opts;
  std::size_t seed_count = 1;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view key = args[i];
    if (key == "--help" || key == "-h") {
      opts.help = true;
      return opts;
    }
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value for " + std::string(key));
    }
    const std::string_view value = args[++i];

    if (key == "--scheduler") {
      opts.scenario.scheduler = parse_scheduler(value);
    } else if (key == "--load") {
      opts.scenario.load = parse_load(value);
    } else if (key == "--slo") {
      opts.scenario.slo = parse_slo(value);
    } else if (key == "--horizon-ms") {
      opts.scenario.horizon_ms = parse_nonnegative(key, value);
    } else if (key == "--warmup-ms") {
      opts.scenario.warmup_ms = parse_nonnegative(key, value);
    } else if (key == "--nodes") {
      opts.scenario.nodes = static_cast<std::size_t>(parse_unsigned(key, value));
      if (opts.scenario.nodes == 0) {
        throw std::invalid_argument("--nodes must be positive");
      }
    } else if (key == "--seeds") {
      seed_count = static_cast<std::size_t>(parse_unsigned(key, value));
      if (seed_count == 0) {
        throw std::invalid_argument("--seeds must be positive");
      }
    } else if (key == "--k") {
      opts.scenario.esg.k = static_cast<std::size_t>(parse_unsigned(key, value));
    } else if (key == "--group-size") {
      opts.scenario.esg.max_group_size =
          static_cast<std::size_t>(parse_unsigned(key, value));
    } else if (key == "--gpu-sharing") {
      opts.scenario.controller.enable_gpu_sharing = parse_bool(key, value);
    } else if (key == "--batching") {
      opts.scenario.controller.enable_batching = parse_bool(key, value);
    } else if (key == "--prewarm") {
      opts.scenario.controller.enable_prewarm = parse_bool(key, value);
    } else if (key == "--noise-cv") {
      opts.scenario.controller.noise_cv = parse_number(key, value);
    } else if (key == "--csv-dir") {
      opts.csv_dir = std::string(value);
    } else if (key == "--trace-out") {
      opts.scenario.trace.trace_path = std::string(value);
    } else if (key == "--stats-out") {
      opts.scenario.trace.stats_path = std::string(value);
    } else if (key == "--report-out") {
      opts.scenario.trace.report_path = std::string(value);
    } else if (key == "--stats-interval-ms") {
      opts.scenario.trace.stats_interval_ms = parse_number(key, value);
      if (opts.scenario.trace.stats_interval_ms <= 0.0) {
        throw std::invalid_argument("--stats-interval-ms must be positive");
      }
    } else if (key == "--fault-spec") {
      opts.scenario.fault = fault::load_fault_spec(value);
    } else {
      throw std::invalid_argument("unknown flag '" + std::string(key) +
                                  "' (see --help)");
    }
  }

  opts.seeds.clear();
  for (std::size_t i = 0; i < seed_count; ++i) opts.seeds.push_back(42 + i);
  return opts;
}

}  // namespace esg::exp
