#include "exp/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "elastic/elastic_spec.hpp"
#include "fault/fault_spec.hpp"
#include "forecast/forecast_spec.hpp"
#include "tenant/tenant_spec.hpp"
#include "trace/workload_trace.hpp"

namespace esg::exp {

namespace {

SchedulerKind parse_scheduler(std::string_view v) {
  if (v == "esg") return SchedulerKind::kEsg;
  if (v == "infless") return SchedulerKind::kInfless;
  if (v == "fast-gshare" || v == "fastgshare") return SchedulerKind::kFastGshare;
  if (v == "orion") return SchedulerKind::kOrion;
  if (v == "aquatope") return SchedulerKind::kAquatope;
  if (v == "mqfq-sticky" || v == "mqfq") return SchedulerKind::kMqfqSticky;
  throw std::invalid_argument(
      "unknown --scheduler '" + std::string(v) +
      "' (esg|infless|fast-gshare|orion|aquatope|mqfq-sticky)");
}

/// `--scheduler` accepts a comma list (sweep mode): `esg,infless,orion`.
/// Duplicates and empty entries are errors.
std::vector<SchedulerKind> parse_scheduler_list(std::string_view v) {
  std::vector<SchedulerKind> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = v.find(',', pos);
    const std::string_view item =
        comma == std::string_view::npos ? v.substr(pos)
                                        : v.substr(pos, comma - pos);
    if (item.empty()) {
      throw std::invalid_argument(
          "--scheduler list must not have empty entries");
    }
    const SchedulerKind kind = parse_scheduler(item);
    if (std::find(out.begin(), out.end(), kind) != out.end()) {
      throw std::invalid_argument("--scheduler list repeats '" +
                                  std::string(item) + "'");
    }
    out.push_back(kind);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

workload::LoadSetting parse_load(std::string_view v) {
  if (v == "light") return workload::LoadSetting::kLight;
  if (v == "normal") return workload::LoadSetting::kNormal;
  if (v == "heavy") return workload::LoadSetting::kHeavy;
  throw std::invalid_argument("unknown --load '" + std::string(v) +
                              "' (light|normal|heavy)");
}

workload::SloSetting parse_slo(std::string_view v) {
  if (v == "strict") return workload::SloSetting::kStrict;
  if (v == "moderate") return workload::SloSetting::kModerate;
  if (v == "relaxed") return workload::SloSetting::kRelaxed;
  throw std::invalid_argument("unknown --slo '" + std::string(v) +
                              "' (strict|moderate|relaxed)");
}

double parse_number(std::string_view key, std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  // from_chars happily parses "nan" and "inf"; neither is a usable knob
  // value anywhere in the CLI, and NaN in particular slips through every
  // `< 0` range check below.
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    throw std::invalid_argument("malformed value for " + std::string(key) +
                                ": '" + std::string(v) + "'");
  }
  return out;
}

/// For time-like knobs: finite and >= 0 (parse_number already rejects
/// NaN/inf, whose casts to integers would be undefined behaviour anyway).
double parse_nonnegative(std::string_view key, std::string_view v) {
  const double d = parse_number(key, v);
  if (d < 0.0) {
    throw std::invalid_argument(std::string(key) + " must be non-negative");
  }
  return d;
}

std::uint64_t parse_unsigned(std::string_view key, std::string_view v) {
  return static_cast<std::uint64_t>(parse_nonnegative(key, v));
}

bool parse_bool(std::string_view key, std::string_view v) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  throw std::invalid_argument("malformed boolean for " + std::string(key) +
                              ": '" + std::string(v) + "' (on|off)");
}

/// --seeds accepts either a replica count (`3` -> seeds 42,43,44) or an
/// explicit comma-separated list (`7,8,9`; a trailing comma marks a
/// single-element list: `7,`). Empty lists and duplicate seeds are errors.
std::vector<std::uint64_t> parse_seeds(std::string_view v) {
  const auto parse_one = [](std::string_view item) {
    std::uint64_t out = 0;
    const auto* end = item.data() + item.size();
    const auto [ptr, ec] = std::from_chars(item.data(), end, out);
    if (ec != std::errc{} || ptr != end) {
      throw std::invalid_argument("malformed seed '" + std::string(item) +
                                  "' in --seeds (non-negative integer)");
    }
    return out;
  };

  if (v.find(',') == std::string_view::npos) {
    const std::size_t count = static_cast<std::size_t>(
        parse_unsigned("--seeds", v));
    if (count == 0) {
      throw std::invalid_argument("--seeds must be positive");
    }
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < count; ++i) seeds.push_back(42 + i);
    return seeds;
  }

  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t comma = std::min(v.find(',', pos), v.size());
    const std::string_view item = v.substr(pos, comma - pos);
    const bool last = comma == v.size();
    pos = comma + 1;
    if (item.empty()) {
      // A single trailing comma is the explicit-list marker; any other
      // empty element means a malformed (or entirely empty) list.
      if (last && !seeds.empty()) break;
      throw std::invalid_argument("--seeds list must not have empty entries");
    }
    seeds.push_back(parse_one(item));
  }
  if (seeds.empty()) {
    throw std::invalid_argument("--seeds list must not be empty");
  }
  std::vector<std::uint64_t> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    throw std::invalid_argument("--seeds list contains duplicate seed " +
                                std::to_string(*dup));
  }
  return seeds;
}

workload::BurstProfile parse_burst_profile(std::string_view body) {
  workload::BurstProfile profile;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = std::min(body.find(',', pos), body.size());
    const std::string_view pair = body.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("--arrivals bursty: expected key=value, got '" +
                                  std::string(pair) + "'");
    }
    const std::string_view k = pair.substr(0, eq);
    const std::string_view val = pair.substr(eq + 1);
    if (k == "calm") {
      profile.calm = parse_load(val);
    } else if (k == "burst") {
      profile.burst = parse_load(val);
    } else if (k == "calm-ms") {
      profile.mean_calm_ms = parse_number("--arrivals calm-ms", val);
    } else if (k == "burst-ms") {
      profile.mean_burst_ms = parse_number("--arrivals burst-ms", val);
    } else {
      throw std::invalid_argument("--arrivals bursty: unknown key '" +
                                  std::string(k) +
                                  "' (calm|burst|calm-ms|burst-ms)");
    }
  }
  if (profile.mean_calm_ms <= 0.0 || profile.mean_burst_ms <= 0.0) {
    throw std::invalid_argument(
        "--arrivals bursty: phase lengths must be positive");
  }
  return profile;
}

/// `synthetic` | `bursty[:k=v,...]` | `trace:@file[,rate-scale=..,time-scale=..]`.
/// Trace files are loaded (and validated) eagerly so a bad trace fails at
/// parse time, and replicas share one parsed trace.
ArrivalConfig parse_arrivals(std::string_view v) {
  ArrivalConfig config;
  if (v == "synthetic") return config;
  if (v == "bursty" || v.starts_with("bursty:")) {
    config.mode = ArrivalMode::kBursty;
    if (v.starts_with("bursty:")) {
      config.burst = parse_burst_profile(v.substr(7));
    }
    return config;
  }
  if (v.starts_with("trace:")) {
    config.mode = ArrivalMode::kTrace;
    std::string_view body = v.substr(6);
    const std::size_t comma = body.find(',');
    const std::string_view file = body.substr(0, comma);
    if (!file.starts_with("@") || file.size() == 1) {
      throw std::invalid_argument(
          "--arrivals trace: expected 'trace:@<file>', got '" + std::string(v) +
          "'");
    }
    config.trace_path = std::string(file.substr(1));
    std::size_t pos = comma == std::string_view::npos ? body.size() + 1
                                                      : comma + 1;
    while (pos <= body.size()) {
      const std::size_t next = std::min(body.find(',', pos), body.size());
      const std::string_view pair = body.substr(pos, next - pos);
      pos = next + 1;
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument(
            "--arrivals trace: expected key=value, got '" + std::string(pair) +
            "'");
      }
      const std::string_view k = pair.substr(0, eq);
      const std::string_view val = pair.substr(eq + 1);
      if (k == "rate-scale") {
        config.replay.rate_scale = parse_nonnegative("--arrivals rate-scale", val);
      } else if (k == "time-scale") {
        config.replay.time_scale = parse_number("--arrivals time-scale", val);
        if (config.replay.time_scale <= 0.0) {
          throw std::invalid_argument("--arrivals time-scale must be positive");
        }
      } else {
        throw std::invalid_argument("--arrivals trace: unknown key '" +
                                    std::string(k) +
                                    "' (rate-scale|time-scale)");
      }
    }
    config.trace = std::make_shared<const trace::WorkloadTrace>(
        trace::load_workload_trace(config.trace_path));
    return config;
  }
  throw std::invalid_argument("unknown --arrivals '" + std::string(v) +
                              "' (synthetic|bursty[:...]|trace:@file[,...])");
}

}  // namespace

std::string cli_usage() {
  return R"(esg_sim — run one simulated serverless scheduling scenario

usage: esg_sim [flags]

  --scheduler  esg|infless|fast-gshare|orion|aquatope|mqfq-sticky
                                                        (default esg)
                         mqfq-sticky runs ESG planning under multi-queue
                         fair queueing: per-tenant virtual-time dispatch,
                         throttling, and sticky device placement (needs
                         --tenants or a multi-tenant trace); with --sweep
                         a comma list runs several schedulers (e.g.
                         esg,infless,orion)
  --engine     heap|calendar  event-queue engine        (default calendar)
                         both engines fire events in identical order, so
                         every artefact is byte-identical; the binary heap
                         stays selectable for cross-checking (CI cmp-asserts
                         the calendar queue against it)
  --sweep                run the (scheduler x seed) cross product in
                         parallel on the work-stealing pool and print a
                         per-cell table plus per-scheduler aggregates.
                         File-producing flags (--csv-dir, --trace-out, ...)
                         are rejected: cells would race on the files
  --jobs       <n>       worker threads for --sweep and multi-seed replica
                         runs (default 0 = hardware concurrency); results
                         are byte-identical for any value
  --sweep-out  <path>    write the sweep result table as deterministic JSON
                         (esg.sweep.v1; wall-clock fields excluded so the
                         file is byte-identical across --jobs counts)
  --load       light|normal|heavy                       (default light)
  --slo        strict|moderate|relaxed                  (default strict)
  --arrivals   <spec>    arrival process                (default synthetic)
                           synthetic — paper Sec. 4.1 ranges per --load
                           bursty[:calm=light,burst=heavy,calm-ms=8000,burst-ms=2000]
                           trace:@file[,rate-scale=1,time-scale=1]
                         trace replay drives the run with a production
                         workload trace (esg.trace.v1 CSV or JSONL; generate
                         one with tools/esg_tracegen); still clipped to
                         --horizon-ms
  --horizon-ms <ms>      arrival window                 (default 30000)
  --warmup-ms  <ms>      steady-state measurement start (default 0)
  --nodes      <n>       invoker count                  (default 16)
  --seeds      <n>|<s1,s2,...>  replica count (seeds 42..42+n-1) or an
                         explicit seed list; `7,` is the one-seed list 7
  --k          <n>       ESG configPQ length            (default 5)
  --group-size <n>       ESG max function-group size    (default 3)
  --gpu-sharing on|off   ablation switch                (default on)
  --batching   on|off    ablation switch                (default on)
  --prewarm    on|off    pre-warming                    (default on)
  --noise-cv   <f>       execution-noise CV             (default 0.06)
  --csv-dir    <path>    write completions/tasks/summary CSVs
  --trace-out  <path>    write a Chrome/Perfetto trace (trace.json); with
                         --seeds n>1 each seed gets a _seed<N> suffix
  --stats-out  <path>    write sampled gauges (occupancy, queue depth) as JSONL
  --stats-interval-ms <ms>  gauge sampling cadence      (default 100)
  --report-out <path>    write the SLO-attribution report (critical-path
                         latency decomposition + per-app miss causes) as JSON;
                         esg_report produces the same file from a saved trace
  --perf-out   <path>    write the simulator self-profiling report
                         (esg.perf.v1 JSON: hot-path counters, throughput,
                         and — in ESG_PROFILE=ON builds — the scoped timer
                         tree); with --seeds n>1 each seed gets a _seed<N>
                         suffix. Also adds perf/* counter tracks to
                         --stats-out / --trace-out when those are active
  --perf-summary         print the per-seed self-profiling summary (counter
                         table + scope tree) after the run; seeds run
                         sequentially like the traced path
  --fault-spec <spec>    deterministic fault injection; `@file` reads the
                         spec from a file. Clauses are `;`-separated:
                           crash:invoker=3,at=2000,down=1500
                           dispatch:prob=0.05[,function=2]
                           coldstart:prob=0.2[,function=1]
                           slow:invoker=1,at=500,for=4000,factor=3
                           spot:at=2000,nodes=3[,warn=500]
                         A zero-rate spec reproduces the fault-free run
                         byte-for-byte. `spot:` reclaims nodes after a warning
                         lead time and needs --elastic.
  --elastic    <policy:k=v,...>  elastic fleet lifecycle (default off: the
                         fleet is static at --nodes). Policies:
                           queue:...  scale out when queued jobs per in-fleet
                                      node exceed `out`
                           rate:...   scale out when the EWMA arrival rate
                                      (req/s) per in-fleet node exceeds `out`
                           forecast:... scale out when the *predicted* rate
                                      provision-ms ahead per in-fleet node
                                      exceeds `out` (needs --forecast)
                         Keys: min=1 max=<nodes> out=8 step=1 idle-ms=30000
                         eval-ms=250 provision-ms=2000 alpha=0.3 shed=off
                         shed-margin=1. --nodes is the *initial* fleet; the
                         cluster holds `max` invokers. `shed=on` enables
                         admission control: requests whose best-case latency
                         cannot meet shed-margin x SLO are rejected at arrival
                         (reported as shed@admission). An inert spec
                         (min == max, idle-ms=0, shed=off) is byte-identical
                         to the static run.
  --forecast   <spec>    arrival forecasting; `@file` reads the spec from a
                         file (newlines allowed as separators). Grammar:
                           <predictor>[;lead-ms=2000][;bin-ms=1000]
                         Predictors:
                           oracle     true per-bin rates from the replayed
                                      trace (needs --arrivals trace:@file) —
                                      the value-of-information upper bound
                           last-bin   persistence: next bin = last bin
                           ewma[:alpha=0.3]  exponentially weighted mean
                           seasonal[:period-ms=120000,bins=120]  per-bin-of-
                                      period running means (diurnal shape)
                         Consumers: proactive prewarm targets lead-ms ahead,
                         the elastic `forecast` policy, and the ESG planner's
                         batching defer look-ahead. Off by default — a run
                         without the flag is byte-identical to pre-forecast
                         builds. Accuracy (per-app MAE/sMAPE) lands in
                         --stats-out gauges and the --report-out report.
  --tenants    <spec>    multi-tenant fair queueing; `@file` reads the spec
                         from a file (newlines allowed as separators).
                         Clauses are `;`-separated:
                           name:weight[:mode][:apps=0,2,...]
                           throttle=<ms>   MQFQ throttle threshold T (default 50)
                         mode is time (default) | energy | hybrid=<alpha>
                         (charge = alpha*time + (1-alpha)*energy); apps= lists
                         the apps this tenant owns (unclaimed apps belong to
                         tenant 0; a trace tenant column overrides). Example:
                           --tenants 'gold:3:apps=0,2;bronze:1:energy;throttle=25'
                         With a single tenant (or no flag) every scheduler
                         runs the exact single-tenant path byte-for-byte;
                         with several, all schedulers get weighted per-tenant
                         queues and mqfq-sticky adds throttling + stickiness.
  --version              print one provenance line (commit, compiler, build)
  --build-info           print the full build/host provenance record
  --help

exit codes: 0 success; 2 configuration error (bad flag/spec/scenario);
1 runtime failure (I/O, internal error).
)";
}

CliOptions parse_cli(std::span<const char* const> args) {
  CliOptions opts;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view key = args[i];
    if (key == "--help" || key == "-h") {
      opts.help = true;
      return opts;
    }
    if (key == "--version") {
      opts.version = true;
      return opts;
    }
    if (key == "--build-info") {
      opts.build_info = true;
      return opts;
    }
    if (key == "--perf-summary") {
      opts.perf_summary = true;
      continue;
    }
    if (key == "--sweep") {
      opts.sweep = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value for " + std::string(key));
    }
    const std::string_view value = args[++i];

    if (key == "--scheduler") {
      opts.schedulers = parse_scheduler_list(value);
      opts.scenario.scheduler = opts.schedulers.front();
    } else if (key == "--engine") {
      const auto engine = sim::parse_engine(value);
      if (!engine) {
        throw std::invalid_argument("unknown --engine '" + std::string(value) +
                                    "' (heap|calendar)");
      }
      opts.scenario.engine = *engine;
    } else if (key == "--jobs") {
      opts.jobs = static_cast<unsigned>(parse_unsigned(key, value));
    } else if (key == "--sweep-out") {
      opts.sweep_out = std::string(value);
    } else if (key == "--load") {
      opts.scenario.load = parse_load(value);
    } else if (key == "--slo") {
      opts.scenario.slo = parse_slo(value);
    } else if (key == "--horizon-ms") {
      opts.scenario.horizon_ms = parse_nonnegative(key, value);
    } else if (key == "--warmup-ms") {
      opts.scenario.warmup_ms = parse_nonnegative(key, value);
    } else if (key == "--nodes") {
      opts.scenario.nodes = static_cast<std::size_t>(parse_unsigned(key, value));
      if (opts.scenario.nodes == 0) {
        throw std::invalid_argument("--nodes must be positive");
      }
    } else if (key == "--seeds") {
      opts.seeds = parse_seeds(value);
    } else if (key == "--arrivals") {
      opts.scenario.arrivals = parse_arrivals(value);
    } else if (key == "--k") {
      opts.scenario.esg.k = static_cast<std::size_t>(parse_unsigned(key, value));
    } else if (key == "--group-size") {
      opts.scenario.esg.max_group_size =
          static_cast<std::size_t>(parse_unsigned(key, value));
    } else if (key == "--gpu-sharing") {
      opts.scenario.controller.enable_gpu_sharing = parse_bool(key, value);
    } else if (key == "--batching") {
      opts.scenario.controller.enable_batching = parse_bool(key, value);
    } else if (key == "--prewarm") {
      opts.scenario.controller.enable_prewarm = parse_bool(key, value);
    } else if (key == "--noise-cv") {
      opts.scenario.controller.noise_cv = parse_number(key, value);
    } else if (key == "--csv-dir") {
      opts.csv_dir = std::string(value);
    } else if (key == "--trace-out") {
      opts.scenario.trace.trace_path = std::string(value);
    } else if (key == "--stats-out") {
      opts.scenario.trace.stats_path = std::string(value);
    } else if (key == "--report-out") {
      opts.scenario.trace.report_path = std::string(value);
    } else if (key == "--perf-out") {
      opts.scenario.trace.perf_path = std::string(value);
    } else if (key == "--stats-interval-ms") {
      opts.scenario.trace.stats_interval_ms = parse_number(key, value);
      if (opts.scenario.trace.stats_interval_ms <= 0.0) {
        throw std::invalid_argument("--stats-interval-ms must be positive");
      }
    } else if (key == "--fault-spec") {
      opts.scenario.fault = fault::load_fault_spec(value);
    } else if (key == "--elastic") {
      opts.scenario.elastic = elastic::parse_elastic_spec(value);
    } else if (key == "--forecast") {
      opts.scenario.forecast = forecast::load_forecast_spec(value);
    } else if (key == "--tenants") {
      opts.scenario.tenants = tenant::load_tenant_spec(value);
    } else {
      throw std::invalid_argument("unknown flag '" + std::string(key) +
                                  "' (see --help)");
    }
  }

  // Cross-flag validation here (not only in run_scenario): replicas run on
  // worker threads, where a late throw aborts instead of reaching main's
  // config-error handler.
  if (!opts.scenario.fault.spot.empty() && !opts.scenario.elastic.enabled()) {
    throw std::invalid_argument(
        "spot: clauses need --elastic (a static fleet has no lifecycle to "
        "reclaim nodes from)");
  }
  if (opts.scenario.forecast.kind == forecast::ForecastKind::kOracle &&
      opts.scenario.arrivals.mode != ArrivalMode::kTrace) {
    throw std::invalid_argument(
        "--forecast oracle requires trace arrivals (--arrivals trace:@file)");
  }
  if (opts.scenario.elastic.policy == elastic::ElasticPolicy::kForecast &&
      !opts.scenario.forecast.enabled()) {
    throw std::invalid_argument(
        "--elastic forecast needs --forecast (the policy has no signal "
        "without a forecaster)");
  }
  if (!opts.sweep) {
    if (opts.schedulers.size() > 1) {
      throw std::invalid_argument(
          "--scheduler with a comma list needs --sweep");
    }
    if (!opts.sweep_out.empty()) {
      throw std::invalid_argument("--sweep-out needs --sweep");
    }
  } else {
    // Sweep replicas run concurrently and share no file paths, so every
    // file-producing flag is rejected loudly rather than silently dropped.
    if (!opts.csv_dir.empty()) {
      throw std::invalid_argument(
          "--csv-dir is not supported with --sweep (cells would race on the "
          "files); run cells individually for CSVs");
    }
    if (opts.scenario.trace.enabled()) {
      throw std::invalid_argument(
          "--trace-out/--stats-out/--report-out/--perf-out are not supported "
          "with --sweep (cells would race on the files)");
    }
    if (opts.perf_summary) {
      throw std::invalid_argument(
          "--perf-summary is not supported with --sweep (the profiler scope "
          "tree is per-process, not per-cell)");
    }
  }

  return opts;
}

}  // namespace esg::exp
